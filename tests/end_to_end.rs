//! Cross-crate integration tests: the whole pipeline from synthetic trace to
//! replay outcome, checking the qualitative shape of the paper's results on a
//! reduced-scale Curie.

use adaptive_powercap::prelude::*;

fn harness(seed: u64, interval: IntervalKind, racks: usize) -> ReplayHarness {
    let platform = Platform::curie_scaled(racks);
    let trace = CurieTraceGenerator::new(seed)
        .interval(interval)
        .generate_for(&platform);
    ReplayHarness::new(platform, trace)
}

#[test]
fn every_policy_respects_every_cap() {
    let h = harness(21, IntervalKind::MedianJob, 2);
    let duration = h.trace().duration;
    for fraction in [0.8, 0.6, 0.4] {
        for policy in [
            PowercapPolicy::Shut,
            PowercapPolicy::Dvfs,
            PowercapPolicy::Mix,
        ] {
            let scenario = Scenario::paper(policy, fraction, duration);
            let outcome = h.run(&scenario);
            let window = scenario.window().unwrap();
            let cap = scenario.cap(h.platform()).unwrap();
            let peak = outcome.power.peak_within(window.start, window.end);
            assert!(
                peak.as_watts() <= cap.as_watts() + 1e-6,
                "{policy} at {fraction}: peak {peak} exceeds cap {cap}"
            );
        }
    }
}

#[test]
fn work_and_energy_decrease_with_the_cap() {
    // Paper: "for every type of workload work and energy decrease
    // proportionally to the powercap diminution".
    let h = harness(22, IntervalKind::MedianJob, 2);
    let duration = h.trace().duration;
    for policy in [PowercapPolicy::Shut, PowercapPolicy::Mix] {
        let mut last_work = f64::INFINITY;
        let mut last_energy = f64::INFINITY;
        for fraction in [0.8, 0.6, 0.4] {
            let outcome = h.run(&Scenario::paper(policy, fraction, duration));
            assert!(
                outcome.report.work_core_seconds <= last_work + 1e-6,
                "{policy}: work must not grow as the cap shrinks"
            );
            assert!(
                outcome.report.energy.as_joules() <= last_energy * 1.02,
                "{policy}: energy must not grow as the cap shrinks"
            );
            last_work = outcome.report.work_core_seconds;
            last_energy = outcome.report.energy.as_joules();
        }
    }
}

#[test]
fn capped_runs_never_beat_the_uncapped_baseline() {
    let h = harness(23, IntervalKind::SmallJob, 2);
    let duration = h.trace().duration;
    let baseline = h.run(&Scenario::baseline());
    for policy in [
        PowercapPolicy::Shut,
        PowercapPolicy::Dvfs,
        PowercapPolicy::Mix,
    ] {
        let outcome = h.run(&Scenario::paper(policy, 0.4, duration));
        assert!(outcome.report.work_core_seconds <= baseline.report.work_core_seconds + 1e-6);
        assert!(outcome.report.energy < baseline.report.energy);
        // Note: launched-job counts may go either way — the paper itself
        // observes capped runs launching *more* (smaller) jobs than the
        // baseline when the baseline favours one huge job.
    }
}

#[test]
fn shut_and_mix_power_nodes_off_while_dvfs_downclocks() {
    let h = harness(24, IntervalKind::MedianJob, 2);
    let duration = h.trace().duration;
    let count_off = |o: &ReplayOutcome| {
        o.log
            .events()
            .iter()
            .filter(|e| matches!(e.kind, SimEventKind::NodesPoweredOff { .. }))
            .count()
    };
    let shut = h.run(&Scenario::paper(PowercapPolicy::Shut, 0.4, duration));
    assert!(count_off(&shut) > 0);
    assert!(shut
        .log
        .job_starts()
        .all(|(_, _, _, f)| f == Frequency::from_ghz(2.7)));

    let dvfs = h.run(&Scenario::paper(PowercapPolicy::Dvfs, 0.4, duration));
    assert_eq!(count_off(&dvfs), 0);
    assert!(dvfs
        .log
        .job_starts()
        .any(|(_, _, _, f)| f < Frequency::from_ghz(2.7)));

    let mix = h.run(&Scenario::paper(PowercapPolicy::Mix, 0.4, duration));
    assert!(count_off(&mix) > 0);
    assert!(mix
        .log
        .job_starts()
        .all(|(_, _, _, f)| f >= Frequency::from_ghz(2.0)));
}

#[test]
fn utilization_recovers_after_the_cap_window() {
    // Paper (Fig. 6/7): "the system utilization in terms of cores increases
    // directly after the powercap interval".
    let h = harness(25, IntervalKind::MedianJob, 2);
    let duration = h.trace().duration;
    let scenario = Scenario::paper(PowercapPolicy::Shut, 0.4, duration);
    let outcome = h.run(&scenario);
    let window = scenario.window().unwrap();
    let during = outcome.utilization.at(window.start + window.duration() / 2);
    let after = outcome
        .utilization
        .at((window.end + 1800).min(duration - 1));
    assert!(
        after.busy_cores() as f64 >= during.busy_cores() as f64 * 0.8,
        "utilisation should recover after the cap is lifted (during {}, after {})",
        during.busy_cores(),
        after.busy_cores()
    );
    // During the window some nodes are dark under SHUT.
    assert!(during.off_cores > 0);
    // After the window every node is powered again.
    assert_eq!(outcome.utilization.at(duration - 1).off_cores, 0);
}

#[test]
fn grouped_selection_switches_off_no_more_nodes_than_scattered() {
    let h = harness(26, IntervalKind::MedianJob, 2);
    let duration = h.trace().duration;
    let nodes_off_at_window = |o: &ReplayOutcome, t: u64| o.utilization.at(t).off_cores;
    let scenario = Scenario::paper(PowercapPolicy::Shut, 0.4, duration);
    let grouped = h.run(&scenario);
    let scattered = h.run(
        &Scenario::paper(PowercapPolicy::Shut, 0.4, duration)
            .with_grouping(apc_power::bonus::GroupingStrategy::Scattered),
    );
    let mid = scenario.window().unwrap().start + 1800;
    assert!(
        nodes_off_at_window(&grouped, mid) <= nodes_off_at_window(&scattered, mid),
        "the power bonus lets the grouped plan keep more cores alive"
    );
}

#[test]
fn swf_round_trip_feeds_the_replay() {
    // A trace can leave through the SWF writer and come back unchanged in
    // the fields the replay uses.
    let platform = Platform::curie_scaled(1);
    let trace = CurieTraceGenerator::new(30)
        .load_factor(0.3)
        .backlog_factor(0.2)
        .generate_for(&platform);
    let swf = write_swf(&trace);
    let reparsed = parse_swf(&swf).expect("writer output parses");
    assert_eq!(reparsed.len(), trace.len());
    let h = ReplayHarness::new(platform, reparsed);
    let outcome = h.run(&Scenario::baseline());
    assert!(outcome.report.launched_jobs > 0);
}

#[test]
fn full_curie_platform_constructs_and_accounts_power() {
    // A cheap sanity check at the real 5 040-node scale (no replay).
    let platform = Platform::curie();
    let mut cluster = Cluster::new(platform.clone());
    assert_eq!(cluster.total_nodes(), 5040);
    let idle = cluster.current_power();
    // All-idle power: 5040 idle nodes plus chassis/rack equipment.
    let expected = Watts(5040.0 * 117.0) + platform.topology.total_overhead();
    assert!(idle.approx_eq(expected, 1e-3));
    // Powering a full rack off recovers the Fig. 2 accumulated saving
    // relative to idle (idle-vs-max difference accounted separately).
    let rack: Vec<usize> = (0..90).collect();
    cluster.power_off(&rack, 0);
    let drop = idle - cluster.current_power();
    assert!(drop.approx_eq(Watts(90.0 * 103.0 + 5.0 * 500.0 + 900.0), 1e-3));
}

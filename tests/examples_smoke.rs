//! Smoke tests compiling and running each `examples/` main path, so the
//! quickstart documentation cannot rot without a test failure.
//!
//! Each example file is mounted as a module via `#[path]` and its `main`
//! invoked directly; this exercises exactly the code
//! `cargo run --example <name>` would run (stdout is produced but not
//! asserted on — these tests only guarantee the examples build and terminate
//! without panicking).

#[path = "../examples/quickstart.rs"]
mod quickstart;

#[path = "../examples/offline_planning.rs"]
mod offline_planning;

#[path = "../examples/policy_comparison.rs"]
mod policy_comparison;

#[path = "../examples/powercap_day.rs"]
mod powercap_day;

#[test]
fn quickstart_runs() {
    quickstart::main();
}

#[test]
fn offline_planning_runs() {
    offline_planning::main();
}

#[test]
fn policy_comparison_runs() {
    policy_comparison::main();
}

#[test]
fn powercap_day_runs() {
    powercap_day::main();
}

//! Golden replay fingerprints.
//!
//! `tests/determinism.rs` proves that two replays of the same scenario in
//! the *same build* agree; these tests pin the absolute schedule across
//! *builds*: the committed constants were recorded from the pre-NodeMask
//! seed implementation (PR 4), so any refactor of the scheduling hot path —
//! bitmask node sets, scratch-buffer reuse, blocked-set caching — must keep
//! the replay byte-identical to the seed behaviour or these hashes move.
//!
//! The hash is FNV-1a over the same observable fingerprint string the
//! determinism suite renders (event log, report, normalised triple, both
//! time series, summary line). If an intentional semantic change ever lands,
//! rerun with `--nocapture` and update the constants in the same commit,
//! explaining why the schedule was allowed to move.

use adaptive_powercap::prelude::*;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// Render everything observable about an outcome into one byte string —
/// the exact format `tests/determinism.rs` compares.
fn fingerprint(outcome: &ReplayOutcome) -> String {
    format!(
        "events={:?}\nreport={:?}\nnormalized={:?}\nutilization={:?}\npower={:?}\nsummary={}",
        outcome.log.events(),
        outcome.report,
        outcome.normalized,
        outcome.utilization,
        outcome.power,
        outcome.summary(),
    )
}

fn golden_harness() -> ReplayHarness {
    let platform = Platform::curie_scaled(2); // 180 nodes
    let trace = CurieTraceGenerator::new(2012)
        .interval(IntervalKind::MedianJob)
        .generate_for(&platform);
    ReplayHarness::new(platform, trace)
}

fn replay_hash(harness: &ReplayHarness, scenario: &Scenario) -> u64 {
    fnv1a64(fingerprint(&harness.run(scenario)).as_bytes())
}

/// The paper scenario set: the uncapped baseline plus every policy at the
/// 80 / 60 / 40 % caps, on the seed-2012 median-job interval.
#[test]
fn paper_scenario_set_matches_the_seed_schedule() {
    // (label, expected FNV-1a hash) recorded from the PR 4 seed build.
    const GOLDEN: [(&str, f64, Option<PowercapPolicy>, u64); 10] = [
        ("100%/None", 1.0, None, GOLDEN_BASELINE),
        ("80%/SHUT", 0.8, Some(PowercapPolicy::Shut), GOLDEN_SHUT_80),
        ("80%/DVFS", 0.8, Some(PowercapPolicy::Dvfs), GOLDEN_DVFS_80),
        ("80%/MIX", 0.8, Some(PowercapPolicy::Mix), GOLDEN_MIX_80),
        ("60%/SHUT", 0.6, Some(PowercapPolicy::Shut), GOLDEN_SHUT_60),
        ("60%/DVFS", 0.6, Some(PowercapPolicy::Dvfs), GOLDEN_DVFS_60),
        ("60%/MIX", 0.6, Some(PowercapPolicy::Mix), GOLDEN_MIX_60),
        ("40%/SHUT", 0.4, Some(PowercapPolicy::Shut), GOLDEN_SHUT_40),
        ("40%/DVFS", 0.4, Some(PowercapPolicy::Dvfs), GOLDEN_DVFS_40),
        ("40%/MIX", 0.4, Some(PowercapPolicy::Mix), GOLDEN_MIX_40),
    ];
    let harness = golden_harness();
    let duration = harness.trace().duration;
    let mut mismatches = Vec::new();
    for (label, fraction, policy, expected) in GOLDEN {
        let scenario = match policy {
            None => Scenario::baseline(),
            Some(policy) => Scenario::paper(policy, fraction, duration),
        };
        let actual = replay_hash(&harness, &scenario);
        println!("golden {label}: 0x{actual:016x}");
        if actual != expected {
            mismatches.push(format!(
                "{label}: expected 0x{expected:016x}, got 0x{actual:016x}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "replay fingerprints moved from the seed schedule:\n{}",
        mismatches.join("\n")
    );
}

/// A multi-window sweep cell (two disjoint cap slots in one interval), the
/// shape the PR 4 `--windows` axis replays.
#[test]
fn multi_window_sweep_cell_matches_the_seed_schedule() {
    let harness = golden_harness();
    let duration = harness.trace().duration;
    let scenario = Scenario::paper(PowercapPolicy::Mix, 0.6, duration).with_windows(vec![
        CapWindow::new(1800, 3600),
        CapWindow::new(duration - 5400, 3600),
    ]);
    let actual = replay_hash(&harness, &scenario);
    println!("golden multi-window 60%/MIX: 0x{actual:016x}");
    assert_eq!(
        actual, GOLDEN_MULTI_WINDOW_MIX_60,
        "multi-window sweep cell diverged from the seed schedule \
         (got 0x{actual:016x})"
    );
}

// Recorded from the seed (pre-NodeMask) build; see module docs.
const GOLDEN_BASELINE: u64 = 0xceee_ae71_8678_949f;
const GOLDEN_SHUT_80: u64 = 0x1f12_570a_1aa1_d447;
const GOLDEN_DVFS_80: u64 = 0x09d7_ad07_3af4_df9a;
const GOLDEN_MIX_80: u64 = 0x76eb_886a_7a0f_bdec;
const GOLDEN_SHUT_60: u64 = 0xc611_248b_a1cb_e020;
const GOLDEN_DVFS_60: u64 = 0xbf14_1327_532a_bf49;
const GOLDEN_MIX_60: u64 = 0x5435_6a46_d232_6a85;
const GOLDEN_SHUT_40: u64 = 0x209a_1622_8a50_4fd1;
const GOLDEN_DVFS_40: u64 = 0x068c_4f64_3598_4f7f;
const GOLDEN_MIX_40: u64 = 0x5347_8186_843c_26cd;
const GOLDEN_MULTI_WINDOW_MIX_60: u64 = 0x14fc_51ce_1df7_ac4a;

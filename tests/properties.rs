//! Property-based tests on the core data structures and invariants.

use adaptive_powercap::prelude::*;
use apc_power::tradeoff::DecisionRule;
use proptest::prelude::*;

fn arbitrary_state() -> impl Strategy<Value = PowerState> {
    prop_oneof![
        Just(PowerState::Off),
        Just(PowerState::Idle),
        (0usize..8).prop_map(|i| PowerState::Busy(FrequencyLadder::curie().steps()[i])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incrementally maintained cluster power always matches a from-scratch
    /// recomputation, whatever the sequence of state changes.
    #[test]
    fn accountant_incremental_matches_recompute(
        changes in proptest::collection::vec((0usize..90, arbitrary_state()), 1..200)
    ) {
        let topo = Topology::curie_scaled(1);
        let profile = NodePowerProfile::curie();
        let mut acct = ClusterPowerAccountant::new(&topo, &profile);
        for (i, (node, state)) in changes.into_iter().enumerate() {
            acct.set_state(node, state, i as u64);
        }
        prop_assert!(acct.current_power().approx_eq(acct.recompute_power(), 1e-6));
    }

    /// Energy integration is non-negative and bounded by the maximum cluster
    /// power times elapsed time.
    #[test]
    fn energy_is_bounded_by_max_power(
        changes in proptest::collection::vec((0usize..90, arbitrary_state()), 1..100),
        horizon in 1u64..10_000
    ) {
        let topo = Topology::curie_scaled(1);
        let profile = NodePowerProfile::curie();
        let mut acct = ClusterPowerAccountant::new(&topo, &profile);
        let n = changes.len() as u64;
        for (i, (node, state)) in changes.into_iter().enumerate() {
            let t = (i as u64) * horizon / n.max(1);
            acct.set_state(node, state, t);
        }
        acct.advance_time(horizon);
        let max_energy = topo.max_cluster_power(&profile).over_seconds(horizon);
        prop_assert!(acct.energy().as_joules() >= 0.0);
        prop_assert!(acct.energy().as_joules() <= max_energy.as_joules() + 1e-6);
    }

    /// Whatever the cap, the Section III decision keeps the planned
    /// configuration's power at or below the cap (when the cap is feasible)
    /// and the work within [0, N].
    #[test]
    fn tradeoff_decisions_respect_the_cap(lambda in 0.02f64..1.2, rule in prop_oneof![
        Just(DecisionRule::PaperRho), Just(DecisionRule::WorkMaximizing)
    ]) {
        let model = PowercapTradeoff::curie_default().with_rule(rule);
        let cap = model.max_power() * lambda;
        let d = model.decide(cap);
        prop_assert!(d.work >= -1e-9 && d.work <= 5040.0 + 1e-9);
        prop_assert!(d.n_off >= -1e-9 && d.n_dvfs >= -1e-9);
        prop_assert!(d.n_off + d.n_dvfs <= 5040.0 + 1e-6);
        if cap >= model.absolute_floor() {
            let planned = model.power_of(d.n_off, d.n_dvfs);
            prop_assert!(
                planned.as_watts() <= cap.as_watts().max(model.max_power().as_watts() * 0.0) + 1e-3
                || d.mechanism == Mechanism::Uncapped,
                "planned {planned} exceeds cap {cap}"
            );
        }
    }

    /// The grouped shutdown planner always reaches a feasible reduction and
    /// never selects more nodes than the plain per-node arithmetic requires.
    #[test]
    fn shutdown_planner_is_sound(kw in 0.1f64..60.0) {
        let topo = Topology::curie_scaled(2);
        let profile = NodePowerProfile::curie();
        let planner = GroupedShutdownPlanner::new(&topo, &profile);
        let request = Watts(kw * 1000.0);
        let plan = planner.plan_unrestricted(request);
        prop_assert!(plan.satisfied());
        let plain_nodes = (request.as_watts() / profile.shutdown_saving().as_watts()).ceil() as usize;
        prop_assert!(plan.node_count() <= plain_nodes.max(1));
        // Node ids are unique and within range.
        let mut nodes = plan.nodes.clone();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), plan.nodes.len());
        prop_assert!(plan.nodes.iter().all(|&n| n < topo.total_nodes()));
    }

    /// DVFS degradation: the factor is always within [1, degmin] and runtime
    /// stretching is monotone in the frequency.
    #[test]
    fn degradation_factor_is_bounded_and_monotone(mhz in 1000u32..3000, runtime in 1u64..100_000) {
        let model = DegradationModel::paper_default();
        let f = Frequency::from_mhz(mhz);
        let factor = model.factor(f);
        prop_assert!(factor >= 1.0 - 1e-12);
        prop_assert!(factor <= model.degmin() + 1e-12);
        let stretched = model.stretch_runtime(runtime, f);
        prop_assert!(stretched >= runtime);
        prop_assert!(stretched <= (runtime as f64 * model.degmin()).ceil() as u64 + 1);
        // Monotone: a slower frequency never shortens the runtime.
        let slower = Frequency::from_mhz(mhz.saturating_sub(200).max(100));
        prop_assert!(model.stretch_runtime(runtime, slower) >= stretched);
    }

    /// The frequency ladder's floor/ceil/next operations are consistent.
    #[test]
    fn ladder_lookups_are_consistent(mhz in 1000u32..3000) {
        let ladder = FrequencyLadder::curie();
        let f = Frequency::from_mhz(mhz);
        if let Some(fl) = ladder.floor(f) {
            prop_assert!(fl <= f);
            prop_assert!(ladder.contains(fl));
        }
        if let Some(ce) = ladder.ceil(f) {
            prop_assert!(ce >= f);
            prop_assert!(ladder.contains(ce));
        }
        for step in ladder.steps() {
            if let Some(lower) = ladder.next_lower(*step) {
                prop_assert!(lower < *step);
                prop_assert_eq!(ladder.next_higher(lower), Some(*step));
            }
        }
    }

    /// Synthetic traces are well-formed for any seed: positive runtimes,
    /// walltimes at least as long as runtimes, core counts within the
    /// machine, submissions inside the interval.
    #[test]
    fn synthetic_traces_are_well_formed(seed in 0u64..500) {
        let platform = Platform::curie_scaled(1);
        let trace = CurieTraceGenerator::new(seed)
            .load_factor(0.4)
            .backlog_factor(0.2)
            .generate_for(&platform);
        prop_assert!(!trace.is_empty());
        for job in &trace.jobs {
            prop_assert!(job.run_time > 0);
            prop_assert!(job.requested_time >= job.run_time);
            prop_assert!(job.cores >= 1);
            prop_assert!(u64::from(job.cores) <= platform.total_cores());
            prop_assert!(job.submit_time < trace.duration);
        }
        // Jobs are ordered by submission time after Trace::new.
        for w in trace.jobs.windows(2) {
            prop_assert!(w[0].submit_time <= w[1].submit_time);
        }
    }

    /// The online scheduler never returns a frequency outside the policy's
    /// allowed ladder, and never starts a job that would break the cap.
    #[test]
    fn online_choice_is_always_legal(
        cap_fraction in 0.2f64..1.0,
        node_count in 1usize..60,
        policy_idx in 0usize..3,
    ) {
        use adaptive_powercap::core::online::{FrequencyChoice, OnlineScheduler};
        use apc_rjms::reservation::ReservationKind;
        use apc_rjms::time::TimeWindow;

        let policy = [PowercapPolicy::Shut, PowercapPolicy::Dvfs, PowercapPolicy::Mix][policy_idx];
        let cluster = Cluster::new(Platform::curie_scaled(1));
        let cap = cluster.platform().max_power() * cap_fraction;
        let mut book = apc_rjms::reservation::ReservationBook::new();
        book.add(TimeWindow::new(0, 1_000_000), ReservationKind::PowerCap { cap });
        let nodes: Vec<usize> = (0..node_count).collect();
        let job = Job::new(0, JobSubmission::new(0, 0, (node_count * 16) as u32, 3600, 600));
        let scheduler = OnlineScheduler::new(policy, &cluster.platform().ladder);
        match scheduler.choose(&cluster, &book, &job, &nodes, 0) {
            FrequencyChoice::Start(f) => {
                let allowed = policy.allowed_ladder(&cluster.platform().ladder);
                prop_assert!(allowed.contains(f), "{policy}: {f} not allowed");
                prop_assert!(cluster.power_if_busy(&nodes, f) <= cap);
            }
            FrequencyChoice::Postpone => {
                // Even the lowest allowed frequency breaks the cap.
                let allowed = policy.allowed_ladder(&cluster.platform().ladder);
                prop_assert!(cluster.power_if_busy(&nodes, allowed.min()) > cap);
            }
        }
    }
}

//! Determinism regression tests.
//!
//! The paper's policy-versus-policy comparisons (Figures 6–8, Section VII)
//! are only meaningful because replaying the same scenario twice yields the
//! same schedule. These tests pin that invariant end to end: identical
//! seed + scenario must produce **byte-identical** event logs and metrics,
//! from trace generation through the controller to the post-treatment series.

use adaptive_powercap::prelude::*;

fn build_harness(seed: u64) -> ReplayHarness {
    let platform = Platform::curie_scaled(2);
    let trace = CurieTraceGenerator::new(seed)
        .interval(IntervalKind::MedianJob)
        .generate_for(&platform);
    ReplayHarness::new(platform, trace)
}

/// Render everything observable about an outcome into one byte string.
fn fingerprint(outcome: &ReplayOutcome) -> String {
    format!(
        "events={:?}\nreport={:?}\nnormalized={:?}\nutilization={:?}\npower={:?}\nsummary={}",
        outcome.log.events(),
        outcome.report,
        outcome.normalized,
        outcome.utilization,
        outcome.power,
        outcome.summary(),
    )
}

#[test]
fn trace_generation_is_deterministic_for_a_seed() {
    let platform = Platform::curie_scaled(2);
    let make = || {
        CurieTraceGenerator::new(7)
            .interval(IntervalKind::MedianJob)
            .generate_for(&platform)
    };
    let (a, b) = (make(), make());
    assert_eq!(a.duration, b.duration);
    assert_eq!(format!("{:?}", a.jobs), format!("{:?}", b.jobs));
    // And a different seed really produces a different workload.
    let c = CurieTraceGenerator::new(8)
        .interval(IntervalKind::MedianJob)
        .generate_for(&platform);
    assert_ne!(format!("{:?}", a.jobs), format!("{:?}", c.jobs));
}

#[test]
fn same_seed_and_scenario_give_byte_identical_outcomes() {
    for policy in [
        PowercapPolicy::Shut,
        PowercapPolicy::Dvfs,
        PowercapPolicy::Mix,
    ] {
        // Two fully independent harnesses: trace generation is part of the
        // reproducibility contract, not just the controller.
        let first = build_harness(41);
        let second = build_harness(41);
        let scenario = Scenario::paper(policy, 0.6, first.trace().duration);
        let a = first.run(&scenario);
        let b = second.run(&scenario);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{policy}: two replays of the same seed/scenario diverged"
        );
    }
}

#[test]
fn baseline_replay_is_byte_identical_across_runs() {
    let h = build_harness(42);
    let a = h.run(&Scenario::baseline());
    let b = h.run(&Scenario::baseline());
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn different_policies_actually_diverge() {
    // Guards against a fingerprint that is insensitive to the schedule: if
    // SHUT and DVFS produced identical logs the comparisons above would be
    // vacuous.
    let h = build_harness(43);
    let duration = h.trace().duration;
    let shut = h.run(&Scenario::paper(PowercapPolicy::Shut, 0.4, duration));
    let dvfs = h.run(&Scenario::paper(PowercapPolicy::Dvfs, 0.4, duration));
    assert_ne!(fingerprint(&shut), fingerprint(&dvfs));
}

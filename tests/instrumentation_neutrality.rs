//! Instrumentation neutrality: attaching the observability layer must not
//! move a single output byte.
//!
//! `apc-obs` promises that metrics and span recording are *observers* —
//! the replay schedule, the campaign result files and the golden
//! fingerprints are identical with instrumentation on or off. These tests
//! prove it two ways:
//!
//! * instrumented replays hash to the **same golden constants** recorded
//!   from the uninstrumented seed build (`tests/golden_fingerprints.rs`);
//! * a campaign run with metrics + spans enabled renders byte-identical
//!   CSV at 1, 2 and 8 worker threads, matching the uninstrumented run.

use adaptive_powercap::obs::{Registry, SpanRecorder};
use adaptive_powercap::prelude::*;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// The same observable fingerprint `tests/golden_fingerprints.rs` hashes.
fn fingerprint(outcome: &ReplayOutcome) -> String {
    format!(
        "events={:?}\nreport={:?}\nnormalized={:?}\nutilization={:?}\npower={:?}\nsummary={}",
        outcome.log.events(),
        outcome.report,
        outcome.normalized,
        outcome.utilization,
        outcome.power,
        outcome.summary(),
    )
}

fn golden_harness() -> ReplayHarness {
    let platform = Platform::curie_scaled(2); // 180 nodes
    let trace = CurieTraceGenerator::new(2012)
        .interval(IntervalKind::MedianJob)
        .generate_for(&platform);
    ReplayHarness::new(platform, trace)
}

// The seed-build constants these instrumented replays must still hit
// (recorded in tests/golden_fingerprints.rs).
const GOLDEN_BASELINE: u64 = 0xceee_ae71_8678_949f;
const GOLDEN_SHUT_60: u64 = 0xc611_248b_a1cb_e020;
const GOLDEN_DVFS_60: u64 = 0xbf14_1327_532a_bf49;
const GOLDEN_MIX_60: u64 = 0x5435_6a46_d232_6a85;

/// Fully-instrumented replays (metrics registry + span recorder) still hash
/// to the golden seed fingerprints.
#[test]
fn instrumented_replays_match_the_golden_fingerprints() {
    let harness = golden_harness();
    let duration = harness.trace().duration;
    let cases: [(&str, Option<PowercapPolicy>, u64); 4] = [
        ("100%/None", None, GOLDEN_BASELINE),
        ("60%/SHUT", Some(PowercapPolicy::Shut), GOLDEN_SHUT_60),
        ("60%/DVFS", Some(PowercapPolicy::Dvfs), GOLDEN_DVFS_60),
        ("60%/MIX", Some(PowercapPolicy::Mix), GOLDEN_MIX_60),
    ];
    let registry = Registry::new();
    let spans = SpanRecorder::new();
    for (label, policy, expected) in cases {
        let scenario = match policy {
            None => Scenario::baseline(),
            Some(policy) => Scenario::paper(policy, 0.6, duration),
        };
        let obs = ControllerObs::new(&registry, spans.clone());
        let outcome = harness.run_with_obs(&scenario, obs);
        let actual = fnv1a64(fingerprint(&outcome).as_bytes());
        assert_eq!(
            actual, expected,
            "{label}: instrumentation moved the schedule \
             (expected 0x{expected:016x}, got 0x{actual:016x})"
        );
    }
    // And the instruments really were live while the schedule stayed put.
    let snap = registry.snapshot();
    let passes = snap
        .histogram("rjms.schedule_pass.duration_ns")
        .expect("pass histogram registered");
    assert!(passes.count > 0, "instrumented replays recorded passes");
    assert!(!spans.take_events().is_empty(), "spans were recorded");
}

/// A small-but-real campaign slice for the byte-identity runs.
fn neutrality_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::paper(2012, 2);
    spec.intervals = vec![IntervalKind::SmallJob];
    spec.policies = vec![PowercapPolicy::Shut, PowercapPolicy::Mix];
    spec.cap_fractions = vec![0.6];
    spec
}

fn rendered_outputs(threads: usize, obs: CampaignObs) -> (String, String) {
    let outcome = CampaignRunner::new(neutrality_spec())
        .with_threads(threads)
        .with_obs(obs)
        .run()
        .expect("campaign runs");
    (
        render_cells_csv(&outcome.rows),
        render_summary_csv(&outcome.summaries),
    )
}

/// Campaign output bytes are identical across thread counts with metrics
/// and span recording enabled, and identical to the uninstrumented run.
#[test]
fn instrumented_campaign_output_is_byte_identical_across_threads() {
    let (plain_cells, plain_summary) = rendered_outputs(1, CampaignObs::disabled());
    for threads in [1usize, 2, 8] {
        let obs = CampaignObs::full();
        let (cells, summary) = rendered_outputs(threads, obs.clone());
        assert_eq!(
            cells, plain_cells,
            "cells.csv moved with instrumentation at {threads} thread(s)"
        );
        assert_eq!(
            summary, plain_summary,
            "summary.csv moved with instrumentation at {threads} thread(s)"
        );
        // The observer half really observed.
        let snap = obs.registry.snapshot();
        assert!(snap.counter("campaign.cells.completed").unwrap_or(0) > 0);
        assert!(!obs.spans.take_events().is_empty());
    }
}

//! Policy comparison across caps and workload flavours — a reduced-scale
//! version of the paper's Fig. 8.
//!
//! For each workload interval (bigjob / medianjob / smalljob) and each cap
//! (80 %, 60 %, 40 %), the three policies are replayed and the normalised
//! energy, launched-jobs and work triple is printed. The expected shape,
//! matching the paper: SHUT and MIX hold their work better than DVFS at low
//! caps, DVFS is competitive at 80 %, MIX has the lowest energy, and both
//! work and energy shrink with the cap for every policy.
//!
//! Run with:
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use adaptive_powercap::prelude::*;

pub fn main() {
    let platform = Platform::curie_scaled(3);
    println!(
        "workload    scenario     energy   launched   work      (normalised, {} nodes)",
        platform.total_nodes()
    );
    for interval in [
        IntervalKind::BigJob,
        IntervalKind::MedianJob,
        IntervalKind::SmallJob,
    ] {
        let trace = CurieTraceGenerator::new(99)
            .interval(interval)
            .generate_for(&platform);
        let harness = ReplayHarness::new(platform.clone(), trace);
        let duration = harness.trace().duration;
        for scenario in Scenario::paper_grid(duration) {
            let outcome = harness.run(&scenario);
            println!(
                "{:<11} {:<12} {:>7.3} {:>10.3} {:>7.3}",
                interval.name(),
                scenario.label(),
                outcome.normalized.energy_normalized,
                outcome.normalized.launched_jobs_normalized,
                outcome.normalized.work_normalized
            );
        }
        println!();
    }
}

//! Inspecting the offline phase (Algorithm 1) and the power bonus.
//!
//! This example does not replay a workload; it shows the decision pipeline of
//! the offline planner directly: for a range of powercap values it prints the
//! mechanism selected by the Section III model, how many nodes must be
//! switched off, which chassis/racks the grouped planner picks, and how much
//! power the bonus recovers compared to a scattered selection.
//!
//! Run with:
//! ```text
//! cargo run --release --example offline_planning
//! ```

use adaptive_powercap::core::offline::OfflinePlanner;
use adaptive_powercap::prelude::*;
use apc_power::bonus::GroupingStrategy;
use apc_rjms::time::TimeWindow;

pub fn main() {
    let platform = Platform::curie();
    let cluster = Cluster::new(platform.clone());
    println!(
        "Curie: {} nodes, maximum power {}\n",
        platform.total_nodes(),
        platform.max_power()
    );

    println!("cap     policy   mechanism        nodes off   complete groups   bonus recovered");
    for fraction in [0.80, 0.60, 0.40] {
        for policy in [
            PowercapPolicy::Shut,
            PowercapPolicy::Mix,
            PowercapPolicy::Dvfs,
        ] {
            let planner = OfflinePlanner::new(PowercapConfig::for_policy(policy));
            let cap = platform.power_fraction(fraction);
            let decision = planner.plan(&cluster, TimeWindow::new(7200, 10800), cap);
            let (nodes, groups, bonus) = match &decision.plan {
                Some(plan) => (
                    plan.node_count(),
                    plan.complete_groups.len(),
                    plan.bonus(&platform.profile).as_watts(),
                ),
                None => (0, 0, 0.0),
            };
            println!(
                "{:>4.0}%   {:<8} {:<16} {:>9} {:>17} {:>14.0} W",
                fraction * 100.0,
                policy.name(),
                format!("{:?}", decision.model_mechanism),
                nodes,
                groups,
                bonus
            );
        }
    }

    // The grouped-versus-scattered comparison of Section VI-A, at the scale
    // of the example from the paper (a 6 600 W reduction).
    println!("\nSection VI-A example: recovering 6 600 W");
    for strategy in [GroupingStrategy::Grouped, GroupingStrategy::Scattered] {
        let planner = GroupedShutdownPlanner::new(&platform.topology, &platform.profile)
            .with_strategy(strategy);
        let plan = planner.plan_unrestricted(Watts(6_600.0));
        println!(
            "{:?}: {} nodes switched off, {} recovered ({} of bonus)",
            strategy,
            plan.node_count(),
            plan.recovered,
            plan.bonus(&platform.profile)
        );
    }
}

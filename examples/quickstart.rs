//! Quickstart: replay a synthetic Curie interval under a 60 % powercap with
//! each policy and compare the outcomes.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use adaptive_powercap::prelude::*;

pub fn main() {
    // A Curie-like machine scaled to 4 racks (360 nodes) so the example runs
    // in a few seconds; pass `--full` logic lives in the experiments binary.
    let platform = Platform::curie_scaled(4);
    println!(
        "Platform: {} nodes, {} cores, max power {}",
        platform.total_nodes(),
        platform.total_cores(),
        platform.max_power()
    );

    // A 5-hour median workload interval, calibrated to the statistics the
    // paper reports for the 2012 Curie production trace.
    let trace = CurieTraceGenerator::new(2012)
        .interval(IntervalKind::MedianJob)
        .generate_for(&platform);
    let stats = TraceStats::compute(&trace, platform.total_cores());
    println!("Workload: {}\n", stats.summary());

    let harness = ReplayHarness::new(platform, trace);
    let duration = harness.trace().duration;

    // The paper's scenario: a one-hour reservation of 60 % of the total power
    // in the middle of the interval, under each policy.
    println!("--- 60 % powercap for one hour, per policy ---");
    let baseline = harness.run(&Scenario::baseline());
    println!("{}", baseline.summary());
    for policy in [
        PowercapPolicy::Shut,
        PowercapPolicy::Dvfs,
        PowercapPolicy::Mix,
    ] {
        let scenario = Scenario::paper(policy, 0.60, duration);
        let outcome = harness.run(&scenario);
        println!("{}", outcome.summary());
        if let Some(window) = scenario.window() {
            let cap = scenario.cap(harness.platform()).unwrap();
            let peak = outcome.power.peak_within(window.start, window.end);
            println!(
                "    peak power during the cap window: {} (cap {})",
                peak, cap
            );
        }
    }
}

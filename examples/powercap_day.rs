//! A 24-hour operational scenario (the paper's Fig. 6): the grid operator
//! announces that only 40 % of the usual power will be available between
//! 11:30 and 12:30, and the site runs the MIX policy.
//!
//! The example prints the core-state and power time series around the cap
//! window, showing how the scheduler prepares for the window (jobs launched
//! at 2.0 GHz in advance, a grouped switch-off reservation) and how
//! utilisation recovers afterwards.
//!
//! Run with:
//! ```text
//! cargo run --release --example powercap_day
//! ```

use adaptive_powercap::prelude::*;
use adaptive_powercap::replay::figures::render_timeseries;

pub fn main() {
    let platform = Platform::curie_scaled(4);
    let trace = CurieTraceGenerator::new(7)
        .interval(IntervalKind::Day24h)
        .generate_for(&platform);
    println!(
        "Replaying a 24 h day on {} nodes with a 40 % powercap from 11:30 to 12:30 (MIX policy)\n",
        platform.total_nodes()
    );

    let harness = ReplayHarness::new(platform, trace);
    let duration = harness.trace().duration;
    let scenario = Scenario::paper(PowercapPolicy::Mix, 0.40, duration);
    let outcome = harness.run(&scenario);

    // Half-hourly time series, like the stacked plots of Fig. 6.
    println!("{}", render_timeseries(&outcome, duration, 1800));
    println!("{}", outcome.summary());

    // How many nodes did the offline phase switch off, and what did the
    // grouped selection save thanks to the power bonus?
    let powered_off: usize = outcome
        .log
        .events()
        .iter()
        .filter_map(|e| match &e.kind {
            SimEventKind::NodesPoweredOff { nodes } => Some(nodes.len()),
            _ => None,
        })
        .sum();
    println!("nodes switched off over the day (cumulative transitions): {powered_off}");
    let window = scenario.window().unwrap();
    println!(
        "peak power inside the window: {} (cap {})",
        outcome.power.peak_within(window.start, window.end),
        scenario.cap(harness.platform()).unwrap()
    );
}

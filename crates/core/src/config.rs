//! Powercap scheduler configuration.

use apc_power::bonus::GroupingStrategy;
use apc_power::tradeoff::DecisionRule;
use serde::{Deserialize, Serialize};

use crate::policy::PowercapPolicy;

/// Configuration bundle for the powercap hook (the SLURM implementation's
/// `SchedulerParameters=powercap_*` options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowercapConfig {
    /// Which policy (SHUT / DVFS / MIX / None) arbitrates power reductions.
    pub policy: PowercapPolicy,
    /// How switch-off nodes are grouped by the offline planner. The paper
    /// groups contiguous nodes to harvest the power bonus; `Scattered` is the
    /// ablation baseline.
    pub grouping: GroupingStrategy,
    /// Which rule decides between DVFS and switch-off when both could satisfy
    /// the cap (see `apc_power::tradeoff` for the discussion).
    pub decision_rule: DecisionRule,
    /// "Extreme actions": kill running jobs when a powercap window opens
    /// while the cluster consumes more than the budget. The paper's default
    /// (and ours) is to wait for jobs to finish instead.
    pub kill_on_cap_violation: bool,
    /// Application-aware DVFS degradation (the paper's future-work
    /// extension): when a job carries an application class, its runtime is
    /// stretched with that class's measured degradation (Linpack 2.14 …
    /// Gromacs 1.16) instead of the policy-wide common value.
    pub per_application_degradation: bool,
}

impl Default for PowercapConfig {
    fn default() -> Self {
        PowercapConfig {
            policy: PowercapPolicy::Mix,
            grouping: GroupingStrategy::Grouped,
            decision_rule: DecisionRule::PaperRho,
            kill_on_cap_violation: false,
            per_application_degradation: false,
        }
    }
}

impl PowercapConfig {
    /// Configuration for a given policy with every other knob at its default.
    pub fn for_policy(policy: PowercapPolicy) -> Self {
        PowercapConfig {
            policy,
            ..PowercapConfig::default()
        }
    }

    /// Enable the "extreme actions" kill behaviour (builder style).
    pub fn with_kill_on_violation(mut self) -> Self {
        self.kill_on_cap_violation = true;
        self
    }

    /// Select the switch-off grouping strategy (builder style).
    pub fn with_grouping(mut self, grouping: GroupingStrategy) -> Self {
        self.grouping = grouping;
        self
    }

    /// Select the DVFS-vs-shutdown decision rule (builder style).
    pub fn with_decision_rule(mut self, rule: DecisionRule) -> Self {
        self.decision_rule = rule;
        self
    }

    /// Enable application-aware DVFS degradation (builder style).
    pub fn with_per_application_degradation(mut self) -> Self {
        self.per_application_degradation = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = PowercapConfig::default();
        assert_eq!(c.policy, PowercapPolicy::Mix);
        assert_eq!(c.grouping, GroupingStrategy::Grouped);
        assert_eq!(c.decision_rule, DecisionRule::PaperRho);
        assert!(!c.kill_on_cap_violation);
        assert!(!c.per_application_degradation);
    }

    #[test]
    fn builders() {
        let c = PowercapConfig::for_policy(PowercapPolicy::Shut)
            .with_kill_on_violation()
            .with_grouping(GroupingStrategy::Scattered)
            .with_decision_rule(DecisionRule::WorkMaximizing)
            .with_per_application_degradation();
        assert_eq!(c.policy, PowercapPolicy::Shut);
        assert!(c.kill_on_cap_violation);
        assert_eq!(c.grouping, GroupingStrategy::Scattered);
        assert_eq!(c.decision_rule, DecisionRule::WorkMaximizing);
        assert!(c.per_application_degradation);
    }
}

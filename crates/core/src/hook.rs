//! The powercap scheduling hook: gluing Algorithm 1 and Algorithm 2 into the
//! RJMS controller.
//!
//! [`PowercapHook`] implements [`SchedulingHook`]:
//!
//! * `plan_powercap` runs the offline planner when a powercap reservation is
//!   submitted and returns the grouped switch-off node selection;
//! * `authorize_start` runs the online frequency selection for every job the
//!   controller is about to dispatch;
//! * `runtime_factor` applies the policy's DVFS degradation so the controller
//!   stretches runtimes and walltimes consistently;
//! * `on_cap_start` optionally implements the paper's "extreme actions":
//!   killing just enough running jobs to bring the cluster under a cap that
//!   is already violated when its window opens.

use apc_power::{DegradationModel, Frequency, FrequencyLadder, Watts};
use apc_rjms::cluster::{Cluster, Platform};
use apc_rjms::hook::{OfflinePlan, SchedulingHook, StartDecision};
use apc_rjms::job::{Job, JobId};
use apc_rjms::reservation::ReservationBook;
use apc_rjms::time::{SimTime, TimeWindow};

use crate::config::PowercapConfig;
use crate::offline::{OfflineDecision, OfflinePlanner};
use crate::online::{FrequencyChoice, OnlineScheduler};
use crate::policy::PowercapPolicy;

/// The powercap scheduling hook.
#[derive(Debug, Clone)]
pub struct PowercapHook {
    config: PowercapConfig,
    offline: OfflinePlanner,
    online: OnlineScheduler,
    degradation: DegradationModel,
    /// Offline decisions taken so far (for inspection by experiments/tests).
    decisions: Vec<OfflineDecision>,
}

impl PowercapHook {
    /// Create a hook for `config` on the given platform (the platform's
    /// frequency ladder fixes the degradation model).
    pub fn new(config: PowercapConfig, platform: &Platform) -> Self {
        PowercapHook {
            config,
            offline: OfflinePlanner::new(config),
            online: OnlineScheduler::new(config.policy, &platform.ladder),
            degradation: config.policy.degradation(&platform.ladder),
            decisions: Vec::new(),
        }
    }

    /// Convenience constructor for a policy with default options.
    pub fn for_policy(policy: PowercapPolicy, platform: &Platform) -> Self {
        PowercapHook::new(PowercapConfig::for_policy(policy), platform)
    }

    /// The configuration in use.
    pub fn config(&self) -> &PowercapConfig {
        &self.config
    }

    /// The policy in use.
    pub fn policy(&self) -> PowercapPolicy {
        self.config.policy
    }

    /// The offline decisions taken so far.
    pub fn decisions(&self) -> &[OfflineDecision] {
        &self.decisions
    }

    /// The degradation model applied to down-clocked jobs.
    pub fn degradation(&self) -> &DegradationModel {
        &self.degradation
    }

    fn ladder_of(cluster: &Cluster) -> &FrequencyLadder {
        &cluster.platform().ladder
    }
}

impl SchedulingHook for PowercapHook {
    fn authorize_start(
        &mut self,
        cluster: &Cluster,
        reservations: &ReservationBook,
        job: &Job,
        candidate_nodes: &[usize],
        now: SimTime,
    ) -> StartDecision {
        match self
            .online
            .choose(cluster, reservations, job, candidate_nodes, now)
        {
            FrequencyChoice::Start(frequency) => StartDecision::Start { frequency },
            FrequencyChoice::Postpone => StartDecision::Postpone,
        }
    }

    fn plan_powercap(
        &mut self,
        cluster: &Cluster,
        _reservations: &ReservationBook,
        window: TimeWindow,
        cap: Watts,
        _now: SimTime,
    ) -> OfflinePlan {
        let decision = self.offline.plan(cluster, window, cap);
        let nodes = decision.switch_off_nodes();
        self.decisions.push(decision);
        OfflinePlan {
            switch_off_nodes: nodes,
        }
    }

    fn runtime_factor(&self, frequency: Frequency) -> f64 {
        self.degradation.factor(frequency)
    }

    fn runtime_factor_for(&self, job: &Job, frequency: Frequency) -> f64 {
        if !self.config.per_application_degradation || !self.config.policy.allows_dvfs() {
            return self.runtime_factor(frequency);
        }
        match job.submission.app_class {
            Some(class) => {
                // The application's own measured sensitivity (Linpack 2.14 …
                // Gromacs 1.16), evaluated over the policy's permitted
                // frequency range so MIX keeps its 2.0 GHz floor semantics.
                let app = apc_power::BenchmarkApp::ALL[class as usize % 4];
                let model = apc_power::DegradationModel::new(
                    app.degmin(),
                    self.degradation
                        .fmin()
                        .max(apc_power::Frequency::from_ghz(1.2)),
                    self.degradation.fmax(),
                );
                model.factor(frequency)
            }
            None => self.runtime_factor(frequency),
        }
    }

    fn on_cap_start(
        &mut self,
        cluster: &Cluster,
        running_jobs: &[&Job],
        cap: Watts,
        _now: SimTime,
    ) -> Vec<JobId> {
        if !self.config.kill_on_cap_violation || !self.config.policy.enforces_cap() {
            return Vec::new();
        }
        let profile = &cluster.platform().profile;
        let mut excess = (cluster.current_power() - cap).max_zero();
        if excess == Watts::ZERO {
            return Vec::new();
        }
        // Kill the widest jobs first: each killed job releases
        // nodes × (busy − idle) watts immediately.
        let mut candidates: Vec<&&Job> = running_jobs.iter().collect();
        candidates.sort_by_key(|j| std::cmp::Reverse(j.nodes.len()));
        let mut kills = Vec::new();
        for job in candidates {
            if excess == Watts::ZERO {
                break;
            }
            let freq = job
                .frequency
                .unwrap_or_else(|| Self::ladder_of(cluster).max());
            let released =
                (profile.busy_watts(freq) - profile.idle_watts()) * job.nodes.len() as f64;
            kills.push(job.id);
            excess = (excess - released).max_zero();
        }
        kills
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_rjms::config::ControllerConfig;
    use apc_rjms::controller::Controller;
    use apc_rjms::job::JobSubmission;
    use apc_rjms::log::SimEventKind;
    use apc_rjms::time::HOUR;

    /// 180-node Curie-like platform used by the end-to-end tests.
    fn platform() -> Platform {
        Platform::curie_scaled(2)
    }

    fn controller_with(policy: PowercapPolicy) -> Controller {
        let p = platform();
        let hook = PowercapHook::for_policy(policy, &p);
        Controller::with_hook(
            p,
            ControllerConfig::default().with_power_samples(),
            Box::new(hook),
        )
    }

    /// Submit a saturating stream of jobs: `count` jobs of `cores` cores each,
    /// all at t=0, 30-minute walltimes, 20-minute actual runtimes.
    fn saturate(c: &mut Controller, count: usize, cores: u32) {
        for i in 0..count {
            c.submit(JobSubmission::new(i % 5, 0, cores, 1800, 1200));
        }
    }

    fn max_power_within(c: &Controller, window: (SimTime, SimTime)) -> Watts {
        c.cluster()
            .accountant()
            .samples()
            .iter()
            .filter(|s| s.time >= window.0 && s.time < window.1)
            .map(|s| s.power)
            .fold(Watts::ZERO, Watts::max)
    }

    #[test]
    fn runtime_factor_follows_policy() {
        let p = platform();
        let dvfs = PowercapHook::for_policy(PowercapPolicy::Dvfs, &p);
        assert!((dvfs.runtime_factor(Frequency::from_ghz(1.2)) - 1.63).abs() < 1e-9);
        assert_eq!(dvfs.runtime_factor(Frequency::from_ghz(2.7)), 1.0);
        let mix = PowercapHook::for_policy(PowercapPolicy::Mix, &p);
        assert!((mix.runtime_factor(Frequency::from_ghz(2.0)) - 1.29).abs() < 1e-9);
        let shut = PowercapHook::for_policy(PowercapPolicy::Shut, &p);
        assert_eq!(shut.runtime_factor(Frequency::from_ghz(2.7)), 1.0);
        assert_eq!(shut.policy(), PowercapPolicy::Shut);
        assert!(shut.config().grouping == apc_power::bonus::GroupingStrategy::Grouped);
    }

    #[test]
    fn shut_policy_enforces_cap_and_powers_nodes_off() {
        let mut c = controller_with(PowercapPolicy::Shut);
        let cap = c.cluster().platform().power_fraction(0.6);
        let window = apc_rjms::time::TimeWindow::new(HOUR, 2 * HOUR);
        let (_, off_id) = c.add_powercap_reservation(window, cap);
        assert!(off_id.is_some(), "SHUT plans a switch-off reservation");
        saturate(&mut c, 120, 160); // 120 jobs × 10 nodes ≫ 180 nodes
        c.set_horizon(4 * HOUR);
        let report = c.run();
        assert!(report.launched_jobs > 0);
        // Power stays within the cap during the window.
        let peak = max_power_within(&c, (window.start, window.end));
        assert!(
            peak.as_watts() <= cap.as_watts() + 1e-6,
            "peak {peak} exceeds cap {cap}"
        );
        // Nodes were powered off and back on.
        assert!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::NodesPoweredOff { .. }))
                > 0
        );
        assert!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::NodesPoweredOn { .. }))
                > 0
        );
        // SHUT never lowers frequencies.
        assert!(c
            .log()
            .job_starts()
            .all(|(_, _, _, f)| f == Frequency::from_ghz(2.7)));
    }

    #[test]
    fn dvfs_policy_lowers_frequencies_instead_of_switching_off() {
        let mut c = controller_with(PowercapPolicy::Dvfs);
        let cap = c.cluster().platform().power_fraction(0.4);
        let window = apc_rjms::time::TimeWindow::new(HOUR, 2 * HOUR);
        let (_, off_id) = c.add_powercap_reservation(window, cap);
        assert!(off_id.is_none(), "DVFS never reserves switch-offs");
        saturate(&mut c, 120, 160);
        c.set_horizon(4 * HOUR);
        c.run();
        let peak = max_power_within(&c, (window.start, window.end));
        assert!(peak.as_watts() <= cap.as_watts() + 1e-6);
        // Some jobs ran below the maximum frequency.
        let slowed = c
            .log()
            .job_starts()
            .filter(|(_, _, _, f)| *f < Frequency::from_ghz(2.7))
            .count();
        assert!(slowed > 0, "DVFS must down-clock at least some jobs");
        // No node was ever powered off.
        assert_eq!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::NodesPoweredOff { .. })),
            0
        );
    }

    #[test]
    fn mix_policy_uses_both_mechanisms_and_respects_floor() {
        let mut c = controller_with(PowercapPolicy::Mix);
        let cap = c.cluster().platform().power_fraction(0.4);
        let window = apc_rjms::time::TimeWindow::new(HOUR, 2 * HOUR);
        let (_, off_id) = c.add_powercap_reservation(window, cap);
        assert!(off_id.is_some(), "MIX below 75 % also reserves switch-offs");
        saturate(&mut c, 120, 160);
        c.set_horizon(4 * HOUR);
        c.run();
        let peak = max_power_within(&c, (window.start, window.end));
        assert!(peak.as_watts() <= cap.as_watts() + 1e-6);
        // All frequencies stay within the MIX band.
        for (_, _, _, f) in c.log().job_starts() {
            assert!(f >= Frequency::from_ghz(2.0));
        }
        assert!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::NodesPoweredOff { .. }))
                > 0
        );
    }

    /// The allocation-free claim must hold for the *capped DVFS* hot path
    /// too, where every scheduling pass probes the whole frequency ladder
    /// per pending job (the rjms-side twin of this test runs with a null
    /// hook and never exercises the power probe).
    #[test]
    fn capped_dvfs_steady_state_scheduling_stops_allocating() {
        let mut c = controller_with(PowercapPolicy::Dvfs);
        let cap = c.cluster().platform().power_fraction(0.5);
        c.add_powercap_reservation(apc_rjms::time::TimeWindow::new(0, 6 * HOUR), cap);
        // A saturating stream: the queue stays deep, so every pass walks the
        // backfill depth and probes the ladder against the cap.
        for i in 0..300 {
            c.submit(JobSubmission::new(
                i % 5,
                (i as apc_rjms::time::SimTime * 17) % (2 * HOUR),
                32 + (i as u32 % 7) * 80,
                3600,
                300 + (i as apc_rjms::time::SimTime % 11) * 120,
            ));
        }
        c.set_horizon(6 * HOUR);
        c.run();
        let passes = c.schedule_passes();
        let grew = c.scratch_growth_passes();
        assert!(passes > 100, "expected a long run, got {passes} passes");
        assert!(
            grew * 10 <= passes,
            "scratch buffers grew in {grew} of {passes} capped-DVFS passes — \
             the frequency probe is supposed to be allocation-free"
        );
    }

    #[test]
    fn none_policy_ignores_the_cap() {
        let mut c = controller_with(PowercapPolicy::None);
        let cap = c.cluster().platform().power_fraction(0.4);
        let window = apc_rjms::time::TimeWindow::new(HOUR, 2 * HOUR);
        c.add_powercap_reservation(window, cap);
        saturate(&mut c, 120, 160);
        c.set_horizon(4 * HOUR);
        c.run();
        let peak = max_power_within(&c, (window.start, window.end));
        assert!(
            peak.as_watts() > cap.as_watts(),
            "the None baseline does not enforce the cap"
        );
    }

    #[test]
    fn policies_trade_work_for_power() {
        // Same workload, same 40 % cap: every enforcing policy delivers less
        // work than the uncapped baseline, and the baseline consumes more
        // energy.
        let window = apc_rjms::time::TimeWindow::new(HOUR, 2 * HOUR);
        let run = |policy: PowercapPolicy| {
            let mut c = controller_with(policy);
            let cap = c.cluster().platform().power_fraction(0.4);
            c.add_powercap_reservation(window, cap);
            saturate(&mut c, 150, 320);
            c.set_horizon(3 * HOUR);
            c.run()
        };
        let none = run(PowercapPolicy::None);
        let shut = run(PowercapPolicy::Shut);
        let dvfs = run(PowercapPolicy::Dvfs);
        let mix = run(PowercapPolicy::Mix);
        for (name, r) in [("SHUT", &shut), ("DVFS", &dvfs), ("MIX", &mix)] {
            assert!(
                r.work_core_seconds <= none.work_core_seconds + 1e-6,
                "{name} cannot deliver more work than the uncapped run"
            );
            assert!(
                r.energy < none.energy,
                "{name} must consume less energy than the uncapped run"
            );
        }
    }

    #[test]
    fn extreme_actions_kill_jobs_when_cap_already_violated() {
        // The "powercap set for now while the cluster is above it" situation:
        // the online algorithm cannot prevent it (the jobs were started before
        // the cap existed), so the hook's cap-activation callback decides.
        let p = platform();
        let mut cluster = Cluster::new(platform());
        // Two running jobs: a wide one (60 nodes) and a narrow one (10 nodes).
        let mut wide = Job::new(0, JobSubmission::new(0, 0, 960, 6 * HOUR, 5 * HOUR));
        wide.state = apc_rjms::job::JobState::Running;
        wide.nodes = (0..60).collect();
        wide.frequency = Some(Frequency::from_ghz(2.7));
        let mut narrow = Job::new(1, JobSubmission::new(1, 0, 160, 6 * HOUR, 5 * HOUR));
        narrow.state = apc_rjms::job::JobState::Running;
        narrow.nodes = (60..70).collect();
        narrow.frequency = Some(Frequency::from_ghz(2.7));
        cluster.allocate_mask(0, &wide.nodes, Frequency::from_ghz(2.7), 0);
        cluster.allocate_mask(1, &narrow.nodes, Frequency::from_ghz(2.7), 0);

        // A cap just below the current consumption: killing the wide job is
        // enough, the narrow one survives.
        let cap = cluster.current_power() - Watts(5_000.0);
        let mut killing = PowercapHook::new(
            PowercapConfig::for_policy(PowercapPolicy::Shut).with_kill_on_violation(),
            &p,
        );
        let kills = killing.on_cap_start(&cluster, &[&wide, &narrow], cap, HOUR);
        assert_eq!(kills, vec![0], "the widest job is killed first");

        // A cap far below consumption kills both.
        let kills = killing.on_cap_start(&cluster, &[&wide, &narrow], Watts(1.0), HOUR);
        assert_eq!(kills.len(), 2);

        // Without the kill option (the paper's default) nothing is killed.
        let mut default_hook = PowercapHook::for_policy(PowercapPolicy::Shut, &p);
        assert!(default_hook
            .on_cap_start(&cluster, &[&wide, &narrow], cap, HOUR)
            .is_empty());

        // And when the cluster is already under the cap, nothing is killed
        // either, even with the option enabled.
        assert!(killing
            .on_cap_start(
                &cluster,
                &[&wide, &narrow],
                cluster.current_power() + Watts(1.0),
                HOUR
            )
            .is_empty());
    }

    #[test]
    fn controller_applies_extreme_actions_on_cap_activation() {
        // End-to-end variant: the job starts because its walltime ends before
        // the cap window opens, but it actually overruns its estimate is not
        // possible in the simulator — instead the cap is made active from t=0
        // with a later-submitted huge job killed at activation time. Here we
        // simply verify the wiring: with kill-on-violation enabled and a cap
        // that the running workload violates at activation, the controller
        // records killed jobs.
        let p = platform();
        let hook = PowercapHook::new(
            PowercapConfig::for_policy(PowercapPolicy::None).with_kill_on_violation(),
            &p,
        );
        let mut c = Controller::with_hook(p, ControllerConfig::default(), Box::new(hook));
        // Under the None policy the online check does not postpone anything,
        // so the machine fills up and violates the cap when it activates.
        c.submit(JobSubmission::new(0, 0, 2880, 6 * HOUR, 5 * HOUR));
        let cap = c.cluster().platform().power_fraction(0.3);
        c.add_powercap_reservation(apc_rjms::time::TimeWindow::new(HOUR, 2 * HOUR), cap);
        c.set_horizon(3 * HOUR);
        let report = c.run();
        // The None policy never enforces caps, so even with the kill flag the
        // hook refuses to kill — documenting that extreme actions only apply
        // to enforcing policies.
        assert_eq!(report.killed_jobs, 0);
        assert_eq!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::JobKilled { .. })),
            0
        );
    }

    #[test]
    fn per_application_degradation_uses_the_job_class() {
        let p = platform();
        let aware = PowercapHook::new(
            PowercapConfig::for_policy(PowercapPolicy::Dvfs).with_per_application_degradation(),
            &p,
        );
        let common = PowercapHook::for_policy(PowercapPolicy::Dvfs, &p);
        let f = Frequency::from_ghz(1.2);
        // Class 0 = Linpack-like (degmin 2.14), class 3 = Gromacs-like (1.16).
        let linpack_job = Job::new(0, JobSubmission::new(0, 0, 64, 3600, 600).with_app_class(0));
        let gromacs_job = Job::new(1, JobSubmission::new(0, 0, 64, 3600, 600).with_app_class(3));
        let untagged = Job::new(2, JobSubmission::new(0, 0, 64, 3600, 600));
        assert!((aware.runtime_factor_for(&linpack_job, f) - 2.14).abs() < 1e-9);
        assert!((aware.runtime_factor_for(&gromacs_job, f) - 1.16).abs() < 1e-9);
        // Untagged jobs fall back to the common value.
        assert!((aware.runtime_factor_for(&untagged, f) - 1.63).abs() < 1e-9);
        // Without the option every job gets the common value.
        assert!((common.runtime_factor_for(&linpack_job, f) - 1.63).abs() < 1e-9);
        // At the maximum frequency nothing is stretched.
        assert_eq!(
            aware.runtime_factor_for(&linpack_job, Frequency::from_ghz(2.7)),
            1.0
        );
        // SHUT never down-clocks, so the flag has no effect there.
        let shut = PowercapHook::new(
            PowercapConfig::for_policy(PowercapPolicy::Shut).with_per_application_degradation(),
            &p,
        );
        assert_eq!(shut.runtime_factor_for(&linpack_job, f), 1.0);
    }

    #[test]
    fn offline_decisions_are_recorded() {
        let p = platform();
        let mut hook = PowercapHook::for_policy(PowercapPolicy::Mix, &p);
        let cluster = Cluster::new(platform());
        let reservations = ReservationBook::new();
        let cap = cluster.platform().power_fraction(0.5);
        let plan = hook.plan_powercap(&cluster, &reservations, TimeWindow::new(0, HOUR), cap, 0);
        assert!(!plan.switch_off_nodes.is_empty());
        assert_eq!(hook.decisions().len(), 1);
        assert!(hook.decisions()[0].reserves_shutdown());
        assert!(hook.degradation().degmin() > 1.0);
    }
}

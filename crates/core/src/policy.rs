//! Powercap policies: SHUT, DVFS, MIX and the no-powercap baseline.
//!
//! "We defined three policies SHUT, DVFS and MIX. SHUT means that the system
//! will have the possibility to switch-off nodes and keep others in an idle
//! state if needed. DVFS policy means that the system will have the
//! possibility to oblige jobs to be executed at lower CPU frequencies.
//! Finally, MIX is a mixed DVFS and SHUT strategy, which considers both
//! possibilities of saving power." (paper Section IV-B.)
//!
//! MIX restricts DVFS to the 2.0–2.7 GHz band: measurements showed the
//! energy/performance optimum lies there, so "the minimum DVFS frequency is
//! 2.0 GHz instead of 1.2 GHz" and its degradation is 1.29 instead of 1.63.

use apc_power::{DegradationModel, Frequency, FrequencyLadder};
use serde::{Deserialize, Serialize};

/// The administrator-selectable powercap scheduling mode
/// (`SchedulerParameters` option in the SLURM implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PowercapPolicy {
    /// No power control at all: the paper's "100 %/None" baseline.
    None,
    /// Node switch-off only; jobs always run at the maximum frequency.
    Shut,
    /// DVFS only; nodes are never switched off (they idle at best).
    Dvfs,
    /// Both mechanisms, with DVFS restricted to the high 2.0–2.7 GHz range.
    #[default]
    Mix,
}

impl PowercapPolicy {
    /// All policies, in the order used by the paper's Fig. 8 rows.
    pub const ALL: [PowercapPolicy; 4] = [
        PowercapPolicy::None,
        PowercapPolicy::Shut,
        PowercapPolicy::Dvfs,
        PowercapPolicy::Mix,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PowercapPolicy::None => "None",
            PowercapPolicy::Shut => "SHUT",
            PowercapPolicy::Dvfs => "DVFS",
            PowercapPolicy::Mix => "MIX",
        }
    }

    /// May the scheduler switch nodes off under this policy?
    pub fn allows_shutdown(self) -> bool {
        matches!(self, PowercapPolicy::Shut | PowercapPolicy::Mix)
    }

    /// May the scheduler lower job frequencies under this policy?
    pub fn allows_dvfs(self) -> bool {
        matches!(self, PowercapPolicy::Dvfs | PowercapPolicy::Mix)
    }

    /// Does the policy enforce power caps at all?
    pub fn enforces_cap(self) -> bool {
        self != PowercapPolicy::None
    }

    /// The MIX frequency floor (2.0 GHz on Curie).
    pub fn mix_frequency_floor() -> Frequency {
        Frequency::from_ghz(2.0)
    }

    /// The frequency ladder the online algorithm may choose from under this
    /// policy. `None` and `Shut` may only use the maximum frequency; `Dvfs`
    /// uses the whole ladder; `Mix` uses the steps at or above 2.0 GHz.
    pub fn allowed_ladder(self, full: &FrequencyLadder) -> FrequencyLadder {
        match self {
            PowercapPolicy::None | PowercapPolicy::Shut => FrequencyLadder::new(vec![full.max()]),
            PowercapPolicy::Dvfs => full.clone(),
            PowercapPolicy::Mix => full
                .clamp_min(Self::mix_frequency_floor())
                .unwrap_or_else(|| FrequencyLadder::new(vec![full.max()])),
        }
    }

    /// The runtime-degradation model associated with this policy's frequency
    /// range: 1.63 down to 1.2 GHz for DVFS, 1.29 down to 2.0 GHz for MIX,
    /// no degradation for the others (jobs always run at fmax).
    pub fn degradation(self, full: &FrequencyLadder) -> DegradationModel {
        match self {
            PowercapPolicy::None | PowercapPolicy::Shut => {
                DegradationModel::new(1.0, full.max(), full.max())
            }
            PowercapPolicy::Dvfs => DegradationModel::paper_default(),
            PowercapPolicy::Mix => DegradationModel::paper_mix(),
        }
    }
}

impl std::fmt::Display for PowercapPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PowercapPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "off" => Ok(PowercapPolicy::None),
            "shut" | "shutdown" => Ok(PowercapPolicy::Shut),
            "dvfs" => Ok(PowercapPolicy::Dvfs),
            "mix" | "mixed" => Ok(PowercapPolicy::Mix),
            other => Err(format!("unknown powercap policy: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_permissions() {
        assert!(!PowercapPolicy::None.allows_shutdown());
        assert!(!PowercapPolicy::None.allows_dvfs());
        assert!(!PowercapPolicy::None.enforces_cap());
        assert!(PowercapPolicy::Shut.allows_shutdown());
        assert!(!PowercapPolicy::Shut.allows_dvfs());
        assert!(!PowercapPolicy::Dvfs.allows_shutdown());
        assert!(PowercapPolicy::Dvfs.allows_dvfs());
        assert!(PowercapPolicy::Mix.allows_shutdown());
        assert!(PowercapPolicy::Mix.allows_dvfs());
        assert!(PowercapPolicy::Mix.enforces_cap());
    }

    #[test]
    fn allowed_ladders() {
        let full = FrequencyLadder::curie();
        assert_eq!(PowercapPolicy::None.allowed_ladder(&full).len(), 1);
        assert_eq!(PowercapPolicy::Shut.allowed_ladder(&full).len(), 1);
        assert_eq!(
            PowercapPolicy::Shut.allowed_ladder(&full).max(),
            Frequency::from_ghz(2.7)
        );
        assert_eq!(PowercapPolicy::Dvfs.allowed_ladder(&full).len(), 8);
        let mix = PowercapPolicy::Mix.allowed_ladder(&full);
        assert_eq!(mix.len(), 4);
        assert_eq!(mix.min(), Frequency::from_ghz(2.0));
    }

    #[test]
    fn degradation_models_match_the_paper() {
        let full = FrequencyLadder::curie();
        assert_eq!(PowercapPolicy::Shut.degradation(&full).degmin(), 1.0);
        assert_eq!(PowercapPolicy::Dvfs.degradation(&full).degmin(), 1.63);
        assert_eq!(PowercapPolicy::Mix.degradation(&full).degmin(), 1.29);
        assert_eq!(
            PowercapPolicy::Mix.degradation(&full).fmin(),
            Frequency::from_ghz(2.0)
        );
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(
            "shut".parse::<PowercapPolicy>().unwrap(),
            PowercapPolicy::Shut
        );
        assert_eq!(
            "DVFS".parse::<PowercapPolicy>().unwrap(),
            PowercapPolicy::Dvfs
        );
        assert_eq!(
            "Mix".parse::<PowercapPolicy>().unwrap(),
            PowercapPolicy::Mix
        );
        assert_eq!(
            "none".parse::<PowercapPolicy>().unwrap(),
            PowercapPolicy::None
        );
        assert!("frobnicate".parse::<PowercapPolicy>().is_err());
        assert_eq!(PowercapPolicy::Mix.to_string(), "MIX");
        assert_eq!(PowercapPolicy::ALL.len(), 4);
    }

    #[test]
    fn mix_floor_constant() {
        assert_eq!(
            PowercapPolicy::mix_frequency_floor(),
            Frequency::from_ghz(2.0)
        );
    }
}

//! Offline phase: Algorithm 1 — planning switch-off reservations.
//!
//! "The offline part of the scheduling algorithm is triggered only in the
//! case of powercap reservations and has the ability to reserve the shutdown
//! of nodes. In our context, the goal is to regroup the shutdown of
//! contiguous nodes in order to benefit of power bonus possibilities."
//! (paper Section V.)
//!
//! The planner reproduces Algorithm 1:
//!
//! ```text
//! if P < N·Pmin:
//!     Ndvfs = (P − N·Poff)/(Pmin − Poff);  Noff = N − Ndvfs
//!     make a switch-off reservation of Noff nodes
//! else:
//!     ρ = 1 − 1/degmin − (Pmax − Pdvfs)/(Pmax − Poff)
//!     if ρ ≤ 0:
//!         Noff = (P − N·Pmax)/(Poff − Pmax)
//!         make a switch-off reservation of Noff nodes
//! ```
//!
//! gated by the selected policy (SHUT forces the switch-off branch, DVFS
//! never reserves switch-offs, MIX follows the algorithm with the 2.0 GHz
//! frequency floor), and then turns the node *count* into a concrete node
//! *selection* through the grouped-shutdown planner so the power bonus is
//! maximised.

use std::collections::BTreeSet;

use apc_power::{GroupedShutdownPlanner, Mechanism, PowercapTradeoff, ShutdownPlan, Watts};
use apc_rjms::cluster::Cluster;
use apc_rjms::time::TimeWindow;

use crate::config::PowercapConfig;
use crate::policy::PowercapPolicy;

/// The outcome of the offline phase for one powercap reservation.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineDecision {
    /// The mechanism selected by the Section III model (before policy
    /// gating).
    pub model_mechanism: Mechanism,
    /// Number of nodes Algorithm 1 wants switched off (0 when the policy or
    /// the model rules shutdown out).
    pub n_off_target: usize,
    /// Number of nodes expected to run at the lowest permitted frequency
    /// (informational; the online phase makes the actual per-job choice).
    pub n_dvfs_target: usize,
    /// Power reduction the switch-off reservation must deliver.
    pub shutdown_reduction: Watts,
    /// The concrete grouped node selection (empty when no shutdown planned).
    pub plan: Option<ShutdownPlan>,
}

impl OfflineDecision {
    /// The nodes to place under a switch-off reservation.
    pub fn switch_off_nodes(&self) -> Vec<usize> {
        self.plan
            .as_ref()
            .map(|p| p.nodes.clone())
            .unwrap_or_default()
    }

    /// Did the offline phase decide to switch nodes off?
    pub fn reserves_shutdown(&self) -> bool {
        self.plan.as_ref().is_some_and(|p| !p.nodes.is_empty())
    }
}

/// The offline planner (Algorithm 1 + grouped node selection).
#[derive(Debug, Clone)]
pub struct OfflinePlanner {
    config: PowercapConfig,
}

impl OfflinePlanner {
    /// Create a planner for the given configuration.
    pub fn new(config: PowercapConfig) -> Self {
        OfflinePlanner { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PowercapConfig {
        &self.config
    }

    /// Plan the switch-off reservation for a powercap of `cap` watts over
    /// `window` on the given cluster.
    pub fn plan(&self, cluster: &Cluster, window: TimeWindow, cap: Watts) -> OfflineDecision {
        let _ = window; // The plan covers the whole window; kept for future refinement.
        let platform = cluster.platform();
        let policy = self.config.policy;
        let n = platform.total_nodes();
        let ladder = &platform.ladder;
        let degradation = policy.degradation(ladder);
        let allowed = policy.allowed_ladder(ladder);

        // The Section III model works on node power only; the share of the
        // budget consumed by always-on equipment (chassis/rack overhead when
        // any of their nodes is powered) is subtracted up front. The power
        // bonus recovered by grouped switch-offs comes back through the
        // planner's accounting.
        let node_cap = (cap - platform.topology.total_overhead()).max_zero();

        let model = PowercapTradeoff::new(
            n,
            platform.profile.max_watts(),
            platform.profile.busy_watts(allowed.min()),
            platform.profile.off_watts(),
            platform.profile.idle_watts(),
            degradation.degmin().max(1.0),
        )
        .with_rule(self.config.decision_rule);
        let decision = model.decide(node_cap);

        let (n_off, n_dvfs) = match policy {
            PowercapPolicy::None => (0usize, 0usize),
            PowercapPolicy::Dvfs => (0, decision.n_dvfs_nodes()),
            PowercapPolicy::Shut => {
                // Only switch-off is available: enough nodes must go down for
                // the remainder to run at full speed within the budget.
                (model.n_off_only(node_cap).ceil() as usize, 0)
            }
            PowercapPolicy::Mix => match decision.mechanism {
                Mechanism::ShutdownOnly | Mechanism::Either => (decision.n_off_nodes(), 0),
                Mechanism::Both => (decision.n_off_nodes(), decision.n_dvfs_nodes()),
                Mechanism::DvfsOnly | Mechanism::Uncapped => (0, decision.n_dvfs_nodes()),
                Mechanism::Infeasible => (n, 0),
            },
        };

        let shutdown_reduction = platform.profile.shutdown_saving() * n_off as f64;
        let plan = if n_off > 0 && policy.allows_shutdown() {
            let planner = GroupedShutdownPlanner::new(&platform.topology, &platform.profile)
                .with_strategy(self.config.grouping);
            let candidates: BTreeSet<usize> = (0..n).collect();
            Some(planner.plan(shutdown_reduction, &candidates))
        } else {
            None
        };

        OfflineDecision {
            model_mechanism: decision.mechanism,
            n_off_target: n_off,
            n_dvfs_target: n_dvfs,
            shutdown_reduction,
            plan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_rjms::cluster::Platform;

    fn cluster() -> Cluster {
        Cluster::new(Platform::curie_scaled(4)) // 360 nodes
    }

    fn cap_fraction(cluster: &Cluster, f: f64) -> Watts {
        cluster.platform().max_power() * f
    }

    fn plan_for(policy: PowercapPolicy, fraction: f64) -> (OfflineDecision, Cluster) {
        let c = cluster();
        let planner = OfflinePlanner::new(PowercapConfig::for_policy(policy));
        let cap = cap_fraction(&c, fraction);
        let d = planner.plan(&c, TimeWindow::new(3600, 7200), cap);
        (d, c)
    }

    #[test]
    fn none_policy_never_reserves() {
        let (d, _) = plan_for(PowercapPolicy::None, 0.4);
        assert!(!d.reserves_shutdown());
        assert_eq!(d.n_off_target, 0);
        assert!(d.switch_off_nodes().is_empty());
    }

    #[test]
    fn dvfs_policy_never_reserves_shutdown() {
        let (d, _) = plan_for(PowercapPolicy::Dvfs, 0.4);
        assert!(!d.reserves_shutdown());
        assert_eq!(d.n_off_target, 0);
        assert!(
            d.n_dvfs_target > 0,
            "DVFS expects down-clocked nodes instead"
        );
    }

    #[test]
    fn shut_policy_reserves_enough_nodes() {
        let (d, c) = plan_for(PowercapPolicy::Shut, 0.6);
        assert!(d.reserves_shutdown());
        let plan = d.plan.as_ref().unwrap();
        assert!(plan.satisfied());
        // Switching the planned nodes off while the rest runs flat-out keeps
        // the node-level power within the node budget.
        let platform = c.platform();
        let node_cap = cap_fraction(&c, 0.6) - platform.topology.total_overhead();
        let remaining = platform.total_nodes() - plan.node_count();
        let remaining_power = platform.profile.max_watts() * remaining as f64
            + platform.profile.off_watts() * plan.node_count() as f64
            - plan.bonus(&platform.profile);
        assert!(
            remaining_power.as_watts() <= node_cap.as_watts() + 1e-6,
            "{remaining_power} vs {node_cap}"
        );
    }

    #[test]
    fn shut_reservation_grows_as_cap_shrinks() {
        let mut last = 0;
        for fraction in [0.8, 0.6, 0.4] {
            let (d, _) = plan_for(PowercapPolicy::Shut, fraction);
            assert!(
                d.n_off_target >= last,
                "lower caps must switch off at least as many nodes"
            );
            last = d.n_off_target;
        }
    }

    #[test]
    fn mix_uses_both_mechanisms_below_75_percent() {
        // MIX restricts DVFS to >= 2.0 GHz, so below ~75 % both mechanisms are
        // required (paper Section VI-B).
        let (d, _) = plan_for(PowercapPolicy::Mix, 0.6);
        assert_eq!(d.model_mechanism, Mechanism::Both);
        assert!(d.reserves_shutdown());
        assert!(d.n_dvfs_target > 0);
        // At 80 % the published ρ rule (negative for the MIX degradation of
        // 1.29) selects switch-off only.
        let (d80, _) = plan_for(PowercapPolicy::Mix, 0.80);
        assert_eq!(d80.model_mechanism, Mechanism::ShutdownOnly);
        assert!(d80.reserves_shutdown());
        assert_eq!(d80.n_dvfs_target, 0);
    }

    #[test]
    fn grouped_plan_harvests_bonus() {
        let (d, c) = plan_for(PowercapPolicy::Shut, 0.5);
        let plan = d.plan.unwrap();
        assert!(plan.bonus(&c.platform().profile).as_watts() > 0.0);
        // Scattered ablation needs at least as many nodes.
        let planner = OfflinePlanner::new(
            PowercapConfig::for_policy(PowercapPolicy::Shut)
                .with_grouping(apc_power::bonus::GroupingStrategy::Scattered),
        );
        let scattered = planner
            .plan(&c, TimeWindow::new(3600, 7200), cap_fraction(&c, 0.5))
            .plan
            .unwrap();
        assert!(scattered.node_count() >= plan.node_count());
    }

    #[test]
    fn uncapped_reservation_reserves_nothing() {
        let c = cluster();
        let planner = OfflinePlanner::new(PowercapConfig::for_policy(PowercapPolicy::Mix));
        let cap = c.platform().max_power() * 1.2;
        let d = planner.plan(&c, TimeWindow::new(0, 10), cap);
        assert_eq!(d.model_mechanism, Mechanism::Uncapped);
        assert!(!d.reserves_shutdown());
    }

    #[test]
    fn infeasible_cap_switches_everything_off() {
        let c = cluster();
        let planner = OfflinePlanner::new(PowercapConfig::for_policy(PowercapPolicy::Mix));
        let d = planner.plan(&c, TimeWindow::new(0, 10), Watts(1.0));
        assert_eq!(d.model_mechanism, Mechanism::Infeasible);
        assert_eq!(d.n_off_target, c.platform().total_nodes());
    }

    #[test]
    fn config_accessor() {
        let planner = OfflinePlanner::new(PowercapConfig::for_policy(PowercapPolicy::Shut));
        assert_eq!(planner.config().policy, PowercapPolicy::Shut);
    }
}

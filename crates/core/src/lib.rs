//! # apc-core — adaptive powercap scheduling (the paper's contribution)
//!
//! This crate implements the scheduling strategy of *"Adaptive Resource and
//! Job Management for Limited Power Consumption"*: a power-cap mechanism
//! built into the RJMS, combining an **offline** planning phase and an
//! **online** enforcement phase.
//!
//! * [`policy`] — the three administrator-selectable powercap policies of the
//!   paper, **SHUT**, **DVFS** and **MIX** (plus the no-powercap baseline):
//!   which power-reduction mechanisms the scheduler may use and which part of
//!   the frequency ladder is permitted.
//! * [`offline`] — Algorithm 1: when a powercap reservation is submitted,
//!   decide how many nodes must be switched off (using the Section III
//!   trade-off model) and *which* nodes, grouping them by chassis/rack to
//!   harvest the power bonus.
//! * [`online`] — Algorithm 2: when a job is about to start, pick the highest
//!   CPU frequency that keeps the cluster's power — computed from the known
//!   state of every node — under every power cap overlapping the job's
//!   execution window; keep the job pending if even the lowest permitted
//!   frequency does not fit.
//! * [`hook`] — the [`PowercapHook`](hook::PowercapHook) gluing both phases
//!   into the RJMS controller through the
//!   [`SchedulingHook`](apc_rjms::SchedulingHook) interface (the grey boxes
//!   of the paper's Fig. 1), including the optional "extreme actions"
//!   (killing jobs when the cap is violated at activation time).
//! * [`config`] — the `SchedulerParameters`-style configuration bundle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod hook;
pub mod offline;
pub mod online;
pub mod policy;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::config::PowercapConfig;
    pub use crate::hook::PowercapHook;
    pub use crate::offline::{OfflineDecision, OfflinePlanner};
    pub use crate::online::{FrequencyChoice, OnlineScheduler};
    pub use crate::policy::PowercapPolicy;
}

pub use prelude::*;

//! Online phase: Algorithm 2 — per-job frequency selection under the cap.
//!
//! "When evaluating the impact of the start of a pending job, the controller
//! will temporarily alter the states of the candidate nodes, compute the
//! resultant consumption and compare it to the defined and planned powercap.
//! In case of DVFS or MIX scheduling mode, the evaluated job is controlled
//! for all different CPU-Frequencies and it stays pending only if the
//! estimated power consumption with the lower permitted CPU Frequency is
//! larger than the power envelope it may use." (paper Section V.)
//!
//! The frequency probe walks the policy's allowed ladder from the fastest
//! step downwards and returns the first step whose hypothetical cluster power
//! fits under every powercap reservation overlapping the job's execution
//! window (Algorithm 2).

use apc_power::{DegradationModel, Frequency, FrequencyLadder, Watts};
use apc_rjms::cluster::Cluster;
use apc_rjms::job::Job;
use apc_rjms::reservation::ReservationBook;
use apc_rjms::time::SimTime;

use crate::policy::PowercapPolicy;

/// The outcome of the online frequency selection for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrequencyChoice {
    /// Start the job now at the given frequency.
    Start(Frequency),
    /// No permitted frequency keeps the cluster under the power budget:
    /// keep the job pending.
    Postpone,
}

impl FrequencyChoice {
    /// The chosen frequency, if the job may start.
    pub fn frequency(self) -> Option<Frequency> {
        match self {
            FrequencyChoice::Start(f) => Some(f),
            FrequencyChoice::Postpone => None,
        }
    }
}

/// The online scheduler (Algorithm 2).
///
/// The policy's allowed ladder and degradation model are resolved once at
/// construction (they only depend on the platform's full ladder), so the
/// per-job `choose` does not rebuild them per call.
#[derive(Debug, Clone)]
pub struct OnlineScheduler {
    policy: PowercapPolicy,
    /// The platform's fastest frequency (uncapped jobs run at this).
    fmax: Frequency,
    /// The steps the policy may choose from, resolved from the platform
    /// ladder at construction.
    allowed: FrequencyLadder,
    /// The policy's runtime-degradation model over that ladder.
    degradation: DegradationModel,
}

impl OnlineScheduler {
    /// Create an online scheduler for the given policy on a platform with
    /// the given frequency ladder (the ladder must be the one of the cluster
    /// later passed to [`choose`](Self::choose)).
    pub fn new(policy: PowercapPolicy, ladder: &FrequencyLadder) -> Self {
        OnlineScheduler {
            policy,
            fmax: ladder.max(),
            allowed: policy.allowed_ladder(ladder),
            degradation: policy.degradation(ladder),
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> PowercapPolicy {
        self.policy
    }

    /// The tightest cap constraining a job that would run on the cluster
    /// during `[now, now + duration)`, if any. The window is at least one
    /// second wide and saturates at the end of time instead of overflowing
    /// (a zero-duration probe at `SimTime::MAX` must not panic).
    pub fn applicable_cap(
        &self,
        reservations: &ReservationBook,
        now: SimTime,
        duration: SimTime,
    ) -> Option<Watts> {
        reservations.cap_within(now, now.saturating_add(duration.max(1)))
    }

    /// Choose the execution frequency for `job` on `candidate_nodes` at
    /// `now`, or decide to keep it pending.
    ///
    /// The candidate set's idle baseline and shared-equipment switching
    /// terms are frequency-independent, so they are probed once
    /// ([`Cluster::busy_probe`]) and each ladder step costs O(1) — the walk
    /// is O(steps) instead of O(steps × |nodes|).
    pub fn choose(
        &self,
        cluster: &Cluster,
        reservations: &ReservationBook,
        job: &Job,
        candidate_nodes: &[usize],
        now: SimTime,
    ) -> FrequencyChoice {
        debug_assert_eq!(
            self.fmax,
            cluster.platform().ladder.max(),
            "scheduler built for a different platform ladder"
        );
        if !self.policy.enforces_cap() {
            return FrequencyChoice::Start(self.fmax);
        }
        let profile = &cluster.platform().profile;
        let current = cluster.current_power();
        let probe = cluster.busy_probe(candidate_nodes);

        for frequency in self.allowed.steps_descending() {
            // The job's walltime is stretched with the frequency, so the
            // window whose caps must be honoured depends on the probe.
            let stretched_walltime = self
                .degradation
                .stretch_runtime(job.submission.walltime, frequency);
            let Some(cap) = self.applicable_cap(reservations, now, stretched_walltime) else {
                // No cap overlaps the job's execution at all: run flat out.
                return FrequencyChoice::Start(self.fmax);
            };
            let hypothetical = current + probe.delta(profile.busy_watts(frequency));
            if hypothetical <= cap {
                return FrequencyChoice::Start(frequency);
            }
        }
        FrequencyChoice::Postpone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_power::Watts;
    use apc_rjms::cluster::Platform;
    use apc_rjms::job::JobSubmission;
    use apc_rjms::reservation::ReservationKind;
    use apc_rjms::time::TimeWindow;

    fn cluster() -> Cluster {
        Cluster::new(Platform::curie_scaled(1)) // 90 nodes
    }

    /// Scheduler over the Curie ladder the test clusters use.
    fn scheduler(policy: PowercapPolicy) -> OnlineScheduler {
        OnlineScheduler::new(policy, &apc_power::FrequencyLadder::curie())
    }

    fn job(cores: u32, walltime: SimTime) -> Job {
        Job::new(0, JobSubmission::new(0, 0, cores, walltime, walltime / 2))
    }

    fn book_with_cap(window: TimeWindow, cap: Watts) -> ReservationBook {
        let mut book = ReservationBook::new();
        book.add(window, ReservationKind::PowerCap { cap });
        book
    }

    #[test]
    fn no_cap_means_max_frequency() {
        let c = cluster();
        let book = ReservationBook::new();
        let sched = scheduler(PowercapPolicy::Dvfs);
        let choice = sched.choose(&c, &book, &job(160, 3600), &(0..10).collect::<Vec<_>>(), 0);
        assert_eq!(choice, FrequencyChoice::Start(Frequency::from_ghz(2.7)));
        assert_eq!(choice.frequency(), Some(Frequency::from_ghz(2.7)));
    }

    #[test]
    fn cap_outside_job_window_is_ignored() {
        let c = cluster();
        // Cap far in the future, job finishes well before.
        let book = book_with_cap(TimeWindow::new(100_000, 200_000), Watts(1.0));
        let sched = scheduler(PowercapPolicy::Dvfs);
        let choice = sched.choose(&c, &book, &job(160, 3600), &(0..10).collect::<Vec<_>>(), 0);
        assert_eq!(choice, FrequencyChoice::Start(Frequency::from_ghz(2.7)));
    }

    #[test]
    fn tight_cap_lowers_the_frequency() {
        let c = cluster();
        let platform = c.platform().clone();
        let nodes: Vec<usize> = (0..60).collect();
        // Budget: idle cluster + 60 nodes at 2.0 GHz (not enough for 2.7 GHz).
        let idle_power = c.current_power();
        let cap = idle_power + Watts(60.0 * (269.0 - 117.0) + 1.0);
        let book = book_with_cap(TimeWindow::new(0, 100_000), cap);
        let sched = scheduler(PowercapPolicy::Dvfs);
        let choice = sched.choose(&c, &book, &job(960, 3600), &nodes, 0);
        assert_eq!(choice, FrequencyChoice::Start(Frequency::from_ghz(2.0)));
        let _ = platform;
    }

    #[test]
    fn impossible_cap_postpones() {
        let c = cluster();
        let book = book_with_cap(TimeWindow::new(0, 100_000), Watts(1.0));
        for policy in [
            PowercapPolicy::Shut,
            PowercapPolicy::Dvfs,
            PowercapPolicy::Mix,
        ] {
            let sched = scheduler(policy);
            let choice = sched.choose(&c, &book, &job(160, 3600), &(0..10).collect::<Vec<_>>(), 0);
            assert_eq!(choice, FrequencyChoice::Postpone, "{policy}");
            assert_eq!(choice.frequency(), None);
        }
    }

    #[test]
    fn none_policy_ignores_caps() {
        let c = cluster();
        let book = book_with_cap(TimeWindow::new(0, 100_000), Watts(1.0));
        let sched = scheduler(PowercapPolicy::None);
        let choice = sched.choose(&c, &book, &job(160, 3600), &(0..10).collect::<Vec<_>>(), 0);
        assert_eq!(choice, FrequencyChoice::Start(Frequency::from_ghz(2.7)));
    }

    #[test]
    fn shut_policy_never_downclocks() {
        let c = cluster();
        let idle_power = c.current_power();
        // Enough for 10 nodes at 2.0 GHz but not at 2.7 GHz.
        let cap = idle_power + Watts(10.0 * (269.0 - 117.0) + 1.0);
        let book = book_with_cap(TimeWindow::new(0, 100_000), cap);
        let nodes: Vec<usize> = (0..10).collect();
        // SHUT: cannot lower the frequency, so the job stays pending.
        let shut = scheduler(PowercapPolicy::Shut);
        assert_eq!(
            shut.choose(&c, &book, &job(160, 3600), &nodes, 0),
            FrequencyChoice::Postpone
        );
        // DVFS: the job runs at 2.0 GHz instead.
        let dvfs = scheduler(PowercapPolicy::Dvfs);
        assert_eq!(
            dvfs.choose(&c, &book, &job(160, 3600), &nodes, 0),
            FrequencyChoice::Start(Frequency::from_ghz(2.0))
        );
    }

    #[test]
    fn mix_policy_respects_the_frequency_floor() {
        let c = cluster();
        let idle_power = c.current_power();
        // Enough headroom for 10 nodes at 1.2 GHz but not at 2.0 GHz.
        let cap = idle_power + Watts(10.0 * (193.0 - 117.0) + 1.0);
        let book = book_with_cap(TimeWindow::new(0, 100_000), cap);
        let nodes: Vec<usize> = (0..10).collect();
        // DVFS can drop to 1.2 GHz and start.
        let dvfs = scheduler(PowercapPolicy::Dvfs);
        assert_eq!(
            dvfs.choose(&c, &book, &job(160, 3600), &nodes, 0),
            FrequencyChoice::Start(Frequency::from_ghz(1.2))
        );
        // MIX may not go below 2.0 GHz, so it must postpone.
        let mix = scheduler(PowercapPolicy::Mix);
        assert_eq!(
            mix.choose(&c, &book, &job(160, 3600), &nodes, 0),
            FrequencyChoice::Postpone
        );
    }

    #[test]
    fn future_cap_constrains_long_jobs_but_not_short_ones() {
        let c = cluster();
        let idle_power = c.current_power();
        let cap = idle_power + Watts(30.0 * (269.0 - 117.0));
        // The cap window opens at t = 4000.
        let book = book_with_cap(TimeWindow::new(4000, 8000), cap);
        let sched = scheduler(PowercapPolicy::Dvfs);
        let nodes: Vec<usize> = (0..60).collect();
        // A short job (walltime 1000 s) ends before the cap: full speed.
        assert_eq!(
            sched.choose(&c, &book, &job(960, 1000), &nodes, 0),
            FrequencyChoice::Start(Frequency::from_ghz(2.7))
        );
        // A long job overlaps the cap window and must slow down.
        let choice = sched.choose(&c, &book, &job(960, 50_000), &nodes, 0);
        match choice {
            FrequencyChoice::Start(f) => assert!(f < Frequency::from_ghz(2.7)),
            FrequencyChoice::Postpone => panic!("a frequency below 2.7 GHz fits this cap"),
        }
    }

    #[test]
    fn applicable_cap_picks_the_tightest() {
        let mut book = ReservationBook::new();
        book.add(
            TimeWindow::new(0, 1000),
            ReservationKind::PowerCap { cap: Watts(500.0) },
        );
        book.add(
            TimeWindow::new(500, 1500),
            ReservationKind::PowerCap { cap: Watts(300.0) },
        );
        let sched = scheduler(PowercapPolicy::Mix);
        assert_eq!(sched.applicable_cap(&book, 0, 100), Some(Watts(500.0)));
        assert_eq!(sched.applicable_cap(&book, 0, 600), Some(Watts(300.0)));
        assert_eq!(sched.applicable_cap(&book, 2000, 100), None);
        assert_eq!(sched.policy(), PowercapPolicy::Mix);
    }

    /// Regression: probing at the end of time must saturate, not overflow.
    /// The seed computed `saturating_add(duration).max(now + 1)`, whose
    /// `now + 1` panics in debug builds when `now == SimTime::MAX`.
    #[test]
    fn applicable_cap_saturates_at_the_end_of_time() {
        let book = book_with_cap(TimeWindow::new(0, SimTime::MAX), Watts(300.0));
        let sched = scheduler(PowercapPolicy::Mix);
        // At the end of time the probe window is empty — no cap applies and,
        // crucially, nothing overflows (the seed panicked here).
        assert_eq!(sched.applicable_cap(&book, SimTime::MAX, 0), None);
        assert_eq!(sched.applicable_cap(&book, SimTime::MAX, 3600), None);
        // One second before the end, the saturated window still overlaps.
        assert_eq!(
            sched.applicable_cap(&book, SimTime::MAX - 1, SimTime::MAX),
            Some(Watts(300.0))
        );
        // Ordinary probes still see a window at least one second wide.
        assert_eq!(sched.applicable_cap(&book, 10, 0), Some(Watts(300.0)));
    }
}

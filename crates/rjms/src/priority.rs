//! Multifactor job priority and fair-share accounting.
//!
//! SLURM's multifactor priority plugin combines several normalised factors
//! with configurable weights; the paper's Curie configuration uses job age,
//! job size and fair-share. The same structure is reproduced here:
//!
//! ```text
//! priority = w_age · age_factor + w_size · size_factor + w_fairshare · fs_factor
//! ```
//!
//! * `age_factor` grows linearly with queue wait time and saturates at a
//!   configurable maximum age;
//! * `size_factor` is the fraction of the machine requested (large jobs get a
//!   boost, as on Curie);
//! * `fs_factor` is `2^(−usage/shares)`, SLURM's classic fair-share decay of
//!   recent usage.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::job::Job;
use crate::time::SimTime;

/// Weights of the multifactor priority.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityWeights {
    /// Weight of the age factor.
    pub age: f64,
    /// Weight of the size factor.
    pub size: f64,
    /// Weight of the fair-share factor.
    pub fairshare: f64,
    /// Wait time (seconds) at which the age factor saturates to 1.
    pub max_age: SimTime,
}

impl Default for PriorityWeights {
    fn default() -> Self {
        // Curie-like defaults: age dominates (FCFS-ish), size breaks ties in
        // favour of large jobs, fair-share rebalances heavy users.
        PriorityWeights {
            age: 1000.0,
            size: 200.0,
            fairshare: 500.0,
            max_age: 7 * 24 * 3600,
        }
    }
}

/// Per-user fair-share accounting with exponential decay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairShareTracker {
    /// Decayed core-seconds consumed per user.
    usage: HashMap<usize, f64>,
    /// Normalisation constant: the usage at which the fair-share factor
    /// halves.
    half_usage: f64,
    /// Exponential decay half-life of recorded usage, in seconds.
    half_life: SimTime,
    /// Last time the decay was applied.
    last_decay: SimTime,
}

impl Default for FairShareTracker {
    fn default() -> Self {
        FairShareTracker::new(1.0e7, 7 * 24 * 3600)
    }
}

impl FairShareTracker {
    /// Create a tracker. `half_usage` is the decayed core-seconds at which a
    /// user's factor drops to 0.5; `half_life` is the decay half-life.
    pub fn new(half_usage: f64, half_life: SimTime) -> Self {
        assert!(half_usage > 0.0);
        assert!(half_life > 0);
        FairShareTracker {
            usage: HashMap::new(),
            half_usage,
            half_life,
            last_decay: 0,
        }
    }

    /// Record `core_seconds` of usage for `user` at time `now`.
    pub fn record_usage(&mut self, user: usize, core_seconds: f64, now: SimTime) {
        self.decay_to(now);
        *self.usage.entry(user).or_insert(0.0) += core_seconds;
    }

    /// Pre-load historical usage (phase ii of the replay methodology: the
    /// interval's initial fair-share state).
    pub fn seed_usage(&mut self, user: usize, core_seconds: f64) {
        *self.usage.entry(user).or_insert(0.0) += core_seconds;
    }

    /// The decayed usage of a user.
    pub fn usage_of(&self, user: usize) -> f64 {
        self.usage.get(&user).copied().unwrap_or(0.0)
    }

    /// The fair-share factor of a user in `[0, 1]` (1 = no recent usage).
    pub fn factor(&self, user: usize) -> f64 {
        let u = self.usage_of(user);
        0.5_f64.powf(u / self.half_usage)
    }

    /// Apply the exponential decay up to `now`.
    pub fn decay_to(&mut self, now: SimTime) {
        if now <= self.last_decay {
            return;
        }
        let dt = (now - self.last_decay) as f64;
        let factor = 0.5_f64.powf(dt / self.half_life as f64);
        for v in self.usage.values_mut() {
            *v *= factor;
        }
        self.last_decay = now;
    }
}

/// The multifactor priority calculator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MultifactorPriority {
    weights: PriorityWeights,
}

impl MultifactorPriority {
    /// Create a calculator with the given weights.
    pub fn new(weights: PriorityWeights) -> Self {
        MultifactorPriority { weights }
    }

    /// The configured weights.
    pub fn weights(&self) -> &PriorityWeights {
        &self.weights
    }

    /// Compute the priority of a pending job at time `now`.
    pub fn priority(
        &self,
        job: &Job,
        now: SimTime,
        total_cores: u64,
        fairshare: &FairShareTracker,
    ) -> f64 {
        let w = &self.weights;
        let age = job.wait_time(now) as f64 / w.max_age.max(1) as f64;
        let age_factor = age.min(1.0);
        let size_factor = (job.cores() as f64 / total_cores.max(1) as f64).min(1.0);
        let fs_factor = fairshare.factor(job.submission.user);
        w.age * age_factor + w.size * size_factor + w.fairshare * fs_factor
    }

    /// Order pending job indices by decreasing priority (stable: ties keep
    /// submission order, which preserves FCFS among equals).
    pub fn sort_pending(
        &self,
        jobs: &[Job],
        pending: &mut [usize],
        now: SimTime,
        total_cores: u64,
        fairshare: &FairShareTracker,
    ) {
        pending.sort_by(|&a, &b| {
            let pa = self.priority(&jobs[a], now, total_cores, fairshare);
            let pb = self.priority(&jobs[b], now, total_cores, fairshare);
            pb.partial_cmp(&pa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    jobs[a]
                        .submission
                        .submit_time
                        .cmp(&jobs[b].submission.submit_time),
                )
                .then(a.cmp(&b))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSubmission;

    fn job(id: usize, user: usize, submit: SimTime, cores: u32) -> Job {
        Job::new(id, JobSubmission::new(user, submit, cores, 3600, 600))
    }

    #[test]
    fn fairshare_factor_decreases_with_usage() {
        let mut fs = FairShareTracker::new(1000.0, 3600);
        assert_eq!(fs.factor(0), 1.0);
        fs.record_usage(0, 1000.0, 0);
        assert!((fs.factor(0) - 0.5).abs() < 1e-12);
        fs.record_usage(0, 1000.0, 0);
        assert!((fs.factor(0) - 0.25).abs() < 1e-12);
        assert_eq!(fs.factor(1), 1.0, "other users unaffected");
    }

    #[test]
    fn fairshare_usage_decays_over_time() {
        let mut fs = FairShareTracker::new(1000.0, 3600);
        fs.record_usage(0, 2000.0, 0);
        fs.decay_to(3600);
        assert!((fs.usage_of(0) - 1000.0).abs() < 1e-9);
        fs.decay_to(7200);
        assert!((fs.usage_of(0) - 500.0).abs() < 1e-9);
        // Decay never goes backwards.
        fs.decay_to(7200);
        assert!((fs.usage_of(0) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn seeded_usage_counts_like_recorded_usage() {
        let mut fs = FairShareTracker::new(1000.0, 3600);
        fs.seed_usage(4, 3000.0);
        assert!(fs.factor(4) < 0.2);
    }

    #[test]
    fn age_increases_priority() {
        let prio = MultifactorPriority::default();
        let fs = FairShareTracker::default();
        let old = job(0, 0, 0, 64);
        let fresh = job(1, 0, 90_000, 64);
        let now = 100_000;
        assert!(prio.priority(&old, now, 80_640, &fs) > prio.priority(&fresh, now, 80_640, &fs));
    }

    #[test]
    fn size_increases_priority() {
        let prio = MultifactorPriority::default();
        let fs = FairShareTracker::default();
        let big = job(0, 0, 0, 40_000);
        let small = job(1, 0, 0, 16);
        assert!(prio.priority(&big, 0, 80_640, &fs) > prio.priority(&small, 0, 80_640, &fs));
    }

    #[test]
    fn heavy_users_sink_in_the_queue() {
        let prio = MultifactorPriority::default();
        let mut fs = FairShareTracker::default();
        fs.seed_usage(1, 1.0e8);
        let a = job(0, 0, 500, 64);
        let b = job(1, 1, 500, 64);
        let jobs = vec![a, b];
        let mut pending = vec![1, 0];
        prio.sort_pending(&jobs, &mut pending, 1000, 80_640, &fs);
        assert_eq!(pending, vec![0, 1], "light user first");
    }

    #[test]
    fn sort_is_stable_for_equal_priorities() {
        let prio = MultifactorPriority::default();
        let fs = FairShareTracker::default();
        let jobs = vec![job(0, 0, 100, 64), job(1, 0, 100, 64), job(2, 0, 100, 64)];
        let mut pending = vec![2, 0, 1];
        prio.sort_pending(&jobs, &mut pending, 80_640, 5000, &fs);
        assert_eq!(pending, vec![0, 1, 2]);
    }

    #[test]
    fn age_factor_saturates() {
        let weights = PriorityWeights {
            age: 100.0,
            size: 0.0,
            fairshare: 0.0,
            max_age: 1000,
        };
        let prio = MultifactorPriority::new(weights);
        let fs = FairShareTracker::default();
        let j = job(0, 0, 0, 64);
        assert_eq!(prio.priority(&j, 1000, 80_640, &fs), 100.0);
        assert_eq!(prio.priority(&j, 100_000, 80_640, &fs), 100.0);
        assert!((prio.priority(&j, 500, 80_640, &fs) - 50.0).abs() < 1e-9);
    }
}

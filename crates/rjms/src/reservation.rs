//! Advanced reservations.
//!
//! SLURM reservations carve out time × resources for a purpose. The paper
//! extends them with a `Watts` parameter so that an amount of *power* can be
//! reserved for a time slot (the powercap reservation), and the offline part
//! of the algorithm materialises its decisions as *switch-off* reservations
//! on specific node groups.

use apc_power::Watts;
use serde::{Deserialize, Serialize};

use crate::mask::NodeMask;
use crate::time::{SimTime, TimeWindow};

/// Dense reservation identifier.
pub type ReservationId = usize;

/// What a reservation reserves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReservationKind {
    /// A powercap window: during the window the cluster's power consumption
    /// must stay below the given budget (the paper's `Watts` reservation
    /// parameter / `PowerCap` controller state).
    PowerCap {
        /// The power budget during the window.
        cap: Watts,
    },
    /// A switch-off window on specific nodes, created by the offline part of
    /// the powercap algorithm to harvest the power bonus.
    SwitchOff {
        /// Nodes to power down during the window.
        nodes: Vec<usize>,
    },
    /// A maintenance window: the nodes are drained but stay powered.
    Maintenance {
        /// Nodes unavailable to jobs during the window.
        nodes: Vec<usize>,
    },
}

/// A reservation: a kind plus a time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reservation {
    /// Identifier assigned by the controller.
    pub id: ReservationId,
    /// The reserved window.
    pub window: TimeWindow,
    /// What is reserved.
    pub kind: ReservationKind,
}

impl Reservation {
    /// Build a reservation (ids are normally assigned by the controller).
    pub fn new(id: ReservationId, window: TimeWindow, kind: ReservationKind) -> Self {
        Reservation { id, window, kind }
    }

    /// Is the reservation active at instant `t`?
    pub fn active_at(&self, t: SimTime) -> bool {
        self.window.contains(t)
    }

    /// Does the reservation overlap `[start, end)`?
    pub fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        self.window.overlaps(start, end)
    }

    /// The power cap carried by the reservation, if it is a powercap one.
    pub fn cap(&self) -> Option<Watts> {
        match &self.kind {
            ReservationKind::PowerCap { cap } => Some(*cap),
            _ => None,
        }
    }

    /// The nodes blocked by the reservation, if any.
    pub fn blocked_nodes(&self) -> Option<&[usize]> {
        match &self.kind {
            ReservationKind::SwitchOff { nodes } | ReservationKind::Maintenance { nodes } => {
                Some(nodes)
            }
            ReservationKind::PowerCap { .. } => None,
        }
    }
}

/// Registry of reservations known to the controller.
#[derive(Debug, Clone, Default)]
pub struct ReservationBook {
    reservations: Vec<Reservation>,
}

impl ReservationBook {
    /// An empty registry.
    pub fn new() -> Self {
        ReservationBook::default()
    }

    /// Register a reservation, assigning it the next identifier.
    pub fn add(&mut self, window: TimeWindow, kind: ReservationKind) -> ReservationId {
        let id = self.reservations.len();
        self.reservations.push(Reservation::new(id, window, kind));
        id
    }

    /// Look a reservation up.
    pub fn get(&self, id: ReservationId) -> Option<&Reservation> {
        self.reservations.get(id)
    }

    /// All reservations.
    pub fn all(&self) -> &[Reservation] {
        &self.reservations
    }

    /// Number of registered reservations.
    pub fn len(&self) -> usize {
        self.reservations.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.reservations.is_empty()
    }

    /// The tightest power cap applying at instant `t` (powercap reservations
    /// may overlap; the minimum wins).
    pub fn cap_at(&self, t: SimTime) -> Option<Watts> {
        self.reservations
            .iter()
            .filter(|r| r.active_at(t))
            .filter_map(Reservation::cap)
            .fold(None, |acc, c| Some(acc.map_or(c, |a: Watts| a.min(c))))
    }

    /// The tightest power cap applying anywhere inside `[start, end)` — what
    /// the online algorithm checks before starting a job whose execution may
    /// overlap a future powercap window.
    pub fn cap_within(&self, start: SimTime, end: SimTime) -> Option<Watts> {
        self.reservations
            .iter()
            .filter(|r| r.overlaps(start, end))
            .filter_map(Reservation::cap)
            .fold(None, |acc, c| Some(acc.map_or(c, |a: Watts| a.min(c))))
    }

    /// Nodes blocked (drained or powered off) by reservations overlapping
    /// `[start, end)`.
    pub fn blocked_nodes_within(&self, start: SimTime, end: SimTime) -> Vec<usize> {
        let mut mask = NodeMask::default();
        self.collect_blocked_within(start, end, &mut mask);
        mask.iter().collect()
    }

    /// Union the nodes blocked by reservations overlapping `[start, end)`
    /// into `out` (which the caller clears when a fresh set is wanted) —
    /// the allocation-free form the scheduling hot path uses.
    pub fn collect_blocked_within(&self, start: SimTime, end: SimTime, out: &mut NodeMask) {
        for reservation in &self.reservations {
            if !reservation.overlaps(start, end) {
                continue;
            }
            if let Some(nodes) = reservation.blocked_nodes() {
                out.extend(nodes.iter().copied());
            }
        }
    }

    /// The piecewise cap profile over `[start, end)`: maximal sub-windows in
    /// chronological order, each with the tightest cap active throughout it.
    /// Uncapped gaps are omitted; adjacent sub-windows with the same cap are
    /// merged. This resolves a time-varying schedule (one powercap
    /// reservation per segment) segment-wise instead of collapsing the whole
    /// range to a single min as [`cap_within`](Self::cap_within) does.
    pub fn cap_profile_within(&self, start: SimTime, end: SimTime) -> Vec<(TimeWindow, Watts)> {
        if start >= end {
            return Vec::new();
        }
        // Breakpoints: every powercap window edge clamped into [start, end).
        let mut cuts: Vec<SimTime> = vec![start, end];
        for r in &self.reservations {
            if r.cap().is_none() || !r.overlaps(start, end) {
                continue;
            }
            cuts.push(r.window.start.clamp(start, end));
            cuts.push(r.window.end.clamp(start, end));
        }
        cuts.sort_unstable();
        cuts.dedup();
        // Between adjacent breakpoints the active set is constant, so the
        // cap at the left edge holds over the whole piece.
        let mut profile: Vec<(TimeWindow, Watts)> = Vec::new();
        for pair in cuts.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let Some(cap) = self.cap_at(a) else {
                continue;
            };
            match profile.last_mut() {
                Some((w, c)) if w.end == a && *c == cap => w.end = b,
                _ => profile.push((TimeWindow::new(a, b), cap)),
            }
        }
        profile
    }

    /// Powercap reservations overlapping `[start, end)`.
    pub fn powercaps_within(&self, start: SimTime, end: SimTime) -> Vec<&Reservation> {
        self.reservations
            .iter()
            .filter(|r| r.overlaps(start, end) && r.cap().is_some())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book_with_cap() -> ReservationBook {
        let mut book = ReservationBook::new();
        book.add(
            TimeWindow::new(3600, 7200),
            ReservationKind::PowerCap {
                cap: Watts(500_000.0),
            },
        );
        book.add(
            TimeWindow::new(3600, 7200),
            ReservationKind::SwitchOff {
                nodes: vec![0, 1, 2],
            },
        );
        book
    }

    #[test]
    fn ids_are_sequential() {
        let book = book_with_cap();
        assert_eq!(book.len(), 2);
        assert_eq!(book.get(0).unwrap().id, 0);
        assert_eq!(book.get(1).unwrap().id, 1);
        assert!(book.get(2).is_none());
        assert!(!book.is_empty());
    }

    #[test]
    fn cap_lookup_by_instant_and_window() {
        let book = book_with_cap();
        assert_eq!(book.cap_at(0), None);
        assert_eq!(book.cap_at(3600), Some(Watts(500_000.0)));
        assert_eq!(book.cap_at(7199), Some(Watts(500_000.0)));
        assert_eq!(book.cap_at(7200), None);
        // Window queries.
        assert_eq!(book.cap_within(0, 3600), None);
        assert_eq!(book.cap_within(0, 3601), Some(Watts(500_000.0)));
        assert_eq!(book.cap_within(7200, 9000), None);
    }

    #[test]
    fn tightest_cap_wins_on_overlap() {
        let mut book = book_with_cap();
        book.add(
            TimeWindow::new(5000, 6000),
            ReservationKind::PowerCap {
                cap: Watts(300_000.0),
            },
        );
        assert_eq!(book.cap_at(4000), Some(Watts(500_000.0)));
        assert_eq!(book.cap_at(5500), Some(Watts(300_000.0)));
        assert_eq!(book.cap_within(0, 100_000), Some(Watts(300_000.0)));
    }

    #[test]
    fn blocked_nodes_and_powercaps() {
        let mut book = book_with_cap();
        book.add(
            TimeWindow::new(4000, 5000),
            ReservationKind::Maintenance { nodes: vec![2, 7] },
        );
        let blocked = book.blocked_nodes_within(3600, 7200);
        assert_eq!(blocked, vec![0, 1, 2, 7]);
        assert!(book.blocked_nodes_within(0, 100).is_empty());
        assert_eq!(book.powercaps_within(0, 10_000).len(), 1);
        assert_eq!(book.powercaps_within(0, 3600).len(), 0);
    }

    #[test]
    fn cap_profile_resolves_segment_wise() {
        let mut book = ReservationBook::new();
        // A day/night-style schedule: two disjoint segments with different
        // caps, registered as independent powercap reservations.
        book.add(
            TimeWindow::new(0, 1000),
            ReservationKind::PowerCap { cap: Watts(800.0) },
        );
        book.add(
            TimeWindow::new(2000, 3000),
            ReservationKind::PowerCap { cap: Watts(400.0) },
        );
        let profile = book.cap_profile_within(0, 4000);
        assert_eq!(
            profile,
            vec![
                (TimeWindow::new(0, 1000), Watts(800.0)),
                (TimeWindow::new(2000, 3000), Watts(400.0)),
            ]
        );
        // Clamping: a query inside one segment sees only that slice.
        assert_eq!(
            book.cap_profile_within(500, 2500),
            vec![
                (TimeWindow::new(500, 1000), Watts(800.0)),
                (TimeWindow::new(2000, 2500), Watts(400.0)),
            ]
        );
        // Empty and uncapped ranges produce empty profiles.
        assert!(book.cap_profile_within(1000, 2000).is_empty());
        assert!(book.cap_profile_within(3000, 3000).is_empty());
    }

    #[test]
    fn cap_profile_overlaps_take_the_min_and_merge_equal_neighbours() {
        let mut book = book_with_cap(); // 500 kW over [3600, 7200)
        book.add(
            TimeWindow::new(5000, 6000),
            ReservationKind::PowerCap {
                cap: Watts(300_000.0),
            },
        );
        let profile = book.cap_profile_within(0, 10_000);
        assert_eq!(
            profile,
            vec![
                (TimeWindow::new(3600, 5000), Watts(500_000.0)),
                (TimeWindow::new(5000, 6000), Watts(300_000.0)),
                (TimeWindow::new(6000, 7200), Watts(500_000.0)),
            ]
        );
        // Two abutting reservations with the same cap merge into one piece.
        let mut book = ReservationBook::new();
        book.add(
            TimeWindow::new(0, 100),
            ReservationKind::PowerCap { cap: Watts(9.0) },
        );
        book.add(
            TimeWindow::new(100, 200),
            ReservationKind::PowerCap { cap: Watts(9.0) },
        );
        assert_eq!(
            book.cap_profile_within(0, 300),
            vec![(TimeWindow::new(0, 200), Watts(9.0))]
        );
    }

    #[test]
    fn reservation_accessors() {
        let r = Reservation::new(
            0,
            TimeWindow::new(10, 20),
            ReservationKind::PowerCap { cap: Watts(1.0) },
        );
        assert!(r.active_at(10));
        assert!(!r.active_at(20));
        assert!(r.overlaps(19, 30));
        assert!(!r.overlaps(20, 30));
        assert_eq!(r.cap(), Some(Watts(1.0)));
        assert_eq!(r.blocked_nodes(), None);
        let s = Reservation::new(
            1,
            TimeWindow::new(10, 20),
            ReservationKind::SwitchOff { nodes: vec![5] },
        );
        assert_eq!(s.cap(), None);
        assert_eq!(s.blocked_nodes(), Some(&[5][..]));
    }
}

//! Simulation time.
//!
//! The whole workspace uses plain seconds on a `u64` simulation clock. The
//! helpers here exist mainly for readability of scenario definitions
//! ("2 hours into the interval", "a 1-hour window").

/// Simulation time, in seconds since the start of the replayed interval.
pub type SimTime = u64;

/// One minute, in seconds.
pub const MINUTE: SimTime = 60;
/// One hour, in seconds.
pub const HOUR: SimTime = 3600;
/// One day, in seconds.
pub const DAY: SimTime = 24 * HOUR;

/// A half-open time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TimeWindow {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl TimeWindow {
    /// Build a window; `end` must not precede `start`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(end >= start, "time window end precedes start");
        TimeWindow { start, end }
    }

    /// Build a window from a start time and a duration.
    pub fn with_duration(start: SimTime, duration: SimTime) -> Self {
        TimeWindow::new(start, start.saturating_add(duration))
    }

    /// Window length in seconds.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }

    /// Does the window contain instant `t`?
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Does this window overlap `[start, end)`?
    pub fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        self.start < end && start < self.end
    }

    /// Does this window overlap another window?
    pub fn overlaps_window(&self, other: &TimeWindow) -> bool {
        self.overlaps(other.start, other.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_basics() {
        let w = TimeWindow::new(100, 200);
        assert_eq!(w.duration(), 100);
        assert!(w.contains(100));
        assert!(w.contains(199));
        assert!(!w.contains(200));
        assert!(!w.contains(99));
    }

    #[test]
    fn window_with_duration() {
        let w = TimeWindow::with_duration(2 * HOUR, HOUR);
        assert_eq!(w.start, 7200);
        assert_eq!(w.end, 10800);
        assert_eq!(w.duration(), HOUR);
    }

    #[test]
    fn overlap_semantics_are_half_open() {
        let w = TimeWindow::new(100, 200);
        assert!(w.overlaps(150, 250));
        assert!(w.overlaps(50, 101));
        assert!(!w.overlaps(200, 300), "touching at the end is not overlap");
        assert!(!w.overlaps(0, 100), "touching at the start is not overlap");
        assert!(w.overlaps_window(&TimeWindow::new(199, 500)));
    }

    #[test]
    #[should_panic(expected = "end precedes start")]
    fn rejects_negative_windows() {
        let _ = TimeWindow::new(10, 5);
    }

    #[test]
    fn constants() {
        assert_eq!(MINUTE * 60, HOUR);
        assert_eq!(HOUR * 24, DAY);
    }
}

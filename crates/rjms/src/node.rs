//! Compute-node records.
//!
//! Each node carries two orthogonal pieces of state:
//!
//! * the **allocation state** — free, allocated to a job, drained for a
//!   switch-off reservation — which drives scheduling decisions, and
//! * the **power state** (off / idle / busy at a frequency) owned by the
//!   [`ClusterPowerAccountant`](apc_power::ClusterPowerAccountant) and kept in
//!   sync by the [`Cluster`](crate::cluster::Cluster) wrapper.

use crate::job::JobId;
use serde::{Deserialize, Serialize};

/// Scheduling-relevant state of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AllocationState {
    /// Powered on, not running any job, available for scheduling.
    #[default]
    Free,
    /// Exclusively allocated to a job.
    Allocated(JobId),
    /// Powered off (or reserved for switch-off): not available for jobs.
    PoweredOff,
}

impl AllocationState {
    /// Can the scheduler place a job on this node right now?
    #[inline]
    pub fn is_available(self) -> bool {
        matches!(self, AllocationState::Free)
    }

    /// The job occupying the node, if any.
    #[inline]
    pub fn job(self) -> Option<JobId> {
        match self {
            AllocationState::Allocated(j) => Some(j),
            _ => None,
        }
    }
}

/// One compute node as tracked by the controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimNode {
    /// Dense node identifier (matches the power topology's `NodeId`).
    pub id: usize,
    /// Scheduling state.
    pub alloc: AllocationState,
    /// Whether the node is earmarked by an active switch-off reservation and
    /// must not be handed to jobs even while technically still powered.
    pub drained: bool,
}

impl SimNode {
    /// A fresh, free node.
    pub fn new(id: usize) -> Self {
        SimNode {
            id,
            alloc: AllocationState::Free,
            drained: false,
        }
    }

    /// Is the node available for a new job (free, powered and not drained)?
    #[inline]
    pub fn is_available(&self) -> bool {
        self.alloc.is_available() && !self.drained
    }

    /// Is the node running a job?
    #[inline]
    pub fn is_allocated(&self) -> bool {
        matches!(self.alloc, AllocationState::Allocated(_))
    }

    /// Is the node powered off?
    #[inline]
    pub fn is_off(&self) -> bool {
        self.alloc == AllocationState::PoweredOff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_is_available() {
        let n = SimNode::new(7);
        assert_eq!(n.id, 7);
        assert!(n.is_available());
        assert!(!n.is_allocated());
        assert!(!n.is_off());
    }

    #[test]
    fn allocation_state_transitions() {
        let mut n = SimNode::new(0);
        n.alloc = AllocationState::Allocated(42);
        assert!(!n.is_available());
        assert!(n.is_allocated());
        assert_eq!(n.alloc.job(), Some(42));
        n.alloc = AllocationState::PoweredOff;
        assert!(n.is_off());
        assert!(!n.is_available());
        assert_eq!(n.alloc.job(), None);
    }

    #[test]
    fn drained_nodes_are_not_available() {
        let mut n = SimNode::new(0);
        n.drained = true;
        assert!(!n.is_available());
        assert!(!n.is_allocated());
    }
}

//! Jobs: submissions, lifecycle states and accounting records.
//!
//! A job is submitted with a core count, a user-provided walltime (on Curie
//! users over-estimate it by four orders of magnitude on average, which the
//! synthetic trace reproduces) and an *actual* runtime measured at the
//! maximum CPU frequency. When the powercap scheduler starts a job at a lower
//! frequency, both the runtime and the walltime are stretched by the
//! degradation factor, exactly as the SLURM implementation adapts the
//! walltime (paper Section V).

use apc_power::Frequency;
use serde::{Deserialize, Serialize};

use crate::mask::NodeMask;
use crate::time::SimTime;

/// Dense job identifier.
pub type JobId = usize;

/// What a user submits: the static description of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSubmission {
    /// Submitting user (index into the fair-share accounts).
    pub user: usize,
    /// Submission time.
    pub submit_time: SimTime,
    /// Number of cores requested.
    pub cores: u32,
    /// User-provided walltime estimate in seconds (over-estimated on Curie).
    pub walltime: SimTime,
    /// Actual runtime in seconds when executed at the maximum frequency.
    pub actual_runtime: SimTime,
    /// Workload class tag (indexes the application classes of `apc-workload`;
    /// `None` means "unknown/average application").
    pub app_class: Option<u8>,
}

impl JobSubmission {
    /// Build a submission with the mandatory fields.
    pub fn new(
        user: usize,
        submit_time: SimTime,
        cores: u32,
        walltime: SimTime,
        actual_runtime: SimTime,
    ) -> Self {
        JobSubmission {
            user,
            submit_time,
            cores,
            walltime,
            actual_runtime,
            app_class: None,
        }
    }

    /// Attach an application class (builder style).
    pub fn with_app_class(mut self, class: u8) -> Self {
        self.app_class = Some(class);
        self
    }
}

/// Lifecycle state of a job inside the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the pending queue.
    Pending,
    /// Dispatched and running on its allocated nodes.
    Running,
    /// Finished normally.
    Completed,
    /// Killed by the controller (powercap "extreme actions") or cancelled.
    Killed,
}

/// How a job left the system (recorded in the accounting log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Ran to completion.
    Completed,
    /// Killed before completion.
    Killed,
    /// Still pending or running when the replayed interval ended.
    Unfinished,
}

/// A job tracked by the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Identifier assigned at submission.
    pub id: JobId,
    /// The original submission.
    pub submission: JobSubmission,
    /// Lifecycle state.
    pub state: JobState,
    /// Nodes allocated to the job while running (empty while pending;
    /// retained after completion for inspection). `nodes.len()` is the
    /// node count — an O(1) cached popcount.
    pub nodes: NodeMask,
    /// CPU frequency the job was started at (None while pending).
    pub frequency: Option<Frequency>,
    /// Start time, when started.
    pub start_time: Option<SimTime>,
    /// End time (completion or kill), when finished.
    pub end_time: Option<SimTime>,
    /// Runtime after DVFS stretching (equals `actual_runtime` at fmax).
    pub stretched_runtime: Option<SimTime>,
    /// Walltime after DVFS stretching (the limit enforced by the controller).
    pub stretched_walltime: Option<SimTime>,
}

impl Job {
    /// Wrap a submission into a pending job.
    pub fn new(id: JobId, submission: JobSubmission) -> Self {
        Job {
            id,
            submission,
            state: JobState::Pending,
            nodes: NodeMask::default(),
            frequency: None,
            start_time: None,
            end_time: None,
            stretched_runtime: None,
            stretched_walltime: None,
        }
    }

    /// Cores requested by the job.
    #[inline]
    pub fn cores(&self) -> u32 {
        self.submission.cores
    }

    /// Number of whole nodes needed given `cores_per_node` (exclusive node
    /// allocation, the dominant mode on Curie).
    pub fn nodes_needed(&self, cores_per_node: u32) -> usize {
        debug_assert!(cores_per_node > 0);
        (self.submission.cores as usize).div_ceil(cores_per_node as usize)
    }

    /// Is the job waiting to be scheduled?
    #[inline]
    pub fn is_pending(&self) -> bool {
        self.state == JobState::Pending
    }

    /// Is the job currently running?
    #[inline]
    pub fn is_running(&self) -> bool {
        self.state == JobState::Running
    }

    /// Has the job reached a terminal state?
    #[inline]
    pub fn is_finished(&self) -> bool {
        matches!(self.state, JobState::Completed | JobState::Killed)
    }

    /// Time spent waiting in the queue (up to `now` for pending jobs).
    pub fn wait_time(&self, now: SimTime) -> SimTime {
        let reference = self.start_time.unwrap_or(now);
        reference.saturating_sub(self.submission.submit_time)
    }

    /// The time at which the job will release its nodes if it runs to
    /// completion (start + stretched runtime). `None` while pending.
    pub fn expected_end(&self) -> Option<SimTime> {
        Some(self.start_time? + self.stretched_runtime?)
    }

    /// The latest time the controller would let the job run to (start +
    /// stretched walltime). Used by backfilling, which only trusts walltimes.
    pub fn walltime_end(&self) -> Option<SimTime> {
        Some(self.start_time? + self.stretched_walltime?)
    }

    /// Core-seconds of useful work delivered inside the window
    /// `[window_start, window_end)` — the "work" metric of the paper's
    /// Fig. 8. Work is counted over the job's actual execution span clipped
    /// to the window, scaled by the core count.
    pub fn work_within(&self, window_start: SimTime, window_end: SimTime) -> f64 {
        let (Some(start), Some(runtime)) = (self.start_time, self.stretched_runtime) else {
            return 0.0;
        };
        let end = self.end_time.unwrap_or(start + runtime).min(window_end);
        let start = start.max(window_start);
        if end <= start {
            return 0.0;
        }
        (end - start) as f64 * self.submission.cores as f64
    }

    /// The outcome recorded for the accounting report.
    pub fn outcome(&self) -> JobOutcome {
        match self.state {
            JobState::Completed => JobOutcome::Completed,
            JobState::Killed => JobOutcome::Killed,
            JobState::Pending | JobState::Running => JobOutcome::Unfinished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submission() -> JobSubmission {
        JobSubmission::new(3, 1000, 512, 7200, 120)
    }

    #[test]
    fn nodes_needed_rounds_up() {
        let job = Job::new(0, submission());
        assert_eq!(job.nodes_needed(16), 32);
        let odd = Job::new(1, JobSubmission::new(0, 0, 17, 60, 30));
        assert_eq!(odd.nodes_needed(16), 2);
        let one = Job::new(2, JobSubmission::new(0, 0, 1, 60, 30));
        assert_eq!(one.nodes_needed(16), 1);
    }

    #[test]
    fn lifecycle_predicates() {
        let mut job = Job::new(0, submission());
        assert!(job.is_pending());
        assert!(!job.is_running());
        assert!(!job.is_finished());
        job.state = JobState::Running;
        assert!(job.is_running());
        job.state = JobState::Completed;
        assert!(job.is_finished());
        assert_eq!(job.outcome(), JobOutcome::Completed);
        job.state = JobState::Killed;
        assert_eq!(job.outcome(), JobOutcome::Killed);
    }

    #[test]
    fn wait_time_uses_start_or_now() {
        let mut job = Job::new(0, submission());
        assert_eq!(job.wait_time(1500), 500);
        job.start_time = Some(4000);
        assert_eq!(job.wait_time(9999), 3000);
        // A pending job whose submission is still in the future (initial-state
        // jobs) saturates at zero.
        let early = Job::new(1, JobSubmission::new(0, 50, 1, 10, 5));
        assert_eq!(early.wait_time(20), 0);
    }

    #[test]
    fn expected_end_and_walltime_end() {
        let mut job = Job::new(0, submission());
        assert_eq!(job.expected_end(), None);
        job.start_time = Some(2000);
        job.stretched_runtime = Some(150);
        job.stretched_walltime = Some(9000);
        assert_eq!(job.expected_end(), Some(2150));
        assert_eq!(job.walltime_end(), Some(11000));
    }

    #[test]
    fn work_within_window_clipping() {
        let mut job = Job::new(0, submission());
        job.start_time = Some(100);
        job.stretched_runtime = Some(100);
        job.end_time = Some(200);
        // Fully inside.
        assert_eq!(job.work_within(0, 1000), 100.0 * 512.0);
        // Clipped at both ends.
        assert_eq!(job.work_within(150, 175), 25.0 * 512.0);
        // Outside.
        assert_eq!(job.work_within(300, 400), 0.0);
        assert_eq!(job.work_within(0, 100), 0.0);
        // Pending job contributes nothing.
        let pending = Job::new(1, submission());
        assert_eq!(pending.work_within(0, 1000), 0.0);
    }

    #[test]
    fn app_class_builder() {
        let s = submission().with_app_class(2);
        assert_eq!(s.app_class, Some(2));
    }
}

//! # apc-rjms — a SLURM-like resource and job management system simulator
//!
//! The paper implements its powercap scheduler inside SLURM and evaluates it
//! by replaying Curie traces under the *multiple-slurmd* emulation (jobs are
//! replaced by `sleep` commands, so only RJMS decisions are exercised). This
//! crate provides the equivalent substrate as a deterministic discrete-event
//! simulator:
//!
//! * a central **controller** ([`controller::Controller`]) playing the role of
//!   `slurmctld`: job submission, scheduling cycles, dispatch, completion,
//!   node power transitions;
//! * **FCFS + EASY backfilling** with multifactor priorities (age, size,
//!   fair-share) and user-provided — typically wildly over-estimated —
//!   walltimes ([`backfill`], [`priority`]);
//! * **advanced reservations**: maintenance windows, powercap windows
//!   (time × watts) and switch-off reservations ([`reservation`]);
//! * a **node/cluster model** tied to the `apc-power` accounting so the
//!   controller always knows the instantaneous cluster power
//!   ([`node`], [`cluster`]);
//! * a **scheduling hook** ([`hook::SchedulingHook`]) — the grey boxes of the
//!   paper's Fig. 1 — through which the `apc-core` powercap logic vetoes or
//!   re-frequencies job starts and plans switch-off reservations;
//! * an **event log** ([`log`]) from which the replay crate reconstructs the
//!   utilisation and power time series of Figures 6 and 7.
//!
//! The simulator is deterministic: identical inputs (trace, configuration,
//! hook) produce identical schedules, which is what makes the paper's
//! policy-versus-policy comparisons meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backfill;
pub mod cluster;
pub mod config;
pub mod controller;
pub mod event;
pub mod hook;
pub mod job;
pub mod log;
pub mod mask;
pub mod node;
pub mod obs;
pub mod priority;
pub mod reservation;
pub mod select;
pub mod time;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::backfill::BackfillConfig;
    pub use crate::cluster::{Cluster, Platform};
    pub use crate::config::{ControllerConfig, SchedulerParameters};
    pub use crate::controller::{Controller, SimulationReport};
    pub use crate::event::{Event, EventQueue};
    pub use crate::hook::{NullHook, SchedulingHook, StartDecision};
    pub use crate::job::{Job, JobId, JobOutcome, JobState, JobSubmission};
    pub use crate::log::{SimEvent, SimEventKind, SimLog};
    pub use crate::mask::NodeMask;
    pub use crate::node::{AllocationState, SimNode};
    pub use crate::obs::{ControllerObs, PassMeasurements};
    pub use crate::priority::{FairShareTracker, MultifactorPriority, PriorityWeights};
    pub use crate::reservation::{Reservation, ReservationId, ReservationKind};
    pub use crate::select::NodeSelector;
    pub use crate::time::SimTime;
}

pub use prelude::*;

/// Compile-time audit that the simulator's data types can cross thread
/// boundaries: the campaign executor (`apc-campaign`) shares platforms and
/// moves reports/logs between `std::thread` workers. The shared read-only
/// types (`Platform`, configs) are plain owned data and stay `Sync`; the
/// [`Cluster`] is `Send`-only — its power accountant keeps a `RefCell`
/// probe scratch, which is fine because every worker owns its own cluster.
/// The audit pins these bounds against regressions (e.g. someone caching an
/// `Rc` inside `Platform`).
#[allow(dead_code)]
fn thread_safety_audit() {
    fn send<T: Send>() {}
    fn send_sync<T: Send + Sync>() {}
    send_sync::<cluster::Platform>();
    send_sync::<config::ControllerConfig>();
    send_sync::<job::JobSubmission>();
    send_sync::<time::TimeWindow>();
    send::<cluster::Cluster>();
    send::<controller::SimulationReport>();
    send::<log::SimLog>();
    send::<log::SimEvent>();
}

//! Simulation event log.
//!
//! The controller appends a [`SimEvent`] for every externally visible action.
//! The replay crate reconstructs the paper's utilisation and power time
//! series (Figures 6 and 7) from this log, and the tests use it to assert on
//! scheduler behaviour without poking at controller internals.

use apc_power::{Frequency, Watts};
use serde::{Deserialize, Serialize};

use crate::job::JobId;
use crate::reservation::ReservationId;
use crate::time::SimTime;

/// The kind of a logged event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimEventKind {
    /// A job entered the pending queue.
    JobSubmitted {
        /// Job identifier.
        job: JobId,
        /// Cores requested.
        cores: u32,
    },
    /// A job was dispatched.
    JobStarted {
        /// Job identifier.
        job: JobId,
        /// Cores allocated.
        cores: u32,
        /// Number of nodes allocated.
        nodes: usize,
        /// CPU frequency selected by the scheduler.
        frequency: Frequency,
    },
    /// A job finished normally.
    JobCompleted {
        /// Job identifier.
        job: JobId,
        /// Cores released.
        cores: u32,
        /// Frequency it was running at.
        frequency: Frequency,
    },
    /// A job was killed (powercap extreme actions or walltime excess).
    JobKilled {
        /// Job identifier.
        job: JobId,
        /// Cores released.
        cores: u32,
        /// Frequency it was running at.
        frequency: Frequency,
    },
    /// Nodes were powered off (switch-off reservation start or drain).
    NodesPoweredOff {
        /// The nodes switched off at this instant.
        nodes: Vec<usize>,
    },
    /// Nodes were powered back on.
    NodesPoweredOn {
        /// The nodes powered on at this instant.
        nodes: Vec<usize>,
    },
    /// A powercap window opened.
    CapActivated {
        /// Reservation carrying the cap.
        reservation: ReservationId,
        /// The power budget.
        cap: Watts,
    },
    /// A powercap window closed.
    CapDeactivated {
        /// Reservation carrying the cap.
        reservation: ReservationId,
    },
}

/// A timestamped log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimEvent {
    /// Simulation time of the event.
    pub time: SimTime,
    /// What happened.
    pub kind: SimEventKind,
}

/// Append-only simulation log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimLog {
    events: Vec<SimEvent>,
}

impl SimLog {
    /// An empty log.
    pub fn new() -> Self {
        SimLog::default()
    }

    /// Append an event.
    pub fn push(&mut self, time: SimTime, kind: SimEventKind) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.time <= time),
            "log times must be monotone"
        );
        self.events.push(SimEvent { time, kind });
    }

    /// All events in chronological order.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count events matching a predicate.
    pub fn count_matching(&self, mut pred: impl FnMut(&SimEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Iterate over the job-start events.
    pub fn job_starts(&self) -> impl Iterator<Item = (&SimEvent, JobId, u32, Frequency)> + '_ {
        self.events.iter().filter_map(|e| match &e.kind {
            SimEventKind::JobStarted {
                job,
                cores,
                frequency,
                ..
            } => Some((e, *job, *cores, *frequency)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut log = SimLog::new();
        assert!(log.is_empty());
        log.push(0, SimEventKind::JobSubmitted { job: 1, cores: 32 });
        log.push(
            5,
            SimEventKind::JobStarted {
                job: 1,
                cores: 32,
                nodes: 2,
                frequency: Frequency::from_ghz(2.7),
            },
        );
        log.push(
            60,
            SimEventKind::JobCompleted {
                job: 1,
                cores: 32,
                frequency: Frequency::from_ghz(2.7),
            },
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.events()[1].time, 5);
        assert_eq!(
            log.count_matching(|e| matches!(e.kind, SimEventKind::JobStarted { .. })),
            1
        );
        let starts: Vec<_> = log.job_starts().collect();
        assert_eq!(starts.len(), 1);
        assert_eq!(starts[0].1, 1);
        assert_eq!(starts[0].2, 32);
    }

    #[test]
    fn power_events() {
        let mut log = SimLog::new();
        log.push(
            10,
            SimEventKind::CapActivated {
                reservation: 0,
                cap: Watts(100.0),
            },
        );
        log.push(10, SimEventKind::NodesPoweredOff { nodes: vec![1, 2] });
        log.push(20, SimEventKind::NodesPoweredOn { nodes: vec![1, 2] });
        log.push(20, SimEventKind::CapDeactivated { reservation: 0 });
        assert_eq!(log.len(), 4);
        assert_eq!(
            log.count_matching(|e| matches!(e.kind, SimEventKind::NodesPoweredOff { .. })),
            1
        );
    }
}

//! Controller configuration (the simulator's `slurm.conf`).

use serde::{Deserialize, Serialize};

use crate::backfill::BackfillConfig;
use crate::priority::PriorityWeights;
use crate::select::SelectionPolicy;
use crate::time::SimTime;

/// Scheduler tuning knobs (SLURM's `SchedulerParameters`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerParameters {
    /// Backfilling configuration.
    pub backfill: BackfillConfig,
    /// Multifactor priority weights.
    pub priority: PriorityWeights,
    /// Interval between periodic scheduling ticks, in seconds. Ticks matter
    /// mostly when the queue is starved by power rather than by events.
    pub schedule_tick: SimTime,
}

impl Default for SchedulerParameters {
    fn default() -> Self {
        SchedulerParameters {
            backfill: BackfillConfig::default(),
            priority: PriorityWeights::default(),
            schedule_tick: 60,
        }
    }
}

/// Full controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Scheduler parameters.
    pub params: SchedulerParameters,
    /// Record a power sample on every node state change (needed for the
    /// power time-series figures; off by default to keep replays lean).
    pub record_power_samples: bool,
    /// Node-selection policy.
    #[serde(skip)]
    pub selection: SelectionPolicy,
}

impl ControllerConfig {
    /// Configuration with power-sample recording enabled.
    pub fn with_power_samples(mut self) -> Self {
        self.record_power_samples = true;
        self
    }

    /// Override the scheduler parameters (builder style).
    pub fn with_params(mut self, params: SchedulerParameters) -> Self {
        self.params = params;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ControllerConfig::default();
        assert!(c.params.backfill.enabled);
        assert_eq!(c.params.schedule_tick, 60);
        assert!(!c.record_power_samples);
        assert_eq!(c.selection, SelectionPolicy::Contiguous);
    }

    #[test]
    fn builders() {
        let params = SchedulerParameters {
            schedule_tick: 30,
            ..SchedulerParameters::default()
        };
        let c = ControllerConfig::default()
            .with_power_samples()
            .with_params(params);
        assert!(c.record_power_samples);
        assert_eq!(c.params.schedule_tick, 30);
    }
}

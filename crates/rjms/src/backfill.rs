//! EASY backfilling.
//!
//! The controller schedules FCFS by priority; when the head job cannot start
//! for lack of nodes, EASY backfilling [Mu'alem & Feitelson, TPDS 2001]
//! computes the *shadow time* at which the head job is expected to start
//! (based on the running jobs' walltime limits) and lets lower-priority jobs
//! jump ahead only if they do not delay that start: either they terminate
//! before the shadow time, or they fit in the nodes left over once the head
//! job's future allocation is accounted for.
//!
//! Because Curie users over-estimate walltimes by roughly four orders of
//! magnitude, the shadow time is hugely pessimistic and backfilling is far
//! less effective than it could be — an effect the paper observes
//! ("backfilling is not efficient because of wrong walltime estimations") and
//! that the replay reproduces.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Backfilling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackfillConfig {
    /// Master switch.
    pub enabled: bool,
    /// Maximum number of pending jobs examined per scheduling pass
    /// (SLURM's `bf_max_job_test`).
    pub depth: usize,
}

impl Default for BackfillConfig {
    fn default() -> Self {
        BackfillConfig {
            enabled: true,
            depth: 200,
        }
    }
}

/// The node reservation computed for a blocked head job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowReservation {
    /// Earliest time at which the head job is expected to have enough nodes.
    pub shadow_time: SimTime,
    /// Nodes that will remain free after the head job starts at
    /// `shadow_time` (the room available for long backfill jobs).
    pub spare_nodes: usize,
}

/// Compute the shadow reservation of a head job needing `needed` nodes, given
/// `free_now` currently free nodes and the walltime-based releases of running
/// jobs (`(walltime_end, node_count)`, in any order — the slice is sorted in
/// place, so callers with a reusable scratch buffer pay no allocation).
///
/// Returns `None` when the head job can already start (`free_now >= needed`)
/// or can never start (total nodes insufficient even after every release).
pub fn shadow_reservation(
    needed: usize,
    free_now: usize,
    releases: &mut [(SimTime, usize)],
    now: SimTime,
) -> Option<ShadowReservation> {
    if free_now >= needed {
        return None;
    }
    releases.sort_unstable();
    let mut free = free_now;
    for &(t, nodes) in releases.iter() {
        free += nodes;
        if free >= needed {
            return Some(ShadowReservation {
                shadow_time: t.max(now),
                spare_nodes: free - needed,
            });
        }
    }
    None
}

/// Can a backfill candidate needing `needed` nodes for `walltime` seconds
/// start at `now` without delaying the head job described by `shadow`?
pub fn can_backfill(
    needed: usize,
    walltime: SimTime,
    free_now: usize,
    now: SimTime,
    shadow: &ShadowReservation,
) -> bool {
    if needed > free_now {
        return false;
    }
    // Either the job is over before the head job needs its nodes…
    if now.saturating_add(walltime) <= shadow.shadow_time {
        return true;
    }
    // …or it only uses nodes the head job will not need.
    needed <= shadow.spare_nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_reservation_needed_when_enough_nodes() {
        assert_eq!(shadow_reservation(10, 10, &mut [(100, 5)], 0), None);
        assert_eq!(shadow_reservation(0, 0, &mut [], 0), None);
    }

    #[test]
    fn shadow_time_is_the_earliest_sufficient_release() {
        let mut releases = vec![(300, 4), (100, 2), (200, 3)];
        // Need 8, have 1: after t=100 -> 3, t=200 -> 6, t=300 -> 10 >= 8.
        let s = shadow_reservation(8, 1, &mut releases, 0).unwrap();
        assert_eq!(s.shadow_time, 300);
        assert_eq!(s.spare_nodes, 2);
        // Need 5: satisfied at t=200 with 6 free -> spare 1.
        let s = shadow_reservation(5, 1, &mut releases, 0).unwrap();
        assert_eq!(s.shadow_time, 200);
        assert_eq!(s.spare_nodes, 1);
    }

    #[test]
    fn impossible_head_job_has_no_shadow() {
        assert_eq!(shadow_reservation(100, 1, &mut [(10, 5)], 0), None);
    }

    #[test]
    fn shadow_time_never_precedes_now() {
        let s = shadow_reservation(3, 0, &mut [(50, 5)], 200).unwrap();
        assert_eq!(s.shadow_time, 200);
    }

    #[test]
    fn backfill_conditions() {
        let shadow = ShadowReservation {
            shadow_time: 1000,
            spare_nodes: 4,
        };
        // Short job finishing before the shadow time.
        assert!(can_backfill(10, 900, 20, 0, &shadow));
        // Too long, but small enough for the spare nodes.
        assert!(can_backfill(4, 10_000, 20, 0, &shadow));
        // Too long and too big.
        assert!(!can_backfill(5, 10_000, 20, 0, &shadow));
        // Not enough free nodes right now.
        assert!(!can_backfill(30, 10, 20, 0, &shadow));
        // Exactly ending at the shadow time is allowed (half-open semantics).
        assert!(can_backfill(10, 1000, 20, 0, &shadow));
        assert!(!can_backfill(10, 1001, 20, 0, &shadow));
    }

    #[test]
    fn default_config() {
        let c = BackfillConfig::default();
        assert!(c.enabled);
        assert_eq!(c.depth, 200);
    }
}

//! Discrete-event queue.
//!
//! The controller advances a simulation clock by popping events in
//! chronological order. Ties are broken by a monotonically increasing
//! sequence number so that replays are fully deterministic regardless of the
//! insertion pattern.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::job::JobId;
use crate::reservation::ReservationId;
use crate::time::SimTime;

/// Something that happens at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A job enters the pending queue.
    JobSubmit(JobId),
    /// A running job finishes execution.
    JobEnd(JobId),
    /// A reservation window opens (powercap becomes active, switch-off
    /// nodes get powered down, ...).
    ReservationStart(ReservationId),
    /// A reservation window closes.
    ReservationEnd(ReservationId),
    /// Periodic scheduling tick (used when no other event would trigger a
    /// scheduling pass, mirroring `slurmctld`'s periodic main loop).
    ScheduleTick,
    /// A node fails (fault injection): it powers off immediately and any job
    /// running on it is killed.
    NodeDown(usize),
    /// A failed node recovers: it powers back on and rejoins the idle pool.
    NodeUp(usize),
    /// End of the replayed interval: stop the simulation.
    EndOfSimulation,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedEvent {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Time-ordered event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(QueuedEvent { time, seq, event }));
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(q)| (q.time, q.event))
    }

    /// The time of the earliest queued event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(q)| q.time)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::JobEnd(1));
        q.push(10, Event::JobSubmit(1));
        q.push(20, Event::JobSubmit(2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, Event::JobSubmit(1))));
        assert_eq!(q.pop(), Some((20, Event::JobSubmit(2))));
        assert_eq!(q.pop(), Some((30, Event::JobEnd(1))));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, Event::JobSubmit(10));
        q.push(5, Event::JobSubmit(11));
        q.push(5, Event::ReservationStart(0));
        assert_eq!(q.pop(), Some((5, Event::JobSubmit(10))));
        assert_eq!(q.pop(), Some((5, Event::JobSubmit(11))));
        assert_eq!(q.pop(), Some((5, Event::ReservationStart(0))));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(100, Event::EndOfSimulation);
        q.push(1, Event::JobSubmit(0));
        assert_eq!(q.pop(), Some((1, Event::JobSubmit(0))));
        q.push(50, Event::JobEnd(0));
        q.push(2, Event::ScheduleTick);
        assert_eq!(q.pop(), Some((2, Event::ScheduleTick)));
        assert_eq!(q.pop(), Some((50, Event::JobEnd(0))));
        assert_eq!(q.pop(), Some((100, Event::EndOfSimulation)));
    }
}

//! Platform description and dynamic cluster state.
//!
//! [`Platform`] is the static description of the machine (topology, node
//! power profile, frequency ladder, cores per node) — the information SLURM
//! reads from `slurm.conf` (`MaxWatts`, `IdleWatts`, `DownWatts`,
//! `CpuFreqXWatts`, node counts). [`Cluster`] is the dynamic state the
//! controller mutates: per-node allocation, power states and the resulting
//! instantaneous power and energy (via
//! [`ClusterPowerAccountant`](apc_power::ClusterPowerAccountant)).

use apc_power::{
    ClusterPowerAccountant, Frequency, FrequencyLadder, Joules, NodePowerProfile, PowerState,
    Topology, Watts,
};
use serde::{Deserialize, Serialize};

use crate::job::JobId;
use crate::mask::NodeMask;
use crate::node::{AllocationState, SimNode};
use crate::time::SimTime;

/// Static description of the simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Hierarchical topology (nodes, chassis, racks).
    pub topology: Topology,
    /// Per-node power profile.
    pub profile: NodePowerProfile,
    /// DVFS ladder available on the nodes.
    pub ladder: FrequencyLadder,
    /// Cores per node (16 on Curie: two 8-core Sandy Bridge sockets).
    pub cores_per_node: u32,
}

impl Platform {
    /// The full Curie platform of the paper: 5 040 nodes, 80 640 cores.
    pub fn curie() -> Self {
        Platform {
            topology: Topology::curie(),
            profile: NodePowerProfile::curie(),
            ladder: FrequencyLadder::curie(),
            cores_per_node: 16,
        }
    }

    /// A Curie-like platform scaled down to `racks` racks (90 nodes per
    /// rack), keeping the same chassis/rack structure, power profile and
    /// frequency ladder. Used by tests, examples and Criterion benches.
    pub fn curie_scaled(racks: usize) -> Self {
        Platform {
            topology: Topology::curie_scaled(racks),
            profile: NodePowerProfile::curie(),
            ladder: FrequencyLadder::curie(),
            cores_per_node: 16,
        }
    }

    /// Number of compute nodes.
    pub fn total_nodes(&self) -> usize {
        self.topology.total_nodes()
    }

    /// Number of cores in the machine.
    pub fn total_cores(&self) -> u64 {
        self.total_nodes() as u64 * self.cores_per_node as u64
    }

    /// Maximum cluster power: every node busy at top frequency plus all
    /// shared equipment. This is the "100 %" reference of the powercap
    /// percentages in the paper's evaluation.
    pub fn max_power(&self) -> Watts {
        self.topology.max_cluster_power(&self.profile)
    }

    /// The power corresponding to a fraction of the maximum power.
    pub fn power_fraction(&self, fraction: f64) -> Watts {
        self.max_power() * fraction
    }
}

impl Default for Platform {
    fn default() -> Self {
        Platform::curie()
    }
}

/// Dynamic cluster state: node allocation + power accounting.
///
/// Availability is tracked twice, deliberately: per node (the
/// [`SimNode`] records, for inspection and power transitions) and as an
/// incrementally maintained [`NodeMask`] (the scheduling hot path — node
/// selection and blocked-set counting never scan the node table).
#[derive(Debug, Clone)]
pub struct Cluster {
    platform: Platform,
    nodes: Vec<SimNode>,
    accountant: ClusterPowerAccountant,
    /// Nodes currently available for scheduling (free, powered, undrained);
    /// kept in lockstep with every allocation/power transition.
    available: NodeMask,
}

impl Cluster {
    /// Create a cluster with every node free and idle.
    pub fn new(platform: Platform) -> Self {
        let n = platform.total_nodes();
        let nodes = (0..n).map(SimNode::new).collect();
        let accountant = ClusterPowerAccountant::new(&platform.topology, &platform.profile);
        Cluster {
            platform,
            nodes,
            accountant,
            available: NodeMask::full(n),
        }
    }

    /// The static platform description.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Total number of nodes.
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes currently available for scheduling.
    pub fn free_count(&self) -> usize {
        self.available.len()
    }

    /// The availability bitmask (free, powered, undrained nodes).
    pub fn available_mask(&self) -> &NodeMask {
        &self.available
    }

    /// The node records.
    pub fn nodes(&self) -> &[SimNode] {
        &self.nodes
    }

    /// One node record.
    pub fn node(&self, id: usize) -> &SimNode {
        &self.nodes[id]
    }

    /// The power accountant (read access for hooks and metrics).
    pub fn accountant(&self) -> &ClusterPowerAccountant {
        &self.accountant
    }

    /// Enable power-sample recording on the underlying accountant.
    pub fn record_power_samples(&mut self, enabled: bool) {
        self.accountant.set_record_samples(enabled);
    }

    /// Instantaneous cluster power.
    pub fn current_power(&self) -> Watts {
        self.accountant.current_power()
    }

    /// Total energy consumed so far (up to the last state change or
    /// [`advance_time`](Cluster::advance_time) call).
    pub fn energy(&self) -> Joules {
        self.accountant.energy()
    }

    /// Advance the energy integration clock without changing any state.
    pub fn advance_time(&mut self, time: SimTime) {
        self.accountant.advance_time(time);
    }

    /// Hypothetical cluster power if `nodes` were running a job at `freq`.
    pub fn power_if_busy(&self, nodes: &[usize], freq: Frequency) -> Watts {
        self.accountant.power_if(nodes, PowerState::Busy(freq))
    }

    /// Frequency-independent probe over a candidate set, for evaluating many
    /// hypothetical frequencies against the same nodes in O(1) each (the
    /// online algorithm's ladder walk). `current_power() + probe.delta(w)`
    /// equals [`power_if_busy`](Self::power_if_busy) at the matching
    /// frequency, bit for bit.
    pub fn busy_probe(&self, nodes: &[usize]) -> apc_power::BusyProbe {
        self.accountant.busy_probe(nodes)
    }

    /// Hypothetical cluster power if `nodes` were switched off.
    pub fn power_if_off(&self, nodes: &[usize]) -> Watts {
        self.accountant.power_if(nodes, PowerState::Off)
    }

    /// Iterate over the ids of nodes currently available for scheduling.
    pub fn available_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.available.iter()
    }

    /// Mark `nodes` as allocated to `job` running at `freq` starting at
    /// `time`.
    ///
    /// # Panics
    /// Panics if any of the nodes is not available (programming error in the
    /// scheduler).
    pub fn allocate(&mut self, job: JobId, nodes: &[usize], freq: Frequency, time: SimTime) {
        for &id in nodes {
            self.allocate_one(job, id, freq, time);
        }
    }

    /// [`allocate`](Self::allocate) over a bitmask node set.
    pub fn allocate_mask(&mut self, job: JobId, nodes: &NodeMask, freq: Frequency, time: SimTime) {
        for id in nodes.iter() {
            self.allocate_one(job, id, freq, time);
        }
    }

    fn allocate_one(&mut self, job: JobId, id: usize, freq: Frequency, time: SimTime) {
        let node = &mut self.nodes[id];
        assert!(
            node.is_available(),
            "node {id} is not available for job {job}"
        );
        node.alloc = AllocationState::Allocated(job);
        self.available.remove(id);
        self.accountant.set_state(id, PowerState::Busy(freq), time);
    }

    /// Release the nodes of a finished job back to the idle pool. Nodes that
    /// are marked `drained` (earmarked by an active switch-off reservation)
    /// are powered off instead of returning to idle.
    pub fn release(&mut self, nodes: &[usize], time: SimTime) {
        for &id in nodes {
            self.release_one(id, time);
        }
    }

    /// [`release`](Self::release) over a bitmask node set.
    pub fn release_mask(&mut self, nodes: &NodeMask, time: SimTime) {
        for id in nodes.iter() {
            self.release_one(id, time);
        }
    }

    fn release_one(&mut self, id: usize, time: SimTime) {
        let node = &mut self.nodes[id];
        debug_assert!(node.is_allocated(), "releasing a non-allocated node {id}");
        if node.drained {
            node.alloc = AllocationState::PoweredOff;
            self.accountant.set_state(id, PowerState::Off, time);
        } else {
            node.alloc = AllocationState::Free;
            self.available.insert(id);
            self.accountant.set_state(id, PowerState::Idle, time);
        }
    }

    /// Power off a set of nodes (only free nodes actually change state;
    /// allocated nodes are marked drained and will power off on release).
    /// Returns the nodes that were powered off immediately.
    pub fn power_off(&mut self, nodes: &[usize], time: SimTime) -> Vec<usize> {
        let mut switched = Vec::new();
        for &id in nodes {
            let node = &mut self.nodes[id];
            match node.alloc {
                AllocationState::Free => {
                    if !node.drained {
                        self.available.remove(id);
                    }
                    node.alloc = AllocationState::PoweredOff;
                    node.drained = true;
                    self.accountant.set_state(id, PowerState::Off, time);
                    switched.push(id);
                }
                AllocationState::Allocated(_) => {
                    node.drained = true;
                }
                AllocationState::PoweredOff => {
                    node.drained = true;
                }
            }
        }
        switched
    }

    /// Drain nodes without powering them off (maintenance reservations):
    /// running jobs keep their nodes, but no new job may be placed there.
    pub fn drain(&mut self, nodes: &[usize]) {
        for &id in nodes {
            let node = &mut self.nodes[id];
            if !node.drained && node.alloc == AllocationState::Free {
                self.available.remove(id);
            }
            node.drained = true;
        }
    }

    /// Clear the drain mark of nodes that are still powered on.
    pub fn undrain(&mut self, nodes: &[usize]) {
        for &id in nodes {
            let node = &mut self.nodes[id];
            if node.drained && node.alloc == AllocationState::Free {
                self.available.insert(id);
            }
            if node.alloc != AllocationState::PoweredOff {
                node.drained = false;
            }
        }
    }

    /// Power a set of nodes back on (to idle) and clear their drain mark.
    pub fn power_on(&mut self, nodes: &[usize], time: SimTime) {
        for &id in nodes {
            let node = &mut self.nodes[id];
            node.drained = false;
            if node.alloc == AllocationState::PoweredOff {
                node.alloc = AllocationState::Free;
                self.available.insert(id);
                self.accountant.set_state(id, PowerState::Idle, time);
            }
        }
    }

    /// Number of cores currently allocated to running jobs.
    pub fn allocated_cores(&self) -> u64 {
        self.nodes.iter().filter(|n| n.is_allocated()).count() as u64
            * self.platform.cores_per_node as u64
    }

    /// Number of nodes currently powered off.
    pub fn powered_off_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_off()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> Cluster {
        Cluster::new(Platform::curie_scaled(1))
    }

    #[test]
    fn platform_dimensions() {
        let p = Platform::curie();
        assert_eq!(p.total_nodes(), 5040);
        assert_eq!(p.total_cores(), 80_640);
        assert_eq!(p.cores_per_node, 16);
        let scaled = Platform::curie_scaled(2);
        assert_eq!(scaled.total_nodes(), 180);
        // Max power includes shared equipment.
        assert!(p.max_power().as_watts() > 5040.0 * 358.0);
        assert!(p.power_fraction(0.5).approx_eq(p.max_power() * 0.5, 1e-6));
    }

    #[test]
    fn new_cluster_all_free_and_idle() {
        let c = small_cluster();
        assert_eq!(c.total_nodes(), 90);
        assert_eq!(c.free_count(), 90);
        assert_eq!(c.allocated_cores(), 0);
        assert_eq!(c.powered_off_count(), 0);
        assert_eq!(c.available_nodes().count(), 90);
        let expected = Watts(90.0 * 117.0) + c.platform().topology.total_overhead();
        assert!(c.current_power().approx_eq(expected, 1e-6));
    }

    #[test]
    fn allocate_and_release_cycle() {
        let mut c = small_cluster();
        let nodes: Vec<usize> = (0..4).collect();
        c.allocate(7, &nodes, Frequency::from_ghz(2.7), 10);
        assert_eq!(c.free_count(), 86);
        assert_eq!(c.allocated_cores(), 64);
        assert_eq!(c.node(0).alloc, AllocationState::Allocated(7));
        let busy_power = c.current_power();
        c.release(&nodes, 100);
        assert_eq!(c.free_count(), 90);
        assert_eq!(c.allocated_cores(), 0);
        assert!(c.current_power() < busy_power);
        // Energy accumulated over the 90 s of execution plus the first 10 s.
        assert!(c.energy().as_joules() > 0.0);
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn allocating_a_busy_node_panics() {
        let mut c = small_cluster();
        c.allocate(1, &[0], Frequency::from_ghz(2.7), 0);
        c.allocate(2, &[0], Frequency::from_ghz(2.7), 0);
    }

    #[test]
    fn power_off_free_and_busy_nodes() {
        let mut c = small_cluster();
        c.allocate(1, &[0, 1], Frequency::from_ghz(2.7), 0);
        let switched = c.power_off(&[0, 1, 2, 3], 10);
        // Only the free nodes switch immediately.
        assert_eq!(switched, vec![2, 3]);
        assert_eq!(c.powered_off_count(), 2);
        assert!(c.node(0).drained && c.node(1).drained);
        // Releasing the job's nodes now powers them off instead of idling.
        c.release(&[0, 1], 20);
        assert_eq!(c.powered_off_count(), 4);
        assert_eq!(c.free_count(), 86);
        // Power back on restores availability.
        c.power_on(&[0, 1, 2, 3], 30);
        assert_eq!(c.powered_off_count(), 0);
        assert_eq!(c.free_count(), 90);
        assert!(c.node(0).is_available());
    }

    #[test]
    fn power_if_busy_matches_committed_allocation() {
        let mut c = small_cluster();
        let nodes: Vec<usize> = (10..20).collect();
        let predicted = c.power_if_busy(&nodes, Frequency::from_ghz(2.0));
        c.allocate(3, &nodes, Frequency::from_ghz(2.0), 0);
        assert!(predicted.approx_eq(c.current_power(), 1e-6));
    }

    #[test]
    fn power_if_off_includes_bonus() {
        let c = small_cluster();
        let chassis: Vec<usize> = (0..18).collect();
        let predicted = c.power_if_off(&chassis);
        let drop = c.current_power() - predicted;
        // 18 idle nodes -> off: 18*(117-14) + 500 W completion bonus.
        assert!(drop.approx_eq(Watts(18.0 * 103.0 + 500.0), 1e-6));
    }

    #[test]
    fn drain_and_undrain() {
        let mut c = small_cluster();
        c.drain(&[0, 1]);
        assert_eq!(c.free_count(), 88);
        assert!(!c.node(0).is_available());
        assert_eq!(c.powered_off_count(), 0, "drained nodes stay powered");
        // Draining twice does not double-count.
        c.drain(&[0]);
        assert_eq!(c.free_count(), 88);
        c.undrain(&[0, 1]);
        assert_eq!(c.free_count(), 90);
        assert!(c.node(0).is_available());
        // Power-off after drain keeps the count consistent.
        c.drain(&[2]);
        c.power_off(&[2], 5);
        assert_eq!(c.free_count(), 89);
        assert_eq!(c.powered_off_count(), 1);
        // Undrain does not resurrect a powered-off node; power_on does.
        c.undrain(&[2]);
        assert_eq!(c.free_count(), 89);
        c.power_on(&[2], 10);
        assert_eq!(c.free_count(), 90);
    }

    #[test]
    fn free_count_tracks_all_transitions() {
        let mut c = small_cluster();
        c.allocate(1, &[5], Frequency::from_ghz(2.7), 0);
        c.power_off(&[6, 7], 0);
        assert_eq!(c.free_count(), 87);
        assert_eq!(
            c.free_count(),
            c.nodes().iter().filter(|n| n.is_available()).count()
        );
        c.release(&[5], 10);
        c.power_on(&[6, 7], 10);
        assert_eq!(c.free_count(), 90);
    }

    /// The incrementally maintained availability mask must agree with the
    /// per-node records after every kind of transition.
    #[test]
    fn availability_mask_stays_in_lockstep_with_node_records() {
        let mut c = small_cluster();
        let check = |c: &Cluster| {
            for n in c.nodes() {
                assert_eq!(
                    c.available_mask().contains(n.id),
                    n.is_available(),
                    "mask and node record disagree on node {}",
                    n.id
                );
            }
            assert_eq!(c.available_mask().len(), c.free_count());
        };
        check(&c);
        let mask: crate::mask::NodeMask = (0..4).collect();
        c.allocate_mask(3, &mask, Frequency::from_ghz(2.7), 0);
        check(&c);
        c.power_off(&[2, 10, 11], 5); // 2 is allocated: drained, not switched
        check(&c);
        c.drain(&[20, 21]);
        check(&c);
        c.release_mask(&mask, 10); // node 2 powers off instead of idling
        check(&c);
        assert_eq!(c.powered_off_count(), 3);
        c.undrain(&[20, 21]);
        c.power_on(&[2, 10, 11], 20);
        check(&c);
        assert_eq!(c.free_count(), 90);
        assert_eq!(c.available_nodes().count(), 90);
    }
}

//! Controller-side observability: schedule-pass histograms, blocked-set
//! cache hit/miss counters, power-probe path counters and per-pass spans.
//!
//! A [`ControllerObs`] is attached with
//! [`Controller::set_obs`](crate::controller::Controller::set_obs). The
//! default is [`ControllerObs::disabled`]: every publication is a single
//! branch, and the controller only reads the clock when observability is
//! live — the simulation itself never sees any of it (instrumentation
//! neutrality is enforced by the workspace's golden-fingerprint tests).
//!
//! Metric names (all under the `rjms.` prefix):
//!
//! | name                             | kind      | meaning                               |
//! |----------------------------------|-----------|---------------------------------------|
//! | `rjms.schedule_pass.duration_ns` | histogram | wall time of one non-empty pass       |
//! | `rjms.schedule_pass.queue_depth` | histogram | pending jobs at the start of the pass |
//! | `rjms.blocked_cache.hits`        | counter   | blocked-set signature cache hits      |
//! | `rjms.blocked_cache.misses`      | counter   | … misses (set built from scratch)     |
//! | `rjms.probe.fast`                | counter   | power probes on the `Busy` fast path  |
//! | `rjms.probe.slow`                | counter   | power probes walking the group scratch|

use apc_obs::{Counter, Histogram, Registry, SpanRecorder, SpanStart};

/// Per-pass measurements the controller hands to
/// [`ControllerObs::pass_end`]. Accumulated in plain locals inside the
/// scheduling loop (free), published once per pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassMeasurements {
    /// Pending jobs at the start of the pass.
    pub queue_depth: usize,
    /// Blocked-set signature cache hits during the pass.
    pub cache_hits: u64,
    /// Blocked-set signature cache misses during the pass.
    pub cache_misses: u64,
    /// Jobs started by the pass.
    pub started: u64,
}

/// Observability handles for one [`Controller`](crate::controller::Controller).
#[derive(Debug, Clone, Default)]
pub struct ControllerObs {
    pass_duration_ns: Histogram,
    pass_queue_depth: Histogram,
    blocked_cache_hits: Counter,
    blocked_cache_misses: Counter,
    probe_fast: Counter,
    probe_slow: Counter,
    spans: SpanRecorder,
    /// Trace lane (`tid`) the pass spans land on — lets several controllers
    /// (e.g. one per profiled scenario) share a recorder without their spans
    /// overlapping in the viewer.
    lane: u64,
    /// Accountant probe totals already published, so each pass publishes
    /// deltas (the accountant counts for its whole lifetime). Plain fields:
    /// a controller is single-threaded.
    published_fast: u64,
    published_slow: u64,
}

impl ControllerObs {
    /// Build handles from `registry` and record pass spans on `spans` (pass
    /// [`SpanRecorder::disabled`] for metrics-only instrumentation).
    pub fn new(registry: &Registry, spans: SpanRecorder) -> Self {
        ControllerObs {
            pass_duration_ns: registry.histogram("rjms.schedule_pass.duration_ns"),
            pass_queue_depth: registry.histogram("rjms.schedule_pass.queue_depth"),
            blocked_cache_hits: registry.counter("rjms.blocked_cache.hits"),
            blocked_cache_misses: registry.counter("rjms.blocked_cache.misses"),
            probe_fast: registry.counter("rjms.probe.fast"),
            probe_slow: registry.counter("rjms.probe.slow"),
            spans,
            lane: 0,
            published_fast: 0,
            published_slow: 0,
        }
    }

    /// The do-nothing default.
    pub fn disabled() -> Self {
        ControllerObs::default()
    }

    /// Put this controller's spans on trace lane `lane` (builder style).
    pub fn with_lane(mut self, lane: u64) -> Self {
        self.lane = lane;
        self
    }

    /// Whether anything here records (metrics or spans).
    #[inline]
    pub fn is_live(&self) -> bool {
        self.pass_duration_ns.is_live() || self.blocked_cache_hits.is_live() || self.spans.is_live()
    }

    /// Mark the start of a schedule pass (reads the clock only when live).
    #[inline]
    pub fn pass_begin(&self) -> SpanStart {
        self.spans.start_if(self.is_live())
    }

    /// Publish one finished schedule pass: histograms, cache counters, the
    /// probe-count deltas since the previous publication, and a span.
    pub fn pass_end(&mut self, pass: SpanStart, m: PassMeasurements, probe_counts: (u64, u64)) {
        if !self.is_live() {
            return;
        }
        self.pass_duration_ns.record(pass.elapsed_ns());
        self.pass_queue_depth.record(m.queue_depth as u64);
        self.blocked_cache_hits.add(m.cache_hits);
        self.blocked_cache_misses.add(m.cache_misses);
        let (fast, slow) = probe_counts;
        let fast_delta = fast - self.published_fast;
        let slow_delta = slow - self.published_slow;
        self.probe_fast.add(fast_delta);
        self.probe_slow.add(slow_delta);
        self.published_fast = fast;
        self.published_slow = slow;
        self.spans.complete(
            pass,
            "schedule_pass",
            "rjms",
            self.lane,
            vec![
                ("pending", m.queue_depth.into()),
                ("started", m.started.into()),
                ("cache_hits", m.cache_hits.into()),
                ("cache_misses", m.cache_misses.into()),
                ("probe_fast", fast_delta.into()),
                ("probe_slow", slow_delta.into()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_publishes_nothing() {
        let mut obs = ControllerObs::disabled();
        assert!(!obs.is_live());
        let pass = obs.pass_begin();
        obs.pass_end(pass, PassMeasurements::default(), (5, 3));
        // Nothing to assert against — the point is it does not panic and the
        // probe baseline is untouched (publication was skipped entirely).
        assert_eq!(obs.published_fast, 0);
    }

    #[test]
    fn pass_end_publishes_deltas_not_totals() {
        let registry = Registry::new();
        let mut obs = ControllerObs::new(&registry, SpanRecorder::disabled());
        assert!(obs.is_live());
        let m = PassMeasurements {
            queue_depth: 12,
            cache_hits: 4,
            cache_misses: 1,
            started: 2,
        };
        obs.pass_end(obs.pass_begin(), m, (100, 10));
        obs.pass_end(obs.pass_begin(), m, (150, 12));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rjms.probe.fast"), Some(150));
        assert_eq!(snap.counter("rjms.probe.slow"), Some(12));
        assert_eq!(snap.counter("rjms.blocked_cache.hits"), Some(8));
        assert_eq!(snap.counter("rjms.blocked_cache.misses"), Some(2));
        let depth = snap.histogram("rjms.schedule_pass.queue_depth").unwrap();
        assert_eq!(depth.count, 2);
        assert_eq!(depth.min, 12);
    }

    #[test]
    fn spans_are_recorded_when_a_recorder_is_attached() {
        let recorder = SpanRecorder::new();
        let mut obs = ControllerObs::new(&Registry::disabled(), recorder.clone());
        assert!(obs.is_live(), "spans alone keep the obs live");
        obs.pass_end(obs.pass_begin(), PassMeasurements::default(), (1, 0));
        let events = recorder.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "schedule_pass");
        assert_eq!(events[0].category, "rjms");
    }
}

//! Fixed-size node bitsets.
//!
//! Node sets are the currency of the scheduling hot path: the cluster's
//! availability, the nodes blocked by overlapping reservations, a job's
//! allocation. The seed implementation shuttled them around as
//! `Vec<usize>` / `HashSet<usize>`, paying a heap allocation and a hashing
//! pass per set per scheduling pass. [`NodeMask`] replaces all of that with
//! one `u64` word per 64 nodes (a full 5 040-node Curie is 79 words):
//! membership is a shift, set algebra is word-wise `&`/`|`/`!`, counting is
//! `popcnt`, and iteration is a `trailing_zeros` scan — all branch-light
//! and allocation-free once the words are sized for the platform.

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = u64::BITS as usize;

/// A set of node ids backed by a bit vector.
///
/// The mask grows on demand (inserting id `n` sizes it for at least
/// `n + 1` bits) and never shrinks, so scratch masks reused across
/// scheduling passes stop allocating once they have seen the platform's
/// node count. The number of set bits is cached, making [`len`](Self::len)
/// O(1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeMask {
    words: Vec<u64>,
    ones: usize,
}

impl NodeMask {
    /// An empty mask sized for node ids `0..nbits`.
    pub fn with_capacity(nbits: usize) -> Self {
        NodeMask {
            words: vec![0; nbits.div_ceil(WORD_BITS)],
            ones: 0,
        }
    }

    /// A mask containing every id in `0..nbits`.
    pub fn full(nbits: usize) -> Self {
        let mut mask = NodeMask::with_capacity(nbits);
        for word in 0..nbits / WORD_BITS {
            mask.words[word] = u64::MAX;
        }
        let tail = nbits % WORD_BITS;
        if tail > 0 {
            mask.words[nbits / WORD_BITS] = (1u64 << tail) - 1;
        }
        mask.ones = nbits;
        mask
    }

    /// Number of ids in the set (cached popcount).
    #[inline]
    pub fn len(&self) -> usize {
        self.ones
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Allocated backing-word capacity (allocation-tracking diagnostics).
    pub fn word_capacity(&self) -> usize {
        self.words.capacity()
    }

    /// Does the set contain `id`?
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        self.words
            .get(id / WORD_BITS)
            .is_some_and(|w| w & (1u64 << (id % WORD_BITS)) != 0)
    }

    /// Insert `id`, growing the mask if needed. Returns whether the id was
    /// newly inserted.
    pub fn insert(&mut self, id: usize) -> bool {
        let word = id / WORD_BITS;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (id % WORD_BITS);
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        self.ones += usize::from(fresh);
        fresh
    }

    /// Remove `id`. Returns whether it was present.
    pub fn remove(&mut self, id: usize) -> bool {
        let Some(word) = self.words.get_mut(id / WORD_BITS) else {
            return false;
        };
        let bit = 1u64 << (id % WORD_BITS);
        let present = *word & bit != 0;
        *word &= !bit;
        self.ones -= usize::from(present);
        present
    }

    /// Empty the set, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Union `other` into `self`.
    pub fn union_with(&mut self, other: &NodeMask) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut ones = 0usize;
        for (dst, &src) in self.words.iter_mut().zip(other.words.iter()) {
            *dst |= src;
            ones += dst.count_ones() as usize;
        }
        for &dst in &self.words[other.words.len()..] {
            ones += dst.count_ones() as usize;
        }
        self.ones = ones;
    }

    /// `|self & !other|` without materialising the difference — the count
    /// of selectable nodes given a blocked set.
    pub fn count_and_not(&self, other: &NodeMask) -> usize {
        self.words
            .iter()
            .enumerate()
            .map(|(i, &w)| (w & !other.words.get(i).copied().unwrap_or(0)).count_ones() as usize)
            .sum()
    }

    /// Iterate the set ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| BitIter {
            word: w,
            base: i * WORD_BITS,
        })
    }

    /// Iterate `self & !blocked` restricted to ids in `[start, end)`, in
    /// ascending order — the inner loop of node selection (a chassis range
    /// for the contiguous policy, the whole platform for first-fit).
    pub fn iter_and_not_in<'a>(
        &'a self,
        blocked: &'a NodeMask,
        start: usize,
        end: usize,
    ) -> AndNotRangeIter<'a> {
        AndNotRangeIter {
            mask: self,
            blocked,
            cursor: start,
            end: end.min(self.words.len() * WORD_BITS),
            current: None,
        }
    }

    /// Iterate `self & !blocked` over the whole mask.
    pub fn iter_and_not<'a>(&'a self, blocked: &'a NodeMask) -> AndNotRangeIter<'a> {
        self.iter_and_not_in(blocked, 0, self.words.len() * WORD_BITS)
    }
}

impl PartialEq for NodeMask {
    /// Set equality: two masks are equal when they contain the same ids,
    /// regardless of how many zero words each one has grown.
    fn eq(&self, other: &Self) -> bool {
        if self.ones != other.ones {
            return false;
        }
        let common = self.words.len().min(other.words.len());
        self.words[..common] == other.words[..common]
            && self.words[common..].iter().all(|&w| w == 0)
            && other.words[common..].iter().all(|&w| w == 0)
    }
}

impl Eq for NodeMask {}

impl FromIterator<usize> for NodeMask {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut mask = NodeMask::default();
        for id in iter {
            mask.insert(id);
        }
        mask
    }
}

impl Extend<usize> for NodeMask {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

/// Iterator over the set bits of one word (helper for [`NodeMask::iter`]).
struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

/// Iterator over `mask & !blocked` within an id range; see
/// [`NodeMask::iter_and_not_in`].
pub struct AndNotRangeIter<'a> {
    mask: &'a NodeMask,
    blocked: &'a NodeMask,
    cursor: usize,
    end: usize,
    current: Option<BitIter>,
}

impl Iterator for AndNotRangeIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if let Some(iter) = &mut self.current {
                if let Some(id) = iter.next() {
                    if id < self.end {
                        return Some(id);
                    }
                    self.current = None;
                    self.cursor = self.end;
                    return None;
                }
                self.current = None;
            }
            if self.cursor >= self.end {
                return None;
            }
            let word_index = self.cursor / WORD_BITS;
            let mut word = self.mask.words[word_index]
                & !self.blocked.words.get(word_index).copied().unwrap_or(0);
            // Mask off ids below the cursor inside the first word.
            let offset = self.cursor % WORD_BITS;
            if offset > 0 {
                word &= !((1u64 << offset) - 1);
            }
            self.current = Some(BitIter {
                word,
                base: word_index * WORD_BITS,
            });
            self.cursor = (word_index + 1) * WORD_BITS;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_len() {
        let mut m = NodeMask::with_capacity(90);
        assert!(m.is_empty());
        assert!(m.insert(0));
        assert!(m.insert(63));
        assert!(m.insert(64));
        assert!(m.insert(89));
        assert!(!m.insert(89), "double insert is a no-op");
        assert_eq!(m.len(), 4);
        assert!(m.contains(63) && m.contains(64));
        assert!(!m.contains(1) && !m.contains(1000));
        assert!(m.remove(63));
        assert!(!m.remove(63));
        assert_eq!(m.len(), 3);
        m.clear();
        assert!(m.is_empty());
        assert!(!m.contains(0));
    }

    #[test]
    fn grows_on_demand() {
        let mut m = NodeMask::default();
        m.insert(500);
        assert!(m.contains(500));
        assert_eq!(m.len(), 1);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![500]);
    }

    #[test]
    fn full_and_iteration_order() {
        let m = NodeMask::full(130);
        assert_eq!(m.len(), 130);
        let ids: Vec<usize> = m.iter().collect();
        assert_eq!(ids, (0..130).collect::<Vec<_>>());
        assert!(!m.contains(130));
        // Word-aligned capacity has no tail word.
        let aligned = NodeMask::full(128);
        assert_eq!(aligned.len(), 128);
    }

    #[test]
    fn union_and_count_and_not() {
        let a: NodeMask = [1usize, 5, 64, 70].into_iter().collect();
        let b: NodeMask = [5usize, 6, 200].into_iter().collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 6);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 6, 64, 70, 200]);
        // a & !b = {1, 64, 70}.
        assert_eq!(a.count_and_not(&b), 3);
        // Blocked mask smaller than self: missing words block nothing.
        assert_eq!(b.count_and_not(&a), 2);
        assert_eq!(a.count_and_not(&NodeMask::default()), 4);
    }

    #[test]
    fn and_not_range_iteration() {
        let avail = NodeMask::full(200);
        let blocked: NodeMask = (0..100).filter(|i| i % 2 == 0).collect();
        let odd: Vec<usize> = avail.iter_and_not_in(&blocked, 10, 20).collect();
        assert_eq!(odd, vec![11, 13, 15, 17, 19]);
        // Past the blocked mask's extent everything is selectable.
        let tail: Vec<usize> = avail.iter_and_not_in(&blocked, 195, 400).collect();
        assert_eq!(tail, vec![195, 196, 197, 198, 199]);
        // Whole-mask variant.
        assert_eq!(avail.iter_and_not(&blocked).count(), 150);
        // Empty range.
        assert_eq!(avail.iter_and_not_in(&blocked, 50, 50).count(), 0);
    }

    #[test]
    fn set_equality_ignores_capacity() {
        let mut a = NodeMask::with_capacity(64);
        let mut b = NodeMask::with_capacity(4096);
        a.insert(3);
        b.insert(3);
        assert_eq!(a, b);
        b.insert(70);
        assert_ne!(a, b);
    }

    #[test]
    fn extend_collects_ids() {
        let mut m = NodeMask::default();
        m.extend(10..14);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![10, 11, 12, 13]);
    }
}

//! The scheduling hook: where the powercap logic plugs into the controller.
//!
//! The paper's Fig. 1 shows the modified (grey) boxes of SLURM: the offline
//! algorithm triggered by powercap reservations, and the online algorithm
//! inserted into the node-selection phase. [`SchedulingHook`] is that
//! interface. The RJMS itself ships only the [`NullHook`] (no power control);
//! the `apc-core` crate provides the real implementation with the SHUT, DVFS
//! and MIX policies.

use apc_power::{Frequency, Watts};

use crate::cluster::Cluster;
use crate::job::{Job, JobId};
use crate::reservation::ReservationBook;
use crate::time::{SimTime, TimeWindow};

/// Decision returned by the hook when the controller is about to start a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartDecision {
    /// Start the job now, with its cores clocked at `frequency`.
    Start {
        /// CPU frequency the job must run at.
        frequency: Frequency,
    },
    /// Keep the job pending (e.g. no frequency keeps the cluster under the
    /// power budget).
    Postpone,
}

/// The plan returned by the offline phase for a powercap reservation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OfflinePlan {
    /// Nodes to reserve for switch-off during the powercap window.
    pub switch_off_nodes: Vec<usize>,
}

/// Interface between the controller and the power-aware scheduling logic.
pub trait SchedulingHook {
    /// Called during the allocation phase, before a pending job is started on
    /// `candidate_nodes` at `now`. The default implementation starts every
    /// job at the platform's maximum frequency.
    fn authorize_start(
        &mut self,
        cluster: &Cluster,
        reservations: &ReservationBook,
        job: &Job,
        candidate_nodes: &[usize],
        now: SimTime,
    ) -> StartDecision {
        let _ = (cluster, reservations, job, candidate_nodes, now);
        StartDecision::Start {
            frequency: cluster_max_frequency(cluster),
        }
    }

    /// Called when a powercap reservation is submitted (the offline phase of
    /// the paper's algorithm). The returned nodes are placed under a
    /// switch-off reservation covering the same window.
    fn plan_powercap(
        &mut self,
        cluster: &Cluster,
        reservations: &ReservationBook,
        window: TimeWindow,
        cap: Watts,
        now: SimTime,
    ) -> OfflinePlan {
        let _ = (cluster, reservations, window, cap, now);
        OfflinePlan::default()
    }

    /// Runtime stretch factor applied to a job running at `frequency`
    /// (1.0 at the maximum frequency).
    fn runtime_factor(&self, frequency: Frequency) -> f64 {
        let _ = frequency;
        1.0
    }

    /// Runtime stretch factor for a *specific* job. The default ignores the
    /// job and delegates to [`runtime_factor`](SchedulingHook::runtime_factor);
    /// application-aware hooks (the paper's future-work extension where an
    /// application provides its own DVFS sensitivity) override this to use
    /// the job's application class.
    fn runtime_factor_for(&self, job: &Job, frequency: Frequency) -> f64 {
        let _ = job;
        self.runtime_factor(frequency)
    }

    /// Called when a powercap window opens while the cluster consumes more
    /// than the cap. Return the jobs to kill ("extreme actions"); the default
    /// — like the paper's default — kills nothing and lets the consumption
    /// decay as jobs finish.
    fn on_cap_start(
        &mut self,
        cluster: &Cluster,
        running_jobs: &[&Job],
        cap: Watts,
        now: SimTime,
    ) -> Vec<JobId> {
        let _ = (cluster, running_jobs, cap, now);
        Vec::new()
    }
}

/// Highest frequency of the cluster's ladder.
pub(crate) fn cluster_max_frequency(cluster: &Cluster) -> Frequency {
    cluster.platform().ladder.max()
}

/// A hook that performs no power control at all: every job starts immediately
/// at the maximum frequency. This is the paper's "100 %/None" baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHook;

impl SchedulingHook for NullHook {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Platform;
    use crate::job::JobSubmission;

    #[test]
    fn null_hook_starts_everything_at_fmax() {
        let cluster = Cluster::new(Platform::curie_scaled(1));
        let reservations = ReservationBook::new();
        let job = Job::new(0, JobSubmission::new(0, 0, 64, 3600, 60));
        let mut hook = NullHook;
        let decision = hook.authorize_start(&cluster, &reservations, &job, &[0, 1, 2, 3], 0);
        assert_eq!(
            decision,
            StartDecision::Start {
                frequency: Frequency::from_ghz(2.7)
            }
        );
        assert_eq!(hook.runtime_factor(Frequency::from_ghz(1.2)), 1.0);
        assert!(hook
            .plan_powercap(
                &cluster,
                &reservations,
                TimeWindow::new(0, 10),
                Watts(1000.0),
                0
            )
            .switch_off_nodes
            .is_empty());
        assert!(hook
            .on_cap_start(&cluster, &[], Watts(1000.0), 0)
            .is_empty());
    }
}

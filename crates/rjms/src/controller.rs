//! The controller: the simulator's `slurmctld`.
//!
//! The controller owns the cluster state, the pending queue, the event queue,
//! the reservation book and the scheduling hook. It advances the simulation
//! clock by consuming events (submissions, completions, reservation windows)
//! and runs a scheduling pass — priority sort, FCFS + EASY backfilling,
//! node selection, hook authorisation — after every event batch.
//!
//! Because the simulation is a pure discrete-event system, the cluster state
//! only changes at events, so running the scheduler exactly once per event
//! timestamp is both sufficient and deterministic.

use apc_power::{Frequency, Joules, Watts};

use crate::backfill::{can_backfill, shadow_reservation, ShadowReservation};
use crate::cluster::{Cluster, Platform};
use crate::config::ControllerConfig;
use crate::event::{Event, EventQueue};
use crate::hook::{NullHook, SchedulingHook, StartDecision};
use crate::job::{Job, JobId, JobState, JobSubmission};
use crate::log::{SimEventKind, SimLog};
use crate::mask::NodeMask;
use crate::obs::{ControllerObs, PassMeasurements};
use crate::priority::{FairShareTracker, MultifactorPriority};
use crate::reservation::{ReservationBook, ReservationId, ReservationKind};
use crate::select::{NodeSelector, SelectScratch};
use crate::time::{SimTime, TimeWindow};

/// Width of the blocked-set signature: the number of node-carrying
/// reservations that can be distinguished by one bit each. Passes seeing
/// more fall back to exact per-job blocked-set computation (no silent
/// truncation — see `schedule_pass`).
const SIGNATURE_BITS: usize = 128;

/// Aggregate results of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// End of the simulated interval.
    pub horizon: SimTime,
    /// Jobs that were started during the interval.
    pub launched_jobs: usize,
    /// Jobs that ran to completion.
    pub completed_jobs: usize,
    /// Jobs killed by the controller.
    pub killed_jobs: usize,
    /// Jobs still pending at the end of the interval.
    pub pending_jobs: usize,
    /// Useful work delivered inside the interval, in core-seconds.
    pub work_core_seconds: f64,
    /// Total energy consumed by the cluster over the interval.
    pub energy: Joules,
    /// Mean queue wait time of started jobs, in seconds.
    pub mean_wait_seconds: f64,
}

impl SimulationReport {
    /// Work expressed in core-hours.
    pub fn work_core_hours(&self) -> f64 {
        self.work_core_seconds / 3600.0
    }
}

/// One cached blocked-set: the nodes blocked by a specific combination of
/// overlapping reservations (identified by its bit signature) plus the
/// availability count given that set. The node set only depends on the
/// reservation book, so it survives job starts within a pass; the *count*
/// depends on cluster availability and is invalidated (recomputed lazily)
/// whenever a job start changes it.
#[derive(Debug, Default)]
struct BlockedEntry {
    signature: u128,
    blocked: NodeMask,
    count: usize,
    count_valid: bool,
}

/// Reusable buffers for `schedule_pass`. Taken out of the controller for
/// the duration of a pass (so the borrow checker sees disjoint borrows) and
/// put back afterwards: in the steady state a pass performs no heap
/// allocation for node sets — every `Vec` and [`NodeMask`] here has reached
/// its high-water capacity and is merely cleared.
#[derive(Debug, Default)]
struct ScheduleScratch {
    /// Snapshot of the priority-sorted pending queue for this pass.
    order: Vec<JobId>,
    /// `(walltime_end, node_count)` of running jobs, for the shadow
    /// reservation (sorted in place by `shadow_reservation`).
    releases: Vec<(SimTime, usize)>,
    /// The node selection of the job currently being examined.
    selected: Vec<usize>,
    /// The same selection as a mask (what the started job keeps).
    selected_mask: NodeMask,
    /// Per-chassis counts for the contiguous selection policy.
    select: SelectScratch,
    /// Census of node-carrying reservations: `(signature bit, window, id)`.
    node_res: Vec<(u128, TimeWindow, ReservationId)>,
    /// Blocked-set cache, keyed by signature; `cache[..cache_live]` are the
    /// entries of the current pass (dead entries keep their buffers).
    cache: Vec<BlockedEntry>,
    cache_live: usize,
    /// Exact per-job blocked set, used when the census overflows the
    /// signature width.
    exact_blocked: NodeMask,
}

impl ScheduleScratch {
    /// Sum of buffer capacities — a monotone proxy for "did this pass
    /// allocate". Units are mixed (elements and words); only growth
    /// matters.
    fn footprint(&self) -> usize {
        self.order.capacity()
            + self.releases.capacity()
            + self.selected.capacity()
            + self.selected_mask.word_capacity()
            + self.select.footprint()
            + self.node_res.capacity()
            + self.cache.capacity()
            + self
                .cache
                .iter()
                .map(|e| e.blocked.word_capacity())
                .sum::<usize>()
            + self.exact_blocked.word_capacity()
    }
}

/// The central resource and job management daemon.
pub struct Controller {
    cluster: Cluster,
    config: ControllerConfig,
    jobs: Vec<Job>,
    pending: Vec<JobId>,
    running: Vec<JobId>,
    events: EventQueue,
    reservations: ReservationBook,
    hook: Box<dyn SchedulingHook>,
    priority: MultifactorPriority,
    fairshare: FairShareTracker,
    selector: NodeSelector,
    log: SimLog,
    now: SimTime,
    horizon: Option<SimTime>,
    finished: bool,
    events_processed: u64,
    sched_passes: u64,
    scratch: ScheduleScratch,
    scratch_growth_passes: u64,
    obs: ControllerObs,
}

impl Controller {
    /// Create a controller over `platform` with the default (power-unaware)
    /// hook.
    pub fn new(platform: Platform, config: ControllerConfig) -> Self {
        Controller::with_hook(platform, config, Box::new(NullHook))
    }

    /// Create a controller with an explicit scheduling hook (the powercap
    /// logic of `apc-core`).
    pub fn with_hook(
        platform: Platform,
        config: ControllerConfig,
        hook: Box<dyn SchedulingHook>,
    ) -> Self {
        let mut cluster = Cluster::new(platform);
        cluster.record_power_samples(config.record_power_samples);
        Controller {
            cluster,
            config,
            jobs: Vec::new(),
            pending: Vec::new(),
            running: Vec::new(),
            events: EventQueue::new(),
            reservations: ReservationBook::new(),
            hook,
            priority: MultifactorPriority::new(config.params.priority),
            fairshare: FairShareTracker::default(),
            selector: NodeSelector::new(config.selection),
            log: SimLog::new(),
            now: 0,
            horizon: None,
            finished: false,
            events_processed: 0,
            sched_passes: 0,
            scratch: ScheduleScratch::default(),
            scratch_growth_passes: 0,
            obs: ControllerObs::disabled(),
        }
    }

    /// Attach observability handles (schedule-pass histograms, blocked-set
    /// cache counters, probe-path counters, per-pass spans). Disabled by
    /// default; never affects scheduling decisions or any simulation output.
    pub fn set_obs(&mut self, obs: ControllerObs) {
        self.obs = obs;
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The cluster state.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// All jobs known to the controller.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// One job.
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id]
    }

    /// The simulation log.
    pub fn log(&self) -> &SimLog {
        &self.log
    }

    /// The reservation book.
    pub fn reservations(&self) -> &ReservationBook {
        &self.reservations
    }

    /// Number of jobs waiting in the queue.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Number of running jobs.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Total events consumed by the simulation loop so far (throughput
    /// counter for the perf-baseline tooling).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of scheduling passes run so far (one per event batch).
    pub fn schedule_passes(&self) -> u64 {
        self.sched_passes
    }

    /// Number of scheduling passes whose scratch buffers had to grow.
    /// After warm-up this stays flat: the steady state performs no per-pass
    /// heap allocation for node sets (asserted by
    /// `steady_state_scheduling_stops_allocating`).
    pub fn scratch_growth_passes(&self) -> u64 {
        self.scratch_growth_passes
    }

    /// Take the simulation log out of the controller (leaving an empty
    /// one) — lets the replay harness hand the log to its outcome without
    /// cloning every event.
    pub fn take_log(&mut self) -> SimLog {
        std::mem::replace(&mut self.log, SimLog::new())
    }

    /// Seed historical fair-share usage (phase ii of the replay methodology).
    pub fn seed_fairshare(&mut self, user: usize, core_seconds: f64) {
        self.fairshare.seed_usage(user, core_seconds);
    }

    // ------------------------------------------------------------------
    // Submission API
    // ------------------------------------------------------------------

    /// Submit a job. If its submit time is in the past it is queued
    /// immediately at the current time.
    pub fn submit(&mut self, submission: JobSubmission) -> JobId {
        let id = self.jobs.len();
        let at = submission.submit_time.max(self.now);
        self.jobs.push(Job::new(id, submission));
        self.events.push(at, Event::JobSubmit(id));
        id
    }

    /// Submit a whole batch of jobs (a workload trace).
    pub fn submit_all(&mut self, submissions: impl IntoIterator<Item = JobSubmission>) {
        for s in submissions {
            self.submit(s);
        }
    }

    /// Create a powercap reservation: during `window` the cluster power must
    /// stay below `cap`. The offline part of the scheduling hook is invoked
    /// immediately (the paper's Algorithm 1) and its switch-off plan, if any,
    /// is registered as a switch-off reservation on the same window.
    ///
    /// Returns the powercap reservation id and the optional switch-off
    /// reservation id.
    pub fn add_powercap_reservation(
        &mut self,
        window: TimeWindow,
        cap: Watts,
    ) -> (ReservationId, Option<ReservationId>) {
        let plan =
            self.hook
                .plan_powercap(&self.cluster, &self.reservations, window, cap, self.now);
        let cap_id = self
            .reservations
            .add(window, ReservationKind::PowerCap { cap });
        self.events
            .push(window.start, Event::ReservationStart(cap_id));
        self.events.push(window.end, Event::ReservationEnd(cap_id));
        let off_id = if plan.switch_off_nodes.is_empty() {
            None
        } else {
            let id = self.reservations.add(
                window,
                ReservationKind::SwitchOff {
                    nodes: plan.switch_off_nodes,
                },
            );
            self.events.push(window.start, Event::ReservationStart(id));
            self.events.push(window.end, Event::ReservationEnd(id));
            Some(id)
        };
        (cap_id, off_id)
    }

    /// Create a maintenance reservation draining `nodes` during `window`.
    pub fn add_maintenance_reservation(
        &mut self,
        window: TimeWindow,
        nodes: Vec<usize>,
    ) -> ReservationId {
        let id = self
            .reservations
            .add(window, ReservationKind::Maintenance { nodes });
        self.events.push(window.start, Event::ReservationStart(id));
        self.events.push(window.end, Event::ReservationEnd(id));
        id
    }

    /// Inject a node outage (fault injection): the node fails at `down` —
    /// powering off immediately and killing whatever job occupies it — and
    /// recovers at `up`, rejoining the idle pool. Outages are ordinary
    /// events, so replays with the same plan are fully deterministic.
    pub fn inject_node_outage(&mut self, node: usize, down: SimTime, up: SimTime) {
        assert!(
            node < self.cluster.total_nodes(),
            "outage on node {node} outside the platform"
        );
        assert!(down < up, "outage must recover after it fails");
        self.events.push(down, Event::NodeDown(node));
        self.events.push(up, Event::NodeUp(node));
    }

    /// Define the end of the simulated interval. Events after the horizon are
    /// not processed and the final report covers `[0, horizon)`.
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = Some(horizon);
        self.events.push(horizon, Event::EndOfSimulation);
    }

    // ------------------------------------------------------------------
    // Simulation loop
    // ------------------------------------------------------------------

    /// Run the simulation until the horizon (or until no event remains).
    /// Returns the final report.
    pub fn run(&mut self) -> SimulationReport {
        while !self.finished {
            let Some((time, event)) = self.events.pop() else {
                break;
            };
            if let Some(h) = self.horizon {
                if time > h {
                    self.now = h;
                    break;
                }
            }
            debug_assert!(time >= self.now, "event time went backwards");
            self.now = time;
            self.process_event(event);
            // Process every event sharing this timestamp before scheduling.
            while self.events.peek_time() == Some(self.now) {
                let (_, e) = self.events.pop().expect("peeked");
                self.process_event(e);
                if self.finished {
                    break;
                }
            }
            if !self.finished {
                self.schedule_pass();
            }
        }
        let horizon = self.horizon.unwrap_or(self.now);
        self.now = self.now.max(horizon);
        self.cluster.advance_time(self.now);
        self.report()
    }

    fn process_event(&mut self, event: Event) {
        self.events_processed += 1;
        match event {
            Event::JobSubmit(id) => {
                let job = &self.jobs[id];
                self.log.push(
                    self.now,
                    SimEventKind::JobSubmitted {
                        job: id,
                        cores: job.cores(),
                    },
                );
                self.pending.push(id);
            }
            Event::JobEnd(id) => self.handle_job_end(id),
            Event::ReservationStart(id) => self.handle_reservation_start(id),
            Event::ReservationEnd(id) => self.handle_reservation_end(id),
            Event::ScheduleTick => {}
            Event::NodeDown(node) => self.handle_node_down(node),
            Event::NodeUp(node) => self.handle_node_up(node),
            Event::EndOfSimulation => {
                self.finished = true;
            }
        }
    }

    /// A node fails: power it off (free nodes switch immediately; an
    /// allocated node is drained and powers off when its job releases it)
    /// and kill the occupying job, if any. The kill exercises the same
    /// release path as the powercap "extreme actions".
    fn handle_node_down(&mut self, node: usize) {
        let victim = match self.cluster.node(node).alloc {
            crate::node::AllocationState::Allocated(job) => Some(job),
            _ => None,
        };
        let switched = self.cluster.power_off(&[node], self.now);
        if !switched.is_empty() {
            self.log
                .push(self.now, SimEventKind::NodesPoweredOff { nodes: switched });
        }
        if let Some(job) = victim {
            // The kill releases the drained node, which powers off there;
            // `kill_job` logs both the kill and the power-off.
            self.kill_job(job);
        }
    }

    /// A failed node recovers: power it back on and clear its drain mark so
    /// it rejoins the idle pool at the next scheduling pass.
    fn handle_node_up(&mut self, node: usize) {
        let was_off = self.cluster.node(node).is_off();
        self.cluster.power_on(&[node], self.now);
        if was_off {
            self.log
                .push(self.now, SimEventKind::NodesPoweredOn { nodes: vec![node] });
        }
    }

    fn handle_job_end(&mut self, id: JobId) {
        if self.jobs[id].state != JobState::Running {
            return; // Stale event (job was killed earlier).
        }
        let expected = self.jobs[id].expected_end().unwrap_or(self.now);
        let walltime_end = self.jobs[id].walltime_end().unwrap_or(self.now);
        if self.now < expected.min(walltime_end) {
            return; // Stale event from a superseded schedule.
        }
        let cores = self.jobs[id].cores();
        let frequency = self.jobs[id]
            .frequency
            .expect("running job has a frequency");
        let powering_off = self.release_job_nodes(id);
        self.jobs[id].state = JobState::Completed;
        self.jobs[id].end_time = Some(self.now);
        self.running.retain(|&j| j != id);
        self.log.push(
            self.now,
            SimEventKind::JobCompleted {
                job: id,
                cores,
                frequency,
            },
        );
        if !powering_off.is_empty() {
            self.log.push(
                self.now,
                SimEventKind::NodesPoweredOff {
                    nodes: powering_off,
                },
            );
        }
    }

    fn handle_reservation_start(&mut self, id: ReservationId) {
        let reservation = self
            .reservations
            .get(id)
            .expect("reservation ids are controller-assigned")
            .clone();
        match reservation.kind {
            ReservationKind::SwitchOff { ref nodes } => {
                let switched = self.cluster.power_off(nodes, self.now);
                if !switched.is_empty() {
                    self.log
                        .push(self.now, SimEventKind::NodesPoweredOff { nodes: switched });
                }
            }
            ReservationKind::Maintenance { ref nodes } => {
                self.cluster.drain(nodes);
            }
            ReservationKind::PowerCap { cap } => {
                self.log.push(
                    self.now,
                    SimEventKind::CapActivated {
                        reservation: id,
                        cap,
                    },
                );
                if self.cluster.current_power() > cap {
                    let running: Vec<&Job> = self.running.iter().map(|&j| &self.jobs[j]).collect();
                    let kills = self
                        .hook
                        .on_cap_start(&self.cluster, &running, cap, self.now);
                    for job in kills {
                        self.kill_job(job);
                    }
                }
            }
        }
    }

    fn handle_reservation_end(&mut self, id: ReservationId) {
        let reservation = self
            .reservations
            .get(id)
            .expect("reservation ids are controller-assigned")
            .clone();
        match reservation.kind {
            ReservationKind::SwitchOff { ref nodes } => {
                self.cluster.power_on(nodes, self.now);
                self.log.push(
                    self.now,
                    SimEventKind::NodesPoweredOn {
                        nodes: nodes.clone(),
                    },
                );
            }
            ReservationKind::Maintenance { ref nodes } => {
                self.cluster.undrain(nodes);
            }
            ReservationKind::PowerCap { .. } => {
                self.log
                    .push(self.now, SimEventKind::CapDeactivated { reservation: id });
            }
        }
    }

    /// Kill a running job immediately (powercap "extreme actions").
    pub fn kill_job(&mut self, id: JobId) {
        if self.jobs[id].state != JobState::Running {
            return;
        }
        let cores = self.jobs[id].cores();
        let frequency = self.jobs[id]
            .frequency
            .expect("running job has a frequency");
        let powering_off = self.release_job_nodes(id);
        self.jobs[id].state = JobState::Killed;
        self.jobs[id].end_time = Some(self.now);
        self.running.retain(|&j| j != id);
        self.log.push(
            self.now,
            SimEventKind::JobKilled {
                job: id,
                cores,
                frequency,
            },
        );
        if !powering_off.is_empty() {
            self.log.push(
                self.now,
                SimEventKind::NodesPoweredOff {
                    nodes: powering_off,
                },
            );
        }
    }

    /// Release a finishing (completed or killed) job's nodes back to the
    /// cluster. The node set is taken out of the job for the release and
    /// handed back afterwards — no clone, the job keeps it for inspection.
    /// Returns the nodes that power off with the release (drained by an
    /// active switch-off reservation), for the caller's event log.
    /// (`Vec::new` does not allocate — the common no-drain case is free.)
    fn release_job_nodes(&mut self, id: JobId) -> Vec<usize> {
        let nodes = std::mem::take(&mut self.jobs[id].nodes);
        let mut powering_off: Vec<usize> = Vec::new();
        for n in nodes.iter() {
            if self.cluster.node(n).drained {
                powering_off.push(n);
            }
        }
        self.cluster.release_mask(&nodes, self.now);
        self.jobs[id].nodes = nodes;
        powering_off
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    fn schedule_pass(&mut self) {
        self.sched_passes += 1;
        if self.pending.is_empty() {
            return;
        }
        // Observability: reads the clock only when handles are attached and
        // publishes once per pass — plain-local accumulation in the loop
        // keeps the uninstrumented hot path untouched.
        let pass = self.obs.pass_begin();
        let mut measurements = PassMeasurements {
            queue_depth: self.pending.len(),
            ..PassMeasurements::default()
        };
        self.fairshare.decay_to(self.now);
        let total_cores = self.cluster.platform().total_cores();
        let cores_per_node = self.cluster.platform().cores_per_node;
        self.priority.sort_pending(
            &self.jobs,
            &mut self.pending,
            self.now,
            total_cores,
            &self.fairshare,
        );

        // Take the scratch buffers out of `self` for the pass so their
        // borrows are disjoint from the controller's own fields; they go
        // back (with their grown capacities) at the end.
        let mut scratch = std::mem::take(&mut self.scratch);
        let footprint_before = scratch.footprint();

        let backfill_cfg = self.config.params.backfill;
        let depth = if backfill_cfg.enabled {
            backfill_cfg.depth
        } else {
            1
        };
        let mut shadow: Option<ShadowReservation> = None;
        let mut any_started = false;

        // The blocked-node set of a job only depends on which node-carrying
        // reservations overlap its prospective window. With a handful of
        // reservations and thousands of pending jobs, most jobs share the
        // same overlap signature, so the (potentially large) node sets are
        // built once per signature and per pass instead of once per job —
        // and survive job starts, which only invalidate the availability
        // *counts*. Should the census ever exceed the signature width, the
        // pass falls back to exact per-job computation instead of silently
        // ignoring the overflow (reservation #129 blocks nodes too).
        let ScheduleScratch {
            order,
            releases,
            selected,
            selected_mask,
            select,
            node_res,
            cache,
            cache_live,
            exact_blocked,
        } = &mut scratch;
        order.clear();
        order.extend_from_slice(&self.pending);
        node_res.clear();
        let mut node_res_total = 0usize;
        for r in self.reservations.all() {
            if r.blocked_nodes().is_some() {
                if node_res_total < SIGNATURE_BITS {
                    node_res.push((1u128 << node_res_total, r.window, r.id));
                }
                node_res_total += 1;
            }
        }
        let exact_mode = node_res_total > SIGNATURE_BITS;
        *cache_live = 0;

        for (examined, &job_id) in order.iter().enumerate() {
            if examined >= depth {
                break;
            }
            if self.cluster.free_count() == 0 {
                break;
            }
            let needed = self.jobs[job_id].nodes_needed(cores_per_node);
            let walltime = self.jobs[job_id].submission.walltime;
            let window_end = self.now.saturating_add(walltime);

            // Resolve the blocked set + availability for this job's window:
            // through the signature cache normally, exactly per job when the
            // reservation census overflows the signature.
            let cache_index = if exact_mode {
                exact_blocked.clear();
                self.reservations
                    .collect_blocked_within(self.now, window_end, exact_blocked);
                None
            } else {
                let signature: u128 = node_res
                    .iter()
                    .filter(|(_, window, _)| window.overlaps(self.now, window_end))
                    .map(|(bit, _, _)| bit)
                    .sum();
                let index = (0..*cache_live).find(|&i| cache[i].signature == signature);
                let index = match index {
                    Some(i) => {
                        measurements.cache_hits += 1;
                        i
                    }
                    None => {
                        measurements.cache_misses += 1;
                        let i = *cache_live;
                        if i == cache.len() {
                            cache.push(BlockedEntry::default());
                        }
                        let entry = &mut cache[i];
                        entry.signature = signature;
                        entry.blocked.clear();
                        entry.count_valid = false;
                        for (bit, _, id) in node_res.iter() {
                            if signature & bit != 0 {
                                let reservation =
                                    self.reservations.get(*id).expect("censused reservation");
                                if let Some(nodes) = reservation.blocked_nodes() {
                                    entry.blocked.extend(nodes.iter().copied());
                                }
                            }
                        }
                        *cache_live += 1;
                        i
                    }
                };
                if !cache[index].count_valid {
                    cache[index].count = self
                        .selector
                        .available_count(&self.cluster, &cache[index].blocked);
                    cache[index].count_valid = true;
                }
                Some(index)
            };
            let available = match cache_index {
                Some(i) => cache[i].count,
                None => self.selector.available_count(&self.cluster, exact_blocked),
            };

            if let Some(sh) = &shadow {
                // A higher-priority job holds a node reservation: only
                // non-delaying candidates may jump ahead.
                if !can_backfill(needed, walltime, available, self.now, sh) {
                    continue;
                }
            }

            if needed > available {
                if shadow.is_none() {
                    // The head job is blocked by node availability: compute
                    // its shadow reservation from running jobs' walltimes and
                    // keep examining candidates only if backfilling is on.
                    releases.clear();
                    for &j in &self.running {
                        let job = &self.jobs[j];
                        releases.push((job.walltime_end().unwrap_or(self.now), job.nodes.len()));
                    }
                    shadow = shadow_reservation(needed, available, releases, self.now);
                    if !backfill_cfg.enabled {
                        break;
                    }
                }
                continue;
            }

            let blocked: &NodeMask = match cache_index {
                Some(i) => &cache[i].blocked,
                None => exact_blocked,
            };
            if !self
                .selector
                .select_into(&self.cluster, needed, blocked, select, selected)
            {
                continue;
            }
            let decision = self.hook.authorize_start(
                &self.cluster,
                &self.reservations,
                &self.jobs[job_id],
                selected,
                self.now,
            );
            match decision {
                StartDecision::Start { frequency } => {
                    selected_mask.clear();
                    selected_mask.extend(selected.iter().copied());
                    self.start_job(job_id, selected, selected_mask, frequency);
                    any_started = true;
                    measurements.started += 1;
                    // Node availability changed: invalidate the cached
                    // counts (the blocked sets themselves are unaffected) so
                    // the remaining candidates see up-to-date numbers.
                    for entry in &mut cache[..*cache_live] {
                        entry.count_valid = false;
                    }
                }
                StartDecision::Postpone => {
                    // Power-blocked, not node-blocked: no node reservation is
                    // held, lower-priority (typically smaller or slower) jobs
                    // may still be attempted.
                    continue;
                }
            }
        }

        if any_started {
            // O(P) membership check by job state — started jobs left the
            // Pending state in `start_job`, so no started-set scan is
            // needed.
            let jobs = &self.jobs;
            self.pending.retain(|&id| jobs[id].is_pending());
        }

        if scratch.footprint() > footprint_before {
            self.scratch_growth_passes += 1;
        }
        self.scratch = scratch;
        self.obs
            .pass_end(pass, measurements, self.cluster.accountant().probe_counts());
    }

    fn start_job(
        &mut self,
        id: JobId,
        nodes: &[usize],
        node_mask: &NodeMask,
        frequency: Frequency,
    ) {
        let factor = self.hook.runtime_factor_for(&self.jobs[id], frequency);
        let cores = self.jobs[id].cores();
        let user = self.jobs[id].submission.user;
        let actual = self.jobs[id].submission.actual_runtime;
        let walltime = self.jobs[id].submission.walltime;
        let stretched_runtime = ((actual as f64) * factor).ceil() as SimTime;
        let stretched_walltime = ((walltime as f64) * factor).ceil() as SimTime;

        self.cluster.allocate(id, nodes, frequency, self.now);

        let job = &mut self.jobs[id];
        job.state = JobState::Running;
        job.start_time = Some(self.now);
        job.frequency = Some(frequency);
        job.stretched_runtime = Some(stretched_runtime);
        job.stretched_walltime = Some(stretched_walltime);
        let node_count = nodes.len();
        job.nodes = node_mask.clone();

        let end = self.now + stretched_runtime.min(stretched_walltime).max(1);
        self.events.push(end, Event::JobEnd(id));
        self.running.push(id);
        self.fairshare
            .record_usage(user, cores as f64 * stretched_runtime as f64, self.now);
        self.log.push(
            self.now,
            SimEventKind::JobStarted {
                job: id,
                cores,
                nodes: node_count,
                frequency,
            },
        );
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Build the aggregate report for the interval `[0, now]`.
    pub fn report(&self) -> SimulationReport {
        let horizon = self.horizon.unwrap_or(self.now);
        let launched = self.jobs.iter().filter(|j| j.start_time.is_some()).count();
        let completed = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Completed)
            .count();
        let killed = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Killed)
            .count();
        let work: f64 = self.jobs.iter().map(|j| j.work_within(0, horizon)).sum();
        let waits: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| j.start_time.is_some())
            .map(|j| j.wait_time(horizon) as f64)
            .collect();
        let mean_wait = if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<f64>() / waits.len() as f64
        };
        SimulationReport {
            horizon,
            launched_jobs: launched,
            completed_jobs: completed,
            killed_jobs: killed,
            pending_jobs: self.pending.len(),
            work_core_seconds: work,
            energy: self.cluster.energy(),
            mean_wait_seconds: mean_wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::HOUR;
    use apc_power::Frequency;

    fn platform() -> Platform {
        Platform::curie_scaled(1) // 90 nodes, 1440 cores
    }

    fn controller() -> Controller {
        Controller::new(platform(), ControllerConfig::default())
    }

    fn job(
        user: usize,
        submit: SimTime,
        cores: u32,
        walltime: SimTime,
        runtime: SimTime,
    ) -> JobSubmission {
        JobSubmission::new(user, submit, cores, walltime, runtime)
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut c = controller();
        c.submit(job(0, 10, 32, 3600, 600));
        c.set_horizon(2 * HOUR);
        let report = c.run();
        assert_eq!(report.launched_jobs, 1);
        assert_eq!(report.completed_jobs, 1);
        assert_eq!(report.killed_jobs, 0);
        assert_eq!(report.pending_jobs, 0);
        let j = c.job(0);
        assert_eq!(j.start_time, Some(10));
        assert_eq!(j.end_time, Some(610));
        assert_eq!(j.frequency, Some(Frequency::from_ghz(2.7)));
        assert_eq!(j.nodes.len(), 2);
        // Work = 600 s * 32 cores.
        assert!((report.work_core_seconds - 600.0 * 32.0).abs() < 1e-9);
        assert!(report.energy.as_joules() > 0.0);
    }

    #[test]
    fn fcfs_order_without_contention() {
        let mut c = controller();
        for i in 0..5 {
            c.submit(job(i, 100 + i as SimTime, 160, 3600, 1000));
        }
        c.set_horizon(HOUR);
        let report = c.run();
        assert_eq!(report.launched_jobs, 5);
        // Every job starts at its submission time (10 nodes each, 50 < 90).
        for i in 0..5 {
            assert_eq!(c.job(i).start_time, Some(100 + i as SimTime));
        }
    }

    #[test]
    fn jobs_queue_when_cluster_is_full() {
        let mut c = controller();
        // Two jobs of 60 nodes each cannot run together on 90 nodes.
        c.submit(job(0, 0, 960, 2 * HOUR, 1000));
        c.submit(job(1, 0, 960, 2 * HOUR, 1000));
        c.set_horizon(4 * HOUR);
        let report = c.run();
        assert_eq!(report.launched_jobs, 2);
        assert_eq!(c.job(0).start_time, Some(0));
        // The second starts when the first completes (runtime 1000), not at
        // its walltime.
        assert_eq!(c.job(1).start_time, Some(1000));
        let _ = report;
    }

    #[test]
    fn easy_backfilling_lets_small_jobs_jump_ahead() {
        let mut c = controller();
        // Job 0 occupies 80 nodes for 1000 s.
        c.submit(job(0, 0, 1280, 2000, 1000));
        // Job 1 (head of queue at t=1) needs 90 nodes: must wait for job 0.
        c.submit(job(1, 1, 1440, 2000, 500));
        // Job 2 needs 5 nodes for 500 s (walltime 900 <= shadow time 2000):
        // it can backfill into the 10 idle nodes.
        c.submit(job(2, 2, 80, 900, 500));
        c.set_horizon(2 * HOUR);
        c.run();
        assert_eq!(c.job(2).start_time, Some(2), "small job backfills");
        assert!(
            c.job(1).start_time.unwrap() >= 1000,
            "head job waits for nodes"
        );
    }

    #[test]
    fn backfilling_respects_the_shadow_reservation() {
        let mut c = controller();
        // Job 0: 80 nodes, actual runtime 1000 s, walltime 1200 s.
        c.submit(job(0, 0, 1280, 1200, 1000));
        // Job 1: 90 nodes -> waits; its shadow time is t=1200 (walltime end).
        c.submit(job(1, 1, 1440, 2000, 500));
        // Job 2: 10 nodes but walltime 5000 s > shadow time and it would eat
        // into the head job's nodes -> must NOT backfill.
        c.submit(job(2, 2, 160, 5000, 4000));
        c.set_horizon(4 * HOUR);
        c.run();
        let start2 = c.job(2).start_time.unwrap();
        assert!(
            start2 >= c.job(1).start_time.unwrap(),
            "the long wide job must not delay the reserved head job"
        );
    }

    #[test]
    fn disabled_backfill_is_strict_fcfs() {
        let params = crate::config::SchedulerParameters {
            backfill: crate::backfill::BackfillConfig {
                enabled: false,
                depth: 0,
            },
            ..Default::default()
        };
        let cfg = ControllerConfig::default().with_params(params);
        let mut c = Controller::new(platform(), cfg);
        c.submit(job(0, 0, 1280, 2000, 1000));
        c.submit(job(1, 1, 1440, 2000, 500)); // blocks
        c.submit(job(2, 2, 80, 900, 500)); // would backfill, must not
        c.set_horizon(2 * HOUR);
        c.run();
        assert!(c.job(2).start_time.unwrap() >= 1000);
    }

    #[test]
    fn walltime_overrun_is_cut_short() {
        let mut c = controller();
        // Actual runtime exceeds the requested walltime: the controller stops
        // the job at its (stretched) walltime.
        c.submit(job(0, 0, 16, 100, 500));
        c.set_horizon(HOUR);
        c.run();
        assert_eq!(c.job(0).end_time, Some(100));
    }

    #[test]
    fn switch_off_reservation_powers_nodes_down_and_back_up() {
        let mut c = controller();
        let window = TimeWindow::new(1000, 2000);
        let nodes: Vec<usize> = (0..18).collect();
        let id = c.reservations.add(
            window,
            ReservationKind::SwitchOff {
                nodes: nodes.clone(),
            },
        );
        c.events.push(window.start, Event::ReservationStart(id));
        c.events.push(window.end, Event::ReservationEnd(id));
        c.set_horizon(3000);
        c.run();
        // After the window the nodes are available again.
        assert_eq!(c.cluster().powered_off_count(), 0);
        assert_eq!(c.cluster().free_count(), 90);
        // Power-off and power-on events were logged.
        assert_eq!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::NodesPoweredOff { .. })),
            1
        );
        assert_eq!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::NodesPoweredOn { .. })),
            1
        );
    }

    #[test]
    fn switch_off_reservation_excludes_nodes_from_scheduling() {
        let mut c = controller();
        let window = TimeWindow::new(500, 4000);
        let nodes: Vec<usize> = (0..45).collect();
        let id = c
            .reservations
            .add(window, ReservationKind::SwitchOff { nodes });
        c.events.push(window.start, Event::ReservationStart(id));
        c.events.push(window.end, Event::ReservationEnd(id));
        // A 60-node job submitted at t=0 with a walltime overlapping the
        // window cannot use the reserved nodes, so it has to wait until the
        // reservation ends.
        c.submit(job(0, 0, 960, 2 * HOUR, 600));
        c.set_horizon(3 * HOUR);
        c.run();
        assert!(c.job(0).start_time.unwrap() >= 4000);
    }

    #[test]
    fn maintenance_reservation_drains_without_power_off() {
        let mut c = controller();
        let id = c.add_maintenance_reservation(TimeWindow::new(0, 1000), (0..90).collect());
        assert_eq!(id, 0);
        c.submit(job(0, 10, 16, 3600, 60));
        c.set_horizon(HOUR);
        c.run();
        // The job could only start after the maintenance window.
        assert!(c.job(0).start_time.unwrap() >= 1000);
        assert_eq!(c.cluster().powered_off_count(), 0);
    }

    #[test]
    fn kill_job_releases_nodes_and_logs() {
        let mut c = controller();
        c.submit(job(0, 0, 160, 3600, 3000));
        c.set_horizon(100);
        // Run the submission event only.
        c.run();
        assert_eq!(c.running_count(), 1);
        c.kill_job(0);
        assert_eq!(c.running_count(), 0);
        assert_eq!(c.job(0).state, JobState::Killed);
        assert_eq!(c.cluster().free_count(), 90);
        assert_eq!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::JobKilled { .. })),
            1
        );
        // Killing twice is a no-op.
        c.kill_job(0);
        assert_eq!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::JobKilled { .. })),
            1
        );
    }

    #[test]
    fn node_outage_kills_the_occupying_job_and_recovers() {
        let mut c = controller();
        // One job on 2 nodes (32 cores), running [0, 3000).
        c.submit(job(0, 0, 32, 3600, 3000));
        // The job lands on nodes 0-1; fail node 0 mid-run.
        c.inject_node_outage(0, 500, 1500);
        c.set_horizon(HOUR);
        let report = c.run();
        assert_eq!(report.killed_jobs, 1, "the occupying job is killed");
        assert_eq!(c.job(0).state, JobState::Killed);
        assert_eq!(c.job(0).end_time, Some(500));
        // After recovery the whole cluster is schedulable again.
        assert_eq!(c.cluster().powered_off_count(), 0);
        assert_eq!(c.cluster().free_count(), 90);
        assert_eq!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::JobKilled { .. })),
            1
        );
        assert_eq!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::NodesPoweredOn { .. })),
            1
        );
    }

    #[test]
    fn node_outage_on_a_free_node_just_removes_capacity() {
        let mut c = controller();
        c.inject_node_outage(5, 100, 900);
        // A 90-node job submitted during the outage must wait for recovery.
        c.submit(job(0, 200, 1440, 3600, 600));
        c.set_horizon(HOUR);
        let report = c.run();
        assert_eq!(report.killed_jobs, 0);
        assert_eq!(c.job(0).start_time, Some(900));
        assert_eq!(c.cluster().free_count(), 90);
        assert_eq!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::NodesPoweredOff { .. })),
            1
        );
    }

    #[test]
    fn outages_are_deterministic_events() {
        let build = || {
            let mut c = controller();
            for i in 0..30 {
                c.submit(job(
                    i % 4,
                    (i as SimTime * 17) % 600,
                    32 + (i as u32 % 5) * 96,
                    3600,
                    400 + (i as SimTime % 7) * 100,
                ));
            }
            c.inject_node_outage(3, 300, 2000);
            c.inject_node_outage(40, 700, 1500);
            c.set_horizon(2 * HOUR);
            c.run();
            c.jobs()
                .iter()
                .map(|j| (j.id, j.start_time, j.end_time, j.state))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn report_counts_are_consistent() {
        let mut c = controller();
        for i in 0..20 {
            c.submit(job(i % 4, i as SimTime * 30, 64, 1800, 900));
        }
        c.set_horizon(2 * HOUR);
        let report = c.run();
        assert_eq!(report.launched_jobs, 20);
        assert_eq!(
            report.completed_jobs + report.killed_jobs + report.pending_jobs,
            20
        );
        assert!(report.mean_wait_seconds >= 0.0);
        assert!(report.work_core_hours() > 0.0);
        assert_eq!(report.horizon, 2 * HOUR);
    }

    #[test]
    fn determinism_same_inputs_same_schedule() {
        let build = || {
            let mut c = controller();
            for i in 0..50 {
                c.submit(job(
                    i % 7,
                    (i as SimTime * 13) % 900,
                    32 + (i as u32 % 5) * 160,
                    3600,
                    300 + i as SimTime * 7,
                ));
            }
            c.set_horizon(3 * HOUR);
            c.run();
            c.jobs()
                .iter()
                .map(|j| (j.id, j.start_time, j.end_time))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    /// Regression for the signature-cache overflow: the seed capped the
    /// census at 128 node-carrying reservations, so a 129th reservation's
    /// nodes silently became schedulable. Past the cap the controller now
    /// computes every job's blocked set exactly.
    #[test]
    fn reservation_129_still_blocks_its_nodes() {
        let mut c = Controller::new(Platform::curie_scaled(2), ControllerConfig::default());
        // 129 maintenance reservations, one node each, on a future window
        // that overlaps the job's execution.
        for node in 0..129 {
            c.add_maintenance_reservation(TimeWindow::new(1000, 10_000), vec![node]);
        }
        // 180 nodes, 129 blocked ⇒ 51 selectable inside the window. A job
        // needing 52 nodes must wait for the window to end; with the seed's
        // truncation, node 128 looked free and the job started at t = 0.
        c.submit(job(0, 0, 52 * 16, 5000, 4000));
        c.set_horizon(20_000);
        c.run();
        assert!(
            c.job(0).start_time.unwrap() >= 10_000,
            "the 129th reservation's node must not be schedulable (started at {:?})",
            c.job(0).start_time
        );
        // Sanity: a job that fits next to all 129 blocked nodes does start
        // immediately.
        let mut c = Controller::new(Platform::curie_scaled(2), ControllerConfig::default());
        for node in 0..129 {
            c.add_maintenance_reservation(TimeWindow::new(1000, 10_000), vec![node]);
        }
        c.submit(job(0, 0, 51 * 16, 5000, 4000));
        c.set_horizon(20_000);
        c.run();
        assert_eq!(c.job(0).start_time, Some(0));
    }

    /// The scheduling hot path must stop allocating once its scratch
    /// buffers reach their steady-state sizes: a long, busy replay may grow
    /// them in early passes but the overwhelming majority of passes reuse
    /// them untouched.
    #[test]
    fn steady_state_scheduling_stops_allocating() {
        let mut c = controller();
        // A switch-off reservation keeps the blocked-set machinery engaged.
        let window = TimeWindow::new(HOUR, 3 * HOUR);
        let id = c.reservations.add(
            window,
            ReservationKind::SwitchOff {
                nodes: (0..18).collect(),
            },
        );
        c.events.push(window.start, Event::ReservationStart(id));
        c.events.push(window.end, Event::ReservationEnd(id));
        // A steady stream of jobs that keeps a deep pending queue.
        for i in 0..400 {
            c.submit(job(
                i % 5,
                (i as SimTime * 13) % (2 * HOUR),
                32 + (i as u32 % 7) * 80,
                3600,
                300 + (i as SimTime % 11) * 120,
            ));
        }
        c.set_horizon(8 * HOUR);
        c.run();
        let passes = c.schedule_passes();
        let grew = c.scratch_growth_passes();
        assert!(passes > 100, "expected a long run, got {passes} passes");
        assert!(
            grew * 10 <= passes,
            "scratch buffers grew in {grew} of {passes} passes — the steady \
             state is supposed to be allocation-free"
        );
    }

    /// Attaching observability must populate the registry without changing
    /// a single scheduling decision.
    #[test]
    fn observability_populates_metrics_without_changing_the_schedule() {
        let run = |instrument: bool| {
            let registry = if instrument {
                apc_obs::Registry::new()
            } else {
                apc_obs::Registry::disabled()
            };
            let spans = if instrument {
                apc_obs::SpanRecorder::new()
            } else {
                apc_obs::SpanRecorder::disabled()
            };
            let mut c = controller();
            c.set_obs(ControllerObs::new(&registry, spans.clone()));
            let window = TimeWindow::new(HOUR, 2 * HOUR);
            let id = c.reservations.add(
                window,
                ReservationKind::SwitchOff {
                    nodes: (0..18).collect(),
                },
            );
            c.events.push(window.start, Event::ReservationStart(id));
            c.events.push(window.end, Event::ReservationEnd(id));
            for i in 0..60 {
                c.submit(job(
                    i % 4,
                    (i as SimTime * 37) % HOUR,
                    32 + (i as u32 % 5) * 96,
                    3600,
                    200 + (i as SimTime % 9) * 100,
                ));
            }
            c.set_horizon(4 * HOUR);
            c.run();
            let schedule: Vec<_> = c
                .jobs()
                .iter()
                .map(|j| (j.id, j.start_time, j.end_time))
                .collect();
            (schedule, registry.snapshot(), spans.take_events())
        };
        let (plain, empty_snapshot, no_events) = run(false);
        let (instrumented, snapshot, events) = run(true);
        assert_eq!(plain, instrumented, "observability changed the schedule");
        assert!(empty_snapshot.entries.is_empty());
        assert!(no_events.is_empty());
        let depth = snapshot
            .histogram("rjms.schedule_pass.queue_depth")
            .expect("pass histogram registered");
        assert!(depth.count > 0, "non-empty passes were recorded");
        let hits = snapshot.counter("rjms.blocked_cache.hits").unwrap();
        let misses = snapshot.counter("rjms.blocked_cache.misses").unwrap();
        assert!(
            hits > misses,
            "jobs share overlap signatures, hits ({hits}) should dominate misses ({misses})"
        );
        assert!(snapshot.counter("rjms.probe.fast").unwrap() > 0 || hits + misses > 0);
        assert!(!events.is_empty(), "per-pass spans were recorded");
        assert!(events.iter().all(|e| e.name == "schedule_pass"));
    }

    #[test]
    fn powercap_reservation_with_null_hook_logs_cap_events() {
        let mut c = controller();
        let (cap_id, off_id) =
            c.add_powercap_reservation(TimeWindow::new(1000, 2000), Watts(10_000.0));
        assert_eq!(cap_id, 0);
        assert!(off_id.is_none(), "the null hook plans no switch-off");
        c.set_horizon(3000);
        c.run();
        assert_eq!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::CapActivated { .. })),
            1
        );
        assert_eq!(
            c.log()
                .count_matching(|e| matches!(e.kind, SimEventKind::CapDeactivated { .. })),
            1
        );
    }
}

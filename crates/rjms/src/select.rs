//! Node selection.
//!
//! The second scheduling phase of the paper's Fig. 1: once a job has been
//! picked, concrete nodes must be chosen for it. The selector prefers
//! *contiguous* nodes (same chassis, then same rack) which both matches how
//! Curie allocates topology-aware jobs and keeps whole chassis free for the
//! offline switch-off planner.
//!
//! Selection runs on the cluster's availability [`NodeMask`]: first-fit is
//! a single word scan over `available & !blocked`, and the contiguous
//! policy walks chassis bit-ranges in preference order (partially used
//! chassis first, so untouched chassis stay whole) — no candidate vector is
//! materialised and, with a caller-provided [`SelectScratch`] and output
//! buffer, a selection performs no heap allocation in the steady state.

use crate::cluster::Cluster;
use crate::mask::NodeMask;

/// Node-selection policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Prefer nodes that keep allocations packed: fill partially-used chassis
    /// first, then take the lowest-index free nodes.
    #[default]
    Contiguous,
    /// Plain lowest-index-first selection.
    FirstFit,
}

/// Reusable buffers for [`NodeSelector::select_into`] (the per-chassis
/// candidate counts of the contiguous policy). Hold one per scheduling
/// context and reuse it across passes.
#[derive(Debug, Clone, Default)]
pub struct SelectScratch {
    free_per_chassis: Vec<usize>,
}

impl SelectScratch {
    /// Allocated capacity (allocation-tracking diagnostics).
    pub fn footprint(&self) -> usize {
        self.free_per_chassis.capacity()
    }
}

/// Stateless node selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeSelector {
    policy: SelectionPolicy,
}

impl NodeSelector {
    /// Create a selector with the given policy.
    pub fn new(policy: SelectionPolicy) -> Self {
        NodeSelector { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> SelectionPolicy {
        self.policy
    }

    /// Pick `needed` available nodes, excluding `blocked` (nodes owned by
    /// overlapping reservations), appending them to `out` in ascending id
    /// order. Returns `false` — leaving `out` empty — when not enough nodes
    /// are available. Allocation-free once `scratch` and `out` have reached
    /// their steady-state capacities.
    pub fn select_into(
        &self,
        cluster: &Cluster,
        needed: usize,
        blocked: &NodeMask,
        scratch: &mut SelectScratch,
        out: &mut Vec<usize>,
    ) -> bool {
        out.clear();
        if needed == 0 {
            return true;
        }
        let available = cluster.available_mask();
        if self.available_count(cluster, blocked) < needed {
            return false;
        }
        match self.policy {
            SelectionPolicy::FirstFit => {
                out.extend(available.iter_and_not(blocked).take(needed));
            }
            SelectionPolicy::Contiguous => {
                let topo = &cluster.platform().topology;
                let chassis_size = topo.nodes_per_group(0);
                let chassis_count = topo.group_count(0);
                // Candidate count per chassis: a chassis whose every node is
                // selectable is "fully free" and kept whole for switch-off
                // grouping — partially used chassis are consumed first.
                scratch.free_per_chassis.clear();
                scratch.free_per_chassis.resize(chassis_count, 0);
                for id in available.iter_and_not(blocked) {
                    scratch.free_per_chassis[topo.group_of(0, id)] += 1;
                }
                let chassis_range = |chassis: usize| {
                    let r = topo.nodes_of_group(0, chassis);
                    (r.start, r.end)
                };
                // Pass 1: partially used chassis, ascending chassis id.
                'outer: for pass_fully_free in [false, true] {
                    for (chassis, &free) in scratch.free_per_chassis.iter().enumerate() {
                        if free == 0 || (free == chassis_size) != pass_fully_free {
                            continue;
                        }
                        let (start, end) = chassis_range(chassis);
                        for id in available.iter_and_not_in(blocked, start, end) {
                            out.push(id);
                            if out.len() == needed {
                                break 'outer;
                            }
                        }
                    }
                }
                // Pass 2 can select lower node ids than pass 1; hand the
                // allocation back in ascending order like the seed did.
                out.sort_unstable();
            }
        }
        debug_assert_eq!(out.len(), needed);
        true
    }

    /// Convenience wrapper over [`select_into`](Self::select_into) that
    /// allocates its own buffers (tests, one-off callers).
    pub fn select(
        &self,
        cluster: &Cluster,
        needed: usize,
        blocked: &NodeMask,
    ) -> Option<Vec<usize>> {
        let mut scratch = SelectScratch::default();
        let mut out = Vec::new();
        self.select_into(cluster, needed, blocked, &mut scratch, &mut out)
            .then_some(out)
    }

    /// Count how many nodes are selectable right now given the blocked set
    /// (a word-wise popcount of `available & !blocked`).
    pub fn available_count(&self, cluster: &Cluster, blocked: &NodeMask) -> usize {
        if blocked.is_empty() {
            cluster.free_count()
        } else {
            cluster.available_mask().count_and_not(blocked)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Platform;
    use apc_power::Frequency;

    fn cluster() -> Cluster {
        Cluster::new(Platform::curie_scaled(1))
    }

    fn mask(ids: impl IntoIterator<Item = usize>) -> NodeMask {
        ids.into_iter().collect()
    }

    #[test]
    fn selects_exactly_the_requested_count() {
        let c = cluster();
        let sel = NodeSelector::default();
        let nodes = sel.select(&c, 10, &NodeMask::default()).unwrap();
        assert_eq!(nodes.len(), 10);
        // All selected nodes are distinct and ascending.
        assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        assert!(sel.select(&c, 0, &NodeMask::default()).unwrap().is_empty());
    }

    #[test]
    fn returns_none_when_not_enough_nodes() {
        let c = cluster();
        let sel = NodeSelector::default();
        assert!(sel.select(&c, 91, &NodeMask::default()).is_none());
        let blocked = mask(0..85);
        assert!(sel.select(&c, 10, &blocked).is_none());
        assert_eq!(sel.available_count(&c, &blocked), 5);
    }

    #[test]
    fn respects_blocked_nodes() {
        let c = cluster();
        let sel = NodeSelector::default();
        let blocked = mask(0..18);
        let nodes = sel.select(&c, 5, &blocked).unwrap();
        assert!(nodes.iter().all(|n| !blocked.contains(*n)));
    }

    #[test]
    fn contiguous_fills_partially_used_chassis_first() {
        let mut c = cluster();
        // Occupy 10 nodes of chassis 1 (nodes 18..28).
        let occupied: Vec<usize> = (18..28).collect();
        c.allocate(1, &occupied, Frequency::from_ghz(2.7), 0);
        let sel = NodeSelector::new(SelectionPolicy::Contiguous);
        let nodes = sel.select(&c, 8, &NodeMask::default()).unwrap();
        // The 8 remaining nodes of chassis 1 are preferred over untouched
        // chassis 0.
        assert_eq!(nodes, (28..36).collect::<Vec<_>>());
    }

    #[test]
    fn contiguous_spills_into_fully_free_chassis_in_ascending_order() {
        let mut c = cluster();
        // Chassis 3 partially used: its 8 leftovers come first, then the
        // fully free chassis starting from chassis 0 — so the final
        // selection mixes low and high ids and must come back sorted.
        let occupied: Vec<usize> = (54..64).collect();
        c.allocate(1, &occupied, Frequency::from_ghz(2.7), 0);
        let sel = NodeSelector::new(SelectionPolicy::Contiguous);
        let nodes = sel.select(&c, 12, &NodeMask::default()).unwrap();
        let mut expected: Vec<usize> = (64..72).collect(); // rest of chassis 3
        expected.extend(0..4); // then chassis 0
        expected.sort_unstable();
        assert_eq!(nodes, expected);
    }

    #[test]
    fn first_fit_takes_lowest_indices() {
        let c = cluster();
        let sel = NodeSelector::new(SelectionPolicy::FirstFit);
        let nodes = sel.select(&c, 4, &NodeMask::default()).unwrap();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn available_count_matches_free_count_without_blocks() {
        let c = cluster();
        let sel = NodeSelector::default();
        assert_eq!(sel.available_count(&c, &NodeMask::default()), 90);
    }

    #[test]
    fn select_into_reuses_buffers_without_reallocating() {
        let c = cluster();
        let sel = NodeSelector::new(SelectionPolicy::Contiguous);
        let mut scratch = SelectScratch::default();
        let mut out = Vec::new();
        assert!(sel.select_into(&c, 30, &NodeMask::default(), &mut scratch, &mut out));
        let out_cap = out.capacity();
        let scratch_cap = scratch.free_per_chassis.capacity();
        let out_ptr = out.as_ptr();
        for needed in [10usize, 25, 30, 1] {
            assert!(sel.select_into(&c, needed, &NodeMask::default(), &mut scratch, &mut out));
            assert_eq!(out.len(), needed);
        }
        assert_eq!(out.capacity(), out_cap, "output buffer must not regrow");
        assert_eq!(scratch.free_per_chassis.capacity(), scratch_cap);
        assert_eq!(out.as_ptr(), out_ptr, "no reallocation happened");
    }
}

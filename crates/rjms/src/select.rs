//! Node selection.
//!
//! The second scheduling phase of the paper's Fig. 1: once a job has been
//! picked, concrete nodes must be chosen for it. The selector prefers
//! *contiguous* nodes (same chassis, then same rack) which both matches how
//! Curie allocates topology-aware jobs and keeps whole chassis free for the
//! offline switch-off planner.

use std::collections::HashSet;

use crate::cluster::Cluster;

/// Node-selection policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Prefer nodes that keep allocations packed: fill partially-used chassis
    /// first, then take the lowest-index free nodes.
    #[default]
    Contiguous,
    /// Plain lowest-index-first selection.
    FirstFit,
}

/// Stateless node selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeSelector {
    policy: SelectionPolicy,
}

impl NodeSelector {
    /// Create a selector with the given policy.
    pub fn new(policy: SelectionPolicy) -> Self {
        NodeSelector { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> SelectionPolicy {
        self.policy
    }

    /// Pick `needed` available nodes, excluding `blocked` (nodes owned by
    /// overlapping reservations). Returns `None` when not enough nodes are
    /// available.
    pub fn select(
        &self,
        cluster: &Cluster,
        needed: usize,
        blocked: &HashSet<usize>,
    ) -> Option<Vec<usize>> {
        if needed == 0 {
            return Some(Vec::new());
        }
        let mut candidates: Vec<usize> = cluster
            .available_nodes()
            .filter(|id| !blocked.contains(id))
            .collect();
        if candidates.len() < needed {
            return None;
        }
        match self.policy {
            SelectionPolicy::FirstFit => {
                candidates.truncate(needed);
                Some(candidates)
            }
            SelectionPolicy::Contiguous => {
                let topo = &cluster.platform().topology;
                // Sort by (chassis fill preference, chassis id, node id): nodes in
                // chassis that already have allocations come first so that free
                // chassis stay whole.
                let chassis_size = topo.nodes_per_group(0);
                let chassis_count = topo.group_count(0);
                let mut free_per_chassis = vec![0usize; chassis_count];
                for &n in &candidates {
                    free_per_chassis[topo.group_of(0, n)] += 1;
                }
                candidates.sort_by_key(|&n| {
                    let chassis = topo.group_of(0, n);
                    let fully_free = free_per_chassis[chassis] == chassis_size;
                    // Partially-used chassis first, then by chassis index, then node.
                    (fully_free, chassis, n)
                });
                candidates.truncate(needed);
                candidates.sort_unstable();
                Some(candidates)
            }
        }
    }

    /// Count how many nodes are selectable right now given the blocked set.
    pub fn available_count(&self, cluster: &Cluster, blocked: &HashSet<usize>) -> usize {
        if blocked.is_empty() {
            cluster.free_count()
        } else {
            cluster
                .available_nodes()
                .filter(|id| !blocked.contains(id))
                .count()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Platform;
    use apc_power::Frequency;

    fn cluster() -> Cluster {
        Cluster::new(Platform::curie_scaled(1))
    }

    #[test]
    fn selects_exactly_the_requested_count() {
        let c = cluster();
        let sel = NodeSelector::default();
        let nodes = sel.select(&c, 10, &HashSet::new()).unwrap();
        assert_eq!(nodes.len(), 10);
        // All selected nodes are distinct and available.
        let distinct: HashSet<_> = nodes.iter().collect();
        assert_eq!(distinct.len(), 10);
        assert!(sel.select(&c, 0, &HashSet::new()).unwrap().is_empty());
    }

    #[test]
    fn returns_none_when_not_enough_nodes() {
        let c = cluster();
        let sel = NodeSelector::default();
        assert!(sel.select(&c, 91, &HashSet::new()).is_none());
        let blocked: HashSet<usize> = (0..85).collect();
        assert!(sel.select(&c, 10, &blocked).is_none());
        assert_eq!(sel.available_count(&c, &blocked), 5);
    }

    #[test]
    fn respects_blocked_nodes() {
        let c = cluster();
        let sel = NodeSelector::default();
        let blocked: HashSet<usize> = (0..18).collect();
        let nodes = sel.select(&c, 5, &blocked).unwrap();
        assert!(nodes.iter().all(|n| !blocked.contains(n)));
    }

    #[test]
    fn contiguous_fills_partially_used_chassis_first() {
        let mut c = cluster();
        // Occupy 10 nodes of chassis 1 (nodes 18..28).
        let occupied: Vec<usize> = (18..28).collect();
        c.allocate(1, &occupied, Frequency::from_ghz(2.7), 0);
        let sel = NodeSelector::new(SelectionPolicy::Contiguous);
        let nodes = sel.select(&c, 8, &HashSet::new()).unwrap();
        // The 8 remaining nodes of chassis 1 are preferred over untouched
        // chassis 0.
        assert_eq!(nodes, (28..36).collect::<Vec<_>>());
    }

    #[test]
    fn first_fit_takes_lowest_indices() {
        let c = cluster();
        let sel = NodeSelector::new(SelectionPolicy::FirstFit);
        let nodes = sel.select(&c, 4, &HashSet::new()).unwrap();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn available_count_matches_free_count_without_blocks() {
        let c = cluster();
        let sel = NodeSelector::default();
        assert_eq!(sel.available_count(&c, &HashSet::new()), 90);
    }
}

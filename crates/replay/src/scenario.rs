//! Powercap scenarios.
//!
//! The paper's evaluation replays each workload interval under "three
//! powercap scenarios reserving respectively 80 %, 60 % and 40 % of the
//! available power budget for one hour in the middle of the replayed
//! interval", plus a no-powercap baseline, for each of the SHUT / DVFS / MIX
//! policies.

use apc_core::PowercapPolicy;
use apc_power::bonus::GroupingStrategy;
use apc_power::tradeoff::DecisionRule;
use apc_power::Watts;
use apc_rjms::cluster::Platform;
use apc_rjms::time::{SimTime, TimeWindow, HOUR};
use serde::{Deserialize, Serialize};

/// One powercap window: a start instant (seconds into the interval) plus a
/// duration. Scenarios carry a list of them so one replay can cap two or
/// more disjoint slots of the same interval (a morning and an evening peak,
/// say) — every window shares the scenario's cap fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CapWindow {
    /// Start of the powercap window, seconds into the interval.
    pub start: SimTime,
    /// Duration of the powercap window, in seconds.
    pub duration: SimTime,
}

impl CapWindow {
    /// A window starting at `start` and lasting `duration` seconds.
    pub fn new(start: SimTime, duration: SimTime) -> Self {
        CapWindow { start, duration }
    }

    /// The window as a half-open [`TimeWindow`].
    pub fn time_window(&self) -> TimeWindow {
        TimeWindow::with_duration(self.start, self.duration)
    }

    /// End of the window (exclusive).
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// One experimental scenario: a policy plus optional powercap windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The powercap policy.
    pub policy: PowercapPolicy,
    /// Cap expressed as a fraction of the cluster's maximum power
    /// (`None` = no powercap reservation at all, the "100 %" rows).
    pub cap_fraction: Option<f64>,
    /// The powercap windows (all sharing `cap_fraction`). The paper's
    /// scenarios use exactly one; multi-window scenarios replay several
    /// disjoint cap slots in one interval. Ignored when `cap_fraction` is
    /// `None`.
    pub cap_windows: Vec<CapWindow>,
    /// Switch-off grouping strategy (ablation knob).
    pub grouping: GroupingStrategy,
    /// DVFS-vs-shutdown decision rule (ablation knob).
    pub decision_rule: DecisionRule,
    /// Kill running jobs when the cap is violated at activation.
    pub kill_on_violation: bool,
    /// Stretch each job with its own application-class degradation instead of
    /// the policy-wide common value (the paper's future-work extension).
    pub per_application_degradation: bool,
}

impl Scenario {
    /// The paper's standard scenario: `policy` with a 1-hour cap of
    /// `cap_fraction` placed in the middle of an interval of
    /// `interval_duration` seconds. Intervals shorter than an hour get a
    /// window clamped to the whole interval — the window never overruns the
    /// interval end.
    pub fn paper(policy: PowercapPolicy, cap_fraction: f64, interval_duration: SimTime) -> Self {
        let window_duration = HOUR.min(interval_duration);
        let window_start = (interval_duration - window_duration) / 2;
        Scenario {
            policy,
            cap_fraction: Some(cap_fraction),
            cap_windows: vec![CapWindow::new(window_start, window_duration)],
            grouping: GroupingStrategy::Grouped,
            decision_rule: DecisionRule::PaperRho,
            kill_on_violation: false,
            per_application_degradation: false,
        }
    }

    /// The uncapped baseline ("100 %/None").
    pub fn baseline() -> Self {
        Scenario {
            policy: PowercapPolicy::None,
            cap_fraction: None,
            cap_windows: Vec::new(),
            grouping: GroupingStrategy::Grouped,
            decision_rule: DecisionRule::PaperRho,
            kill_on_violation: false,
            per_application_degradation: false,
        }
    }

    /// Replace the cap windows with one `[start, start + duration)` window
    /// (builder style).
    pub fn with_window(mut self, start: SimTime, duration: SimTime) -> Self {
        self.cap_windows = vec![CapWindow::new(start, duration)];
        self
    }

    /// Replace the cap windows wholesale (builder style). Windows should be
    /// pairwise disjoint; the campaign spec validates that before expansion.
    pub fn with_windows(mut self, windows: Vec<CapWindow>) -> Self {
        self.cap_windows = windows;
        self
    }

    /// Override the grouping strategy (builder style).
    pub fn with_grouping(mut self, grouping: GroupingStrategy) -> Self {
        self.grouping = grouping;
        self
    }

    /// Override the decision rule (builder style).
    pub fn with_decision_rule(mut self, rule: DecisionRule) -> Self {
        self.decision_rule = rule;
        self
    }

    /// Enable "extreme actions" (builder style).
    pub fn with_kill_on_violation(mut self) -> Self {
        self.kill_on_violation = true;
        self
    }

    /// Enable application-aware DVFS degradation (builder style).
    pub fn with_per_application_degradation(mut self) -> Self {
        self.per_application_degradation = true;
        self
    }

    /// The first powercap window, if the scenario has any — the common case
    /// for paper-style single-window scenarios.
    pub fn window(&self) -> Option<TimeWindow> {
        self.cap_fraction?;
        self.cap_windows.first().map(CapWindow::time_window)
    }

    /// Every powercap window of the scenario (empty for the baseline).
    pub fn windows(&self) -> Vec<TimeWindow> {
        if self.cap_fraction.is_none() {
            return Vec::new();
        }
        self.cap_windows
            .iter()
            .map(CapWindow::time_window)
            .collect()
    }

    /// A compact, CSV-safe label of the cap windows: `start+duration` pairs
    /// joined with `|` (e.g. `"7200+3600"`, `"0+1800|16200+1800"`), or `"-"`
    /// for the uncapped baseline. Used as the `window` result column and as
    /// part of the across-seed summary grouping key, so window sweeps never
    /// collapse into one group.
    pub fn window_label(&self) -> String {
        if self.cap_fraction.is_none() || self.cap_windows.is_empty() {
            return "-".to_string();
        }
        self.cap_windows
            .iter()
            .map(|w| format!("{}+{}", w.start, w.duration))
            .collect::<Vec<_>>()
            .join("|")
    }

    /// The absolute cap for a given platform, if the scenario has one.
    pub fn cap(&self, platform: &Platform) -> Option<Watts> {
        self.cap_fraction.map(|f| platform.power_fraction(f))
    }

    /// A short label like "40%/MIX" (the row labels of Fig. 8).
    pub fn label(&self) -> String {
        match self.cap_fraction {
            Some(f) => format!("{:.0}%/{}", f * 100.0, self.policy),
            None => "100%/None".to_string(),
        }
    }

    /// The full grid of the paper's Fig. 8 for one interval: 100 %/None plus
    /// {80, 60, 40 %} × {SHUT, DVFS, MIX}.
    pub fn paper_grid(interval_duration: SimTime) -> Vec<Scenario> {
        let mut grid = vec![Scenario::baseline()];
        for fraction in [0.80, 0.60, 0.40] {
            for policy in [
                PowercapPolicy::Shut,
                PowercapPolicy::Dvfs,
                PowercapPolicy::Mix,
            ] {
                grid.push(Scenario::paper(policy, fraction, interval_duration));
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_centres_the_window() {
        let s = Scenario::paper(PowercapPolicy::Shut, 0.6, 5 * HOUR);
        let w = s.window().unwrap();
        assert_eq!(w.duration(), HOUR);
        assert_eq!(w.start, 2 * HOUR);
        assert_eq!(s.label(), "60%/SHUT");
        assert_eq!(s.window_label(), "7200+3600");
        let platform = Platform::curie_scaled(1);
        let cap = s.cap(&platform).unwrap();
        assert!(cap.approx_eq(platform.max_power() * 0.6, 1e-6));
    }

    #[test]
    fn paper_window_never_overruns_a_short_interval() {
        // Regression: intervals shorter than the 1 h window used to keep the
        // full HOUR duration — `saturating_sub` pinned the start to 0 but the
        // window end still overran the interval. The duration must clamp.
        for interval in [1, 600, 1800, HOUR - 1] {
            let s = Scenario::paper(PowercapPolicy::Shut, 0.6, interval);
            let w = s.window().unwrap();
            assert_eq!(w.start, 0, "interval {interval}");
            assert_eq!(w.duration(), interval, "interval {interval}");
            assert!(
                w.end <= interval,
                "window end {} overruns {interval}",
                w.end
            );
        }
        // Exactly one hour: the window is the whole interval.
        let s = Scenario::paper(PowercapPolicy::Shut, 0.6, HOUR);
        let w = s.window().unwrap();
        assert_eq!((w.start, w.duration()), (0, HOUR));
        // Longer intervals keep the centred 1-hour placement.
        let s = Scenario::paper(PowercapPolicy::Shut, 0.6, 3 * HOUR);
        let w = s.window().unwrap();
        assert_eq!((w.start, w.duration()), (HOUR, HOUR));
    }

    #[test]
    fn multi_window_scenarios_expose_every_window() {
        let s = Scenario::paper(PowercapPolicy::Mix, 0.6, 5 * HOUR)
            .with_windows(vec![CapWindow::new(0, 1800), CapWindow::new(16_200, 1800)]);
        let windows = s.windows();
        assert_eq!(windows.len(), 2);
        assert_eq!((windows[0].start, windows[0].end), (0, 1800));
        assert_eq!((windows[1].start, windows[1].end), (16_200, 18_000));
        assert_eq!(s.window().unwrap().start, 0, "window() is the first one");
        assert_eq!(s.window_label(), "0+1800|16200+1800");
        assert_eq!(CapWindow::new(16_200, 1800).end(), 18_000);
        // The baseline has no windows and the "-" label.
        assert!(Scenario::baseline().windows().is_empty());
        assert_eq!(Scenario::baseline().window_label(), "-");
    }

    #[test]
    fn baseline_has_no_window() {
        let s = Scenario::baseline();
        assert!(s.window().is_none());
        assert!(s.cap(&Platform::curie_scaled(1)).is_none());
        assert_eq!(s.label(), "100%/None");
    }

    #[test]
    fn grid_matches_fig8_rows() {
        let grid = Scenario::paper_grid(5 * HOUR);
        assert_eq!(grid.len(), 10);
        assert_eq!(grid[0].label(), "100%/None");
        let labels: Vec<String> = grid.iter().map(Scenario::label).collect();
        assert!(labels.contains(&"40%/MIX".to_string()));
        assert!(labels.contains(&"80%/DVFS".to_string()));
        assert!(labels.contains(&"60%/SHUT".to_string()));
    }

    #[test]
    fn builders() {
        let s = Scenario::paper(PowercapPolicy::Mix, 0.4, 5 * HOUR)
            .with_window(1000, 2000)
            .with_grouping(GroupingStrategy::Scattered)
            .with_decision_rule(DecisionRule::WorkMaximizing)
            .with_kill_on_violation()
            .with_per_application_degradation();
        assert_eq!(s.window().unwrap().start, 1000);
        assert_eq!(s.window().unwrap().duration(), 2000);
        assert_eq!(s.grouping, GroupingStrategy::Scattered);
        assert_eq!(s.decision_rule, DecisionRule::WorkMaximizing);
        assert!(s.kill_on_violation);
        assert!(s.per_application_degradation);
    }
}

//! Powercap scenarios.
//!
//! The paper's evaluation replays each workload interval under "three
//! powercap scenarios reserving respectively 80 %, 60 % and 40 % of the
//! available power budget for one hour in the middle of the replayed
//! interval", plus a no-powercap baseline, for each of the SHUT / DVFS / MIX
//! policies.

use apc_core::PowercapPolicy;
use apc_power::bonus::GroupingStrategy;
use apc_power::tradeoff::DecisionRule;
use apc_power::Watts;
use apc_rjms::cluster::Platform;
use apc_rjms::time::{SimTime, TimeWindow, HOUR};
use serde::{Deserialize, Serialize};

/// One powercap window: a start instant (seconds into the interval) plus a
/// duration. Scenarios carry a list of them so one replay can cap two or
/// more disjoint slots of the same interval (a morning and an evening peak,
/// say) — every window shares the scenario's cap fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CapWindow {
    /// Start of the powercap window, seconds into the interval.
    pub start: SimTime,
    /// Duration of the powercap window, in seconds.
    pub duration: SimTime,
}

impl CapWindow {
    /// A window starting at `start` and lasting `duration` seconds.
    pub fn new(start: SimTime, duration: SimTime) -> Self {
        CapWindow { start, duration }
    }

    /// The window as a half-open [`TimeWindow`].
    pub fn time_window(&self) -> TimeWindow {
        TimeWindow::with_duration(self.start, self.duration)
    }

    /// End of the window (exclusive).
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// One segment of a time-varying cap schedule: a window plus its own cap
/// fraction. Unlike [`CapWindow`] (which shares the scenario-wide fraction),
/// each segment carries its own level, so tariff-shaped day/night caps or
/// trace-driven (carbon-intensity / spot-price style) profiles are
/// expressible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapSegment {
    /// Start of the segment, seconds into the interval.
    pub start: SimTime,
    /// Duration of the segment, in seconds.
    pub duration: SimTime,
    /// Cap level during the segment, as a fraction of maximum cluster
    /// power, in `(0, 1]`.
    pub fraction: f64,
}

impl CapSegment {
    /// A segment capping `[start, start + duration)` at `fraction`.
    pub fn new(start: SimTime, duration: SimTime, fraction: f64) -> Self {
        CapSegment {
            start,
            duration,
            fraction,
        }
    }

    /// The segment's window as a half-open [`TimeWindow`].
    pub fn time_window(&self) -> TimeWindow {
        TimeWindow::with_duration(self.start, self.duration)
    }

    /// End of the segment (exclusive).
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// An ordered, non-overlapping sequence of [`CapSegment`]s: the general
/// time-varying cap model. The legacy window list is the uniform-fraction
/// special case ([`CapSchedule::from_windows`]); richer schedules come from
/// per-segment fractions or a time-series file ([`CapSchedule::parse`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapSchedule {
    segments: Vec<CapSegment>,
}

impl CapSchedule {
    /// Build a schedule from explicit segments. Segments must be non-empty,
    /// sorted by start, pairwise non-overlapping, with positive durations
    /// and fractions in `(0, 1]`.
    pub fn new(segments: Vec<CapSegment>) -> Result<Self, String> {
        if segments.is_empty() {
            return Err("cap schedule needs at least one segment".to_string());
        }
        for (i, s) in segments.iter().enumerate() {
            if s.duration == 0 {
                return Err(format!("segment {i} has zero duration"));
            }
            if !(s.fraction > 0.0 && s.fraction <= 1.0) {
                return Err(format!(
                    "segment {i} fraction {} outside (0, 1]",
                    s.fraction
                ));
            }
            if i > 0 && s.start < segments[i - 1].end() {
                return Err(format!(
                    "segment {i} starting at {} overlaps the previous one ending at {}",
                    s.start,
                    segments[i - 1].end()
                ));
            }
        }
        Ok(CapSchedule { segments })
    }

    /// The legacy special case: every window capped at the same `fraction`.
    /// A scenario carrying this schedule replays bit-identically to the
    /// same windows expressed through `cap_fraction` + `cap_windows`.
    pub fn from_windows(windows: &[CapWindow], fraction: f64) -> Result<Self, String> {
        let mut segments: Vec<CapSegment> = windows
            .iter()
            .map(|w| CapSegment::new(w.start, w.duration, fraction))
            .collect();
        segments.sort_by_key(|s| s.start);
        CapSchedule::new(segments)
    }

    /// Parse the schedule-file format: one segment per line as
    /// `START DURATION FRACTION` (whitespace-separated, seconds and a
    /// fraction in `(0, 1]`), with `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut segments = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 3 {
                return Err(format!(
                    "line {}: expected `START DURATION FRACTION`, got {:?}",
                    lineno + 1,
                    line
                ));
            }
            let start: SimTime = fields[0]
                .parse()
                .map_err(|_| format!("line {}: bad start {:?}", lineno + 1, fields[0]))?;
            let duration: SimTime = fields[1]
                .parse()
                .map_err(|_| format!("line {}: bad duration {:?}", lineno + 1, fields[1]))?;
            let fraction: f64 = fields[2]
                .parse()
                .map_err(|_| format!("line {}: bad fraction {:?}", lineno + 1, fields[2]))?;
            segments.push(CapSegment::new(start, duration, fraction));
        }
        CapSchedule::new(segments)
    }

    /// The segments, in chronological order.
    pub fn segments(&self) -> &[CapSegment] {
        &self.segments
    }

    /// End of the last segment.
    pub fn end(&self) -> SimTime {
        self.segments.last().map(CapSegment::end).unwrap_or(0)
    }

    /// `true` if every segment carries the same fraction (the legacy shape).
    pub fn is_uniform(&self) -> bool {
        self.segments
            .iter()
            .all(|s| s.fraction == self.segments[0].fraction)
    }

    /// The time part of the label: `start+duration` pairs joined with `|` —
    /// exactly the [`Scenario::window_label`] rendering of the same windows,
    /// so legacy windows label identically under either construction path.
    pub fn window_label(&self) -> String {
        self.segments
            .iter()
            .map(|s| format!("{}+{}", s.start, s.duration))
            .collect::<Vec<_>>()
            .join("|")
    }

    /// A compact, CSV-safe label carrying the fractions too:
    /// `start+duration@percent` pairs joined with `|`
    /// (e.g. `"0+28800@80|28800+57600@40"`).
    pub fn label(&self) -> String {
        self.segments
            .iter()
            .map(|s| format!("{}+{}@{}", s.start, s.duration, s.fraction * 100.0))
            .collect::<Vec<_>>()
            .join("|")
    }
}

/// A seeded node fault plan: `count` node outages of `outage_duration`
/// seconds each, with failure nodes and instants drawn deterministically
/// from `seed`. Injected into the controller's event stream, a failure
/// powers the node off and kills whatever job occupies it (exercising the
/// existing kill/requeue semantics); the recovery powers it back on.
///
/// Two realism variants compose with the base plan (and each other),
/// expressed as label suffixes so legacy plans keep their exact syntax,
/// labels, fingerprints and event streams:
///
/// * `:weibull=K` — failure instants follow Weibull(shape `K`)
///   inter-failure times instead of the uniform draw. `K < 1` models the
///   bursty infant-mortality clustering real HPC failure traces show;
///   `K = 1` is exponential; `K > 1` spreads failures out (wear-out).
/// * `:chassis` — each drawn failure takes down the whole chassis of the
///   drawn node (shared power/cooling equipment failure), not just the one
///   node: one event becomes `nodes_per_chassis` simultaneous outages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Number of injected outages.
    pub count: usize,
    /// Length of each outage, in seconds (at least 1).
    pub outage_duration: SimTime,
    /// Seed for the deterministic draw of nodes and failure instants.
    pub seed: u64,
    /// Weibull shape parameter for inter-failure times, stored as raw `f64`
    /// bits so the plan stays `Copy + Eq + Hash`. `None` keeps the legacy
    /// uniform draw (and its exact event stream).
    weibull_shape_bits: Option<u64>,
    /// Chassis-correlated outages: each failure downs the drawn node's
    /// whole chassis.
    pub chassis: bool,
}

impl FaultPlan {
    /// A plan of `count` outages of `outage_duration` seconds from `seed`.
    pub fn new(count: usize, outage_duration: SimTime, seed: u64) -> Self {
        FaultPlan {
            count,
            outage_duration: outage_duration.max(1),
            seed,
            weibull_shape_bits: None,
            chassis: false,
        }
    }

    /// Use Weibull(shape `k`) inter-failure times (builder style). `k` must
    /// be finite and positive; [`parse`](Self::parse) validates the CLI
    /// syntax the same way.
    pub fn with_weibull(mut self, k: f64) -> Self {
        debug_assert!(k.is_finite() && k > 0.0, "weibull shape must be > 0");
        self.weibull_shape_bits = Some(k.to_bits());
        self
    }

    /// Make each outage take down the drawn node's whole chassis
    /// (builder style).
    pub fn with_chassis(mut self) -> Self {
        self.chassis = true;
        self
    }

    /// The Weibull shape parameter, when this plan uses Weibull
    /// inter-failure times.
    pub fn weibull_shape(&self) -> Option<f64> {
        self.weibull_shape_bits.map(f64::from_bits)
    }

    /// Parse the CLI syntax `COUNTxDURATION@SEED` (e.g. `3x600@7`), with
    /// optional `:weibull=K` and `:chassis` suffixes in any order
    /// (e.g. `3x600@7:weibull=0.7:chassis`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let err = || {
            format!(
                "fault plan {spec:?} is not COUNTxDURATION@SEED with optional \
                 :weibull=K / :chassis suffixes (e.g. 3x600@7:weibull=0.7)"
            )
        };
        let mut parts = spec.split(':');
        let base = parts.next().ok_or_else(err)?;
        let (head, seed) = base.split_once('@').ok_or_else(err)?;
        let (count, duration) = head.split_once('x').ok_or_else(err)?;
        let count: usize = count.parse().map_err(|_| err())?;
        let duration: SimTime = duration.parse().map_err(|_| err())?;
        let seed: u64 = seed.parse().map_err(|_| err())?;
        if count == 0 || duration == 0 {
            return Err(err());
        }
        let mut plan = FaultPlan::new(count, duration, seed);
        for suffix in parts {
            match suffix.split_once('=') {
                None if suffix == "chassis" => plan.chassis = true,
                Some(("weibull", k)) => {
                    let k: f64 = k.parse().map_err(|_| err())?;
                    if !(k.is_finite() && k > 0.0) {
                        return Err(format!(
                            "fault plan {spec:?}: weibull shape must be a positive \
                             finite number, got {k}"
                        ));
                    }
                    plan.weibull_shape_bits = Some(k.to_bits());
                }
                _ => return Err(err()),
            }
        }
        Ok(plan)
    }

    /// The CSV-safe label, round-tripping [`parse`](Self::parse):
    /// `"3x600@7"`, `"3x600@7:weibull=0.7"`, `"3x600@7:chassis"`,
    /// `"3x600@7:weibull=0.7:chassis"` (suffixes in canonical order).
    pub fn label(&self) -> String {
        let mut label = format!("{}x{}@{}", self.count, self.outage_duration, self.seed);
        if let Some(k) = self.weibull_shape() {
            label.push_str(&format!(":weibull={k}"));
        }
        if self.chassis {
            label.push_str(":chassis");
        }
        label
    }

    /// The concrete `(node, down, up)` outages for a platform of
    /// `total_nodes` nodes over `[0, horizon)`, sorted by failure time.
    /// Purely a function of the plan, the platform shape and the horizon —
    /// replays with the same plan are bit-identical. Outages may
    /// occasionally hit the same node; the controller treats the overlap as
    /// one longer outage ending at the first recovery.
    ///
    /// `nodes_per_chassis` only matters for [`chassis`](Self::chassis)
    /// plans: each drawn event then expands to one outage per node of the
    /// drawn node's chassis (pass 1 for flat topologies; the draw sequence
    /// itself never depends on it, so plain and chassis plans with the same
    /// base draw the same failure nodes and instants).
    pub fn events(
        &self,
        total_nodes: usize,
        nodes_per_chassis: usize,
        horizon: SimTime,
    ) -> Vec<(usize, SimTime, SimTime)> {
        if total_nodes == 0 || horizon == 0 {
            return Vec::new();
        }
        let mut state = self.seed ^ 0x5851_f42d_4c95_7f2d;
        let mut draw = move || {
            // SplitMix64: the standard avalanche of a Weyl sequence.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        // Draw interleaving matches the legacy path exactly — node then
        // instant per event — so the `weibull`/`chassis` variants reuse the
        // same node choices a plain plan with this seed makes.
        let raw: Vec<(usize, u64)> = (0..self.count)
            .map(|_| ((draw() % total_nodes as u64) as usize, draw()))
            .collect();
        let downs: Vec<SimTime> = match self.weibull_shape() {
            // Legacy: instants uniform over the horizon.
            None => raw.iter().map(|&(_, t)| t % horizon).collect(),
            // Weibull(k) inter-failure times via inversion,
            // T_i = (-ln U_i)^(1/k), normalised so the cumulative arrivals
            // span [0, horizon) — no gamma function needed, and the result
            // is still a pure function of the seed. One extra draw closes
            // the last gap so arrival `count` never lands on the horizon.
            Some(k) => {
                let uniform = |t: u64| {
                    // 53 uniform bits, clamped away from 0 so ln stays finite.
                    (((t >> 11) as f64) / (1u64 << 53) as f64).max(f64::MIN_POSITIVE)
                };
                let tail_gap = (-uniform(draw()).ln()).powf(1.0 / k);
                let gaps: Vec<f64> = raw
                    .iter()
                    .map(|&(_, t)| (-uniform(t).ln()).powf(1.0 / k))
                    .collect();
                let total: f64 = gaps.iter().sum::<f64>() + tail_gap;
                let mut cumulative = 0.0;
                gaps.iter()
                    .map(|gap| {
                        cumulative += gap;
                        (((cumulative / total) * horizon as f64) as SimTime).min(horizon - 1)
                    })
                    .collect()
            }
        };
        let per_chassis = nodes_per_chassis.max(1);
        let mut outages: Vec<(usize, SimTime, SimTime)> = Vec::new();
        for (&(node, _), &down) in raw.iter().zip(&downs) {
            let up = down + self.outage_duration;
            if self.chassis {
                let chassis = node / per_chassis;
                let start = chassis * per_chassis;
                let end = (start + per_chassis).min(total_nodes);
                outages.extend((start..end).map(|n| (n, down, up)));
            } else {
                outages.push((node, down, up));
            }
        }
        outages.sort_unstable();
        outages
    }
}

/// One experimental scenario: a policy plus optional powercap windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The powercap policy.
    pub policy: PowercapPolicy,
    /// Cap expressed as a fraction of the cluster's maximum power
    /// (`None` = no powercap reservation at all, the "100 %" rows).
    pub cap_fraction: Option<f64>,
    /// The powercap windows (all sharing `cap_fraction`). The paper's
    /// scenarios use exactly one; multi-window scenarios replay several
    /// disjoint cap slots in one interval. Ignored when `cap_fraction` is
    /// `None`.
    pub cap_windows: Vec<CapWindow>,
    /// A time-varying cap schedule. When set it supersedes
    /// `cap_fraction`/`cap_windows`: the harness registers one powercap
    /// reservation per segment at the segment's own fraction. `None` keeps
    /// the legacy static-window path bit-identical.
    pub cap_schedule: Option<CapSchedule>,
    /// A seeded node fault plan injected into the replay. `None` (the
    /// default everywhere) keeps the fault-free path bit-identical.
    pub faults: Option<FaultPlan>,
    /// Switch-off grouping strategy (ablation knob).
    pub grouping: GroupingStrategy,
    /// DVFS-vs-shutdown decision rule (ablation knob).
    pub decision_rule: DecisionRule,
    /// Kill running jobs when the cap is violated at activation.
    pub kill_on_violation: bool,
    /// Stretch each job with its own application-class degradation instead of
    /// the policy-wide common value (the paper's future-work extension).
    pub per_application_degradation: bool,
}

impl Scenario {
    /// The paper's standard scenario: `policy` with a 1-hour cap of
    /// `cap_fraction` placed in the middle of an interval of
    /// `interval_duration` seconds. Intervals shorter than an hour get a
    /// window clamped to the whole interval — the window never overruns the
    /// interval end.
    pub fn paper(policy: PowercapPolicy, cap_fraction: f64, interval_duration: SimTime) -> Self {
        let window_duration = HOUR.min(interval_duration);
        let window_start = (interval_duration - window_duration) / 2;
        Scenario {
            policy,
            cap_fraction: Some(cap_fraction),
            cap_windows: vec![CapWindow::new(window_start, window_duration)],
            cap_schedule: None,
            faults: None,
            grouping: GroupingStrategy::Grouped,
            decision_rule: DecisionRule::PaperRho,
            kill_on_violation: false,
            per_application_degradation: false,
        }
    }

    /// The uncapped baseline ("100 %/None").
    pub fn baseline() -> Self {
        Scenario {
            policy: PowercapPolicy::None,
            cap_fraction: None,
            cap_windows: Vec::new(),
            cap_schedule: None,
            faults: None,
            grouping: GroupingStrategy::Grouped,
            decision_rule: DecisionRule::PaperRho,
            kill_on_violation: false,
            per_application_degradation: false,
        }
    }

    /// A scenario capped by a time-varying schedule under `policy`.
    pub fn scheduled(policy: PowercapPolicy, schedule: CapSchedule) -> Self {
        Scenario {
            policy,
            cap_fraction: None,
            cap_windows: Vec::new(),
            cap_schedule: Some(schedule),
            faults: None,
            grouping: GroupingStrategy::Grouped,
            decision_rule: DecisionRule::PaperRho,
            kill_on_violation: false,
            per_application_degradation: false,
        }
    }

    /// Replace the cap windows with one `[start, start + duration)` window
    /// (builder style).
    pub fn with_window(mut self, start: SimTime, duration: SimTime) -> Self {
        self.cap_windows = vec![CapWindow::new(start, duration)];
        self
    }

    /// Replace the cap windows wholesale (builder style). Windows should be
    /// pairwise disjoint; the campaign spec validates that before expansion.
    pub fn with_windows(mut self, windows: Vec<CapWindow>) -> Self {
        self.cap_windows = windows;
        self
    }

    /// Replace the cap schedule (builder style). The schedule supersedes
    /// `cap_fraction`/`cap_windows` in the harness.
    pub fn with_schedule(mut self, schedule: CapSchedule) -> Self {
        self.cap_schedule = Some(schedule);
        self
    }

    /// Attach a fault plan (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Override the grouping strategy (builder style).
    pub fn with_grouping(mut self, grouping: GroupingStrategy) -> Self {
        self.grouping = grouping;
        self
    }

    /// Override the decision rule (builder style).
    pub fn with_decision_rule(mut self, rule: DecisionRule) -> Self {
        self.decision_rule = rule;
        self
    }

    /// Enable "extreme actions" (builder style).
    pub fn with_kill_on_violation(mut self) -> Self {
        self.kill_on_violation = true;
        self
    }

    /// Enable application-aware DVFS degradation (builder style).
    pub fn with_per_application_degradation(mut self) -> Self {
        self.per_application_degradation = true;
        self
    }

    /// The first powercap window, if the scenario has any — the common case
    /// for paper-style single-window scenarios.
    pub fn window(&self) -> Option<TimeWindow> {
        self.windows().first().copied()
    }

    /// Every powercap window of the scenario (empty for the baseline). A
    /// schedule-carrying scenario exposes its segment windows.
    pub fn windows(&self) -> Vec<TimeWindow> {
        if let Some(schedule) = &self.cap_schedule {
            return schedule
                .segments()
                .iter()
                .map(CapSegment::time_window)
                .collect();
        }
        if self.cap_fraction.is_none() {
            return Vec::new();
        }
        self.cap_windows
            .iter()
            .map(CapWindow::time_window)
            .collect()
    }

    /// A compact, CSV-safe label of the cap windows: `start+duration` pairs
    /// joined with `|` (e.g. `"7200+3600"`, `"0+1800|16200+1800"`), or `"-"`
    /// for the uncapped baseline. Used as the `window` result column and as
    /// part of the across-seed summary grouping key, so window sweeps never
    /// collapse into one group. A schedule built from legacy windows labels
    /// identically to the windows themselves (the fractions live in
    /// [`schedule_label`](Self::schedule_label)), so neither construction
    /// path relabels existing stores.
    pub fn window_label(&self) -> String {
        if let Some(schedule) = &self.cap_schedule {
            return schedule.window_label();
        }
        if self.cap_fraction.is_none() || self.cap_windows.is_empty() {
            return "-".to_string();
        }
        self.cap_windows
            .iter()
            .map(|w| format!("{}+{}", w.start, w.duration))
            .collect::<Vec<_>>()
            .join("|")
    }

    /// The cap-schedule label (`start+duration@percent` pairs joined with
    /// `|`), or `"-"` for scenarios without a schedule — the value of the
    /// `schedule` result column.
    pub fn schedule_label(&self) -> String {
        match &self.cap_schedule {
            Some(schedule) => schedule.label(),
            None => "-".to_string(),
        }
    }

    /// The fault-plan label (`COUNTxDURATION@SEED`), or `"-"` for fault-free
    /// scenarios — the value of the `faults` result column.
    pub fn fault_label(&self) -> String {
        match &self.faults {
            Some(plan) => plan.label(),
            None => "-".to_string(),
        }
    }

    /// The absolute cap for a given platform, if the scenario has one.
    pub fn cap(&self, platform: &Platform) -> Option<Watts> {
        self.cap_fraction.map(|f| platform.power_fraction(f))
    }

    /// A short label like "40%/MIX" (the row labels of Fig. 8). Scenarios
    /// capped by a time-varying schedule render as "SCHED/MIX" — the
    /// per-segment levels live in [`schedule_label`](Self::schedule_label).
    pub fn label(&self) -> String {
        if self.cap_schedule.is_some() {
            return format!("SCHED/{}", self.policy);
        }
        match self.cap_fraction {
            Some(f) => format!("{:.0}%/{}", f * 100.0, self.policy),
            None => "100%/None".to_string(),
        }
    }

    /// The full grid of the paper's Fig. 8 for one interval: 100 %/None plus
    /// {80, 60, 40 %} × {SHUT, DVFS, MIX}.
    pub fn paper_grid(interval_duration: SimTime) -> Vec<Scenario> {
        let mut grid = vec![Scenario::baseline()];
        for fraction in [0.80, 0.60, 0.40] {
            for policy in [
                PowercapPolicy::Shut,
                PowercapPolicy::Dvfs,
                PowercapPolicy::Mix,
            ] {
                grid.push(Scenario::paper(policy, fraction, interval_duration));
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_centres_the_window() {
        let s = Scenario::paper(PowercapPolicy::Shut, 0.6, 5 * HOUR);
        let w = s.window().unwrap();
        assert_eq!(w.duration(), HOUR);
        assert_eq!(w.start, 2 * HOUR);
        assert_eq!(s.label(), "60%/SHUT");
        assert_eq!(s.window_label(), "7200+3600");
        let platform = Platform::curie_scaled(1);
        let cap = s.cap(&platform).unwrap();
        assert!(cap.approx_eq(platform.max_power() * 0.6, 1e-6));
    }

    #[test]
    fn paper_window_never_overruns_a_short_interval() {
        // Regression: intervals shorter than the 1 h window used to keep the
        // full HOUR duration — `saturating_sub` pinned the start to 0 but the
        // window end still overran the interval. The duration must clamp.
        for interval in [1, 600, 1800, HOUR - 1] {
            let s = Scenario::paper(PowercapPolicy::Shut, 0.6, interval);
            let w = s.window().unwrap();
            assert_eq!(w.start, 0, "interval {interval}");
            assert_eq!(w.duration(), interval, "interval {interval}");
            assert!(
                w.end <= interval,
                "window end {} overruns {interval}",
                w.end
            );
        }
        // Exactly one hour: the window is the whole interval.
        let s = Scenario::paper(PowercapPolicy::Shut, 0.6, HOUR);
        let w = s.window().unwrap();
        assert_eq!((w.start, w.duration()), (0, HOUR));
        // Longer intervals keep the centred 1-hour placement.
        let s = Scenario::paper(PowercapPolicy::Shut, 0.6, 3 * HOUR);
        let w = s.window().unwrap();
        assert_eq!((w.start, w.duration()), (HOUR, HOUR));
    }

    #[test]
    fn multi_window_scenarios_expose_every_window() {
        let s = Scenario::paper(PowercapPolicy::Mix, 0.6, 5 * HOUR)
            .with_windows(vec![CapWindow::new(0, 1800), CapWindow::new(16_200, 1800)]);
        let windows = s.windows();
        assert_eq!(windows.len(), 2);
        assert_eq!((windows[0].start, windows[0].end), (0, 1800));
        assert_eq!((windows[1].start, windows[1].end), (16_200, 18_000));
        assert_eq!(s.window().unwrap().start, 0, "window() is the first one");
        assert_eq!(s.window_label(), "0+1800|16200+1800");
        assert_eq!(CapWindow::new(16_200, 1800).end(), 18_000);
        // The baseline has no windows and the "-" label.
        assert!(Scenario::baseline().windows().is_empty());
        assert_eq!(Scenario::baseline().window_label(), "-");
    }

    #[test]
    fn baseline_has_no_window() {
        let s = Scenario::baseline();
        assert!(s.window().is_none());
        assert!(s.cap(&Platform::curie_scaled(1)).is_none());
        assert_eq!(s.label(), "100%/None");
    }

    #[test]
    fn grid_matches_fig8_rows() {
        let grid = Scenario::paper_grid(5 * HOUR);
        assert_eq!(grid.len(), 10);
        assert_eq!(grid[0].label(), "100%/None");
        let labels: Vec<String> = grid.iter().map(Scenario::label).collect();
        assert!(labels.contains(&"40%/MIX".to_string()));
        assert!(labels.contains(&"80%/DVFS".to_string()));
        assert!(labels.contains(&"60%/SHUT".to_string()));
    }

    #[test]
    fn schedule_validation_and_labels() {
        let schedule = CapSchedule::new(vec![
            CapSegment::new(0, 28_800, 0.8),
            CapSegment::new(28_800, 57_600, 0.4),
        ])
        .unwrap();
        assert_eq!(schedule.segments().len(), 2);
        assert_eq!(schedule.end(), 86_400);
        assert!(!schedule.is_uniform());
        assert_eq!(schedule.window_label(), "0+28800|28800+57600");
        assert_eq!(schedule.label(), "0+28800@80|28800+57600@40");
        // Invalid shapes are rejected.
        assert!(CapSchedule::new(vec![]).is_err());
        assert!(CapSchedule::new(vec![CapSegment::new(0, 0, 0.5)]).is_err());
        assert!(CapSchedule::new(vec![CapSegment::new(0, 10, 1.5)]).is_err());
        assert!(CapSchedule::new(vec![CapSegment::new(0, 10, 0.0)]).is_err());
        assert!(CapSchedule::new(vec![
            CapSegment::new(0, 100, 0.5),
            CapSegment::new(50, 100, 0.5),
        ])
        .is_err());
    }

    #[test]
    fn schedule_from_windows_matches_the_legacy_label() {
        let windows = vec![CapWindow::new(0, 1800), CapWindow::new(16_200, 1800)];
        let schedule = CapSchedule::from_windows(&windows, 0.6).unwrap();
        assert!(schedule.is_uniform());
        let legacy = Scenario::paper(PowercapPolicy::Mix, 0.6, 5 * HOUR).with_windows(windows);
        let scheduled = Scenario::scheduled(PowercapPolicy::Mix, schedule);
        // Either construction path labels the windows identically: no
        // silent relabeling of existing stores.
        assert_eq!(legacy.window_label(), "0+1800|16200+1800");
        assert_eq!(scheduled.window_label(), legacy.window_label());
        assert_eq!(scheduled.windows(), legacy.windows());
        assert_eq!(scheduled.label(), "SCHED/MIX");
        assert_eq!(scheduled.schedule_label(), "0+1800@60|16200+1800@60");
        assert_eq!(legacy.schedule_label(), "-");
    }

    #[test]
    fn schedule_file_parsing() {
        let text = "\
# tariff-style day/night profile
0     28800 0.8   # night: generous
28800 57600 0.4   # day: tight

";
        let schedule = CapSchedule::parse(text).unwrap();
        assert_eq!(schedule.segments().len(), 2);
        assert_eq!(schedule.segments()[1].fraction, 0.4);
        assert!(CapSchedule::parse("not a schedule").is_err());
        assert!(CapSchedule::parse("0 10").is_err());
        assert!(CapSchedule::parse("0 10 2.0").is_err());
        assert!(CapSchedule::parse("").is_err());
    }

    #[test]
    fn fault_plan_parse_label_and_events() {
        let plan = FaultPlan::parse("3x600@7").unwrap();
        assert_eq!(plan, FaultPlan::new(3, 600, 7));
        assert_eq!(plan.label(), "3x600@7");
        assert!(FaultPlan::parse("3x600").is_err());
        assert!(FaultPlan::parse("0x600@7").is_err());
        assert!(FaultPlan::parse("3x0@7").is_err());
        assert!(FaultPlan::parse("axb@c").is_err());
        let events = plan.events(180, 18, 18_000);
        assert_eq!(events.len(), 3);
        for &(node, down, up) in &events {
            assert!(node < 180);
            assert!(down < 18_000);
            assert_eq!(up, down + 600);
        }
        // Deterministic: same plan, same events; different seed, different.
        assert_eq!(events, plan.events(180, 18, 18_000));
        assert_ne!(events, FaultPlan::new(3, 600, 8).events(180, 18, 18_000));
        assert!(events.windows(2).all(|w| w[0] <= w[1]), "sorted");
        // Degenerate platforms produce no events.
        assert!(plan.events(0, 18, 18_000).is_empty());
        assert!(plan.events(180, 18, 0).is_empty());
    }

    #[test]
    fn weibull_suffix_parses_labels_and_reshapes_instants() {
        let plan = FaultPlan::parse("5x600@7:weibull=0.7").unwrap();
        assert_eq!(plan.weibull_shape(), Some(0.7));
        assert!(!plan.chassis);
        assert_eq!(plan.label(), "5x600@7:weibull=0.7");
        assert_eq!(FaultPlan::parse(&plan.label()).unwrap(), plan);
        // Same seed, same nodes hit — only the instants move.
        let base = FaultPlan::parse("5x600@7").unwrap();
        let weibull = plan.events(180, 18, 18_000);
        let uniform = base.events(180, 18, 18_000);
        assert_eq!(weibull.len(), 5);
        let nodes = |evs: &[(usize, SimTime, SimTime)]| {
            let mut n: Vec<usize> = evs.iter().map(|e| e.0).collect();
            n.sort_unstable();
            n
        };
        assert_eq!(nodes(&weibull), nodes(&uniform));
        assert_ne!(weibull, uniform, "instants are redistributed");
        for &(_, down, _) in &weibull {
            assert!(down < 18_000);
        }
        // Deterministic, and the shape matters.
        assert_eq!(weibull, plan.events(180, 18, 18_000));
        assert_ne!(
            weibull,
            FaultPlan::parse("5x600@7:weibull=2.5")
                .unwrap()
                .events(180, 18, 18_000)
        );
        // Bad shapes are rejected.
        assert!(FaultPlan::parse("5x600@7:weibull=0").is_err());
        assert!(FaultPlan::parse("5x600@7:weibull=-1").is_err());
        assert!(FaultPlan::parse("5x600@7:weibull=nope").is_err());
        assert!(FaultPlan::parse("5x600@7:bogus").is_err());
    }

    #[test]
    fn chassis_suffix_downs_whole_chassis_groups() {
        let plan = FaultPlan::parse("2x300@11:chassis").unwrap();
        assert!(plan.chassis);
        assert_eq!(plan.label(), "2x300@11:chassis");
        assert_eq!(FaultPlan::parse(&plan.label()).unwrap(), plan);
        let events = plan.events(90, 18, 18_000);
        // 2 drawn failures x 18 nodes per chassis (chassis may collide,
        // giving overlapping outages on the same nodes — still 36 events).
        assert_eq!(events.len(), 36);
        // Every event's node set covers whole chassis: group instants and
        // check each (down, up) pair hits a full aligned 18-node range.
        let base = FaultPlan::parse("2x300@11").unwrap().events(90, 18, 18_000);
        let drawn_chassis: std::collections::BTreeSet<usize> =
            base.iter().map(|&(n, _, _)| n / 18).collect();
        let hit_nodes: std::collections::BTreeSet<usize> =
            events.iter().map(|&(n, _, _)| n).collect();
        let expect: std::collections::BTreeSet<usize> = drawn_chassis
            .iter()
            .flat_map(|c| (c * 18)..(c * 18 + 18))
            .collect();
        assert_eq!(hit_nodes, expect);
        // Both suffixes compose, in either parse order, canonical label out.
        let both = FaultPlan::parse("2x300@11:chassis:weibull=1.5").unwrap();
        assert_eq!(both.label(), "2x300@11:weibull=1.5:chassis");
        assert_eq!(FaultPlan::parse(&both.label()).unwrap(), both);
        assert_eq!(both, base_plan_with_both());
        // A flat topology (nodes_per_chassis = 1) degrades to single nodes.
        assert_eq!(plan.events(90, 1, 18_000).len(), 2);
    }

    fn base_plan_with_both() -> FaultPlan {
        FaultPlan::new(2, 300, 11).with_weibull(1.5).with_chassis()
    }

    #[test]
    fn scenario_fault_labels() {
        let s = Scenario::baseline().with_faults(FaultPlan::new(2, 300, 11));
        assert_eq!(s.fault_label(), "2x300@11");
        assert_eq!(Scenario::baseline().fault_label(), "-");
    }

    #[test]
    fn builders() {
        let s = Scenario::paper(PowercapPolicy::Mix, 0.4, 5 * HOUR)
            .with_window(1000, 2000)
            .with_grouping(GroupingStrategy::Scattered)
            .with_decision_rule(DecisionRule::WorkMaximizing)
            .with_kill_on_violation()
            .with_per_application_degradation();
        assert_eq!(s.window().unwrap().start, 1000);
        assert_eq!(s.window().unwrap().duration(), 2000);
        assert_eq!(s.grouping, GroupingStrategy::Scattered);
        assert_eq!(s.decision_rule, DecisionRule::WorkMaximizing);
        assert!(s.kill_on_violation);
        assert!(s.per_application_degradation);
    }
}

//! Powercap scenarios.
//!
//! The paper's evaluation replays each workload interval under "three
//! powercap scenarios reserving respectively 80 %, 60 % and 40 % of the
//! available power budget for one hour in the middle of the replayed
//! interval", plus a no-powercap baseline, for each of the SHUT / DVFS / MIX
//! policies.

use apc_core::PowercapPolicy;
use apc_power::bonus::GroupingStrategy;
use apc_power::tradeoff::DecisionRule;
use apc_power::Watts;
use apc_rjms::cluster::Platform;
use apc_rjms::time::{SimTime, TimeWindow, HOUR};
use serde::{Deserialize, Serialize};

/// One experimental scenario: a policy plus an optional powercap window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The powercap policy.
    pub policy: PowercapPolicy,
    /// Cap expressed as a fraction of the cluster's maximum power
    /// (`None` = no powercap reservation at all, the "100 %" rows).
    pub cap_fraction: Option<f64>,
    /// Start of the powercap window, seconds into the interval.
    pub window_start: SimTime,
    /// Duration of the powercap window.
    pub window_duration: SimTime,
    /// Switch-off grouping strategy (ablation knob).
    pub grouping: GroupingStrategy,
    /// DVFS-vs-shutdown decision rule (ablation knob).
    pub decision_rule: DecisionRule,
    /// Kill running jobs when the cap is violated at activation.
    pub kill_on_violation: bool,
    /// Stretch each job with its own application-class degradation instead of
    /// the policy-wide common value (the paper's future-work extension).
    pub per_application_degradation: bool,
}

impl Scenario {
    /// The paper's standard scenario: `policy` with a 1-hour cap of
    /// `cap_fraction` placed in the middle of an interval of
    /// `interval_duration` seconds.
    pub fn paper(policy: PowercapPolicy, cap_fraction: f64, interval_duration: SimTime) -> Self {
        let window_start = interval_duration.saturating_sub(HOUR) / 2;
        Scenario {
            policy,
            cap_fraction: Some(cap_fraction),
            window_start,
            window_duration: HOUR,
            grouping: GroupingStrategy::Grouped,
            decision_rule: DecisionRule::PaperRho,
            kill_on_violation: false,
            per_application_degradation: false,
        }
    }

    /// The uncapped baseline ("100 %/None").
    pub fn baseline() -> Self {
        Scenario {
            policy: PowercapPolicy::None,
            cap_fraction: None,
            window_start: 0,
            window_duration: 0,
            grouping: GroupingStrategy::Grouped,
            decision_rule: DecisionRule::PaperRho,
            kill_on_violation: false,
            per_application_degradation: false,
        }
    }

    /// Override the cap window (builder style).
    pub fn with_window(mut self, start: SimTime, duration: SimTime) -> Self {
        self.window_start = start;
        self.window_duration = duration;
        self
    }

    /// Override the grouping strategy (builder style).
    pub fn with_grouping(mut self, grouping: GroupingStrategy) -> Self {
        self.grouping = grouping;
        self
    }

    /// Override the decision rule (builder style).
    pub fn with_decision_rule(mut self, rule: DecisionRule) -> Self {
        self.decision_rule = rule;
        self
    }

    /// Enable "extreme actions" (builder style).
    pub fn with_kill_on_violation(mut self) -> Self {
        self.kill_on_violation = true;
        self
    }

    /// Enable application-aware DVFS degradation (builder style).
    pub fn with_per_application_degradation(mut self) -> Self {
        self.per_application_degradation = true;
        self
    }

    /// The powercap window, if the scenario has one.
    pub fn window(&self) -> Option<TimeWindow> {
        self.cap_fraction?;
        Some(TimeWindow::with_duration(
            self.window_start,
            self.window_duration,
        ))
    }

    /// The absolute cap for a given platform, if the scenario has one.
    pub fn cap(&self, platform: &Platform) -> Option<Watts> {
        self.cap_fraction.map(|f| platform.power_fraction(f))
    }

    /// A short label like "40%/MIX" (the row labels of Fig. 8).
    pub fn label(&self) -> String {
        match self.cap_fraction {
            Some(f) => format!("{:.0}%/{}", f * 100.0, self.policy),
            None => "100%/None".to_string(),
        }
    }

    /// The full grid of the paper's Fig. 8 for one interval: 100 %/None plus
    /// {80, 60, 40 %} × {SHUT, DVFS, MIX}.
    pub fn paper_grid(interval_duration: SimTime) -> Vec<Scenario> {
        let mut grid = vec![Scenario::baseline()];
        for fraction in [0.80, 0.60, 0.40] {
            for policy in [
                PowercapPolicy::Shut,
                PowercapPolicy::Dvfs,
                PowercapPolicy::Mix,
            ] {
                grid.push(Scenario::paper(policy, fraction, interval_duration));
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_centres_the_window() {
        let s = Scenario::paper(PowercapPolicy::Shut, 0.6, 5 * HOUR);
        let w = s.window().unwrap();
        assert_eq!(w.duration(), HOUR);
        assert_eq!(w.start, 2 * HOUR);
        assert_eq!(s.label(), "60%/SHUT");
        let platform = Platform::curie_scaled(1);
        let cap = s.cap(&platform).unwrap();
        assert!(cap.approx_eq(platform.max_power() * 0.6, 1e-6));
    }

    #[test]
    fn baseline_has_no_window() {
        let s = Scenario::baseline();
        assert!(s.window().is_none());
        assert!(s.cap(&Platform::curie_scaled(1)).is_none());
        assert_eq!(s.label(), "100%/None");
    }

    #[test]
    fn grid_matches_fig8_rows() {
        let grid = Scenario::paper_grid(5 * HOUR);
        assert_eq!(grid.len(), 10);
        assert_eq!(grid[0].label(), "100%/None");
        let labels: Vec<String> = grid.iter().map(Scenario::label).collect();
        assert!(labels.contains(&"40%/MIX".to_string()));
        assert!(labels.contains(&"80%/DVFS".to_string()));
        assert!(labels.contains(&"60%/SHUT".to_string()));
    }

    #[test]
    fn builders() {
        let s = Scenario::paper(PowercapPolicy::Mix, 0.4, 5 * HOUR)
            .with_window(1000, 2000)
            .with_grouping(GroupingStrategy::Scattered)
            .with_decision_rule(DecisionRule::WorkMaximizing)
            .with_kill_on_violation()
            .with_per_application_degradation();
        assert_eq!(s.window().unwrap().start, 1000);
        assert_eq!(s.window().unwrap().duration(), 2000);
        assert_eq!(s.grouping, GroupingStrategy::Scattered);
        assert_eq!(s.decision_rule, DecisionRule::WorkMaximizing);
        assert!(s.kill_on_violation);
        assert!(s.per_application_degradation);
    }
}

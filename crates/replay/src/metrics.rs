//! Metrics reconstruction: utilisation/power time series and normalised
//! outcomes.
//!
//! Figures 6 and 7 of the paper plot, over the replayed interval, the number
//! of cores computing at each CPU frequency (stacked areas, with switched-off
//! cores cross-hatched) and the corresponding power consumption. Figure 8
//! compares scenarios through three normalised quantities: total consumed
//! energy, number of launched jobs, and accumulated work.
//!
//! All three are rebuilt here from the controller's simulation log and power
//! accounting — the replay never instruments scheduler internals.

use std::collections::BTreeMap;

use apc_power::{Joules, Watts};
use apc_rjms::cluster::Platform;
use apc_rjms::controller::SimulationReport;
use apc_rjms::log::{SimEventKind, SimLog};
use apc_rjms::time::SimTime;
use apc_workload::Trace;
use serde::{Deserialize, Serialize};

/// Cores in each state at one instant.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Sample time.
    pub time: SimTime,
    /// Busy cores per CPU frequency (MHz key), matching the stacked areas of
    /// Figures 6 and 7.
    pub busy_cores_by_freq: BTreeMap<u32, u64>,
    /// Cores belonging to switched-off nodes (the cross-hatched area).
    pub off_cores: u64,
}

impl UtilizationSample {
    /// Total busy cores across all frequencies.
    pub fn busy_cores(&self) -> u64 {
        self.busy_cores_by_freq.values().sum()
    }
}

/// Step-function time series of core states.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UtilizationSeries {
    samples: Vec<UtilizationSample>,
    total_cores: u64,
}

impl UtilizationSeries {
    /// Reconstruct the series from a simulation log.
    pub fn from_log(log: &SimLog, platform: &Platform) -> Self {
        let cores_per_node = platform.cores_per_node as u64;
        let mut samples: Vec<UtilizationSample> = Vec::new();
        let mut by_freq: BTreeMap<u32, i64> = BTreeMap::new();
        let mut off_nodes: i64 = 0;
        let mut job_freq: BTreeMap<usize, (u32, u32)> = BTreeMap::new(); // job -> (cores, mhz)

        let push = |time: SimTime,
                    by_freq: &BTreeMap<u32, i64>,
                    off_nodes: i64,
                    samples: &mut Vec<UtilizationSample>| {
            let sample = UtilizationSample {
                time,
                busy_cores_by_freq: by_freq
                    .iter()
                    .filter(|(_, &v)| v > 0)
                    .map(|(&k, &v)| (k, v as u64))
                    .collect(),
                off_cores: (off_nodes.max(0) as u64) * cores_per_node,
            };
            if let Some(last) = samples.last_mut() {
                if last.time == time {
                    *last = sample;
                    return;
                }
            }
            samples.push(sample);
        };

        for event in log.events() {
            match &event.kind {
                SimEventKind::JobStarted {
                    job,
                    cores,
                    frequency,
                    ..
                } => {
                    let mhz = frequency.as_mhz();
                    *by_freq.entry(mhz).or_insert(0) += i64::from(*cores);
                    job_freq.insert(*job, (*cores, mhz));
                    push(event.time, &by_freq, off_nodes, &mut samples);
                }
                SimEventKind::JobCompleted { job, .. } | SimEventKind::JobKilled { job, .. } => {
                    if let Some((cores, mhz)) = job_freq.remove(job) {
                        *by_freq.entry(mhz).or_insert(0) -= i64::from(cores);
                        push(event.time, &by_freq, off_nodes, &mut samples);
                    }
                }
                SimEventKind::NodesPoweredOff { nodes } => {
                    off_nodes += nodes.len() as i64;
                    push(event.time, &by_freq, off_nodes, &mut samples);
                }
                SimEventKind::NodesPoweredOn { nodes } => {
                    off_nodes -= nodes.len() as i64;
                    push(event.time, &by_freq, off_nodes, &mut samples);
                }
                _ => {}
            }
        }
        UtilizationSeries {
            samples,
            total_cores: platform.total_cores(),
        }
    }

    /// The raw step-change samples.
    pub fn samples(&self) -> &[UtilizationSample] {
        &self.samples
    }

    /// Total core count of the platform.
    pub fn total_cores(&self) -> u64 {
        self.total_cores
    }

    /// The state at instant `t` (the last change at or before `t`).
    pub fn at(&self, t: SimTime) -> UtilizationSample {
        let idx = self.samples.partition_point(|s| s.time <= t);
        if idx == 0 {
            UtilizationSample {
                time: t,
                ..UtilizationSample::default()
            }
        } else {
            let mut s = self.samples[idx - 1].clone();
            s.time = t;
            s
        }
    }

    /// Resample the series at a fixed `step` over `[0, horizon]` — the form
    /// used to print/plot Figures 6 and 7.
    pub fn resample(&self, horizon: SimTime, step: SimTime) -> Vec<UtilizationSample> {
        assert!(step > 0);
        (0..=horizon / step).map(|i| self.at(i * step)).collect()
    }

    /// Mean utilisation (busy cores / total cores) over `[0, horizon]`,
    /// integrating the step function exactly.
    pub fn mean_utilization(&self, horizon: SimTime) -> f64 {
        if self.total_cores == 0 || horizon == 0 {
            return 0.0;
        }
        let mut busy_core_seconds = 0.0;
        let mut last_time = 0u64;
        let mut last_busy = 0u64;
        for s in &self.samples {
            if s.time >= horizon {
                break;
            }
            busy_core_seconds += last_busy as f64 * (s.time - last_time) as f64;
            last_time = s.time;
            last_busy = s.busy_cores();
        }
        busy_core_seconds += last_busy as f64 * (horizon - last_time) as f64;
        busy_core_seconds / (self.total_cores as f64 * horizon as f64)
    }
}

/// Power time series (taken straight from the power accountant's samples).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerSeries {
    /// `(time, watts)` change points.
    pub samples: Vec<(SimTime, Watts)>,
}

impl PowerSeries {
    /// Build from the accountant's sample log.
    pub fn from_samples(samples: &[apc_power::PowerSample]) -> Self {
        PowerSeries {
            samples: samples.iter().map(|s| (s.time, s.power)).collect(),
        }
    }

    /// Power at instant `t`.
    pub fn at(&self, t: SimTime) -> Watts {
        let idx = self.samples.partition_point(|s| s.0 <= t);
        if idx == 0 {
            Watts::ZERO
        } else {
            self.samples[idx - 1].1
        }
    }

    /// Peak power inside `[start, end)`: the level carried in at `start`
    /// maxed with every change point inside the window.
    ///
    /// The samples are change points in nondecreasing time order, so the
    /// window is located by binary search — multi-window campaign cells
    /// query many windows against the same series, and a full scan per call
    /// made that O(windows × samples).
    pub fn peak_within(&self, start: SimTime, end: SimTime) -> Watts {
        let start_level = self.at(start);
        let lo = self.samples.partition_point(|s| s.0 < start);
        let hi = lo + self.samples[lo..].partition_point(|s| s.0 < end);
        self.samples[lo..hi]
            .iter()
            .map(|(_, p)| *p)
            .fold(start_level, Watts::max)
    }

    /// Resample at a fixed step.
    pub fn resample(&self, horizon: SimTime, step: SimTime) -> Vec<(SimTime, Watts)> {
        assert!(step > 0);
        (0..=horizon / step)
            .map(|i| (i * step, self.at(i * step)))
            .collect()
    }
}

/// The normalised outcome triple of the paper's Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedOutcome {
    /// Total consumed energy.
    pub energy: Joules,
    /// Energy normalised by the energy of a cluster running flat-out for the
    /// whole interval (the "maximal possible value").
    pub energy_normalized: f64,
    /// Number of jobs started during the interval.
    pub launched_jobs: usize,
    /// Launched jobs normalised by the number of jobs in the trace.
    pub launched_jobs_normalized: f64,
    /// Work (core-seconds) delivered during the interval.
    pub work_core_seconds: f64,
    /// Work normalised by the interval's total core capacity.
    pub work_normalized: f64,
}

impl NormalizedOutcome {
    /// Compute the triple from a simulation report.
    pub fn from_report(report: &SimulationReport, platform: &Platform, trace: &Trace) -> Self {
        let horizon = report.horizon.max(1);
        let max_energy = platform.max_power().over_seconds(horizon);
        let capacity = platform.total_cores() as f64 * horizon as f64;
        NormalizedOutcome {
            energy: report.energy,
            energy_normalized: report.energy.as_joules() / max_energy.as_joules(),
            launched_jobs: report.launched_jobs,
            launched_jobs_normalized: report.launched_jobs as f64 / trace.len().max(1) as f64,
            work_core_seconds: report.work_core_seconds,
            work_normalized: report.work_core_seconds / capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_power::{Frequency, PowerSample};

    fn platform() -> Platform {
        Platform::curie_scaled(1)
    }

    fn log_with_activity() -> SimLog {
        let mut log = SimLog::new();
        log.push(0, SimEventKind::JobSubmitted { job: 0, cores: 160 });
        log.push(
            10,
            SimEventKind::JobStarted {
                job: 0,
                cores: 160,
                nodes: 10,
                frequency: Frequency::from_ghz(2.7),
            },
        );
        log.push(
            20,
            SimEventKind::JobStarted {
                job: 1,
                cores: 320,
                nodes: 20,
                frequency: Frequency::from_ghz(2.0),
            },
        );
        log.push(
            30,
            SimEventKind::NodesPoweredOff {
                nodes: vec![80, 81],
            },
        );
        log.push(
            100,
            SimEventKind::JobCompleted {
                job: 0,
                cores: 160,
                frequency: Frequency::from_ghz(2.7),
            },
        );
        log.push(
            150,
            SimEventKind::NodesPoweredOn {
                nodes: vec![80, 81],
            },
        );
        log.push(
            200,
            SimEventKind::JobKilled {
                job: 1,
                cores: 320,
                frequency: Frequency::from_ghz(2.0),
            },
        );
        log
    }

    #[test]
    fn utilization_series_tracks_frequencies_and_off_nodes() {
        let series = UtilizationSeries::from_log(&log_with_activity(), &platform());
        assert_eq!(series.total_cores(), 1440);
        // At t=25 both jobs run at their frequencies.
        let s = series.at(25);
        assert_eq!(s.busy_cores_by_freq[&2700], 160);
        assert_eq!(s.busy_cores_by_freq[&2000], 320);
        assert_eq!(s.busy_cores(), 480);
        assert_eq!(s.off_cores, 0);
        // After the power-off two nodes (32 cores) are dark.
        assert_eq!(series.at(40).off_cores, 32);
        // After job 0 completes only the 2.0 GHz job remains.
        let s = series.at(120);
        assert!(!s.busy_cores_by_freq.contains_key(&2700));
        assert_eq!(s.busy_cores(), 320);
        // After the kill nothing runs and nothing is off.
        let s = series.at(250);
        assert_eq!(s.busy_cores(), 0);
        assert_eq!(s.off_cores, 0);
        // Before any event the cluster is empty.
        assert_eq!(series.at(5).busy_cores(), 0);
    }

    #[test]
    fn resample_and_mean_utilization() {
        let series = UtilizationSeries::from_log(&log_with_activity(), &platform());
        let resampled = series.resample(200, 50);
        assert_eq!(resampled.len(), 5);
        assert_eq!(resampled[0].time, 0);
        assert_eq!(resampled[4].time, 200);
        let mean = series.mean_utilization(200);
        // Exact integral: 160 cores for [10,20), 480 for [20,100), 320 for
        // [100,200) => (1600 + 38400 + 32000) / (1440*200).
        let expected = (1600.0 + 38_400.0 + 32_000.0) / (1440.0 * 200.0);
        assert!((mean - expected).abs() < 1e-9, "{mean} vs {expected}");
        assert_eq!(series.mean_utilization(0), 0.0);
    }

    #[test]
    fn power_series_lookup_and_peak() {
        let series = PowerSeries::from_samples(&[
            PowerSample {
                time: 0,
                power: Watts(100.0),
            },
            PowerSample {
                time: 50,
                power: Watts(300.0),
            },
            PowerSample {
                time: 100,
                power: Watts(200.0),
            },
        ]);
        assert_eq!(series.at(0), Watts(100.0));
        assert_eq!(series.at(75), Watts(300.0));
        assert_eq!(series.at(500), Watts(200.0));
        assert_eq!(series.peak_within(0, 60), Watts(300.0));
        assert_eq!(series.peak_within(60, 90), Watts(300.0), "level carried in");
        assert_eq!(series.peak_within(100, 200), Watts(200.0));
        let resampled = series.resample(100, 25);
        assert_eq!(resampled.len(), 5);
        assert_eq!(resampled[2].1, Watts(300.0));
    }

    /// Regression for the binary-searched `peak_within`: a degenerate
    /// window (`start == end`) contains no change points and must return
    /// the level carried in at `start` — exactly what the full-scan seed
    /// implementation returned.
    #[test]
    fn peak_within_degenerate_window_returns_the_carried_level() {
        let series = PowerSeries::from_samples(&[
            PowerSample {
                time: 0,
                power: Watts(100.0),
            },
            PowerSample {
                time: 50,
                power: Watts(300.0),
            },
            PowerSample {
                time: 100,
                power: Watts(200.0),
            },
        ]);
        // On a change point, between change points, and before the series.
        assert_eq!(series.peak_within(50, 50), Watts(300.0));
        assert_eq!(series.peak_within(75, 75), Watts(300.0));
        assert_eq!(series.peak_within(200, 200), Watts(200.0));
        let empty = PowerSeries::default();
        assert_eq!(empty.peak_within(10, 10), Watts::ZERO);
        // And the binary-searched window agrees with a full scan everywhere.
        for start in 0..120 {
            for end in start..=120 {
                let scanned = series
                    .samples
                    .iter()
                    .filter(|(t, _)| *t >= start && *t < end)
                    .map(|(_, p)| *p)
                    .fold(series.at(start), Watts::max);
                assert_eq!(
                    series.peak_within(start, end),
                    scanned,
                    "window [{start}, {end})"
                );
            }
        }
    }

    #[test]
    fn normalized_outcome_bounds() {
        let platform = platform();
        let trace = apc_workload::CurieTraceGenerator::new(1)
            .load_factor(0.2)
            .backlog_factor(0.1)
            .generate_for(&platform);
        let report = SimulationReport {
            horizon: 18_000,
            launched_jobs: trace.len() / 2,
            completed_jobs: trace.len() / 2,
            killed_jobs: 0,
            pending_jobs: trace.len() - trace.len() / 2,
            work_core_seconds: 1440.0 * 18_000.0 * 0.5,
            energy: platform.max_power().over_seconds(18_000) * 0.4,
            mean_wait_seconds: 10.0,
        };
        let outcome = NormalizedOutcome::from_report(&report, &platform, &trace);
        assert!((outcome.work_normalized - 0.5).abs() < 1e-9);
        assert!((outcome.energy_normalized - 0.4).abs() < 1e-9);
        let expected_jobs = (trace.len() / 2) as f64 / trace.len() as f64;
        assert!((outcome.launched_jobs_normalized - expected_jobs).abs() < 1e-9);
    }
}

//! # apc-replay — experiment harness
//!
//! Everything needed to regenerate the evaluation of the paper:
//!
//! * [`scenario`] — the powercap scenarios of Section VII (policy ×
//!   cap-fraction × 1-hour window in the middle of the interval);
//! * [`harness`] — the four-phase replay methodology (environment setup,
//!   interval initial state, workload replay, post-treatment) driving the
//!   RJMS controller with the powercap hook;
//! * [`metrics`] — reconstruction of the utilisation and power time series
//!   (Figures 6 and 7) from the simulation log, and the normalised
//!   energy / launched-jobs / work outcome triple of Figure 8;
//! * [`figures`] — one driver per table and figure of the paper, each
//!   producing an aligned text table that can be compared side-by-side with
//!   the published one;
//! * the `experiments` binary (`cargo run --release -p apc-replay --bin
//!   experiments -- <fig2|fig3|...|all>`) exposing all of the above from the
//!   command line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod metrics;
pub mod scenario;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::harness::{ReplayHarness, ReplayOutcome, ReplaySummary};
    pub use crate::metrics::{
        NormalizedOutcome, PowerSeries, UtilizationSample, UtilizationSeries,
    };
    pub use crate::scenario::{CapSchedule, CapSegment, CapWindow, FaultPlan, Scenario};
}

pub use prelude::*;

// Re-export the lower-layer pieces a replay driver (the `experiments` bin,
// the `apc-campaign` executor) needs, so such drivers can be written against
// `apc_replay` alone.
pub use apc_rjms::cluster::Platform;
pub use apc_rjms::controller::SimulationReport;
pub use apc_workload::{CurieTraceGenerator, IntervalKind, Trace, TraceCache};

/// Compile-time audit that the replay pipeline is thread-compatible: the
/// campaign executor shares one [`Scenario`] grid across workers and runs
/// one [`ReplayHarness`] per worker, so the whole chain must be `Send` (and
/// `Sync` where shared read-only).
#[allow(dead_code)]
fn thread_safety_audit() {
    fn send<T: Send>() {}
    fn send_sync<T: Send + Sync>() {}
    send_sync::<Scenario>();
    send_sync::<ReplayHarness>();
    send_sync::<Trace>();
    send::<ReplayOutcome>();
    send::<NormalizedOutcome>();
    send::<PowerSeries>();
    send::<UtilizationSeries>();
}

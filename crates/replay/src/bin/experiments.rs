//! Command-line driver regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p apc-replay --bin experiments -- [targets] [options]
//!
//! targets: fig2 fig3 fig4 fig5 fig6 fig7a fig7b fig8 claims ablations model all
//!          (default: the static tables fig2..fig5 and the model sweep)
//! options: --racks N   replay scale in racks of 90 nodes (default 6)
//!          --full      replay at the full 56-rack / 5040-node Curie scale
//!          --seed S    workload generator seed (default 2012)
//!          --swf PATH  replay a Standard Workload Format trace (e.g. the
//!                      real CEA-Curie trace) instead of the synthetic
//!                      generator for fig6/fig7/fig8/claims/ablations
//!          --trace-out FILE
//!                      profile one replay of each paper scenario
//!                      (100%/None, 60%/SHUT, 60%/DVFS, 60%/MIX) at the
//!                      chosen scale and write the schedule-pass spans as
//!                      Chrome Trace Event JSON — load FILE at
//!                      chrome://tracing or ui.perfetto.dev, one lane per
//!                      scenario; runs after (or without) any targets
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use apc_replay::figures;
use apc_workload::{load_swf_file, Trace};

/// Every target this binary understands, in canonical output order.
const VALID_TARGETS: [&str; 11] = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "model",
    "fig6",
    "fig7a",
    "fig7b",
    "fig8",
    "claims",
    "ablations",
];

const USAGE: &str =
    "usage: experiments [fig2|fig3|fig4|fig5|fig6|fig7a|fig7b|fig8|claims|ablations|model|all]... \
     [--racks N|--full] [--seed S] [--swf PATH] [--trace-out FILE]";

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut racks = figures::DEFAULT_RACKS;
    let mut seed = 2012u64;
    let mut swf_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--racks" => {
                racks = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(r) => r,
                    None => return fail("--racks needs an integer argument"),
                };
            }
            "--seed" => {
                seed = match iter.next().and_then(|v| v.parse().ok()) {
                    Some(s) => s,
                    None => return fail("--seed needs an integer argument"),
                };
            }
            "--swf" => {
                swf_path = match iter.next() {
                    Some(p) => Some(p.clone()),
                    None => return fail("--swf needs a file path argument"),
                };
            }
            "--trace-out" => {
                trace_out = match iter.next() {
                    Some(p) => Some(p.clone()),
                    None => return fail("--trace-out needs a file path argument"),
                };
            }
            "--full" => racks = 56,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_string()),
        }
    }

    // Validate every target up front: a typo like `fig9` aborts with the
    // valid list instead of silently running everything else first.
    let invalid: Vec<&String> = targets
        .iter()
        .filter(|t| t.as_str() != "all" && !VALID_TARGETS.contains(&t.as_str()))
        .collect();
    if !invalid.is_empty() {
        let unknown = invalid
            .iter()
            .map(|t| t.as_str())
            .collect::<Vec<_>>()
            .join(", ");
        return fail(&format!(
            "unknown target(s): {unknown}\nvalid targets: {} or all",
            VALID_TARGETS.join(", ")
        ));
    }

    // Bare `--trace-out FILE` means "just profile" — only fill in the
    // default static-table targets when no profile was requested either.
    if targets.is_empty() && trace_out.is_none() {
        targets = vec![
            "fig2".into(),
            "fig3".into(),
            "fig4".into(),
            "fig5".into(),
            "model".into(),
        ];
    }
    if targets.iter().any(|t| t == "all") {
        targets = VALID_TARGETS.iter().map(|s| s.to_string()).collect();
    }

    // Only load (and announce) the SWF trace when a requested target
    // actually replays a workload — fig2..fig5 and the model sweep are pure
    // model evaluations and never touch it.
    const REPLAY_TARGETS: [&str; 6] = ["fig6", "fig7a", "fig7b", "fig8", "claims", "ablations"];
    let replays_requested =
        targets.iter().any(|t| REPLAY_TARGETS.contains(&t.as_str())) || trace_out.is_some();
    let swf_trace: Option<Arc<Trace>> = match &swf_path {
        Some(path) if replays_requested => match load_swf_file(path) {
            Ok(trace) => {
                eprintln!(
                    "replaying {} jobs over {} s from {path} instead of the synthetic trace",
                    trace.len(),
                    trace.duration
                );
                Some(Arc::new(trace))
            }
            Err(e) => return fail(&e),
        },
        Some(path) => {
            eprintln!(
                "note: --swf {path} ignored — none of the requested targets replays a workload"
            );
            None
        }
        None => None,
    };
    let swf = swf_trace.as_ref();

    for target in targets {
        let output = match target.as_str() {
            "fig2" => figures::fig2(),
            "fig3" => figures::fig3(),
            "fig4" => figures::fig4(),
            "fig5" => figures::fig5(),
            "model" => figures::model_sweep(),
            "fig6" => figures::fig6(racks, seed, swf),
            "fig7a" => figures::fig7a(racks, seed, swf),
            "fig7b" => figures::fig7b(racks, seed, swf),
            "fig8" => figures::fig8(racks, seed, swf),
            "claims" => figures::claims(racks, seed, swf),
            "ablations" => {
                let mut s = figures::ablation_grouping(racks, seed, swf);
                s.push('\n');
                s.push_str(&figures::ablation_decision_rule(racks, seed, swf));
                s.push('\n');
                s.push_str(&figures::ablation_app_aware(racks, seed, swf));
                s
            }
            _ => unreachable!("targets were validated above"),
        };
        println!("{output}");
        println!("{}", "=".repeat(100));
    }

    if let Some(path) = trace_out {
        let (json, span_count) = figures::profile_trace(racks, seed, swf);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!(
            "profiled the 4 paper scenarios at {racks} rack(s): wrote {span_count} span(s) to \
             {path} (load at chrome://tracing or ui.perfetto.dev)"
        );
    }
    ExitCode::SUCCESS
}

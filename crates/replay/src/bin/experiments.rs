//! Command-line driver regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p apc-replay --bin experiments -- [targets] [options]
//!
//! targets: fig2 fig3 fig4 fig5 fig6 fig7a fig7b fig8 claims ablations model all
//!          (default: the static tables fig2..fig5 and the model sweep)
//! options: --racks N   replay scale in racks of 90 nodes (default 6)
//!          --full      replay at the full 56-rack / 5040-node Curie scale
//!          --seed S    workload generator seed (default 2012)
//! ```

use apc_replay::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut racks = figures::DEFAULT_RACKS;
    let mut seed = 2012u64;
    let mut targets: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--racks" => {
                racks = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--racks needs an integer argument");
            }
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer argument");
            }
            "--full" => racks = 56,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [fig2|fig3|fig4|fig5|fig6|fig7a|fig7b|fig8|claims|ablations|model|all]... [--racks N|--full] [--seed S]"
                );
                return;
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets = vec![
            "fig2".into(),
            "fig3".into(),
            "fig4".into(),
            "fig5".into(),
            "model".into(),
        ];
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "model",
            "fig6",
            "fig7a",
            "fig7b",
            "fig8",
            "claims",
            "ablations",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    for target in targets {
        let output = match target.as_str() {
            "fig2" => figures::fig2(),
            "fig3" => figures::fig3(),
            "fig4" => figures::fig4(),
            "fig5" => figures::fig5(),
            "model" => figures::model_sweep(),
            "fig6" => figures::fig6(racks, seed),
            "fig7a" => figures::fig7a(racks, seed),
            "fig7b" => figures::fig7b(racks, seed),
            "fig8" => figures::fig8(racks, seed),
            "claims" => figures::claims(racks, seed),
            "ablations" => {
                let mut s = figures::ablation_grouping(racks, seed);
                s.push('\n');
                s.push_str(&figures::ablation_decision_rule(racks, seed));
                s.push('\n');
                s.push_str(&figures::ablation_app_aware(racks, seed));
                s
            }
            unknown => {
                eprintln!("unknown target: {unknown} (try --help)");
                continue;
            }
        };
        println!("{output}");
        println!("{}", "=".repeat(100));
    }
}

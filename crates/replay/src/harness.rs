//! The four-phase replay harness.
//!
//! The paper replays an interval in four phases (Section VII-B):
//!
//! 1. **environment setup** — SLURM configured as on Curie, with the node
//!    power values of Fig. 4;
//! 2. **interval initial state** — queued jobs and fair-share state put in
//!    place (the synthetic trace carries the queued backlog as jobs submitted
//!    at *t = 0*; historical fair-share usage is seeded per user);
//! 3. **workload replay** — jobs are submitted with their original
//!    characteristics (simple `sleep` payloads, i.e. only RJMS decisions are
//!    exercised), powercap reservations are made at the beginning of the
//!    replay;
//! 4. **data post-treatment** — job states, utilisation, power and energy are
//!    collected once the interval ends.
//!
//! [`ReplayHarness::run`] performs the four phases for one [`Scenario`] and
//! returns a [`ReplayOutcome`] bundling the report, the time series and the
//! normalised Fig. 8 metrics.

use apc_core::{PowercapConfig, PowercapHook};
use apc_rjms::cluster::Platform;
use apc_rjms::config::ControllerConfig;
use apc_rjms::controller::{Controller, SimulationReport};
use apc_rjms::log::SimLog;
use apc_rjms::obs::ControllerObs;
use apc_workload::Trace;

use crate::metrics::{NormalizedOutcome, PowerSeries, UtilizationSeries};
use crate::scenario::Scenario;

/// Everything collected from one replay.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The scenario that was replayed.
    pub scenario: Scenario,
    /// The controller's aggregate report.
    pub report: SimulationReport,
    /// The normalised energy / launched-jobs / work triple (Fig. 8).
    pub normalized: NormalizedOutcome,
    /// Core-state time series (Figures 6 and 7, top).
    pub utilization: UtilizationSeries,
    /// Power time series (Figures 6 and 7, bottom).
    pub power: PowerSeries,
    /// The raw simulation log.
    pub log: SimLog,
}

/// The campaign-grade subset of a replay's results: the aggregate report,
/// the normalised Fig. 8 triple and the power series (for per-window peak
/// power) — everything a `CellRow` reads, and nothing else.
///
/// [`ReplayHarness::run_summary`] produces this without materialising the
/// utilisation series or cloning the event log, which a million-cell
/// campaign would otherwise pay for and immediately discard.
#[derive(Debug, Clone)]
pub struct ReplaySummary {
    /// The controller's aggregate report.
    pub report: SimulationReport,
    /// The normalised energy / launched-jobs / work triple (Fig. 8).
    pub normalized: NormalizedOutcome,
    /// Power time series (peak-power queries).
    pub power: PowerSeries,
}

impl ReplayOutcome {
    /// One-line summary used by the examples and the experiments binary.
    pub fn summary(&self) -> String {
        format!(
            "{:<10} launched {:>5} | completed {:>5} | work {:>6.1} core-h ({:>5.1}% of capacity) | energy {:>10} ({:>5.1}% of max) | mean wait {:>7.0} s",
            self.scenario.label(),
            self.report.launched_jobs,
            self.report.completed_jobs,
            self.report.work_core_hours(),
            self.normalized.work_normalized * 100.0,
            format!("{}", self.report.energy),
            self.normalized.energy_normalized * 100.0,
            self.report.mean_wait_seconds,
        )
    }
}

/// The replay harness: a platform plus a workload trace.
///
/// The trace is held behind an [`Arc`](std::sync::Arc) so harnesses over the
/// same workload (e.g. the cells of one campaign group) share one copy
/// instead of deep-cloning thousands of jobs each.
#[derive(Debug, Clone)]
pub struct ReplayHarness {
    platform: Platform,
    trace: std::sync::Arc<Trace>,
    /// The distinct users appearing in the trace, sorted — computed once at
    /// construction so a harness replaying many scenarios (a campaign
    /// worker reusing it across pulled cells, or [`run_grid`](Self::run_grid))
    /// does not re-scan and re-sort the whole trace per run.
    users: Vec<usize>,
    /// Seed historical fair-share usage for the users appearing in the trace
    /// (phase ii); expressed in core-hours per user.
    initial_fairshare_core_hours: f64,
}

impl ReplayHarness {
    /// Create a harness for a platform and a trace.
    pub fn new(platform: Platform, trace: Trace) -> Self {
        Self::from_shared(platform, std::sync::Arc::new(trace))
    }

    /// Create a harness sharing an already-`Arc`ed trace (no deep clone) —
    /// the form the campaign executor uses with its trace cache.
    pub fn from_shared(platform: Platform, trace: std::sync::Arc<Trace>) -> Self {
        let mut users: Vec<usize> = trace.jobs.iter().map(|j| j.user).collect();
        users.sort_unstable();
        users.dedup();
        ReplayHarness {
            platform,
            trace,
            users,
            initial_fairshare_core_hours: 1_000.0,
        }
    }

    /// Override the seeded per-user fair-share history (builder style).
    pub fn with_initial_fairshare(mut self, core_hours: f64) -> Self {
        self.initial_fairshare_core_hours = core_hours;
        self
    }

    /// The platform being replayed.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The distinct users whose fair-share history this harness seeds.
    pub fn users(&self) -> &[usize] {
        &self.users
    }

    /// Phases 1–3 for one scenario: build the controller, seed the initial
    /// state, register the powercap reservations and run the replay.
    fn run_controller(
        &self,
        scenario: &Scenario,
        obs: ControllerObs,
    ) -> (Controller, SimulationReport) {
        // Phase 1 — environment setup.
        let powercap_config = PowercapConfig {
            policy: scenario.policy,
            grouping: scenario.grouping,
            decision_rule: scenario.decision_rule,
            kill_on_cap_violation: scenario.kill_on_violation,
            per_application_degradation: scenario.per_application_degradation,
        };
        let hook = PowercapHook::new(powercap_config, &self.platform);
        let controller_config = ControllerConfig::default().with_power_samples();
        let mut controller =
            Controller::with_hook(self.platform.clone(), controller_config, Box::new(hook));
        controller.set_obs(obs);

        // Phase 2 — interval initial state: fair-share history for every user
        // seen in the trace (precomputed at construction). The queued backlog
        // is part of the trace itself (jobs submitted at t = 0).
        for &user in &self.users {
            controller.seed_fairshare(user, self.initial_fairshare_core_hours * 3600.0);
        }

        // Phase 3 — workload replay: powercap reservations are made at the
        // beginning of the replay, then the trace is submitted and run. A
        // multi-window scenario registers one reservation per cap window;
        // the controller's reservation book already resolves overlapping
        // caps to the tightest one, so disjoint windows simply alternate.
        // A time-varying schedule registers one reservation per segment at
        // the segment's own level — a uniform schedule built from legacy
        // windows therefore replays bit-identically to the window path.
        if let Some(schedule) = &scenario.cap_schedule {
            for segment in schedule.segments() {
                controller.add_powercap_reservation(
                    segment.time_window(),
                    self.platform.power_fraction(segment.fraction),
                );
            }
        } else if let Some(cap) = scenario.cap(&self.platform) {
            for window in scenario.windows() {
                controller.add_powercap_reservation(window, cap);
            }
        }
        // Fault plan: seeded node outages become ordinary events in the
        // controller's queue, so the replay stays fully deterministic.
        if let Some(plan) = &scenario.faults {
            // Chassis-correlated plans need the platform's chassis width
            // (level 0 on Curie-like topologies; 1 on flat ones).
            let topology = &self.platform.topology;
            let per_chassis = if topology.depth() > 0 {
                topology.nodes_per_group(0)
            } else {
                1
            };
            for (node, down, up) in plan.events(
                self.platform.total_nodes(),
                per_chassis,
                self.trace.duration,
            ) {
                controller.inject_node_outage(node, down, up);
            }
        }
        controller.submit_all(self.trace.to_submissions());
        controller.set_horizon(self.trace.duration);
        let report = controller.run();
        (controller, report)
    }

    /// Run one scenario to completion and collect every metric.
    pub fn run(&self, scenario: &Scenario) -> ReplayOutcome {
        self.run_with_obs(scenario, ControllerObs::disabled())
    }

    /// [`run`](Self::run) with controller observability attached: schedule
    /// passes land on `obs`'s metrics registry and span recorder. The
    /// simulation result is identical to an uninstrumented run — the
    /// workspace's golden-fingerprint tests pin that.
    pub fn run_with_obs(&self, scenario: &Scenario, obs: ControllerObs) -> ReplayOutcome {
        let (mut controller, report) = self.run_controller(scenario, obs);

        // Phase 4 — post-treatment.
        let normalized = NormalizedOutcome::from_report(&report, &self.platform, &self.trace);
        let utilization = UtilizationSeries::from_log(controller.log(), &self.platform);
        let power = PowerSeries::from_samples(controller.cluster().accountant().samples());
        ReplayOutcome {
            scenario: scenario.clone(),
            report,
            normalized,
            utilization,
            power,
            // The controller is dropped right after: take the log instead
            // of cloning every event.
            log: controller.take_log(),
        }
    }

    /// Run one scenario and collect only the campaign-grade metrics (no
    /// utilisation series, no event-log clone) — the per-cell hot path of
    /// the campaign executor.
    pub fn run_summary(&self, scenario: &Scenario) -> ReplaySummary {
        let (controller, report) = self.run_controller(scenario, ControllerObs::disabled());
        let normalized = NormalizedOutcome::from_report(&report, &self.platform, &self.trace);
        let power = PowerSeries::from_samples(controller.cluster().accountant().samples());
        ReplaySummary {
            report,
            normalized,
            power,
        }
    }

    /// Run every scenario of a grid (used by the Fig. 8 driver).
    pub fn run_grid(&self, scenarios: &[Scenario]) -> Vec<ReplayOutcome> {
        scenarios.iter().map(|s| self.run(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_core::PowercapPolicy;
    use apc_workload::{CurieTraceGenerator, IntervalKind};

    /// A small platform and a light-but-overloaded trace so the whole test
    /// suite stays fast.
    fn harness() -> ReplayHarness {
        let platform = Platform::curie_scaled(2); // 180 nodes
        let trace = CurieTraceGenerator::new(17)
            .interval(IntervalKind::MedianJob)
            .load_factor(1.2)
            .backlog_factor(0.6)
            .generate_for(&platform);
        ReplayHarness::new(platform, trace)
    }

    #[test]
    fn baseline_replay_produces_activity() {
        let h = harness();
        let outcome = h.run(&Scenario::baseline());
        assert!(outcome.report.launched_jobs > 0);
        assert!(outcome.report.work_core_seconds > 0.0);
        assert!(outcome.normalized.work_normalized > 0.1);
        assert!(outcome.normalized.energy_normalized > 0.0);
        assert!(outcome.normalized.energy_normalized <= 1.0);
        assert!(!outcome.summary().is_empty());
        assert!(outcome.utilization.mean_utilization(h.trace().duration) > 0.1);
    }

    #[test]
    fn capped_replays_respect_the_budget() {
        let h = harness();
        for policy in [
            PowercapPolicy::Shut,
            PowercapPolicy::Dvfs,
            PowercapPolicy::Mix,
        ] {
            let scenario = Scenario::paper(policy, 0.6, h.trace().duration);
            let outcome = h.run(&scenario);
            let window = scenario.window().unwrap();
            let cap = scenario.cap(h.platform()).unwrap();
            let peak = outcome.power.peak_within(window.start, window.end);
            assert!(
                peak.as_watts() <= cap.as_watts() + 1e-6,
                "{policy}: peak {peak} exceeds cap {cap}"
            );
        }
    }

    #[test]
    fn multi_window_replays_respect_the_cap_in_every_window() {
        use crate::scenario::CapWindow;
        let h = harness();
        let duration = h.trace().duration; // 5 h
        let scenario = Scenario::paper(PowercapPolicy::Mix, 0.6, duration).with_windows(vec![
            CapWindow::new(1800, 3600),
            CapWindow::new(duration - 5400, 3600),
        ]);
        let outcome = h.run(&scenario);
        let cap = scenario.cap(h.platform()).unwrap();
        let windows = scenario.windows();
        assert_eq!(windows.len(), 2);
        for w in &windows {
            let peak = outcome.power.peak_within(w.start, w.end);
            assert!(
                peak.as_watts() <= cap.as_watts() + 1e-6,
                "peak {peak} exceeds cap {cap} in window [{}, {})",
                w.start,
                w.end
            );
        }
        // Two disjoint windows constrain the replay at least as much as
        // either single window alone.
        let single = h.run(
            &Scenario::paper(PowercapPolicy::Mix, 0.6, duration)
                .with_windows(vec![CapWindow::new(1800, 3600)]),
        );
        assert!(outcome.report.work_core_seconds <= single.report.work_core_seconds + 1e-6);
    }

    #[test]
    fn scheduled_replay_respects_each_segment_level() {
        use crate::scenario::{CapSchedule, CapSegment};
        let h = harness();
        let duration = h.trace().duration; // 5 h
        let schedule = CapSchedule::new(vec![
            CapSegment::new(1800, 3600, 0.8),
            CapSegment::new(duration - 5400, 3600, 0.5),
        ])
        .unwrap();
        let scenario = Scenario::scheduled(PowercapPolicy::Mix, schedule.clone());
        let outcome = h.run(&scenario);
        for segment in schedule.segments() {
            let cap = h.platform().power_fraction(segment.fraction);
            let w = segment.time_window();
            let peak = outcome.power.peak_within(w.start, w.end);
            assert!(
                peak.as_watts() <= cap.as_watts() + 1e-6,
                "peak {peak} exceeds cap {cap} in segment [{}, {})",
                w.start,
                w.end
            );
        }
    }

    #[test]
    fn schedule_from_windows_replays_identically_to_the_window_path() {
        use crate::scenario::{CapSchedule, CapWindow};
        let h = harness();
        let duration = h.trace().duration;
        let windows = vec![
            CapWindow::new(1800, 3600),
            CapWindow::new(duration - 5400, 3600),
        ];
        let legacy =
            Scenario::paper(PowercapPolicy::Mix, 0.6, duration).with_windows(windows.clone());
        let scheduled = Scenario::scheduled(
            PowercapPolicy::Mix,
            CapSchedule::from_windows(&windows, 0.6).unwrap(),
        )
        .with_grouping(legacy.grouping)
        .with_decision_rule(legacy.decision_rule);
        let a = h.run(&legacy);
        let b = h.run(&scheduled);
        assert_eq!(a.report, b.report, "bit-identical replays");
        assert_eq!(a.power, b.power);
        assert_eq!(a.log.len(), b.log.len());
    }

    #[test]
    fn fault_plan_kills_jobs_and_stays_deterministic() {
        use crate::scenario::FaultPlan;
        let h = harness();
        let scenario = Scenario::baseline().with_faults(FaultPlan::new(4, 1800, 5));
        let a = h.run(&scenario);
        let b = h.run(&scenario);
        assert_eq!(a.report, b.report, "faulty replays are deterministic");
        assert_eq!(a.log.len(), b.log.len());
        // The fault-free baseline differs (outages cost capacity) and never
        // kills anything.
        let clean = h.run(&Scenario::baseline());
        assert_eq!(clean.report.killed_jobs, 0);
        assert!(
            a.report.killed_jobs > 0 || a.report.work_core_seconds < clean.report.work_core_seconds,
            "outages must leave a trace in the metrics"
        );
    }

    #[test]
    fn capped_replays_deliver_less_work_than_baseline() {
        let h = harness();
        let baseline = h.run(&Scenario::baseline());
        let capped = h.run(&Scenario::paper(
            PowercapPolicy::Shut,
            0.4,
            h.trace().duration,
        ));
        assert!(capped.report.work_core_seconds <= baseline.report.work_core_seconds + 1e-6);
        assert!(capped.report.energy < baseline.report.energy);
    }

    #[test]
    fn run_summary_matches_the_full_run() {
        let h = harness();
        for scenario in [
            Scenario::baseline(),
            Scenario::paper(PowercapPolicy::Mix, 0.6, h.trace().duration),
        ] {
            let full = h.run(&scenario);
            let lean = h.run_summary(&scenario);
            assert_eq!(full.report, lean.report);
            assert_eq!(full.normalized, lean.normalized);
            assert_eq!(full.power, lean.power);
        }
    }

    #[test]
    fn run_with_obs_is_neutral_and_records() {
        use apc_obs::{Registry, SpanRecorder};
        let h = harness();
        let scenario = Scenario::paper(PowercapPolicy::Mix, 0.6, h.trace().duration);
        let plain = h.run(&scenario);
        let registry = Registry::new();
        let spans = SpanRecorder::new();
        let instrumented = h.run_with_obs(
            &scenario,
            ControllerObs::new(&registry, spans.clone()).with_lane(3),
        );
        assert_eq!(plain.report, instrumented.report, "instrumentation-neutral");
        assert_eq!(plain.log.len(), instrumented.log.len());
        let snap = registry.snapshot();
        let passes = snap.histogram("rjms.schedule_pass.duration_ns").unwrap();
        assert!(passes.count > 0);
        let events = spans.take_events();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.tid == 3), "spans on the given lane");
    }

    #[test]
    fn replay_is_deterministic() {
        let h = harness();
        let scenario = Scenario::paper(PowercapPolicy::Mix, 0.6, h.trace().duration);
        let a = h.run(&scenario);
        let b = h.run(&scenario);
        assert_eq!(a.report, b.report);
        assert_eq!(a.log.len(), b.log.len());
    }

    #[test]
    fn users_are_precomputed_for_harness_reuse() {
        let h = harness();
        // Users are precomputed: sorted, deduplicated, and exactly the set
        // appearing in the trace — a harness replaying many scenarios (a
        // campaign worker reusing it across pulled cells) never re-scans
        // the trace per run.
        let users = h.users();
        assert!(!users.is_empty());
        assert!(users.windows(2).all(|w| w[0] < w[1]));
        for j in &h.trace().jobs {
            assert!(users.binary_search(&j.user).is_ok());
        }
        // A clone shares the trace allocation, not a deep copy of the jobs.
        let c = h.clone();
        assert!(std::ptr::eq(h.trace(), c.trace()));
    }

    #[test]
    fn run_grid_covers_all_scenarios() {
        let platform = Platform::curie_scaled(1);
        let trace = CurieTraceGenerator::new(3)
            .load_factor(0.4)
            .backlog_factor(0.3)
            .generate_for(&platform);
        let h = ReplayHarness::new(platform, trace).with_initial_fairshare(10.0);
        let scenarios = vec![
            Scenario::baseline(),
            Scenario::paper(PowercapPolicy::Shut, 0.6, h.trace().duration),
        ];
        let outcomes = h.run_grid(&scenarios);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].scenario.label(), "100%/None");
        assert_eq!(outcomes[1].scenario.label(), "60%/SHUT");
    }
}

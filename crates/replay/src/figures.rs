//! Per-figure experiment drivers.
//!
//! One function per table/figure of the paper. Each returns a plain-text
//! report (aligned columns) so the output can be compared side-by-side with
//! the published figure; the underlying data is also available through the
//! returned structures of the harness/metrics modules for programmatic use.
//!
//! Figures 2–5 are pure model evaluations and always use the full Curie
//! parameters. Figures 6–8 replay workloads; they take a `racks` parameter so
//! they can be run at reduced scale (tests, quick looks) or at the full
//! 56-rack Curie scale (`--full` in the experiments binary).

use apc_core::PowercapPolicy;
use apc_power::bonus::GroupingStrategy;
use apc_power::tradeoff::DecisionRule;
use apc_power::{
    benchprofiles, BenchmarkProfile, FrequencyLadder, NodePowerProfile, PowercapTradeoff, Topology,
    Watts,
};
use apc_rjms::cluster::Platform;
use apc_workload::{CurieTraceGenerator, IntervalKind, Trace, TraceStats};

use std::sync::Arc;

use crate::harness::{ReplayHarness, ReplayOutcome};
use crate::scenario::Scenario;

/// Default number of racks used by the replay figures when not running at
/// full scale (6 racks = 540 nodes keeps every scenario under a few seconds).
pub const DEFAULT_RACKS: usize = 6;

fn platform(racks: usize) -> Platform {
    if racks >= 56 {
        Platform::curie()
    } else {
        Platform::curie_scaled(racks)
    }
}

/// Build the replay harness for a figure: the calibrated synthetic
/// generator by default, or a fixed trace (e.g. parsed from an SWF file via
/// `--swf` in the experiments binary) when one is supplied. The fixed trace
/// arrives as an `Arc` so `experiments all` shares one copy across all
/// eight replay figures instead of deep-cloning a potentially huge trace.
fn harness(
    racks: usize,
    seed: u64,
    interval: IntervalKind,
    swf: Option<&Arc<Trace>>,
) -> ReplayHarness {
    let platform = platform(racks);
    match swf {
        Some(trace) => ReplayHarness::from_shared(platform, Arc::clone(trace)),
        None => {
            let trace = CurieTraceGenerator::new(seed)
                .interval(interval)
                .generate_for(&platform);
            ReplayHarness::new(platform, trace)
        }
    }
}

/// Fig. 2 — power consumption and power bonus of each Curie aggregation
/// level.
pub fn fig2() -> String {
    let topo = Topology::curie();
    let profile = NodePowerProfile::curie();
    let mut out = String::from(
        "Fig. 2 — Curie power levels: consumption, bonus and accumulated savings\n\
         level              members        equipment W   bonus W   accumulated W\n",
    );
    out.push_str(&format!(
        "{:<18} {:<14} {:>12} {:>9} {:>15}\n",
        "node (down)",
        "-",
        format!("{:.0}", profile.off_watts().as_watts()),
        "-",
        "-"
    ));
    out.push_str(&format!(
        "{:<18} {:<14} {:>12} {:>9} {:>15.0}\n",
        "node (max)",
        "-",
        format!("{:.0}", profile.max_watts().as_watts()),
        "-",
        profile.shutdown_saving().as_watts()
    ));
    for (level, name, members) in [(0usize, "chassis", "18 nodes"), (1, "rack", "5 chassis")] {
        out.push_str(&format!(
            "{:<18} {:<14} {:>12.0} {:>9.0} {:>15.0}\n",
            name,
            members,
            topo.levels()[level].overhead.as_watts(),
            topo.group_bonus(level, &profile).as_watts(),
            topo.group_accumulated_saving(level, &profile).as_watts()
        ));
    }
    out.push_str(&format!(
        "{:<18} {:<14} {:>12} {:>9} {:>15}\n",
        "cluster", "56 racks", "-", "-", "-"
    ));
    out
}

/// Fig. 3 — maximum power vs normalised execution time for the four measured
/// applications at every DVFS step.
pub fn fig3() -> String {
    let mut out = String::from(
        "Fig. 3 — Maximum power / normalised execution-time trade-off per application\n\
         app        freq(GHz)   norm. time   max power (W)\n",
    );
    for profile in BenchmarkProfile::all_curie() {
        for point in &profile.points {
            out.push_str(&format!(
                "{:<10} {:>9.1} {:>12.3} {:>15.1}\n",
                profile.app.name(),
                point.frequency.as_ghz(),
                point.normalized_time,
                point.power.as_watts()
            ));
        }
    }
    out
}

/// Fig. 4 — maximum power consumption of a Curie node in each state.
pub fn fig4() -> String {
    let profile = NodePowerProfile::curie();
    let mut out = String::from(
        "Fig. 4 — Maximum power consumption of a Curie node per state\n\
         state            max power (W)\n",
    );
    out.push_str(&format!(
        "{:<16} {:>13.0}\n",
        "switch-off",
        profile.off_watts().as_watts()
    ));
    out.push_str(&format!(
        "{:<16} {:>13.0}\n",
        "idle",
        profile.idle_watts().as_watts()
    ));
    for f in FrequencyLadder::curie().steps() {
        out.push_str(&format!(
            "{:<16} {:>13.0}\n",
            format!("DVFS {:.1} GHz", f.as_ghz()),
            profile.busy_watts(*f).as_watts()
        ));
    }
    out
}

/// Fig. 5 — degradation, ρ and best mechanism per benchmark.
///
/// Two ρ columns are printed: one computed strictly from the Fig. 4 watt
/// values, and one using the effective off-power implied by the published
/// table (see EXPERIMENTS.md for the discussion).
pub fn fig5() -> String {
    let mut out = String::from(
        "Fig. 5 — DVFS vs switch-off comparison per benchmark\n\
         benchmark                degmin   rho(Fig.4 W)   rho(paper)   best mechanism\n",
    );
    for row in benchprofiles::fig5_table() {
        out.push_str(&format!(
            "{:<24} {:>6.2} {:>14.3} {:>12.3}   {}\n",
            row.name, row.degmin, row.rho, row.rho_paper_effective, row.best_mechanism
        ));
    }
    out
}

/// Render a replay outcome as the paper's Figure 6/7 style time series:
/// cores per frequency (top) and power (bottom), sampled every `step`
/// seconds.
pub fn render_timeseries(outcome: &ReplayOutcome, horizon: u64, step: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "scenario {}  (window {:?})\n",
        outcome.scenario.label(),
        outcome.scenario.window()
    ));
    out.push_str(
        "time(h)   cores@2.7   cores@2.4-2.2   cores@2.0   cores@<2.0   cores off   power(kW)\n",
    );
    for sample in outcome.utilization.resample(horizon, step) {
        let t = sample.time;
        let at = |lo: u32, hi: u32| -> u64 {
            sample
                .busy_cores_by_freq
                .iter()
                .filter(|(&mhz, _)| mhz >= lo && mhz <= hi)
                .map(|(_, &c)| c)
                .sum()
        };
        out.push_str(&format!(
            "{:>7.2} {:>11} {:>15} {:>11} {:>12} {:>11} {:>11.1}\n",
            t as f64 / 3600.0,
            at(2700, u32::MAX),
            at(2200, 2699),
            at(2000, 2199),
            at(0, 1999),
            sample.off_cores,
            outcome.power.at(t).as_kilowatts()
        ));
    }
    out
}

/// Fig. 6 — 24-hour workload, MIX policy, 1-hour reservation of 40 % of the
/// total power: core-state and power time series.
pub fn fig6(racks: usize, seed: u64, swf: Option<&Arc<Trace>>) -> String {
    let h = harness(racks, seed, IntervalKind::Day24h, swf);
    let duration = h.trace().duration;
    let scenario = Scenario::paper(PowercapPolicy::Mix, 0.40, duration);
    let outcome = h.run(&scenario);
    let mut out = String::from("Fig. 6 — 24 h workload, MIX policy, 40 % powercap for 1 hour\n");
    out.push_str(&describe_trace(&h));
    out.push_str(&render_timeseries(&outcome, duration, 1800));
    out.push_str(&outcome.summary());
    out.push('\n');
    out
}

/// Fig. 7a — 5-hour *bigjob* workload, SHUT policy, 60 % powercap.
pub fn fig7a(racks: usize, seed: u64, swf: Option<&Arc<Trace>>) -> String {
    let h = harness(racks, seed, IntervalKind::BigJob, swf);
    let duration = h.trace().duration;
    let scenario = Scenario::paper(PowercapPolicy::Shut, 0.60, duration);
    let outcome = h.run(&scenario);
    let mut out =
        String::from("Fig. 7a — bigjob workload, SHUT policy, 60 % powercap for 1 hour\n");
    out.push_str(&describe_trace(&h));
    out.push_str(&render_timeseries(&outcome, duration, 900));
    out.push_str(&outcome.summary());
    out.push('\n');
    out
}

/// Fig. 7b — 5-hour *smalljob* workload, DVFS policy, 40 % powercap.
pub fn fig7b(racks: usize, seed: u64, swf: Option<&Arc<Trace>>) -> String {
    let h = harness(racks, seed, IntervalKind::SmallJob, swf);
    let duration = h.trace().duration;
    let scenario = Scenario::paper(PowercapPolicy::Dvfs, 0.40, duration);
    let outcome = h.run(&scenario);
    let mut out =
        String::from("Fig. 7b — smalljob workload, DVFS policy, 40 % powercap for 1 hour\n");
    out.push_str(&describe_trace(&h));
    out.push_str(&render_timeseries(&outcome, duration, 900));
    out.push_str(&outcome.summary());
    out.push('\n');
    out
}

/// Fig. 8 — normalised energy, launched jobs and work for every
/// workload × cap × policy combination.
pub fn fig8(racks: usize, seed: u64, swf: Option<&Arc<Trace>>) -> String {
    let mut out = String::from(
        "Fig. 8 — normalised energy / launched jobs / work per workload, cap and policy\n\
         workload    scenario     energy   launched   work\n",
    );
    // With a fixed trace every interval flavour would replay the same jobs,
    // so the workload axis collapses to a single "swf" row group.
    let intervals: &[IntervalKind] = if swf.is_some() {
        &[IntervalKind::MedianJob]
    } else {
        &[
            IntervalKind::BigJob,
            IntervalKind::MedianJob,
            IntervalKind::SmallJob,
        ]
    };
    for &interval in intervals {
        let h = harness(racks, seed, interval, swf);
        let duration = h.trace().duration;
        for scenario in Scenario::paper_grid(duration) {
            let outcome = h.run(&scenario);
            out.push_str(&format!(
                "{:<11} {:<12} {:>7.3} {:>10.3} {:>7.3}\n",
                if swf.is_some() {
                    "swf"
                } else {
                    interval.name()
                },
                scenario.label(),
                outcome.normalized.energy_normalized,
                outcome.normalized.launched_jobs_normalized,
                outcome.normalized.work_normalized
            ));
        }
    }
    out
}

/// §VII-C headline claims, checked on the replayed data:
/// SHUT delivers more work than DVFS/MIX at a 40 % cap, MIX consumes the
/// least energy, and the idle-only fallback (no shutdown, no DVFS) loses
/// much more work.
pub fn claims(racks: usize, seed: u64, swf: Option<&Arc<Trace>>) -> String {
    let h = harness(racks, seed, IntervalKind::MedianJob, swf);
    let duration = h.trace().duration;
    let shut = h.run(&Scenario::paper(PowercapPolicy::Shut, 0.40, duration));
    let dvfs = h.run(&Scenario::paper(PowercapPolicy::Dvfs, 0.40, duration));
    let mix = h.run(&Scenario::paper(PowercapPolicy::Mix, 0.40, duration));
    let mut out = String::from("Claims of Section VII-C (40 % cap, medianjob interval)\n");
    for o in [&shut, &dvfs, &mix] {
        out.push_str(&o.summary());
        out.push('\n');
    }
    out.push_str(&format!(
        "SHUT work / DVFS work = {:.2}   (paper: SHUT >= DVFS at caps <= 60 %)\n",
        shut.report.work_core_seconds / dvfs.report.work_core_seconds.max(1.0)
    ));
    out.push_str(&format!(
        "MIX energy <= min(SHUT, DVFS) energy: {}\n",
        mix.report.energy.as_joules()
            <= shut
                .report
                .energy
                .as_joules()
                .min(dvfs.report.energy.as_joules())
                * 1.05
    ));
    out
}

/// Ablation — grouped vs scattered switch-off selection (the value of the
/// power bonus preparation done by the offline phase).
pub fn ablation_grouping(racks: usize, seed: u64, swf: Option<&Arc<Trace>>) -> String {
    let h = harness(racks, seed, IntervalKind::MedianJob, swf);
    let duration = h.trace().duration;
    let grouped = h.run(&Scenario::paper(PowercapPolicy::Shut, 0.40, duration));
    let scattered = h.run(
        &Scenario::paper(PowercapPolicy::Shut, 0.40, duration)
            .with_grouping(GroupingStrategy::Scattered),
    );
    let off_nodes = |o: &ReplayOutcome| {
        o.log
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                apc_rjms::log::SimEventKind::NodesPoweredOff { nodes } => Some(nodes.len()),
                _ => None,
            })
            .sum::<usize>()
    };
    let mut out =
        String::from("Ablation — grouped vs scattered switch-off node selection (SHUT, 40 %)\n");
    out.push_str(&format!(
        "grouped  : {}  nodes powered off: {}\n",
        grouped.summary(),
        off_nodes(&grouped)
    ));
    out.push_str(&format!(
        "scattered: {}  nodes powered off: {}\n",
        scattered.summary(),
        off_nodes(&scattered)
    ));
    out
}

/// Ablation — published ρ rule vs direct work-maximising rule in the offline
/// planner (MIX policy).
pub fn ablation_decision_rule(racks: usize, seed: u64, swf: Option<&Arc<Trace>>) -> String {
    let h = harness(racks, seed, IntervalKind::MedianJob, swf);
    let duration = h.trace().duration;
    let paper = h.run(&Scenario::paper(PowercapPolicy::Mix, 0.60, duration));
    let direct = h.run(
        &Scenario::paper(PowercapPolicy::Mix, 0.60, duration)
            .with_decision_rule(DecisionRule::WorkMaximizing),
    );
    let mut out = String::from("Ablation — offline decision rule (MIX, 60 %)\n");
    out.push_str(&format!("paper rho rule   : {}\n", paper.summary()));
    out.push_str(&format!("work-maximising  : {}\n", direct.summary()));
    out
}

/// Ablation — policy-wide "common value" degradation vs per-application
/// degradation (the paper's future-work extension where applications provide
/// their own DVFS sensitivity).
pub fn ablation_app_aware(racks: usize, seed: u64, swf: Option<&Arc<Trace>>) -> String {
    let h = harness(racks, seed, IntervalKind::MedianJob, swf);
    let duration = h.trace().duration;
    let common = h.run(&Scenario::paper(PowercapPolicy::Dvfs, 0.40, duration));
    let aware = h.run(
        &Scenario::paper(PowercapPolicy::Dvfs, 0.40, duration).with_per_application_degradation(),
    );
    let mut out =
        String::from("Ablation — common-value vs per-application DVFS degradation (DVFS, 40 %)\n");
    out.push_str(&format!("common value 1.63 : {}\n", common.summary()));
    out.push_str(&format!("per-application   : {}\n", aware.summary()));
    out
}

/// The analytic Section III model evaluated over a sweep of cap fractions
/// (supporting table for the model discussion; no counterpart figure).
pub fn model_sweep() -> String {
    let model = PowercapTradeoff::curie_default();
    let mut out = String::from(
        "Section III model — mechanism selection vs powercap fraction (Curie, degmin 1.63)\n\
         lambda   mechanism      n_off   n_dvfs   work(nodes)\n",
    );
    for i in 1..=19 {
        let lambda = 0.05 * i as f64;
        let d = model.decide_fraction(lambda);
        out.push_str(&format!(
            "{:>6.2}   {:<12} {:>7} {:>8} {:>12.0}\n",
            lambda,
            format!("{:?}", d.mechanism),
            d.n_off_nodes(),
            d.n_dvfs_nodes(),
            d.work
        ));
    }
    out
}

/// Profile one replay of each paper scenario (100%/None, 60%/SHUT,
/// 60%/DVFS, 60%/MIX) with schedule-pass span recording attached, and
/// return the Chrome Trace Event JSON plus the number of spans captured.
/// Each scenario gets its own named lane (`tid`), so loading the file at
/// chrome://tracing or ui.perfetto.dev shows the four replays side by side.
pub fn profile_trace(racks: usize, seed: u64, swf: Option<&Arc<Trace>>) -> (String, usize) {
    use apc_obs::{ArgValue, Registry, SpanRecorder, TraceEvent};
    use apc_rjms::obs::ControllerObs;
    let h = harness(racks, seed, IntervalKind::MedianJob, swf);
    let duration = h.trace().duration;
    let scenarios = [
        Scenario::baseline(),
        Scenario::paper(PowercapPolicy::Shut, 0.60, duration),
        Scenario::paper(PowercapPolicy::Dvfs, 0.60, duration),
        Scenario::paper(PowercapPolicy::Mix, 0.60, duration),
    ];
    let registry = Registry::new();
    let spans = SpanRecorder::new();
    let mut events: Vec<TraceEvent> = Vec::new();
    for (lane, scenario) in scenarios.iter().enumerate() {
        // Label the lane with the scenario it replays.
        events.push(TraceEvent {
            name: "thread_name",
            category: "__metadata",
            phase: 'M',
            ts_us: 0,
            dur_us: 0,
            tid: lane as u64,
            args: vec![("name", ArgValue::Str(scenario.label()))],
        });
        let obs = ControllerObs::new(&registry, spans.clone()).with_lane(lane as u64);
        let _ = h.run_with_obs(scenario, obs);
    }
    events.extend(spans.take_events());
    let span_count = events.iter().filter(|e| e.phase == 'X').count();
    (
        apc_obs::write_chrome_trace(&events, "experiments"),
        span_count,
    )
}

fn describe_trace(h: &ReplayHarness) -> String {
    let stats = TraceStats::compute(h.trace(), h.platform().total_cores());
    format!(
        "platform: {} nodes / {} cores, max power {}\ntrace: {}\n",
        h.platform().total_nodes(),
        h.platform().total_cores(),
        h.platform().max_power(),
        stats.summary()
    )
}

/// Watts of one full Curie at the given cap fraction — convenience for
/// callers printing scenario headers.
pub fn curie_cap(fraction: f64) -> Watts {
    Platform::curie().power_fraction(fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_contain_reference_values() {
        let f2 = fig2();
        assert!(f2.contains("6692"));
        assert!(f2.contains("34360"));
        assert!(f2.contains("500"));
        let f3 = fig3();
        assert!(f3.contains("Linpack"));
        assert!(f3.contains("GROMACS"));
        assert!(f3.lines().count() > 30, "8 points x 4 apps + header");
        let f4 = fig4();
        assert!(f4.contains("358"));
        assert!(f4.contains("117"));
        assert!(f4.contains("DVFS 1.2 GHz"));
        let f5 = fig5();
        assert!(f5.contains("Linpack"));
        assert!(f5.contains("Switch-off"));
        let sweep = model_sweep();
        assert!(sweep.contains("Both"));
        assert!(sweep.contains("ShutdownOnly"));
    }

    #[test]
    fn replay_figures_run_at_tiny_scale() {
        // 1 rack keeps this test fast while covering the whole pipeline.
        let out = fig7b(1, 5, None);
        assert!(out.contains("smalljob"));
        assert!(out.contains("power(kW)"));
        let claims_out = claims(1, 5, None);
        assert!(claims_out.contains("SHUT work / DVFS work"));
    }

    #[test]
    fn curie_cap_scales_with_fraction() {
        assert!(curie_cap(0.4).as_watts() < curie_cap(0.8).as_watts());
    }

    #[test]
    fn replay_figures_accept_a_fixed_swf_trace() {
        let platform = Platform::curie_scaled(1);
        let synthetic = CurieTraceGenerator::new(5)
            .load_factor(0.5)
            .backlog_factor(0.2)
            .generate_for(&platform);
        let trace =
            Arc::new(apc_workload::parse_swf(&apc_workload::write_swf(&synthetic)).unwrap());
        let out = fig8(1, 5, Some(&trace));
        // The workload axis collapses to one "swf" group of 10 scenarios.
        assert!(out.contains("swf"));
        assert!(!out.contains("bigjob"));
        assert_eq!(out.lines().filter(|l| l.starts_with("swf")).count(), 10);
        let ablation = ablation_grouping(1, 5, Some(&trace));
        assert!(ablation.contains("grouped"));
    }
}

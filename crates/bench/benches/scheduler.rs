//! RJMS scheduling throughput with and without the powercap hook.
//!
//! Measures the cost of one full replay of a reduced workload per policy —
//! i.e. how much the powercap logic (the grey boxes of the paper's Fig. 1)
//! adds to the plain scheduler.

use apc_bench::helpers::{bench_platform, bench_trace};
use apc_core::PowercapPolicy;
use apc_replay::{ReplayHarness, Scenario};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_replay_per_policy(c: &mut Criterion) {
    let platform = bench_platform();
    let trace = bench_trace(&platform);
    let harness = ReplayHarness::new(platform, trace);
    let duration = harness.trace().duration;

    let mut group = c.benchmark_group("scheduler_replay");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    group.bench_function("baseline_none", |b| {
        b.iter(|| black_box(harness.run(&Scenario::baseline()).report.launched_jobs))
    });
    for policy in [
        PowercapPolicy::Shut,
        PowercapPolicy::Dvfs,
        PowercapPolicy::Mix,
    ] {
        let scenario = Scenario::paper(policy, 0.6, duration);
        group.bench_function(format!("cap60_{}", policy.name()), |b| {
            b.iter(|| black_box(harness.run(&scenario).report.launched_jobs))
        });
    }
    group.finish();
}

fn bench_backfill_depth(c: &mut Criterion) {
    use apc_rjms::backfill::BackfillConfig;
    use apc_rjms::config::{ControllerConfig, SchedulerParameters};
    use apc_rjms::controller::Controller;

    let platform = bench_platform();
    let trace = bench_trace(&platform);
    let mut group = c.benchmark_group("backfill_depth");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    for depth in [10usize, 100, 400] {
        group.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| {
                let params = SchedulerParameters {
                    backfill: BackfillConfig {
                        enabled: true,
                        depth,
                    },
                    ..Default::default()
                };
                let mut controller = Controller::new(
                    platform.clone(),
                    ControllerConfig::default().with_params(params),
                );
                controller.submit_all(trace.to_submissions());
                controller.set_horizon(trace.duration);
                black_box(controller.run().launched_jobs)
            })
        });
    }
    group.finish();
}

/// Pending-heavy scheduling: thousands of queued jobs competing for a
/// saturated, capped cluster — the schedule-pass cost dominates, which is
/// exactly what the NodeMask/scratch-buffer hot path optimises. Prints one
/// run's wall time; divide by the pass count reported in
/// `BENCH_replay.json` for ns/pass.
fn bench_pending_heavy(c: &mut Criterion) {
    use apc_core::{PowercapConfig, PowercapHook};
    use apc_rjms::config::ControllerConfig;
    use apc_rjms::controller::Controller;
    use apc_rjms::job::JobSubmission;
    use apc_rjms::time::{SimTime, TimeWindow, HOUR};

    let platform = bench_platform();
    let mut group = c.benchmark_group("schedule_pass");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    group.bench_function("pending_2000_cap60_mix", |b| {
        b.iter(|| {
            let hook =
                PowercapHook::new(PowercapConfig::for_policy(PowercapPolicy::Mix), &platform);
            let mut controller = Controller::with_hook(
                platform.clone(),
                ControllerConfig::default(),
                Box::new(hook),
            );
            let cap = platform.power_fraction(0.6);
            controller.add_powercap_reservation(TimeWindow::new(0, 4 * HOUR), cap);
            for i in 0..2_000u64 {
                controller.submit(JobSubmission::new(
                    (i % 7) as usize,
                    0,
                    160,
                    2 * HOUR,
                    900 + (i % 13) as SimTime * 60,
                ));
            }
            controller.set_horizon(2 * HOUR);
            black_box(controller.run().launched_jobs)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_replay_per_policy,
    bench_backfill_depth,
    bench_pending_heavy
);
criterion_main!(benches);

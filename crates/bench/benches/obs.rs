//! Benchmarks pinning the cost of the observability primitives.
//!
//! The whole point of `apc-obs` is that instrumentation is cheap enough to
//! leave on: a disabled counter is one branch, a live counter one relaxed
//! atomic, a histogram record a handful of them. These targets keep those
//! costs visible — if a registry change makes `counter_live` jump from a
//! few nanoseconds to tens, this is where it shows before the perf gate
//! catches the downstream regression.

use apc_obs::{bucket_of, Counter, Histogram, Registry, SpanRecorder};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_metrics");
    group.sample_size(20);

    group.bench_function("counter_disabled", |b| {
        let counter = Counter::disabled();
        b.iter(|| {
            black_box(&counter).inc();
        })
    });

    group.bench_function("counter_live", |b| {
        let registry = Registry::new();
        let counter = registry.counter("bench.counter");
        b.iter(|| {
            black_box(&counter).inc();
        })
    });

    group.bench_function("histogram_disabled", |b| {
        let histogram = Histogram::disabled();
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(0x9e37_79b9);
            black_box(&histogram).record(v);
        })
    });

    group.bench_function("histogram_live", |b| {
        let registry = Registry::new();
        let histogram = registry.histogram("bench.histogram");
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(0x9e37_79b9);
            black_box(&histogram).record(v);
        })
    });

    group.bench_function("bucket_of", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(0x9e37_79b9);
            black_box(bucket_of(v))
        })
    });
    group.finish();
}

fn bench_spans(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_spans");
    group.sample_size(20);

    group.bench_function("span_disabled", |b| {
        let spans = SpanRecorder::disabled();
        b.iter(|| {
            let start = spans.start();
            spans.complete(start, "bench", "bench", 0, Vec::new());
        })
    });

    group.bench_function("span_live", |b| {
        let spans = SpanRecorder::new();
        b.iter(|| {
            let start = spans.start();
            spans.complete(start, "bench", "bench", 0, Vec::new());
        });
        // Keep the buffer from growing across the whole measurement.
        black_box(spans.take_events().len());
    });

    group.bench_function("snapshot_32_instruments", |b| {
        let registry = Registry::new();
        for i in 0..16 {
            registry.counter(&format!("bench.c{i}")).add(i);
            registry.histogram(&format!("bench.h{i}")).record(i * 7 + 1);
        }
        b.iter(|| black_box(registry.snapshot().entries.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics, bench_spans);
criterion_main!(benches);

//! Campaign-throughput benchmarks: the sharded executor at 1, 2 and 4
//! worker threads over the same small grid, plus the grid-expansion and
//! sink-rendering hot paths. On multi-core hardware the multi-threaded
//! variants should approach a linear speedup over `threads_1`; on a single
//! core they document the sharding overhead instead.

use apc_campaign::prelude::*;
use apc_core::PowercapPolicy;
use apc_workload::IntervalKind;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// A light grid: 2 seeds × (baseline + SHUT/MIX at 60 %) on one rack.
fn bench_spec() -> CampaignSpec {
    CampaignSpec {
        racks: vec![1],
        intervals: vec![IntervalKind::MedianJob],
        seeds: vec![1, 2],
        policies: vec![PowercapPolicy::Shut, PowercapPolicy::Mix],
        cap_fractions: vec![0.6],
        load_factor: 0.5,
        backlog_factor: 0.2,
        ..CampaignSpec::default()
    }
}

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_executor");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                let outcome = CampaignRunner::new(bench_spec())
                    .with_threads(threads)
                    .run()
                    .unwrap();
                black_box(outcome.rows.len())
            })
        });
    }
    group.finish();
}

fn bench_expansion_and_sinks(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_pipeline");
    group.sample_size(20);
    let spec = CampaignSpec::paper(2012, 10);
    group.bench_function("expand_paper_grid_10_seeds", |b| {
        b.iter(|| black_box(spec.expand(&TraceSource::Synthetic).len()))
    });
    let outcome = CampaignRunner::new(bench_spec())
        .with_threads(1)
        .run()
        .unwrap();
    group.bench_function("render_csv", |b| {
        b.iter(|| {
            black_box(render_cells_csv(&outcome.rows).len())
                + black_box(render_summary_csv(&outcome.summaries).len())
        })
    });
    group.bench_function("render_json", |b| {
        b.iter(|| {
            black_box(render_cells_json(&outcome.rows).len())
                + black_box(render_summary_json(&outcome.summaries).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_executor, bench_expansion_and_sinks);
criterion_main!(benches);

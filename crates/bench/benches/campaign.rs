//! Campaign-throughput benchmarks: the work-stealing executor against the
//! legacy static shard at 1, 2 and 4 worker threads over the same small
//! grid, the append throughput of the partitioned result store, plus the
//! grid-expansion and sink-rendering hot paths. On multi-core hardware the
//! multi-threaded variants should approach a linear speedup over one
//! thread — with `steal_*` at least matching `static_*` (and beating it
//! whenever per-cell runtimes are skewed); on a single core they document
//! the scheduling overhead instead. The store target appends 256 rows per
//! iteration — manifest and partition writes included — bounding the
//! per-cell persistence cost the executor pays while streaming.

use apc_campaign::prelude::*;
use apc_core::PowercapPolicy;
use apc_workload::IntervalKind;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// A light grid: 2 seeds × (baseline + SHUT/MIX at 60 %) on one rack.
fn bench_spec() -> CampaignSpec {
    CampaignSpec {
        racks: vec![1],
        intervals: vec![IntervalKind::MedianJob],
        seeds: vec![1, 2],
        policies: vec![PowercapPolicy::Shut, PowercapPolicy::Mix],
        cap_fractions: vec![0.6],
        load_factors: vec![0.5],
        backlog_factor: 0.2,
        ..CampaignSpec::default()
    }
}

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_executor");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for (name, strategy) in [
        ("steal", ExecStrategy::WorkStealing),
        ("static", ExecStrategy::StaticShard),
    ] {
        for threads in [1usize, 2, 4] {
            group.bench_function(format!("{name}_threads_{threads}"), |b| {
                b.iter(|| {
                    let outcome = CampaignRunner::new(bench_spec())
                        .with_threads(threads)
                        .with_strategy(strategy)
                        .run()
                        .unwrap();
                    black_box(outcome.rows.len())
                })
            });
        }
    }
    group.finish();
}

/// A synthetic row for the store-append target (no replay involved — this
/// measures pure persistence throughput).
fn store_row(index: usize) -> CellRow {
    CellRow {
        index,
        racks: 2,
        workload: "medianjob".into(),
        seed: Some(index as u64),
        load_factor: 1.8,
        scenario: "60%/SHUT".into(),
        window: "7200+3600".into(),
        policy: "shut".into(),
        cap_percent: 60.0,
        grouping: "grouped".into(),
        decision_rule: "paper-rho".into(),
        schedule: "-".into(),
        faults: "-".into(),
        launched_jobs: index,
        completed_jobs: index / 2,
        killed_jobs: 0,
        pending_jobs: index / 3,
        work_core_seconds: index as f64 * 1234.5678,
        energy_joules: index as f64 * 9.876e6,
        energy_normalized: 0.5,
        launched_jobs_normalized: 0.25,
        work_normalized: 0.125,
        mean_wait_seconds: 42.0,
        peak_power_watts: 1.0e6,
    }
}

fn bench_store_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_store");
    group.sample_size(20);
    let dir = std::env::temp_dir().join(format!("apc-store-bench-{}", std::process::id()));
    let rows: Vec<CellRow> = (0..256).map(store_row).collect();
    group.bench_function("append_256_rows", |b| {
        b.iter(|| {
            // create() wipes the previous iteration's partitions.
            let mut store = ResultStore::create(&dir, 1, rows.len()).unwrap();
            store.set_sync(false); // appends per second, not fsyncs per second
            for row in &rows {
                store.append(row).unwrap();
            }
            black_box(store.completed_count())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A window+load sweep spec expanding to ~10k cells: 4 intervals × 10 seeds
/// × 5 loads × (1 baseline + 3 window sets × 3 caps × 3 policies) = 5600,
/// doubled by two rack scales to 11 200.
fn sweep_10k_spec() -> CampaignSpec {
    CampaignSpec {
        racks: vec![1, 2],
        seeds: (0..10).collect(),
        load_factors: vec![1.0, 1.2, 1.4, 1.6, 1.8],
        cap_windows: vec![
            vec![SINGLE_PAPER_WINDOW],
            vec![(0.0, 1800)],
            vec![(0.0, 1800), (1.0, 1800)],
        ],
        ..CampaignSpec::default()
    }
}

/// Synthetic summary rows shaped like a big sweep's summary.csv (one per
/// scenario group), for the Pareto-extraction target.
fn sweep_summaries(count: usize) -> Vec<SummaryRow> {
    let metric = |mean: f64| MetricSummary {
        mean,
        min: mean,
        max: mean,
        stddev: 0.0,
    };
    (0..count)
        .map(|i| SummaryRow {
            racks: 1 + i % 2,
            workload: ["smalljob", "medianjob", "bigjob", "24h"][i % 4].to_string(),
            load_factor: 1.0 + (i % 5) as f64 * 0.2,
            scenario: format!("s{i}"),
            window: format!("{}+3600", i % 7),
            cap_percent: 40.0 + (i % 3) as f64 * 20.0,
            grouping: "grouped".to_string(),
            decision_rule: "paper-rho".to_string(),
            schedule: "-".to_string(),
            faults: "-".to_string(),
            replications: 3,
            launched_jobs: metric(100.0),
            energy_normalized: metric(((i * 37) % 101) as f64 / 100.0),
            work_normalized: metric(((i * 53) % 101) as f64 / 100.0),
            mean_wait_seconds: metric(((i * 71) % 997) as f64),
            peak_power_watts: metric(1.0e6),
        })
        .collect()
}

fn bench_expansion_and_sinks(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_pipeline");
    group.sample_size(20);
    let spec = CampaignSpec::paper(2012, 10);
    group.bench_function("expand_paper_grid_10_seeds", |b| {
        b.iter(|| black_box(spec.expand(&TraceSource::Synthetic).unwrap().len()))
    });
    let sweep = sweep_10k_spec();
    assert!(sweep.cell_count().unwrap() > 10_000);
    group.bench_function("expand_sweep_grid_11k_cells", |b| {
        b.iter(|| black_box(sweep.expand(&TraceSource::Synthetic).unwrap().len()))
    });
    let summaries = sweep_summaries(10_000);
    group.bench_function("pareto_front_10k_summary_rows", |b| {
        b.iter(|| black_box(pareto_front(&summaries).len()))
    });
    let outcome = CampaignRunner::new(bench_spec())
        .with_threads(1)
        .run()
        .unwrap();
    group.bench_function("render_csv", |b| {
        b.iter(|| {
            black_box(render_cells_csv(&outcome.rows).len())
                + black_box(render_summary_csv(&outcome.summaries).len())
        })
    });
    group.bench_function("render_json", |b| {
        b.iter(|| {
            black_box(render_cells_json(&outcome.rows).len())
                + black_box(render_summary_json(&outcome.summaries).len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_executor,
    bench_store_append,
    bench_expansion_and_sinks
);
criterion_main!(benches);

//! One bench per reproduced table/figure.
//!
//! The static tables (Figures 2–5) run at full Curie fidelity; the replay
//! figures (6, 7a, 7b, 8) run reduced-scale versions (1 rack) so the whole
//! bench suite stays within minutes. The experiments binary regenerates the
//! full-scale outputs.

use apc_replay::figures;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_static_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(20);
    group.bench_function("fig2_power_levels", |b| {
        b.iter(|| black_box(figures::fig2().len()))
    });
    group.bench_function("fig3_power_time_tradeoff", |b| {
        b.iter(|| black_box(figures::fig3().len()))
    });
    group.bench_function("fig4_node_states", |b| {
        b.iter(|| black_box(figures::fig4().len()))
    });
    group.bench_function("fig5_rho_comparison", |b| {
        b.iter(|| black_box(figures::fig5().len()))
    });
    group.bench_function("section3_model_sweep", |b| {
        b.iter(|| black_box(figures::model_sweep().len()))
    });
    group.finish();
}

fn bench_replay_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_figures_reduced");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    group.bench_function("fig6_24h_mix_40", |b| {
        b.iter(|| black_box(figures::fig6(1, 3, None).len()))
    });
    group.bench_function("fig7a_bigjob_shut_60", |b| {
        b.iter(|| black_box(figures::fig7a(1, 3, None).len()))
    });
    group.bench_function("fig7b_smalljob_dvfs_40", |b| {
        b.iter(|| black_box(figures::fig7b(1, 3, None).len()))
    });
    group.bench_function("fig8_grid", |b| {
        b.iter(|| black_box(figures::fig8(1, 3, None).len()))
    });
    group.bench_function("claims_section7c", |b| {
        b.iter(|| black_box(figures::claims(1, 3, None).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_static_tables, bench_replay_figures);
criterion_main!(benches);

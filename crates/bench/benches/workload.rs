//! Workload generation and SWF round-trip benchmarks.

use apc_rjms::cluster::Platform;
use apc_workload::{parse_swf, write_swf, CurieTraceGenerator, IntervalKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let full = Platform::curie();
    let scaled = Platform::curie_scaled(2);
    group.bench_function("curie_full_medianjob", |b| {
        b.iter(|| {
            black_box(
                CurieTraceGenerator::new(1)
                    .interval(IntervalKind::MedianJob)
                    .generate_for(&full)
                    .len(),
            )
        })
    });
    group.bench_function("curie_scaled_24h", |b| {
        b.iter(|| {
            black_box(
                CurieTraceGenerator::new(1)
                    .interval(IntervalKind::Day24h)
                    .generate_for(&scaled)
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_swf(c: &mut Criterion) {
    let platform = Platform::curie_scaled(2);
    let trace = CurieTraceGenerator::new(5).generate_for(&platform);
    let text = write_swf(&trace);
    let mut group = c.benchmark_group("swf");
    group.sample_size(20);
    group.bench_function("write", |b| b.iter(|| black_box(write_swf(&trace).len())));
    group.bench_function("parse", |b| {
        b.iter(|| black_box(parse_swf(&text).unwrap().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_swf);
criterion_main!(benches);

//! Benchmarks of the power substrate hot paths and the static table
//! generators (paper Figures 2–5).

use apc_power::prelude::*;
use apc_power::{benchprofiles, bonus::GroupingStrategy};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_accounting(c: &mut Criterion) {
    let topo = Topology::curie();
    let profile = NodePowerProfile::curie();
    let mut group = c.benchmark_group("power_accounting");
    group.sample_size(20);

    group.bench_function("set_state_5040_nodes", |b| {
        let mut acct = ClusterPowerAccountant::new(&topo, &profile);
        let mut i = 0usize;
        b.iter(|| {
            let node = i % 5040;
            let state = match i % 3 {
                0 => PowerState::Busy(Frequency::from_ghz(2.7)),
                1 => PowerState::Idle,
                _ => PowerState::Off,
            };
            acct.set_state(node, state, i as u64);
            i += 1;
            black_box(acct.current_power())
        })
    });

    group.bench_function("power_if_256_nodes", |b| {
        let acct = ClusterPowerAccountant::new(&topo, &profile);
        let nodes: Vec<usize> = (0..256).collect();
        b.iter(|| black_box(acct.power_if(&nodes, PowerState::Busy(Frequency::from_ghz(2.0)))))
    });
    group.finish();
}

fn bench_tradeoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("tradeoff_model");
    group.sample_size(20);
    let model = PowercapTradeoff::curie_default();
    group.bench_function("decide_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=100 {
                acc += model.decide_fraction(i as f64 / 100.0).work;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_shutdown_planner(c: &mut Criterion) {
    let topo = Topology::curie();
    let profile = NodePowerProfile::curie();
    let mut group = c.benchmark_group("shutdown_planner");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, strategy) in [
        ("grouped", GroupingStrategy::Grouped),
        ("scattered", GroupingStrategy::Scattered),
    ] {
        let planner = GroupedShutdownPlanner::new(&topo, &profile).with_strategy(strategy);
        group.bench_function(format!("plan_1MW_{name}"), |b| {
            b.iter(|| black_box(planner.plan_unrestricted(Watts(1_000_000.0)).node_count()))
        });
    }
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_tables");
    group.sample_size(20);
    group.bench_function("fig3_profiles", |b| {
        b.iter(|| black_box(BenchmarkProfile::all_curie().len()))
    });
    group.bench_function("fig5_rho_table", |b| {
        b.iter(|| black_box(benchprofiles::fig5_table().len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_accounting,
    bench_tradeoff,
    bench_shutdown_planner,
    bench_tables
);
criterion_main!(benches);

//! # apc-bench
//!
//! Criterion benchmark harness for the adaptive-powercap workspace. The
//! benchmark targets mirror the paper's experiment inventory:
//!
//! * `power_model` — the hot paths of the power substrate (incremental power
//!   accounting, Section III trade-off decisions, grouped shutdown planning,
//!   the Fig. 2/3/4/5 table generators);
//! * `scheduler` — RJMS scheduling throughput with and without the powercap
//!   hook (per-policy), i.e. the cost the grey boxes of Fig. 1 add to SLURM;
//! * `workload` — synthetic Curie trace generation and SWF round-trips;
//! * `figures` — end-to-end replays of reduced-scale versions of the
//!   Fig. 6/7/8 scenarios (one bench per figure);
//! * `campaign` — the sharded campaign executor at 1/2/4 worker threads over
//!   one grid, plus grid expansion and CSV/JSON sink rendering.
//!
//! Absolute throughput numbers are hardware-dependent; the benches exist to
//! keep the relative costs visible and regressions detectable.

pub mod gate;

/// Common helpers shared by the bench targets.
pub mod helpers {
    use apc_rjms::cluster::Platform;
    use apc_workload::{CurieTraceGenerator, IntervalKind, Trace};

    /// The reduced-scale platform used by replay benches (2 racks, 180 nodes).
    pub fn bench_platform() -> Platform {
        Platform::curie_scaled(2)
    }

    /// A deterministic reduced workload for replay benches.
    pub fn bench_trace(platform: &Platform) -> Trace {
        CurieTraceGenerator::new(1234)
            .interval(IntervalKind::MedianJob)
            .load_factor(0.8)
            .backlog_factor(0.4)
            .generate_for(platform)
    }
}

//! `perf-baseline`: measure the simulator's hot paths and append the
//! numbers to the repo-root perf trajectory (`BENCH_replay.json`).
//!
//! The criterion targets keep relative costs visible locally; this tool
//! records an *absolute* trajectory across PRs so a hot-path regression is
//! diffable in review. Each run appends (or replaces, when the label
//! already exists) one entry with three families of numbers:
//!
//! * **replay** — one full scheduler replay of the reduced bench workload
//!   per policy (the `scheduler_replay` criterion target), median-of-rounds
//!   wall time plus the controller's events/second over the capped replays;
//! * **schedule_pass** — a pending-heavy microbench (thousands of queued
//!   jobs competing for a saturated cluster under a cap) isolating the cost
//!   of one scheduling pass;
//! * **campaign** — the paper grid (policies × caps × intervals × seeds)
//!   through the single-threaded campaign executor, in cells/second;
//! * **store** — full scans of a ~100k-row synthetic result store in both
//!   on-disk formats (v2 CSV and the same store compacted to the v3 binary
//!   columnar format), interleaved like the replay numbers, plus the
//!   zone-map partition-skip count of a filtered v3 query. The v3/v2 scan
//!   cost joins the gated ratios, and `--check` additionally enforces the
//!   absolute [`gate::STORE_SPEEDUP_FLOOR`] (the columnar scan must stay
//!   ≥10× faster than CSV row parsing).
//!
//! The replay and schedule-pass numbers feed the gate's ratios, so they are
//! measured as *medians over interleaved rounds* (every round times each of
//! them once, back to back): background-load drift then shifts all of them
//! together instead of inflating whichever one happened to own the slow
//! window, and typical per-round overhead cancels out of each ratio.
//!
//! ```text
//! cargo run --release -p apc-bench --bin perf-baseline -- \
//!     [--label NAME] [--out FILE] [--quick] \
//!     [--check] [--against FILE] [--threshold PCT] [--self-test]
//! ```
//!
//! With `--check`, after recording the fresh entry the tool gates it against
//! the last committed entry of `--against` (default: the `--out` file as it
//! was *before* this run) using host-independent policy-to-baseline ratios —
//! see [`apc_bench::gate`] — and exits nonzero on a regression beyond the
//! threshold (default 15 %). `--self-test` skips measurement entirely and
//! verifies the gate trips on a fabricated regression of the committed
//! entry, so CI can prove the gate is live.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use std::path::{Path, PathBuf};

use apc_bench::gate;
use apc_bench::helpers::{bench_platform, bench_trace};
use apc_campaign::agg::CellRow;
use apc_campaign::compact::compact_store;
use apc_campaign::prelude::{CampaignRunner, CampaignSpec};
use apc_campaign::query::{Projection, RowFilter, ScanFlow, StoreScanner};
use apc_campaign::store::{ResultStore, STORE_SCHEMA_V2};
use apc_core::{PowercapConfig, PowercapHook, PowercapPolicy};
use apc_replay::{ReplayHarness, Scenario};
use apc_rjms::config::ControllerConfig;
use apc_rjms::controller::Controller;
use apc_rjms::job::JobSubmission;
use apc_rjms::time::{SimTime, HOUR};

const USAGE: &str = "usage: perf-baseline [--label NAME] [--out FILE] [--quick] \
                     [--check] [--against FILE] [--threshold PCT] [--self-test]";

/// Fingerprint of the recording host: CPU model (from `/proc/cpuinfo`, with
/// the architecture as fallback) plus the available core count. Recorded
/// next to each entry so `--check` can warn when a comparison crosses
/// hosts — the gated ratios are host-independent, absolute times are not.
fn host_fingerprint() -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split_once(':').map(|(_, v)| v.trim().to_string()))
        })
        .unwrap_or_else(|| std::env::consts::ARCH.to_string());
    format!("{} x{cores}", model.replace('"', "'"))
}

/// Best-of-N wall time of `f`, warmed once, bounded by `budget`.
fn best_of(budget: Duration, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut best = Duration::MAX;
    let started = Instant::now();
    let mut iters = 0u32;
    while started.elapsed() < budget || iters < 3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
        iters += 1;
        if iters >= 1000 {
            break;
        }
    }
    best
}

/// Per-closure *median* wall times over interleaved rounds: every round
/// times each closure once, back to back. The gate divides these numbers by
/// each other, so they must all see the same machine state — timing each
/// scenario in its own sequential window lets background-load drift inflate
/// one side of a ratio and fail (or mask) a check without any code change.
/// The median (not the minimum) is used because on a shared vCPU the
/// minimum occasionally catches a steal-free window for one quantity but
/// not another, skewing the ratio; typical per-round overhead cancels.
fn median_of_interleaved<const N: usize>(
    budget: Duration,
    mut fs: [&mut dyn FnMut(); N],
) -> [Duration; N] {
    for f in fs.iter_mut() {
        f(); // warm-up
    }
    let mut samples: [Vec<Duration>; N] = std::array::from_fn(|_| Vec::new());
    let started = Instant::now();
    let mut rounds = 0u32;
    while started.elapsed() < budget || rounds < 3 {
        for (f, samples) in fs.iter_mut().zip(samples.iter_mut()) {
            let t = Instant::now();
            f();
            samples.push(t.elapsed());
        }
        rounds += 1;
        if rounds >= 1000 {
            break;
        }
    }
    samples.map(|mut s| {
        s.sort_unstable();
        s[s.len() / 2]
    })
}

struct ReplayNumbers {
    baseline_ns: u128,
    shut_ns: u128,
    dvfs_ns: u128,
    mix_ns: u128,
    events_per_sec: f64,
}

/// All five gated quantities — the four per-policy replays and the
/// schedule-pass microbench — timed over interleaved rounds so every ratio's
/// numerator and denominator sample the same machine state, plus the
/// controller's events/second (not gated, measured separately after).
fn measure_gated(budget: Duration) -> (ReplayNumbers, u64, f64) {
    let platform = bench_platform();
    let trace = bench_trace(&platform);
    let harness = ReplayHarness::new(platform, trace);
    let duration = harness.trace().duration;

    let scenarios = [
        Scenario::baseline(),
        Scenario::paper(PowercapPolicy::Shut, 0.6, duration),
        Scenario::paper(PowercapPolicy::Dvfs, 0.6, duration),
        Scenario::paper(PowercapPolicy::Mix, 0.6, duration),
    ];
    // `replay` captures only shared borrows, so the four per-scenario
    // closures can all hold it at once.
    let replay = |i: usize| {
        std::hint::black_box(harness.run(&scenarios[i]).report.launched_jobs);
    };
    let (mut r0, mut r1, mut r2, mut r3) = (|| replay(0), || replay(1), || replay(2), || replay(3));
    let pass_platform = bench_platform();
    let mut passes = 0u64;
    let mut pass_bench = || passes = run_pass_bench(&pass_platform);
    let [baseline, shut, dvfs, mix, pass_wall] = median_of_interleaved(
        budget,
        [&mut r0, &mut r1, &mut r2, &mut r3, &mut pass_bench],
    );

    // Events/second through the raw controller (the harness hides it), on
    // the same workload under the MIX policy at the 60 % cap.
    let platform = bench_platform();
    let trace = bench_trace(&platform);
    let scenario = Scenario::paper(PowercapPolicy::Mix, 0.6, trace.duration);
    let mut events = 0u64;
    let wall = best_of(budget, || {
        let hook = PowercapHook::new(PowercapConfig::for_policy(PowercapPolicy::Mix), &platform);
        let mut controller = Controller::with_hook(
            platform.clone(),
            ControllerConfig::default(),
            Box::new(hook),
        );
        if let Some(cap) = scenario.cap(&platform) {
            for window in scenario.windows() {
                controller.add_powercap_reservation(window, cap);
            }
        }
        controller.submit_all(trace.to_submissions());
        controller.set_horizon(trace.duration);
        std::hint::black_box(controller.run().launched_jobs);
        events = controller.events_processed();
    });
    let events_per_sec = events as f64 / wall.as_secs_f64();
    let numbers = ReplayNumbers {
        baseline_ns: baseline.as_nanos(),
        shut_ns: shut.as_nanos(),
        dvfs_ns: dvfs.as_nanos(),
        mix_ns: mix.as_nanos(),
        events_per_sec,
    };
    let ns_per_pass = pass_wall.as_nanos() as f64 / passes.max(1) as f64;
    (numbers, passes, ns_per_pass)
}

/// One run of the pending-heavy microbench: a deep queue on a saturated,
/// capped cluster so every scheduling pass walks the full backfill depth.
/// Returns the number of scheduling passes the run took.
fn run_pass_bench(platform: &apc_rjms::cluster::Platform) -> u64 {
    let hook = PowercapHook::new(PowercapConfig::for_policy(PowercapPolicy::Mix), platform);
    let mut controller = Controller::with_hook(
        platform.clone(),
        ControllerConfig::default(),
        Box::new(hook),
    );
    let cap = platform.power_fraction(0.6);
    controller.add_powercap_reservation(apc_rjms::time::TimeWindow::new(0, 4 * HOUR), cap);
    // 2 000 pending 10-node jobs on a 180-node machine: ~18 can run at
    // once, so the queue stays thousands deep for the whole interval.
    for i in 0..2_000u64 {
        controller.submit(JobSubmission::new(
            (i % 7) as usize,
            0,
            160,
            2 * HOUR,
            900 + (i % 13) as SimTime * 60,
        ));
    }
    controller.set_horizon(2 * HOUR);
    std::hint::black_box(controller.run().launched_jobs);
    controller.schedule_passes()
}

/// The paper grid through the single-threaded executor.
fn measure_campaign(runs: u32) -> (usize, f64, f64) {
    let spec = CampaignSpec::paper(2012, 3);
    let runner = CampaignRunner::new(spec).with_threads(1);
    let mut cells = 0usize;
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let t = Instant::now();
        let outcome = runner.run().expect("paper grid runs");
        best = best.min(t.elapsed());
        cells = outcome.rows.len();
    }
    let wall_s = best.as_secs_f64();
    (cells, wall_s, cells as f64 / wall_s)
}

struct StoreNumbers {
    rows: usize,
    v2_scan_ns: u128,
    v3_scan_ns: u128,
    v3_narrow_scan_ns: u128,
    zone_skipped_parts: usize,
}

/// One synthetic store row. The workload label flips halfway through the
/// grid so the contiguous first-half partitions are zone-map skippable by a
/// second-half workload filter; everything else is cheap deterministic
/// filler with full-precision floats (so the v2 side pays the same hex
/// round-trip cost a real campaign store does).
fn synthetic_row(i: usize, total: usize) -> CellRow {
    let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    CellRow {
        index: i,
        racks: 1 + (i % 4),
        workload: if i < total / 2 {
            "smalljob"
        } else {
            "medianjob"
        }
        .to_string(),
        seed: Some(x % 32),
        load_factor: 0.6 + (i % 5) as f64 * 0.3,
        scenario: ["100%/None", "80%/SHUT", "60%/DVFS", "40%/MIX"][i % 4].to_string(),
        window: "7200+3600".to_string(),
        policy: ["none", "shut", "dvfs", "mix"][i % 4].to_string(),
        cap_percent: [100.0, 80.0, 60.0, 40.0][i % 4],
        grouping: "grouped".to_string(),
        decision_rule: "paper-rho".to_string(),
        // Label-free rows keep the store paper-shaped: 22-field v2 lines
        // and APC3 blocks, so the v2/v3 speedup stays comparable across
        // entries recorded before and after the scenario-engine refactor.
        schedule: "-".to_string(),
        faults: "-".to_string(),
        launched_jobs: (x % 10_000) as usize,
        completed_jobs: (x % 9_000) as usize,
        killed_jobs: (x % 50) as usize,
        pending_jobs: (x % 200) as usize,
        work_core_seconds: x as f64 * 1e-3,
        energy_joules: x as f64 * 7e-4,
        energy_normalized: (x % 1000) as f64 / 997.0,
        launched_jobs_normalized: (x % 100) as f64 / 101.0,
        work_normalized: (x % 500) as f64 / 499.0,
        mean_wait_seconds: (x % 7200) as f64 + 0.125,
        peak_power_watts: 900.0 + (x % 300) as f64,
    }
}

/// Duplicate a store directory (manifest + partition files) so the v2
/// original can be compacted into a v3 twin without rebuilding it.
fn copy_store(src: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst.join("cells"))?;
    std::fs::copy(src.join("manifest.txt"), dst.join("manifest.txt"))?;
    for entry in std::fs::read_dir(src.join("cells"))? {
        let entry = entry?;
        std::fs::copy(entry.path(), dst.join("cells").join(entry.file_name()))?;
    }
    Ok(())
}

/// Build the synthetic store in both formats and time full scans of each,
/// interleaved with a narrow two-column projected v3 scan (the decoder
/// materialises only the requested columns); also run one zone-map-filtered
/// v3 query and record how many partitions its zone maps let it skip.
fn measure_store(budget: Duration, rows: usize) -> StoreNumbers {
    let base: PathBuf = std::env::temp_dir().join(format!("apc-perf-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let v2_dir = base.join("v2");
    let v3_dir = base.join("v3");
    let mut store = ResultStore::create_with_schema(&v2_dir, 0xbe9c, rows, STORE_SCHEMA_V2)
        .expect("create v2 store");
    store.set_sync(false); // measuring scan throughput, not durability
    for i in 0..rows {
        store.append(&synthetic_row(i, rows)).expect("append row");
    }
    drop(store);
    copy_store(&v2_dir, &v3_dir).expect("copy store");
    compact_store(&v3_dir, None).expect("compact to v3");

    let full_scan = |dir: &Path| {
        let scanner = StoreScanner::open(dir).expect("open store");
        let mut seen = 0usize;
        scanner
            .scan(&RowFilter::default(), |row| {
                std::hint::black_box(row.launched_jobs);
                seen += 1;
                Ok(ScanFlow::Continue)
            })
            .expect("scan store");
        assert_eq!(seen, rows, "scan must visit every row");
    };
    let narrow = Projection::of(&["index".to_string(), "launched_jobs".to_string()])
        .expect("projection columns");
    let narrow_scan = |dir: &Path| {
        let scanner = StoreScanner::open(dir).expect("open store");
        let mut seen = 0usize;
        scanner
            .scan_projected(&RowFilter::default(), narrow, |row| {
                std::hint::black_box(row.launched_jobs);
                seen += 1;
                Ok(ScanFlow::Continue)
            })
            .expect("projected scan");
        assert_eq!(seen, rows, "projected scan must visit every row");
    };
    let (mut scan_v2, mut scan_v3, mut scan_v3_narrow) = (
        || full_scan(&v2_dir),
        || full_scan(&v3_dir),
        || narrow_scan(&v3_dir),
    );
    let [v2_wall, v3_wall, v3_narrow_wall] =
        median_of_interleaved(budget, [&mut scan_v2, &mut scan_v3, &mut scan_v3_narrow]);

    // A filtered query: the first-half partitions hold only "smalljob"
    // rows, so their zone maps prove them row-free for this filter.
    let filter = RowFilter {
        workload: Some("medianjob".to_string()),
        ..RowFilter::default()
    };
    let scanner = StoreScanner::open(&v3_dir).expect("open v3 store");
    let stats = scanner
        .scan(&filter, |_| Ok(ScanFlow::Continue))
        .expect("filtered scan");
    assert!(
        stats.partitions_skipped > 0,
        "the synthetic layout must exercise zone-map skipping"
    );
    let _ = std::fs::remove_dir_all(&base);
    StoreNumbers {
        rows,
        v2_scan_ns: v2_wall.as_nanos(),
        v3_scan_ns: v3_wall.as_nanos(),
        v3_narrow_scan_ns: v3_narrow_wall.as_nanos(),
        zone_skipped_parts: stats.partitions_skipped,
    }
}

fn json_entry(label: &str) -> String {
    let quick = std::env::args().any(|a| a == "--quick");
    let budget = if quick {
        Duration::from_millis(300)
    } else {
        Duration::from_millis(1500)
    };
    eprintln!("measuring replay per policy + schedule-pass microbench (interleaved) …");
    let (replay, passes, ns_per_pass) = measure_gated(budget);
    eprintln!("measuring paper-grid campaign …");
    let (cells, wall_s, cells_per_sec) = measure_campaign(if quick { 1 } else { 2 });
    eprintln!("measuring result-store scans (v2 CSV vs v3 columnar) …");
    let store = measure_store(budget, if quick { 20_000 } else { 120_000 });
    let speedup = store.v2_scan_ns as f64 / store.v3_scan_ns.max(1) as f64;
    let projection_speedup = store.v3_scan_ns as f64 / store.v3_narrow_scan_ns.max(1) as f64;
    eprintln!(
        "  projection pushdown: narrow 2-column scan {projection_speedup:.2}x \
         faster than the full v3 decode"
    );
    let recorded = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let host = host_fingerprint();
    format!(
        "  {{\"label\": \"{label}\", \"recorded_unix\": {recorded}, \"host\": \"{host}\", \
         \"replay\": {{\"baseline_none_ns\": {}, \"cap60_shut_ns\": {}, \
         \"cap60_dvfs_ns\": {}, \"cap60_mix_ns\": {}, \"events_per_sec\": {:.0}}}, \
         \"schedule_pass\": {{\"passes\": {passes}, \"ns_per_pass\": {:.1}}}, \
         \"store\": {{\"rows\": {}, \"v2_scan_ns\": {}, \"v3_scan_ns\": {}, \
         \"speedup\": {speedup:.1}, \"v3_narrow_scan_ns\": {}, \
         \"projection_speedup\": {projection_speedup:.1}, \"zone_skipped_parts\": {}}}, \
         \"campaign\": {{\"cells\": {cells}, \"wall_s\": {:.3}, \"cells_per_sec\": {:.1}}}}}",
        replay.baseline_ns,
        replay.shut_ns,
        replay.dvfs_ns,
        replay.mix_ns,
        replay.events_per_sec,
        ns_per_pass,
        store.rows,
        store.v2_scan_ns,
        store.v3_scan_ns,
        store.v3_narrow_scan_ns,
        store.zone_skipped_parts,
        wall_s,
        cells_per_sec,
    )
}

/// Rewrite `path` keeping previously recorded entries (identified by their
/// one-entry-per-line layout), replacing any entry with the same label.
fn write_trajectory(path: &str, label: &str, entry: String) -> Result<(), String> {
    let mut entries: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        let needle = format!("\"label\": \"{label}\"");
        for line in existing.lines() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("{\"label\":") && !trimmed.contains(&needle) {
                entries.push(format!("  {}", trimmed.trim_end_matches(',')));
            }
        }
    }
    entries.push(entry);
    let body = entries.join(",\n");
    let text = format!(
        "{{\n\"schema\": 1,\n\
         \"description\": \"Perf trajectory of the replay/campaign hot paths; \
         one entry per PR, appended by `cargo run --release -p apc-bench --bin \
         perf-baseline -- --label NAME`. Times are best-of-N on the recording \
         host; compare entries recorded on the same host only.\",\n\
         \"entries\": [\n{body}\n]\n}}\n"
    );
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// The committed reference for a gate run: the last entry of `text` that is
/// neither the fresh label nor a CI-appended (`ci-*`) entry from an earlier
/// run of this tool.
fn committed_reference(text: &str, fresh_label: &str) -> Option<gate::PerfEntry> {
    let entries = gate::parse_trajectory(text);
    gate::reference_entry(&entries, |label| {
        label == fresh_label || label.starts_with("ci-")
    })
    .cloned()
}

/// `--self-test`: prove the gate is live without measuring anything. The
/// committed reference must pass against itself and must *fail* against a
/// fabricated 1.5× DVFS-replay regression.
fn run_self_test(against: &str) -> ExitCode {
    let text = match std::fs::read_to_string(against) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("self-test: cannot read {against}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(committed) = committed_reference(&text, "") else {
        eprintln!("self-test: no committed entry in {against}");
        return ExitCode::FAILURE;
    };
    let clean = gate::check(&committed, &committed, gate::DEFAULT_THRESHOLD);
    let regressed = committed.with_synthetic_regression(1.5);
    let tripped = gate::check(&committed, &regressed, gate::DEFAULT_THRESHOLD);
    eprintln!("{clean}");
    eprintln!("{tripped}");
    if clean.passed() && !tripped.passed() {
        eprintln!("self-test: gate passes a clean entry and trips on a synthetic regression");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "self-test: gate is NOT live (clean={}, tripped={})",
            clean.passed(),
            !tripped.passed()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = "dev".to_string();
    let mut out = "BENCH_replay.json".to_string();
    let mut against: Option<String> = None;
    let mut check = false;
    let mut self_test = false;
    let mut threshold = gate::DEFAULT_THRESHOLD;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--label" => match iter.next() {
                Some(v) => label = v.clone(),
                None => {
                    eprintln!("--label needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--out" => match iter.next() {
                Some(v) => out = v.clone(),
                None => {
                    eprintln!("--out needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--against" => match iter.next() {
                Some(v) => against = Some(v.clone()),
                None => {
                    eprintln!("--against needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--threshold" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => threshold = v / 100.0,
                _ => {
                    eprintln!("--threshold needs a positive percentage\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--check" => check = true,
            "--self-test" => self_test = true,
            "--quick" => {}
            other => {
                eprintln!("unknown option: {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let against = against.unwrap_or_else(|| out.clone());
    if self_test {
        return run_self_test(&against);
    }
    // Snapshot the committed trajectory before the write below replaces it,
    // so `--check` against the default path still compares pre-run state.
    let committed = if check {
        match std::fs::read_to_string(&against) {
            Ok(text) => committed_reference(&text, &label),
            Err(e) => {
                eprintln!("error: --check: cannot read {against}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    if check && committed.is_none() {
        eprintln!("error: --check: no committed entry to gate against in {against}");
        return ExitCode::FAILURE;
    }
    let entry = json_entry(&label);
    println!("{}", entry.trim_start());
    if let Err(e) = write_trajectory(&out, &label, entry.clone()) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    if let Some(committed) = committed {
        let Some(fresh) = gate::parse_trajectory(&entry).pop() else {
            eprintln!("error: --check: fresh entry did not round-trip the parser");
            return ExitCode::FAILURE;
        };
        match (&committed.host, &fresh.host) {
            (Some(c), Some(f)) if c != f => eprintln!(
                "warning: cross-host comparison — '{}' was recorded on \"{c}\", this run on \
                 \"{f}\"; the gated ratios are host-independent, but treat close calls with care",
                committed.label
            ),
            (None, _) => eprintln!(
                "note: '{}' predates host fingerprints; cannot tell whether this comparison \
                 crosses hosts",
                committed.label
            ),
            _ => {}
        }
        let report = gate::check(&committed, &fresh, threshold);
        eprintln!("{report}");
        if !report.passed() {
            eprintln!(
                "perf gate failed: a tracked ratio grew more than {:.0} % over '{}'; \
                 if intentional, re-record the baseline (see README 'Performance')",
                threshold * 100.0,
                committed.label
            );
            return ExitCode::FAILURE;
        }
        // Absolute floor, independent of the committed baseline: the v3
        // columnar scan must stay an order of magnitude ahead of CSV row
        // parsing, measured side by side in this very run.
        if let Some(speedup) = fresh.store_speedup() {
            eprintln!(
                "store scan: v3 is {speedup:.1}x faster than v2 CSV (floor {:.0}x)",
                gate::STORE_SPEEDUP_FLOOR
            );
            if speedup < gate::STORE_SPEEDUP_FLOOR {
                eprintln!(
                    "perf gate failed: v3 store scan speedup {speedup:.1}x is below the \
                     {:.0}x floor",
                    gate::STORE_SPEEDUP_FLOOR
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

//! Perf regression gate over the recorded trajectory (`BENCH_replay.json`).
//!
//! Absolute nanoseconds are host-dependent, so comparing a CI run against a
//! baseline recorded on a developer machine would be noise. The gate instead
//! compares *ratios within one host*: each capped policy's replay time
//! divided by the uncapped baseline replay time measured in the same run
//! (`cap60_dvfs_ns / baseline_none_ns`, …), plus the schedule-pass cost per
//! baseline replay. Those ratios are stable across hardware — they capture
//! "how much does the powercap machinery cost on top of plain scheduling" —
//! so a fresh CI entry can be checked against the committed trajectory even
//! though both were recorded on different machines.
//!
//! A check fails when any fresh ratio exceeds the committed ratio by more
//! than the threshold (default 15 %). Ratios *improving* is never a failure.

use std::fmt;

/// The default allowed relative growth of any tracked ratio (15 %).
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// Minimum required speedup of a full v3 columnar store scan over the same
/// scan of the v2 CSV store (an absolute floor, not a ratio-growth check:
/// the binary format's whole point is to beat row-parsing by an order of
/// magnitude, and both sides are measured in the same run on the same
/// host, so the quotient is host-independent).
pub const STORE_SPEEDUP_FLOOR: f64 = 10.0;

/// One entry of the perf trajectory, reduced to the fields the gate tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// The entry's label (e.g. `pr5-nodemask`, `ci-abc123def`).
    pub label: String,
    /// Uncapped replay wall time — the per-host normalizer.
    pub baseline_none_ns: f64,
    /// Capped replay wall time under the SHUT policy.
    pub cap60_shut_ns: f64,
    /// Capped replay wall time under the DVFS policy.
    pub cap60_dvfs_ns: f64,
    /// Capped replay wall time under the MIX policy.
    pub cap60_mix_ns: f64,
    /// Cost of one scheduling pass in the pending-heavy microbench.
    pub ns_per_pass: f64,
    /// Full scan wall time of the ~100k-row synthetic v2 (CSV) store, when
    /// the entry recorded store metrics.
    pub store_v2_scan_ns: Option<f64>,
    /// Full scan wall time of the same store compacted to v3 (columnar).
    pub store_v3_scan_ns: Option<f64>,
    /// Fingerprint of the recording host (`"<cpu model> xN"`), when the
    /// entry recorded one — lets a check warn on cross-host comparisons
    /// (the tracked ratios are host-independent, absolute times are not).
    pub host: Option<String>,
}

impl PerfEntry {
    /// The tracked host-independent ratios, labelled. Variable-length:
    /// entries recorded before a metric family existed simply lack its
    /// ratio, and [`check`] matches ratios by name so old baselines stay
    /// comparable on the ratios they do have.
    fn ratios(&self) -> Vec<(&'static str, f64)> {
        let base = self.baseline_none_ns.max(1.0);
        let mut out = vec![
            ("cap60_shut / baseline", self.cap60_shut_ns / base),
            ("cap60_dvfs / baseline", self.cap60_dvfs_ns / base),
            ("cap60_mix / baseline", self.cap60_mix_ns / base),
            ("schedule_pass / baseline", self.ns_per_pass / base),
        ];
        if let (Some(v2), Some(v3)) = (self.store_v2_scan_ns, self.store_v3_scan_ns) {
            // Cost ratio like the others: bigger = the columnar scan lost
            // ground against the CSV scan measured in the same run.
            out.push(("store_v3_scan / store_v2_scan", v3 / v2.max(1.0)));
        }
        out
    }

    /// The v2-over-v3 store scan speedup, when the entry recorded store
    /// metrics; compare against [`STORE_SPEEDUP_FLOOR`].
    pub fn store_speedup(&self) -> Option<f64> {
        match (self.store_v2_scan_ns, self.store_v3_scan_ns) {
            (Some(v2), Some(v3)) => Some(v2 / v3.max(1.0)),
            _ => None,
        }
    }

    /// A copy with the DVFS replay inflated by `factor` — used by the gate
    /// self-test to prove a regression actually trips the check.
    pub fn with_synthetic_regression(&self, factor: f64) -> PerfEntry {
        PerfEntry {
            label: format!("{}+synthetic", self.label),
            cap60_dvfs_ns: self.cap60_dvfs_ns * factor,
            ..self.clone()
        }
    }
}

/// One ratio comparison between the committed and the fresh entry.
#[derive(Debug, Clone)]
pub struct RatioCheck {
    /// Which ratio this row tracks.
    pub name: &'static str,
    /// The ratio in the committed (reference) entry.
    pub committed: f64,
    /// The ratio in the fresh entry.
    pub fresh: f64,
    /// Whether the fresh ratio exceeds the allowance.
    pub breached: bool,
}

impl fmt::Display for RatioCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = if self.breached { "REGRESSED" } else { "ok" };
        write!(
            f,
            "{:<26} committed {:>7.3}  fresh {:>7.3}  ({:+.1} %)  {verdict}",
            self.name,
            self.committed,
            self.fresh,
            (self.fresh / self.committed.max(f64::MIN_POSITIVE) - 1.0) * 100.0,
        )
    }
}

/// Outcome of gating a fresh entry against a committed one.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Label of the committed reference entry.
    pub committed_label: String,
    /// Label of the fresh entry under test.
    pub fresh_label: String,
    /// Every tracked ratio, in order.
    pub checks: Vec<RatioCheck>,
}

impl GateReport {
    /// True when no tracked ratio regressed beyond the threshold.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| !c.breached)
    }
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "perf gate: '{}' (fresh) vs '{}' (committed)",
            self.fresh_label, self.committed_label
        )?;
        for check in &self.checks {
            writeln!(f, "  {check}")?;
        }
        write!(f, "  => {}", if self.passed() { "PASS" } else { "FAIL" })
    }
}

/// Compare `fresh` against `committed`: a ratio breaches when it exceeds the
/// committed ratio by more than `threshold` (relative, e.g. `0.15` = 15 %).
///
/// Ratios are matched by name: one an entry lacks (a baseline recorded
/// before that metric family existed, or a fresh run that skipped it) is
/// left out of the report rather than misaligned against a different ratio.
pub fn check(committed: &PerfEntry, fresh: &PerfEntry, threshold: f64) -> GateReport {
    let fresh_ratios = fresh.ratios();
    let checks = committed
        .ratios()
        .into_iter()
        .filter_map(|(name, committed)| {
            let (_, fresh) = fresh_ratios.iter().find(|(n, _)| *n == name)?;
            Some(RatioCheck {
                name,
                committed,
                fresh: *fresh,
                breached: *fresh > committed * (1.0 + threshold),
            })
        })
        .collect();
    GateReport {
        committed_label: committed.label.clone(),
        fresh_label: fresh.label.clone(),
        checks,
    }
}

/// Parse every entry of a trajectory file written by `perf-baseline`.
///
/// The writer keeps a one-entry-per-line layout (every entry line starts
/// with `{"label":` after indentation), so a line scan with per-key field
/// extraction is exact for this format — no JSON library required (the
/// vendored `serde` is an offline stub).
pub fn parse_trajectory(text: &str) -> Vec<PerfEntry> {
    text.lines()
        .map(str::trim_start)
        .filter(|line| line.starts_with("{\"label\":"))
        .filter_map(parse_entry_line)
        .collect()
}

/// The last (most recently appended) entry, optionally skipping labels for
/// which `skip` returns true (e.g. a stale `ci-*` entry from a previous run).
pub fn reference_entry(entries: &[PerfEntry], skip: impl Fn(&str) -> bool) -> Option<&PerfEntry> {
    entries.iter().rev().find(|e| !skip(&e.label))
}

fn parse_entry_line(line: &str) -> Option<PerfEntry> {
    Some(PerfEntry {
        label: string_field(line, "label")?,
        baseline_none_ns: number_field(line, "baseline_none_ns")?,
        cap60_shut_ns: number_field(line, "cap60_shut_ns")?,
        cap60_dvfs_ns: number_field(line, "cap60_dvfs_ns")?,
        cap60_mix_ns: number_field(line, "cap60_mix_ns")?,
        ns_per_pass: number_field(line, "ns_per_pass")?,
        store_v2_scan_ns: number_field(line, "v2_scan_ns"),
        store_v3_scan_ns: number_field(line, "v3_scan_ns"),
        host: string_field(line, "host"),
    })
}

fn value_after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    Some(line[start..].trim_start())
}

fn string_field(line: &str, key: &str) -> Option<String> {
    let rest = value_after(line, key)?.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn number_field(line: &str, key: &str) -> Option<f64> {
    let rest = value_after(line, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = r#"  {"label": "pr5-nodemask", "recorded_unix": 1754000000, "replay": {"baseline_none_ns": 137666, "cap60_shut_ns": 289568, "cap60_dvfs_ns": 743960, "cap60_mix_ns": 472990, "events_per_sec": 1404018}, "schedule_pass": {"passes": 242, "ns_per_pass": 277462.2}, "campaign": {"cells": 54, "wall_s": 0.489, "cells_per_sec": 110.5}}"#;

    fn entry() -> PerfEntry {
        parse_trajectory(LINE).pop().expect("line parses")
    }

    #[test]
    fn parses_the_writer_format_exactly() {
        let e = entry();
        assert_eq!(e.label, "pr5-nodemask");
        assert_eq!(e.baseline_none_ns, 137666.0);
        assert_eq!(e.cap60_shut_ns, 289568.0);
        assert_eq!(e.cap60_dvfs_ns, 743960.0);
        assert_eq!(e.cap60_mix_ns, 472990.0);
        assert_eq!(e.ns_per_pass, 277462.2);
        assert_eq!(e.host, None, "pre-fingerprint entries still parse");
    }

    #[test]
    fn parses_the_host_fingerprint_when_present() {
        let line = LINE.replace(
            "\"recorded_unix\": 1754000000,",
            "\"recorded_unix\": 1754000000, \"host\": \"Xeon E5-2680 x16\",",
        );
        let e = parse_trajectory(&line).pop().expect("line parses");
        assert_eq!(e.host.as_deref(), Some("Xeon E5-2680 x16"));
    }

    #[test]
    fn parses_a_full_trajectory_and_picks_the_reference() {
        let text = format!(
            "{{\n\"schema\": 1,\n\"entries\": [\n{LINE},\n{}\n]\n}}\n",
            LINE.replace("pr5-nodemask", "ci-abc123def")
        );
        let entries = parse_trajectory(&text);
        assert_eq!(entries.len(), 2);
        // The reference skips CI-appended labels and lands on the last
        // hand-recorded entry.
        let reference = reference_entry(&entries, |l| l.starts_with("ci-")).unwrap();
        assert_eq!(reference.label, "pr5-nodemask");
        assert!(reference_entry(&entries, |_| true).is_none());
    }

    #[test]
    fn identical_entries_pass() {
        let report = check(&entry(), &entry(), DEFAULT_THRESHOLD);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn a_faster_host_with_the_same_ratios_passes() {
        // Every absolute number halves (faster machine): ratios unchanged.
        let committed = entry();
        let fresh = PerfEntry {
            label: "ci-fast-host".into(),
            baseline_none_ns: committed.baseline_none_ns / 2.0,
            cap60_shut_ns: committed.cap60_shut_ns / 2.0,
            cap60_dvfs_ns: committed.cap60_dvfs_ns / 2.0,
            cap60_mix_ns: committed.cap60_mix_ns / 2.0,
            ns_per_pass: committed.ns_per_pass / 2.0,
            store_v2_scan_ns: None,
            store_v3_scan_ns: None,
            host: None,
        };
        assert!(check(&committed, &fresh, DEFAULT_THRESHOLD).passed());
    }

    /// An entry with store metrics attached.
    fn entry_with_store(v2_ns: f64, v3_ns: f64) -> PerfEntry {
        PerfEntry {
            store_v2_scan_ns: Some(v2_ns),
            store_v3_scan_ns: Some(v3_ns),
            ..entry()
        }
    }

    #[test]
    fn store_metrics_parse_and_join_the_tracked_ratios() {
        let line = LINE.replace(
            "\"campaign\":",
            "\"store\": {\"rows\": 120000, \"v2_scan_ns\": 250000000, \
             \"v3_scan_ns\": 12500000, \"speedup\": 20.0, \"zone_skipped_parts\": 937}, \
             \"campaign\":",
        );
        let e = parse_trajectory(&line).pop().expect("line parses");
        assert_eq!(e.store_v2_scan_ns, Some(250_000_000.0));
        assert_eq!(e.store_v3_scan_ns, Some(12_500_000.0));
        assert_eq!(e.store_speedup(), Some(20.0));
        let report = check(&e, &e, DEFAULT_THRESHOLD);
        assert_eq!(report.checks.len(), 5, "store ratio joins the gate");
        assert!(report.passed());
        // A v3 scan that lost 2x against v2 trips the store ratio alone.
        let slower = PerfEntry {
            store_v3_scan_ns: Some(25_000_000.0),
            ..e.clone()
        };
        let report = check(&e, &slower, DEFAULT_THRESHOLD);
        let breached: Vec<_> = report
            .checks
            .iter()
            .filter(|c| c.breached)
            .map(|c| c.name)
            .collect();
        assert_eq!(breached, vec!["store_v3_scan / store_v2_scan"]);
    }

    #[test]
    fn ratios_are_matched_by_name_across_schema_generations() {
        // Old committed baseline without store metrics vs a fresh entry
        // with them: the four shared ratios gate, the store ratio is
        // silently absent rather than misaligned.
        let old = entry();
        let fresh = entry_with_store(1e8, 1e7);
        let report = check(&old, &fresh, DEFAULT_THRESHOLD);
        assert_eq!(report.checks.len(), 4);
        assert!(report.passed());
        // And symmetrically when the fresh run lacks store metrics.
        let report = check(&fresh, &old, DEFAULT_THRESHOLD);
        assert_eq!(report.checks.len(), 4);
        assert!(report.passed());
    }

    #[test]
    fn store_speedup_floor_is_a_meaningful_threshold() {
        assert!(entry_with_store(1e8, 1e7).store_speedup().unwrap() >= STORE_SPEEDUP_FLOOR);
        assert!(entry_with_store(1e8, 2e7).store_speedup().unwrap() < STORE_SPEEDUP_FLOOR);
        assert_eq!(entry().store_speedup(), None);
    }

    #[test]
    fn a_regressed_policy_ratio_fails() {
        let committed = entry();
        let fresh = committed.with_synthetic_regression(1.5);
        let report = check(&committed, &fresh, DEFAULT_THRESHOLD);
        assert!(!report.passed(), "{report}");
        let breached: Vec<_> = report
            .checks
            .iter()
            .filter(|c| c.breached)
            .map(|c| c.name)
            .collect();
        assert_eq!(breached, vec!["cap60_dvfs / baseline"]);
    }

    #[test]
    fn growth_within_the_threshold_passes() {
        let committed = entry();
        let fresh = committed.with_synthetic_regression(1.10);
        assert!(check(&committed, &fresh, DEFAULT_THRESHOLD).passed());
    }
}

//! Calibrated synthetic Curie workload generator.
//!
//! The paper replays four intervals extracted from Curie's 2012 production
//! trace. The trace itself is not redistributable here, so this module
//! generates synthetic intervals matched to every quantitative property the
//! paper reports:
//!
//! * the cluster is **overloaded**: "there are always at least enough jobs in
//!   the submission queues to fill a second cluster of the same size" — the
//!   generator seeds an initial backlog worth more than one full machine and
//!   keeps the arrival stream above the machine's capacity;
//! * **69 %** of jobs need fewer than 512 cores and run for less than
//!   2 minutes;
//! * **0.1 %** of jobs are huge (more than a whole-machine hour of work);
//! * users over-estimate walltimes by ≈ **12 000×** (median) / 12 670× (mean);
//! * the three 5-hour flavours differ by their size mix (*smalljob*,
//!   *medianjob*, *bigjob*) and the fourth is a representative 24-hour day.
//!
//! Generation is fully deterministic for a given seed, platform and interval
//! kind, mirroring the deterministic replays of the paper.

use apc_rjms::cluster::Platform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::trace::{Trace, TraceJob};

/// The four replay intervals of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum IntervalKind {
    /// 5 hours, more small jobs than the median interval.
    SmallJob,
    /// 5 hours, jobs representative of the whole workload.
    #[default]
    MedianJob,
    /// 5 hours, more big jobs than the median interval.
    BigJob,
    /// 24 hours, representative of the whole workload.
    Day24h,
}

impl IntervalKind {
    /// All four intervals.
    pub const ALL: [IntervalKind; 4] = [
        IntervalKind::SmallJob,
        IntervalKind::MedianJob,
        IntervalKind::BigJob,
        IntervalKind::Day24h,
    ];

    /// Interval duration in seconds.
    pub fn duration(self) -> u64 {
        match self {
            IntervalKind::Day24h => 24 * 3600,
            _ => 5 * 3600,
        }
    }

    /// Name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            IntervalKind::SmallJob => "smalljob",
            IntervalKind::MedianJob => "medianjob",
            IntervalKind::BigJob => "bigjob",
            IntervalKind::Day24h => "24h",
        }
    }

    /// Probability of each size class `[small, medium, large, huge]`.
    fn class_mix(self) -> [f64; 4] {
        match self {
            IntervalKind::SmallJob => [0.80, 0.17, 0.029, 0.001],
            IntervalKind::MedianJob | IntervalKind::Day24h => [0.69, 0.25, 0.059, 0.001],
            IntervalKind::BigJob => [0.55, 0.25, 0.19, 0.01],
        }
    }
}

impl std::fmt::Display for IntervalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for IntervalKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "smalljob" | "small" => Ok(IntervalKind::SmallJob),
            "medianjob" | "median" => Ok(IntervalKind::MedianJob),
            "bigjob" | "big" => Ok(IntervalKind::BigJob),
            "24h" | "day24h" | "day" => Ok(IntervalKind::Day24h),
            other => Err(format!(
                "unknown interval: {other} (valid: smalljob, medianjob, bigjob, 24h)"
            )),
        }
    }
}

/// Size classes used internally by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SizeClass {
    Small,
    Medium,
    Large,
    Huge,
}

/// The synthetic Curie workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurieTraceGenerator {
    seed: u64,
    interval: IntervalKind,
    /// Arrival work rate relative to machine capacity (> 1 ⇒ overloaded).
    load_factor: f64,
    /// Initial backlog, in multiples of the machine's core count.
    backlog_factor: f64,
    /// Median walltime over-estimation factor.
    overestimation_median: f64,
    /// Number of distinct users.
    user_count: usize,
}

impl CurieTraceGenerator {
    /// Create a generator with the paper-calibrated defaults.
    pub fn new(seed: u64) -> Self {
        CurieTraceGenerator {
            seed,
            interval: IntervalKind::MedianJob,
            load_factor: 1.8,
            backlog_factor: 1.3,
            overestimation_median: 12_000.0,
            user_count: 200,
        }
    }

    /// Select the interval flavour (builder style).
    pub fn interval(mut self, interval: IntervalKind) -> Self {
        self.interval = interval;
        self
    }

    /// Override the arrival load factor (builder style).
    pub fn load_factor(mut self, load_factor: f64) -> Self {
        assert!(load_factor > 0.0);
        self.load_factor = load_factor;
        self
    }

    /// Override the initial backlog factor (builder style).
    pub fn backlog_factor(mut self, backlog_factor: f64) -> Self {
        assert!(backlog_factor >= 0.0);
        self.backlog_factor = backlog_factor;
        self
    }

    /// Override the median walltime over-estimation (builder style).
    pub fn overestimation_median(mut self, median: f64) -> Self {
        assert!(median >= 1.0);
        self.overestimation_median = median;
        self
    }

    /// The interval kind currently selected.
    pub fn interval_kind(&self) -> IntervalKind {
        self.interval
    }

    /// The [`TraceCacheKey`](crate::cache::TraceCacheKey) identifying the
    /// trace this generator would produce for `platform` — every parameter
    /// that influences generation is part of the key.
    pub fn cache_key(&self, platform: &Platform) -> crate::cache::TraceCacheKey {
        crate::cache::TraceCacheKey {
            nodes: platform.total_nodes(),
            cores_per_node: platform.cores_per_node,
            seed: self.seed,
            interval: self.interval,
            load_bits: self.load_factor.to_bits(),
            backlog_bits: self.backlog_factor.to_bits(),
            overestimation_bits: self.overestimation_median.to_bits(),
            user_count: self.user_count,
        }
    }

    /// Generate the trace for `platform`.
    pub fn generate_for(&self, platform: &Platform) -> Trace {
        let duration = self.interval.duration();
        let total_cores = platform.total_cores();
        let cores_per_node = platform.cores_per_node;
        let mix = self.interval.class_mix();
        // Mix the interval kind into the seed so the four flavours differ even
        // with the same base seed.
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (self.interval as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );

        let mut jobs: Vec<TraceJob> = Vec::new();
        let mut id = 0usize;

        // Phase 1: the backlog already queued when the interval starts
        // ("enough jobs in the submission queues to fill a second cluster").
        let mut backlog_cores = 0u64;
        let backlog_target = (self.backlog_factor * total_cores as f64) as u64;
        while backlog_cores < backlog_target {
            let job = self.sample_job(&mut rng, id, 0, mix, total_cores, cores_per_node);
            backlog_cores += u64::from(job.cores);
            jobs.push(job);
            id += 1;
        }

        // Phase 2: the arrival stream over the interval, carrying
        // `load_factor` times the machine capacity in core-seconds.
        let capacity = total_cores as f64 * duration as f64;
        let target_work = self.load_factor * capacity;
        let mut submitted_work = 0.0;
        while submitted_work < target_work {
            let submit = rng.gen_range(0..duration);
            let job = self.sample_job(&mut rng, id, submit, mix, total_cores, cores_per_node);
            submitted_work += job.core_seconds();
            jobs.push(job);
            id += 1;
        }

        Trace::new(jobs, duration)
    }

    fn sample_class(&self, rng: &mut StdRng, mix: [f64; 4]) -> SizeClass {
        let x: f64 = rng.gen();
        if x < mix[0] {
            SizeClass::Small
        } else if x < mix[0] + mix[1] {
            SizeClass::Medium
        } else if x < mix[0] + mix[1] + mix[2] {
            SizeClass::Large
        } else {
            SizeClass::Huge
        }
    }

    /// Log-uniform integer in `[lo, hi]`.
    fn log_uniform(rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo >= 1 && hi >= lo);
        let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
        let v = (rng.gen_range(llo..=lhi)).exp();
        (v.round() as u64).clamp(lo, hi)
    }

    /// Log-normal sample with the given median and sigma (Box–Muller).
    fn log_normal(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        median * (sigma * z).exp()
    }

    fn sample_job(
        &self,
        rng: &mut StdRng,
        id: usize,
        submit_time: u64,
        mix: [f64; 4],
        total_cores: u64,
        cores_per_node: u32,
    ) -> TraceJob {
        let class = self.sample_class(rng, mix);
        let max_nodes = (total_cores / cores_per_node as u64).max(1);
        let (nodes, run_time) = match class {
            SizeClass::Small => (
                Self::log_uniform(rng, 1, 31.min(max_nodes)),
                rng.gen_range(15..115),
            ),
            SizeClass::Medium => (
                Self::log_uniform(rng, 2, 256.min(max_nodes)),
                Self::log_uniform(rng, 120, 7_200),
            ),
            SizeClass::Large => (
                Self::log_uniform(rng, 32.min(max_nodes), 1_024.min(max_nodes)),
                Self::log_uniform(rng, 600, 18_000),
            ),
            SizeClass::Huge => (
                rng.gen_range((max_nodes / 2).max(1)..=max_nodes),
                rng.gen_range(3 * 3600..6 * 3600),
            ),
        };
        let cores = (nodes * cores_per_node as u64).min(total_cores) as u32;
        // Walltime over-estimation: log-normal around the configured median,
        // clamped to a 30-day scheduler limit.
        let factor = Self::log_normal(rng, self.overestimation_median, 0.33).max(1.0);
        let requested_time = ((run_time as f64) * factor)
            .min(30.0 * 86_400.0)
            .max(run_time as f64)
            .round() as u64;
        // Skewed user popularity (a few users submit most of the jobs).
        let u: f64 = rng.gen();
        let user = ((u * u) * self.user_count as f64) as usize;
        TraceJob {
            id,
            submit_time,
            run_time,
            cores,
            requested_time,
            user,
            app_class: rng.gen_range(0..4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    fn curie() -> Platform {
        Platform::curie()
    }

    #[test]
    fn interval_durations_and_names() {
        assert_eq!(IntervalKind::MedianJob.duration(), 18_000);
        assert_eq!(IntervalKind::Day24h.duration(), 86_400);
        assert_eq!(IntervalKind::SmallJob.name(), "smalljob");
        assert_eq!(IntervalKind::BigJob.to_string(), "bigjob");
        assert_eq!(IntervalKind::ALL.len(), 4);
    }

    #[test]
    fn calibration_matches_the_paper_medianjob() {
        let platform = curie();
        let trace = CurieTraceGenerator::new(42)
            .interval(IntervalKind::MedianJob)
            .generate_for(&platform);
        let stats = TraceStats::compute(&trace, platform.total_cores());
        // 69 % small & short (±8 points of sampling noise).
        assert!(
            (stats.small_short_fraction - 0.69).abs() < 0.08,
            "small/short fraction {}",
            stats.small_short_fraction
        );
        // Huge jobs are rare.
        assert!(stats.huge_fraction <= 0.02, "{}", stats.huge_fraction);
        // Walltime over-estimation around four orders of magnitude.
        assert!(
            stats.median_overestimation > 8_000.0 && stats.median_overestimation < 16_000.0,
            "median overestimation {}",
            stats.median_overestimation
        );
        assert!(stats.mean_overestimation > stats.median_overestimation * 0.8);
        // Overloaded: the submitted work exceeds the interval capacity.
        assert!(stats.load_ratio > 1.2, "load {}", stats.load_ratio);
        // The trace is non-trivial.
        assert!(stats.job_count > 500, "{} jobs", stats.job_count);
        assert!(stats.user_count > 20);
    }

    #[test]
    fn backlog_fills_a_second_cluster() {
        let platform = curie();
        let trace = CurieTraceGenerator::new(7).generate_for(&platform);
        let backlog_cores: u64 = trace
            .jobs
            .iter()
            .filter(|j| j.submit_time == 0)
            .map(|j| u64::from(j.cores))
            .sum();
        assert!(
            backlog_cores >= platform.total_cores(),
            "backlog of {backlog_cores} cores must cover the {} -core machine",
            platform.total_cores()
        );
    }

    #[test]
    fn day24h_contains_huge_jobs() {
        let platform = curie();
        let trace = CurieTraceGenerator::new(3)
            .interval(IntervalKind::Day24h)
            .generate_for(&platform);
        let machine_core_hour = platform.total_cores() as f64 * 3600.0;
        let huge = trace
            .jobs
            .iter()
            .filter(|j| j.core_seconds() > machine_core_hour)
            .count();
        assert!(huge >= 1, "a 24 h interval contains at least one huge job");
        assert_eq!(trace.duration, 86_400);
    }

    #[test]
    fn interval_flavours_differ_in_size_mix() {
        let platform = curie();
        let mean_cores = |kind: IntervalKind| {
            let t = CurieTraceGenerator::new(11)
                .interval(kind)
                .generate_for(&platform);
            t.jobs.iter().map(|j| j.cores as f64).sum::<f64>() / t.len() as f64
        };
        let small = mean_cores(IntervalKind::SmallJob);
        let median = mean_cores(IntervalKind::MedianJob);
        let big = mean_cores(IntervalKind::BigJob);
        assert!(small < median, "smalljob {small} < medianjob {median}");
        assert!(median < big, "medianjob {median} < bigjob {big}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let platform = curie();
        let a = CurieTraceGenerator::new(5).generate_for(&platform);
        let b = CurieTraceGenerator::new(5).generate_for(&platform);
        assert_eq!(a, b);
        let c = CurieTraceGenerator::new(6).generate_for(&platform);
        assert_ne!(a, c);
    }

    #[test]
    fn scaled_platforms_get_proportionally_sized_jobs() {
        let platform = Platform::curie_scaled(2); // 180 nodes, 2880 cores
        let trace = CurieTraceGenerator::new(9).generate_for(&platform);
        assert!(trace.jobs.iter().all(|j| j.cores <= 2880));
        assert!(trace.len() > 50);
        let stats = TraceStats::compute(&trace, platform.total_cores());
        assert!(stats.load_ratio > 1.0);
    }

    #[test]
    fn builder_overrides() {
        let platform = Platform::curie_scaled(1);
        let light = CurieTraceGenerator::new(1)
            .load_factor(0.5)
            .backlog_factor(0.0)
            .overestimation_median(10.0)
            .generate_for(&platform);
        let stats = TraceStats::compute(&light, platform.total_cores());
        assert!(stats.load_ratio < 1.0);
        assert!(stats.median_overestimation < 100.0);
        assert_eq!(
            CurieTraceGenerator::new(1)
                .interval(IntervalKind::BigJob)
                .interval_kind(),
            IntervalKind::BigJob
        );
        let no_backlog = light.jobs.iter().filter(|j| j.submit_time == 0).count();
        assert!(no_backlog <= 1);
    }
}

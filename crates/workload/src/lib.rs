//! # apc-workload — workload traces for the Curie replay
//!
//! The paper replays time intervals extracted from the 2012 production trace
//! of the Curie supercomputer (Parallel Workloads Archive, `l_cea_curie`).
//! That trace cannot be bundled here, so this crate provides:
//!
//! * [`trace`] — an in-memory job-trace representation carrying the
//!   SWF-compatible fields the replay needs, plus conversion to the RJMS
//!   [`JobSubmission`](apc_rjms::JobSubmission) type;
//! * [`swf`] — a reader/writer for the Standard Workload Format, so the real
//!   Curie trace (or any other SWF trace) can be dropped in when available;
//! * [`synth`] — a **calibrated synthetic Curie generator** reproducing every
//!   quantitative property the paper states about its extracted intervals:
//!   an overloaded submission queue, 69 % of jobs below 512 cores and
//!   2 minutes of runtime, 0.1 % of huge jobs exceeding a full-cluster hour,
//!   and walltime over-estimation around four orders of magnitude
//!   (mean ≈ 12 670×, median ≈ 12 000×);
//! * [`apps`] — application classes mapping jobs to the measured benchmark
//!   profiles (Linpack/IMB/STREAM/GROMACS) for degradation-sensitivity
//!   studies;
//! * [`stats`] — trace statistics used both by the calibration tests and by
//!   the experiment reports;
//! * [`cache`] — a concurrency-safe trace cache so multi-threaded experiment
//!   campaigns generate each `(platform, interval, seed)` workload only once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod cache;
pub mod stats;
pub mod swf;
pub mod synth;
pub mod trace;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::apps::AppClass;
    pub use crate::cache::{TraceCache, TraceCacheKey};
    pub use crate::stats::TraceStats;
    pub use crate::swf::{load_swf_file, parse_swf, write_swf};
    pub use crate::synth::{CurieTraceGenerator, IntervalKind};
    pub use crate::trace::{Trace, TraceJob};
}

pub use prelude::*;

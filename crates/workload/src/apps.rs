//! Application classes.
//!
//! The paper measures four representative workloads (Linpack, IMB, STREAM,
//! GROMACS) whose DVFS sensitivity differs widely (degmin 2.14 down to 1.16).
//! Trace jobs are tagged with an [`AppClass`] so the degradation-sensitivity
//! ablation can stretch each job according to its own class instead of the
//! single "common value" used in the paper's main evaluation.

use apc_power::{BenchmarkApp, DegradationModel};
use serde::{Deserialize, Serialize};

/// The application class of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppClass {
    /// Compute-bound (Linpack-like), highest DVFS sensitivity.
    ComputeBound,
    /// Network-bound (IMB-like).
    NetworkBound,
    /// Memory-bound (STREAM-like), low DVFS sensitivity.
    MemoryBound,
    /// Production molecular dynamics (GROMACS-like), lowest sensitivity.
    MolecularDynamics,
}

impl AppClass {
    /// All classes, indexable by the trace's `app_class` byte.
    pub const ALL: [AppClass; 4] = [
        AppClass::ComputeBound,
        AppClass::NetworkBound,
        AppClass::MemoryBound,
        AppClass::MolecularDynamics,
    ];

    /// Decode from the trace byte (wraps around for robustness).
    pub fn from_index(index: u8) -> Self {
        Self::ALL[(index as usize) % Self::ALL.len()]
    }

    /// Encode to the trace byte.
    pub fn index(self) -> u8 {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class is in ALL") as u8
    }

    /// The measured benchmark this class corresponds to.
    pub fn benchmark(self) -> BenchmarkApp {
        match self {
            AppClass::ComputeBound => BenchmarkApp::Linpack,
            AppClass::NetworkBound => BenchmarkApp::Imb,
            AppClass::MemoryBound => BenchmarkApp::Stream,
            AppClass::MolecularDynamics => BenchmarkApp::Gromacs,
        }
    }

    /// The degradation model of this class over the Curie ladder.
    pub fn degradation(self) -> DegradationModel {
        self.benchmark().degradation()
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AppClass::ComputeBound => "compute-bound",
            AppClass::NetworkBound => "network-bound",
            AppClass::MemoryBound => "memory-bound",
            AppClass::MolecularDynamics => "molecular-dynamics",
        }
    }
}

impl std::fmt::Display for AppClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for class in AppClass::ALL {
            assert_eq!(AppClass::from_index(class.index()), class);
        }
        // Wrap-around for out-of-range bytes.
        assert_eq!(AppClass::from_index(4), AppClass::ComputeBound);
        assert_eq!(AppClass::from_index(255), AppClass::MolecularDynamics);
    }

    #[test]
    fn benchmark_mapping_and_degradation() {
        assert_eq!(AppClass::ComputeBound.benchmark(), BenchmarkApp::Linpack);
        assert_eq!(AppClass::MemoryBound.benchmark(), BenchmarkApp::Stream);
        assert!(
            AppClass::ComputeBound.degradation().degmin()
                > AppClass::MolecularDynamics.degradation().degmin()
        );
        assert_eq!(AppClass::MolecularDynamics.degradation().degmin(), 1.16);
    }

    #[test]
    fn names() {
        assert_eq!(AppClass::MemoryBound.to_string(), "memory-bound");
        assert_eq!(AppClass::NetworkBound.name(), "network-bound");
    }
}

//! Shared trace cache for multi-threaded experiment campaigns.
//!
//! A campaign replays the same `(platform, interval, seed)` workload under
//! many scenarios (policies × cap fractions × ablation knobs). Regenerating
//! the synthetic trace for every cell would dominate the runtime of small
//! replays and waste memory on identical copies; the [`TraceCache`] generates
//! each distinct trace once and hands out [`Arc`] clones.
//!
//! The cache key captures everything trace generation depends on: the
//! platform shape (node count, cores per node) plus every generator
//! parameter (seed, interval, load, backlog, over-estimation, user count).
//! Two generators producing byte-identical traces therefore always share one
//! entry, and two that differ in any knob never collide.
//!
//! The cache is `Send + Sync` and safe to share across worker threads. On a
//! concurrent miss of the same key both workers may generate the trace, but
//! only the first insert wins, so every caller still observes the same
//! `Arc` and generation stays deterministic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use apc_rjms::cluster::Platform;

use crate::synth::CurieTraceGenerator;
use crate::trace::Trace;

/// Everything a generated trace depends on, as a hashable key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceCacheKey {
    /// Number of nodes of the target platform.
    pub nodes: usize,
    /// Cores per node of the target platform.
    pub cores_per_node: u32,
    /// Generator seed.
    pub seed: u64,
    /// Interval flavour.
    pub interval: crate::synth::IntervalKind,
    /// `f64::to_bits` of the arrival load factor.
    pub load_bits: u64,
    /// `f64::to_bits` of the initial backlog factor.
    pub backlog_bits: u64,
    /// `f64::to_bits` of the median walltime over-estimation.
    pub overestimation_bits: u64,
    /// Number of distinct users the generator draws from.
    pub user_count: usize,
}

/// A concurrency-safe, deterministic memoiser of generated traces.
#[derive(Debug, Default)]
pub struct TraceCache {
    entries: Mutex<HashMap<TraceCacheKey, Arc<Trace>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// The trace `generator` would produce for `platform`, generated at most
    /// once per distinct key for the lifetime of the cache.
    pub fn get_or_generate(
        &self,
        generator: &CurieTraceGenerator,
        platform: &Platform,
    ) -> Arc<Trace> {
        let key = generator.cache_key(platform);
        if let Some(found) = self.entries.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        // Generate outside the lock so other keys make progress; a racing
        // generation of the same key is discarded by `or_insert`.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(generator.generate_for(platform));
        Arc::clone(self.entries.lock().unwrap().entry(key).or_insert(fresh))
    }

    /// Number of distinct traces currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to generate a trace so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drop every cached trace (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::IntervalKind;

    #[test]
    fn identical_generators_share_one_entry() {
        let cache = TraceCache::new();
        let platform = Platform::curie_scaled(1);
        let gen = CurieTraceGenerator::new(7)
            .load_factor(0.5)
            .backlog_factor(0.2);
        let a = cache.get_or_generate(&gen, &platform);
        let b = cache.get_or_generate(&gen, &platform);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn any_differing_knob_gets_its_own_entry() {
        let cache = TraceCache::new();
        let platform = Platform::curie_scaled(1);
        let base = CurieTraceGenerator::new(7)
            .load_factor(0.5)
            .backlog_factor(0.2);
        cache.get_or_generate(&base, &platform);
        cache.get_or_generate(&base.clone().interval(IntervalKind::BigJob), &platform);
        cache.get_or_generate(&base.clone().load_factor(0.6), &platform);
        cache.get_or_generate(
            &CurieTraceGenerator::new(8)
                .load_factor(0.5)
                .backlog_factor(0.2),
            &platform,
        );
        cache.get_or_generate(&base, &Platform::curie_scaled(2));
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.misses(), 5);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn cached_trace_equals_direct_generation() {
        let cache = TraceCache::new();
        let platform = Platform::curie_scaled(1);
        let gen = CurieTraceGenerator::new(3)
            .load_factor(0.4)
            .backlog_factor(0.1);
        let cached = cache.get_or_generate(&gen, &platform);
        assert_eq!(*cached, gen.generate_for(&platform));
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(TraceCache::new());
        let platform = Platform::curie_scaled(1);
        let gen = CurieTraceGenerator::new(11)
            .load_factor(0.3)
            .backlog_factor(0.1);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let platform = platform.clone();
            let gen = gen.clone();
            handles.push(std::thread::spawn(move || {
                cache.get_or_generate(&gen, &platform).len()
            }));
        }
        let lengths: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(lengths.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = TraceCache::new();
        let platform = Platform::curie_scaled(1);
        let gen = CurieTraceGenerator::new(1)
            .load_factor(0.3)
            .backlog_factor(0.0);
        cache.get_or_generate(&gen, &platform);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}

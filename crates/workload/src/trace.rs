//! In-memory job traces.
//!
//! A [`TraceJob`] carries the subset of Standard Workload Format fields the
//! replay needs. A [`Trace`] is an ordered collection of trace jobs plus the
//! interval length it describes.

use apc_rjms::job::JobSubmission;
use serde::{Deserialize, Serialize};

/// One job of a workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJob {
    /// Job number (SWF field 1).
    pub id: usize,
    /// Submission time, seconds from the start of the interval (SWF field 2).
    pub submit_time: u64,
    /// Actual runtime at maximum frequency, seconds (SWF field 4).
    pub run_time: u64,
    /// Number of allocated processors/cores (SWF field 5 / 8).
    pub cores: u32,
    /// Requested time — the user walltime estimate, seconds (SWF field 9).
    pub requested_time: u64,
    /// User identifier (SWF field 12).
    pub user: usize,
    /// Application class (not part of SWF; used for degradation sensitivity).
    pub app_class: u8,
}

impl TraceJob {
    /// Over-estimation factor of the walltime relative to the actual runtime.
    pub fn overestimation(&self) -> f64 {
        if self.run_time == 0 {
            self.requested_time as f64
        } else {
            self.requested_time as f64 / self.run_time as f64
        }
    }

    /// Core-seconds of work the job represents.
    pub fn core_seconds(&self) -> f64 {
        self.cores as f64 * self.run_time as f64
    }

    /// Convert to an RJMS submission.
    pub fn to_submission(&self) -> JobSubmission {
        JobSubmission::new(
            self.user,
            self.submit_time,
            self.cores,
            self.requested_time.max(1),
            self.run_time.max(1),
        )
        .with_app_class(self.app_class)
    }
}

/// A workload trace covering one replay interval.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Jobs ordered by submission time.
    pub jobs: Vec<TraceJob>,
    /// Interval length in seconds.
    pub duration: u64,
}

impl Trace {
    /// Build a trace, sorting the jobs by submission time and re-numbering
    /// them densely.
    pub fn new(mut jobs: Vec<TraceJob>, duration: u64) -> Self {
        jobs.sort_by_key(|j| (j.submit_time, j.id));
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = i;
        }
        Trace { jobs, duration }
    }

    /// Number of jobs in the trace.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total work carried by the trace, in core-seconds.
    pub fn total_core_seconds(&self) -> f64 {
        self.jobs.iter().map(TraceJob::core_seconds).sum()
    }

    /// Convert every job to an RJMS submission, in submission order.
    pub fn to_submissions(&self) -> Vec<JobSubmission> {
        self.jobs.iter().map(TraceJob::to_submission).collect()
    }

    /// The sub-trace of jobs submitted within `[start, end)`, with times
    /// shifted so the window starts at zero (the paper's interval
    /// extraction).
    pub fn extract_window(&self, start: u64, end: u64) -> Trace {
        let jobs = self
            .jobs
            .iter()
            .filter(|j| j.submit_time >= start && j.submit_time < end)
            .map(|j| TraceJob {
                submit_time: j.submit_time - start,
                ..j.clone()
            })
            .collect();
        Trace::new(jobs, end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, submit: u64, run: u64, cores: u32, req: u64) -> TraceJob {
        TraceJob {
            id,
            submit_time: submit,
            run_time: run,
            cores,
            requested_time: req,
            user: id % 3,
            app_class: 0,
        }
    }

    #[test]
    fn trace_sorts_and_renumbers() {
        let t = Trace::new(
            vec![job(7, 300, 60, 32, 600), job(2, 100, 60, 32, 600)],
            3600,
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.jobs[0].submit_time, 100);
        assert_eq!(t.jobs[0].id, 0);
        assert_eq!(t.jobs[1].id, 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn overestimation_and_core_seconds() {
        let j = job(0, 0, 120, 512, 1_440_000);
        assert!((j.overestimation() - 12_000.0).abs() < 1e-9);
        assert_eq!(j.core_seconds(), 120.0 * 512.0);
        let zero = job(1, 0, 0, 16, 600);
        assert_eq!(zero.overestimation(), 600.0);
    }

    #[test]
    fn conversion_to_submission() {
        let j = job(3, 50, 90, 64, 3600);
        let s = j.to_submission();
        assert_eq!(s.submit_time, 50);
        assert_eq!(s.cores, 64);
        assert_eq!(s.walltime, 3600);
        assert_eq!(s.actual_runtime, 90);
        assert_eq!(s.app_class, Some(0));
        // Zero runtimes are clamped to one second so the simulator always has
        // a positive duration.
        let z = job(4, 0, 0, 16, 0);
        let s = z.to_submission();
        assert_eq!(s.actual_runtime, 1);
        assert_eq!(s.walltime, 1);
    }

    #[test]
    fn window_extraction_shifts_times() {
        let t = Trace::new(
            vec![
                job(0, 100, 60, 32, 600),
                job(1, 5000, 60, 32, 600),
                job(2, 9000, 60, 32, 600),
            ],
            10_000,
        );
        let w = t.extract_window(4000, 9000);
        assert_eq!(w.len(), 1);
        assert_eq!(w.jobs[0].submit_time, 1000);
        assert_eq!(w.duration, 5000);
        assert_eq!(t.total_core_seconds(), 3.0 * 60.0 * 32.0);
    }
}

//! Trace statistics.
//!
//! Used for two purposes: calibration tests asserting that the synthetic
//! Curie generator matches the quantitative statements of the paper, and the
//! experiment reports describing the replayed intervals.

use serde::{Deserialize, Serialize};

use crate::trace::Trace;

/// Summary statistics of a workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of jobs.
    pub job_count: usize,
    /// Interval duration in seconds.
    pub duration: u64,
    /// Fraction of jobs requesting fewer than 512 cores *and* running less
    /// than 2 minutes (the paper reports 69 %).
    pub small_short_fraction: f64,
    /// Fraction of jobs whose core-hours exceed one hour of the whole
    /// machine (the paper reports 0.1 %).
    pub huge_fraction: f64,
    /// Mean walltime over-estimation factor (paper: ≈ 12 670).
    pub mean_overestimation: f64,
    /// Median walltime over-estimation factor (paper: ≈ 12 000).
    pub median_overestimation: f64,
    /// Total work in the trace, in core-seconds.
    pub total_core_seconds: f64,
    /// Work-to-capacity ratio of the interval for a machine with
    /// `machine_cores` cores (values above 1 mean the interval is
    /// overloaded).
    pub load_ratio: f64,
    /// Largest single-job core request.
    pub max_cores: u32,
    /// Number of distinct users.
    pub user_count: usize,
}

impl TraceStats {
    /// Compute the statistics of `trace` relative to a machine with
    /// `machine_cores` cores.
    pub fn compute(trace: &Trace, machine_cores: u64) -> Self {
        let n = trace.len();
        if n == 0 {
            return TraceStats {
                job_count: 0,
                duration: trace.duration,
                small_short_fraction: 0.0,
                huge_fraction: 0.0,
                mean_overestimation: 0.0,
                median_overestimation: 0.0,
                total_core_seconds: 0.0,
                load_ratio: 0.0,
                max_cores: 0,
                user_count: 0,
            };
        }
        let small_short = trace
            .jobs
            .iter()
            .filter(|j| j.cores < 512 && j.run_time < 120)
            .count();
        let machine_core_hour = machine_cores as f64 * 3600.0;
        let huge = trace
            .jobs
            .iter()
            .filter(|j| j.core_seconds() > machine_core_hour)
            .count();
        let mut ratios: Vec<f64> = trace.jobs.iter().map(|j| j.overestimation()).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let mean = ratios.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            ratios[n / 2]
        } else {
            (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0
        };
        let total = trace.total_core_seconds();
        let capacity = machine_cores as f64 * trace.duration.max(1) as f64;
        let mut users: Vec<usize> = trace.jobs.iter().map(|j| j.user).collect();
        users.sort_unstable();
        users.dedup();
        TraceStats {
            job_count: n,
            duration: trace.duration,
            small_short_fraction: small_short as f64 / n as f64,
            huge_fraction: huge as f64 / n as f64,
            mean_overestimation: mean,
            median_overestimation: median,
            total_core_seconds: total,
            load_ratio: total / capacity,
            max_cores: trace.jobs.iter().map(|j| j.cores).max().unwrap_or(0),
            user_count: users.len(),
        }
    }

    /// A one-line human readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs over {} s | {:.0}% small&short | {:.2}% huge | walltime overestimation mean {:.0}x median {:.0}x | load {:.2}x capacity",
            self.job_count,
            self.duration,
            self.small_short_fraction * 100.0,
            self.huge_fraction * 100.0,
            self.mean_overestimation,
            self.median_overestimation,
            self.load_ratio,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceJob;

    fn job(id: usize, cores: u32, run: u64, req: u64) -> TraceJob {
        TraceJob {
            id,
            submit_time: id as u64 * 10,
            run_time: run,
            cores,
            requested_time: req,
            user: id % 5,
            app_class: 0,
        }
    }

    #[test]
    fn computes_fractions_and_ratios() {
        let trace = Trace::new(
            vec![
                job(0, 16, 60, 600),          // small & short
                job(1, 32, 90, 900),          // small & short
                job(2, 1024, 7200, 86_400),   // medium
                job(3, 90_000, 7200, 86_400), // huge: 180M core-seconds
            ],
            3600,
        );
        let stats = TraceStats::compute(&trace, 80_640);
        assert_eq!(stats.job_count, 4);
        assert!((stats.small_short_fraction - 0.5).abs() < 1e-12);
        assert!((stats.huge_fraction - 0.25).abs() < 1e-12);
        assert_eq!(stats.max_cores, 90_000);
        assert_eq!(stats.user_count, 4);
        assert!(stats.mean_overestimation > 1.0);
        assert!(stats.load_ratio > 0.0);
        assert!(!stats.summary().is_empty());
    }

    #[test]
    fn median_of_even_and_odd_counts() {
        let trace = Trace::new(
            vec![
                job(0, 16, 10, 100),
                job(1, 16, 10, 200),
                job(2, 16, 10, 300),
            ],
            100,
        );
        let stats = TraceStats::compute(&trace, 1000);
        assert!((stats.median_overestimation - 20.0).abs() < 1e-12);
        let trace = Trace::new(vec![job(0, 16, 10, 100), job(1, 16, 10, 300)], 100);
        let stats = TraceStats::compute(&trace, 1000);
        assert!((stats.median_overestimation - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let stats = TraceStats::compute(&Trace::default(), 1000);
        assert_eq!(stats.job_count, 0);
        assert_eq!(stats.load_ratio, 0.0);
    }
}

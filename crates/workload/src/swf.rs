//! Standard Workload Format (SWF) reader and writer.
//!
//! The Parallel Workloads Archive distributes the Curie trace the paper uses
//! (`CEA-Curie-2011-2.1-cln.swf`) in SWF: one line per job, 18
//! whitespace-separated integer fields, `;` comment lines. When that file is
//! available it can be parsed here and replayed instead of the synthetic
//! trace; the synthetic generator remains the default so the repository is
//! self-contained.
//!
//! Field mapping used (1-based SWF indices):
//!
//! | SWF field | meaning | [`TraceJob`] field |
//! |---|---|---|
//! | 1 | job number | `id` |
//! | 2 | submit time | `submit_time` |
//! | 4 | run time | `run_time` |
//! | 5 | allocated processors | `cores` |
//! | 8 | requested processors (fallback when field 5 is −1) | `cores` |
//! | 9 | requested time | `requested_time` |
//! | 12 | user id | `user` |

use crate::trace::{Trace, TraceJob};

/// Errors produced while parsing an SWF document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwfError {
    /// A data line had fewer than the 18 mandatory fields.
    TooFewFields {
        /// 1-based line number.
        line: usize,
        /// Number of fields found.
        found: usize,
    },
    /// A field could not be parsed as a number.
    BadField {
        /// 1-based line number.
        line: usize,
        /// 1-based field index.
        field: usize,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::TooFewFields { line, found } => {
                write!(f, "line {line}: expected 18 fields, found {found}")
            }
            SwfError::BadField { line, field } => {
                write!(f, "line {line}: field {field} is not a number")
            }
        }
    }
}

impl std::error::Error for SwfError {}

/// Parse an SWF document into a [`Trace`].
///
/// Jobs with non-positive runtime or zero processors are skipped (the
/// convention for cancelled jobs in the archive). The trace duration is the
/// latest submission time observed.
pub fn parse_swf(input: &str) -> Result<Trace, SwfError> {
    let mut jobs = Vec::new();
    let mut max_submit = 0u64;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 18 {
            return Err(SwfError::TooFewFields {
                line: line_no,
                found: fields.len(),
            });
        }
        let num = |i: usize| -> Result<i64, SwfError> {
            fields[i - 1]
                .parse::<f64>()
                .map(|v| v as i64)
                .map_err(|_| SwfError::BadField {
                    line: line_no,
                    field: i,
                })
        };
        let id = num(1)? as usize;
        let submit = num(2)?.max(0) as u64;
        let run_time = num(4)?;
        let mut cores = num(5)?;
        if cores <= 0 {
            cores = num(8)?;
        }
        let requested_time = num(9)?;
        let user = num(12)?.max(0) as usize;
        if run_time <= 0 || cores <= 0 {
            continue;
        }
        max_submit = max_submit.max(submit);
        jobs.push(TraceJob {
            id,
            submit_time: submit,
            run_time: run_time as u64,
            cores: cores as u32,
            requested_time: if requested_time > 0 {
                requested_time as u64
            } else {
                run_time as u64
            },
            user,
            app_class: (id % 4) as u8,
        });
    }
    Ok(Trace::new(jobs, max_submit))
}

/// Read and parse an SWF file, rejecting traces with no replayable jobs.
///
/// This is the shared front door for `--swf PATH` flags: it folds the I/O
/// error, the parse error and the empty-trace case into one human-readable
/// message naming the offending file.
pub fn load_swf_file(path: &str) -> Result<Trace, String> {
    let raw =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read SWF file {path}: {e}"))?;
    let trace = parse_swf(&raw).map_err(|e| format!("cannot parse SWF file {path}: {e}"))?;
    if trace.is_empty() {
        return Err(format!("SWF file {path} contains no replayable jobs"));
    }
    Ok(trace)
}

/// Serialise a trace back to SWF (unknown fields are written as `-1`).
pub fn write_swf(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("; SWF written by apc-workload\n");
    out.push_str(&format!("; MaxJobs: {}\n", trace.len()));
    for j in &trace.jobs {
        // 18 fields:  1 id, 2 submit, 3 wait, 4 run, 5 procs, 6 cpu, 7 mem,
        // 8 req procs, 9 req time, 10 req mem, 11 status, 12 user, 13 group,
        // 14 exe, 15 queue, 16 partition, 17 prev job, 18 think time.
        out.push_str(&format!(
            "{} {} -1 {} {} -1 -1 {} {} -1 1 {} -1 -1 -1 -1 -1 -1\n",
            j.id + 1,
            j.submit_time,
            j.run_time,
            j.cores,
            j.cores,
            j.requested_time,
            j.user,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Sample SWF extract
; UnixStartTime: 0
1 0 10 120 512 -1 -1 512 1440000 -1 1 7 1 1 1 1 -1 -1
2 30 5 60 16 -1 -1 16 86400 -1 1 3 1 1 1 1 -1 -1
3 60 0 -1 16 -1 -1 16 3600 -1 0 3 1 1 1 1 -1 -1
4 90 2 45 -1 -1 -1 32 7200 -1 1 9 1 1 1 1 -1 -1
";

    #[test]
    fn parses_jobs_and_skips_cancelled() {
        let t = parse_swf(SAMPLE).unwrap();
        // Job 3 has run_time -1 and is skipped.
        assert_eq!(t.len(), 3);
        let first = &t.jobs[0];
        assert_eq!(first.submit_time, 0);
        assert_eq!(first.run_time, 120);
        assert_eq!(first.cores, 512);
        assert_eq!(first.requested_time, 1_440_000);
        assert_eq!(first.user, 7);
        // Job 4 falls back to requested processors (field 8).
        let last = &t.jobs[2];
        assert_eq!(last.cores, 32);
    }

    #[test]
    fn comment_and_blank_lines_are_ignored() {
        let t = parse_swf("; just a comment\n\n;another\n").unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        let err = parse_swf("1 2 3\n").unwrap_err();
        assert_eq!(err, SwfError::TooFewFields { line: 1, found: 3 });
        let bad = "1 0 10 x 512 -1 -1 512 1000 -1 1 7 1 1 1 1 -1 -1\n";
        let err = parse_swf(bad).unwrap_err();
        assert_eq!(err, SwfError::BadField { line: 1, field: 4 });
        assert!(format!("{err}").contains("field 4"));
    }

    #[test]
    fn round_trip_through_writer() {
        let original = parse_swf(SAMPLE).unwrap();
        let written = write_swf(&original);
        let reparsed = parse_swf(&written).unwrap();
        assert_eq!(reparsed.len(), original.len());
        for (a, b) in original.jobs.iter().zip(reparsed.jobs.iter()) {
            assert_eq!(a.submit_time, b.submit_time);
            assert_eq!(a.run_time, b.run_time);
            assert_eq!(a.cores, b.cores);
            assert_eq!(a.requested_time, b.requested_time);
            assert_eq!(a.user, b.user);
        }
    }

    #[test]
    fn fractional_fields_are_accepted() {
        // Some archive traces carry fractional seconds; they are truncated.
        let line = "1 10.5 -1 99.9 16 -1 -1 16 3600 -1 1 2 1 1 1 1 -1 -1\n";
        let t = parse_swf(line).unwrap();
        assert_eq!(t.jobs[0].submit_time, 10);
        assert_eq!(t.jobs[0].run_time, 99);
    }
}

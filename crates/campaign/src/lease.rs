//! The append-only batch-lease log coordinating multi-process campaigns.
//!
//! `campaign --distributed` runs N independent OS processes over one result
//! store. They coordinate through `leases.log` beside the manifest: the
//! cell grid is cut into fixed-aligned batches of `lease_cells` contiguous
//! indices (batch `b` covers `[b * lease_cells, (b+1) * lease_cells)`), and
//! every batch moves through a tiny lease protocol recorded as append-only
//! text lines:
//!
//! ```text
//! apc-campaign-leases 1 <spec-hash> <total-cells> <lease-cells> <ttl-ms>
//! claim <batch> <worker> <t-ms> <deadline-ms>
//! renew <batch> <worker> <t-ms> <deadline-ms>
//! done <batch> <worker> <t-ms>
//! ```
//!
//! The log is the *only* shared mutable state, and its semantics are a
//! deterministic replay of the records in file order (every process parses
//! the same bytes, so every process agrees on ownership):
//!
//! * `claim` takes effect iff the batch is free, or its current lease had
//!   **already expired at the claim's own timestamp** (that claim is a
//!   *steal*). A claim against a live lease is void — in particular, a
//!   stale claim can never shadow a newer `renew`, because the renew moved
//!   the deadline past the claim's timestamp *earlier in the file*.
//! * `renew` (the heartbeat) extends the deadline iff it comes from the
//!   batch's current holder; anyone else's renew is void.
//! * `done` retires the batch permanently iff it comes from the current
//!   holder. Done is terminal: later claims are void.
//!
//! Writers never coordinate: each appends one complete line per record with
//! a single `O_APPEND` write (atomic on local Linux filesystems), then
//! re-reads the log to learn whether its claim actually took effect —
//! losing the race is detected, not prevented, and answered with jittered
//! exponential [`Backoff`]. A line torn by a crash (or merged with another
//! writer's record) fails to parse and is skipped, exactly like a torn
//! manifest `done` line: truncation at any byte yields a clean prefix of
//! intact records (pinned by `tests/lease_log.rs`).
//!
//! Liveness: a worker that is `kill -9`'d or hangs stops renewing, its
//! lease's deadline passes, and any other worker steals the batch. The
//! cells the dead worker already recorded are in the manifest `done` set,
//! so the stealer re-executes only the unrecorded remainder — and because
//! every cell's row is a pure function of the cell, even a duplicated
//! execution (an alive-but-slow holder racing its stealer) appends
//! byte-identical rows, which last-wins duplicate resolution collapses.

use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Name of the lease log inside a store directory.
pub const LEASES_NAME: &str = "leases.log";

/// Lease-log format magic + version, the first line.
const LEASES_MAGIC: &str = "apc-campaign-leases";

/// Lease-log format version.
const LEASES_VERSION: u32 = 1;

/// Default batch size: thousands of ~9 ms cells per lease, so coordination
/// (one claim + a few renews per batch) is amortised over tens of seconds
/// of execution.
pub const DEFAULT_LEASE_CELLS: usize = 4096;

/// Default lease TTL. Workers heartbeat at half the TTL, so a lease is
/// stolen between one and one-and-a-half TTLs after its holder dies.
pub const DEFAULT_LEASE_TTL_MS: u64 = 30_000;

/// Milliseconds since the UNIX epoch — the lease clock. All workers run on
/// one host (or a shared-clock cluster), so wall-clock comparisons between
/// records are meaningful.
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The lease state of one batch, after replaying the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchLease {
    /// Never successfully claimed (or every claim so far was void).
    Free,
    /// Currently leased.
    Held {
        /// The holder's worker id.
        worker: usize,
        /// When the current holder acquired it (claim timestamp, ms).
        since_ms: u64,
        /// Lease expiry (ms); a claim at `t >= deadline_ms` steals it.
        deadline_ms: u64,
        /// Timestamp of the holder's last claim/renew (heartbeat age).
        beat_ms: u64,
        /// How many times this batch's lease has been stolen so far.
        steals: u32,
    },
    /// Executed to completion and retired.
    Done {
        /// The worker that completed it.
        worker: usize,
        /// How many times the lease was stolen before completion.
        steals: u32,
    },
}

/// Per-worker activity counters derived from the log replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerLeaseStats {
    /// Claims that took effect (fresh batches plus steals).
    pub claims: usize,
    /// Of those, claims over an expired lease (steals).
    pub steals: usize,
    /// Accepted heartbeat renews.
    pub renews: usize,
    /// Claims that were void (lost race against a live lease).
    pub voided: usize,
    /// Batches this worker marked done.
    pub batches_done: usize,
    /// Timestamp of the worker's last accepted record (ms).
    pub last_seen_ms: u64,
}

/// The deterministic replay of a lease log's records: every reader of the
/// same byte prefix computes the same state. This is the pure core — no
/// I/O — that `tests/lease_log.rs` property-tests directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseState {
    batches: Vec<BatchLease>,
    workers: BTreeMap<usize, WorkerLeaseStats>,
}

impl LeaseState {
    /// A fresh state of `batch_count` free batches.
    pub fn new(batch_count: usize) -> Self {
        LeaseState {
            batches: vec![BatchLease::Free; batch_count],
            workers: BTreeMap::new(),
        }
    }

    /// Replay complete record lines in order (unparseable lines are
    /// skipped, like torn manifest lines).
    pub fn replay<'a>(batch_count: usize, lines: impl IntoIterator<Item = &'a str>) -> Self {
        let mut state = LeaseState::new(batch_count);
        for line in lines {
            state.apply_line(line);
        }
        state
    }

    /// Apply one record line; returns `false` when the line is not an
    /// intact record (torn/merged/unknown — skipped) or the record was
    /// void under the replay rules.
    pub fn apply_line(&mut self, line: &str) -> bool {
        let mut words = line.split_whitespace();
        let kind = words.next();
        let mut num = |_: &str| words.next().and_then(|w| w.parse::<u64>().ok());
        match kind {
            Some("claim") => {
                let (Some(batch), Some(worker), Some(t), Some(deadline)) =
                    (num("batch"), num("worker"), num("t"), num("deadline"))
                else {
                    return false;
                };
                self.apply_claim(batch as usize, worker as usize, t, deadline)
            }
            Some("renew") => {
                let (Some(batch), Some(worker), Some(t), Some(deadline)) =
                    (num("batch"), num("worker"), num("t"), num("deadline"))
                else {
                    return false;
                };
                self.apply_renew(batch as usize, worker as usize, t, deadline)
            }
            Some("done") => {
                let (Some(batch), Some(worker), Some(t)) = (num("batch"), num("worker"), num("t"))
                else {
                    return false;
                };
                self.apply_done(batch as usize, worker as usize, t)
            }
            _ => false,
        }
    }

    fn stats(&mut self, worker: usize) -> &mut WorkerLeaseStats {
        self.workers.entry(worker).or_default()
    }

    fn apply_claim(&mut self, batch: usize, worker: usize, t: u64, deadline: u64) -> bool {
        let Some(lease) = self.batches.get_mut(batch) else {
            return false;
        };
        let (accepted, stolen) = match *lease {
            BatchLease::Free => (true, false),
            // The holder re-claiming its own batch is a heartbeat.
            BatchLease::Held { worker: w, .. } if w == worker => (true, false),
            // Expired at the claim's own timestamp: the claim is a steal.
            BatchLease::Held { deadline_ms, .. } => (deadline_ms <= t, deadline_ms <= t),
            BatchLease::Done { .. } => (false, false),
        };
        if !accepted {
            let s = self.stats(worker);
            s.voided += 1;
            return false;
        }
        let steals = match *lease {
            BatchLease::Held { steals, .. } => steals + u32::from(stolen),
            _ => 0,
        };
        *lease = BatchLease::Held {
            worker,
            since_ms: t,
            deadline_ms: deadline,
            beat_ms: t,
            steals,
        };
        let s = self.stats(worker);
        s.claims += 1;
        s.steals += usize::from(stolen);
        s.last_seen_ms = s.last_seen_ms.max(t);
        true
    }

    fn apply_renew(&mut self, batch: usize, worker: usize, t: u64, deadline: u64) -> bool {
        let Some(lease) = self.batches.get_mut(batch) else {
            return false;
        };
        match lease {
            BatchLease::Held {
                worker: w,
                deadline_ms,
                beat_ms,
                ..
            } if *w == worker => {
                *deadline_ms = deadline;
                *beat_ms = t;
                let s = self.stats(worker);
                s.renews += 1;
                s.last_seen_ms = s.last_seen_ms.max(t);
                true
            }
            _ => false,
        }
    }

    fn apply_done(&mut self, batch: usize, worker: usize, t: u64) -> bool {
        let Some(lease) = self.batches.get_mut(batch) else {
            return false;
        };
        match *lease {
            BatchLease::Held {
                worker: w, steals, ..
            } if w == worker => {
                *lease = BatchLease::Done { worker, steals };
                let s = self.stats(worker);
                s.batches_done += 1;
                s.last_seen_ms = s.last_seen_ms.max(t);
                true
            }
            _ => false,
        }
    }

    /// The per-batch lease states, indexed by batch.
    pub fn batches(&self) -> &[BatchLease] {
        &self.batches
    }

    /// The current holder of `batch`, if it is held.
    pub fn owner(&self, batch: usize) -> Option<usize> {
        match self.batches.get(batch) {
            Some(BatchLease::Held { worker, .. }) => Some(*worker),
            _ => None,
        }
    }

    /// Every batch retired?
    pub fn all_done(&self) -> bool {
        self.batches
            .iter()
            .all(|b| matches!(b, BatchLease::Done { .. }))
    }

    /// Count of retired batches.
    pub fn done_count(&self) -> usize {
        self.batches
            .iter()
            .filter(|b| matches!(b, BatchLease::Done { .. }))
            .count()
    }

    /// Total accepted steals across all batches (live and retired).
    pub fn total_steals(&self) -> usize {
        self.workers.values().map(|w| w.steals).sum()
    }

    /// Per-worker counters, keyed by worker id.
    pub fn worker_stats(&self) -> &BTreeMap<usize, WorkerLeaseStats> {
        &self.workers
    }

    /// What `worker` should do next, judged at time `now_ms`.
    ///
    /// Preference order: finish a batch it already holds; claim a free
    /// batch; steal an expired one; otherwise wait for the earliest live
    /// deadline. Free/expired candidates are picked at a worker-dependent
    /// offset so concurrent workers spread over different batches instead
    /// of all racing for the lowest index (losers would back off and retry
    /// — correct, just slower).
    pub fn next_action(&self, worker: usize, now_ms: u64) -> LeaseAction {
        let mut free = Vec::new();
        let mut expired = Vec::new();
        let mut earliest_live: Option<u64> = None;
        for (b, lease) in self.batches.iter().enumerate() {
            match *lease {
                BatchLease::Free => free.push(b),
                BatchLease::Held {
                    worker: w,
                    deadline_ms,
                    ..
                } => {
                    if w == worker {
                        // Our own live lease (a retried loop iteration):
                        // go finish it, no new claim record needed.
                        return LeaseAction::Claim {
                            batch: b,
                            steal: false,
                        };
                    }
                    if deadline_ms <= now_ms {
                        expired.push(b);
                    } else {
                        earliest_live =
                            Some(earliest_live.map_or(deadline_ms, |e| e.min(deadline_ms)));
                    }
                }
                BatchLease::Done { .. } => {}
            }
        }
        if !free.is_empty() {
            return LeaseAction::Claim {
                batch: free[worker % free.len()],
                steal: false,
            };
        }
        if !expired.is_empty() {
            return LeaseAction::Claim {
                batch: expired[worker % expired.len()],
                steal: true,
            };
        }
        match earliest_live {
            Some(deadline) => LeaseAction::Wait {
                ms: deadline.saturating_sub(now_ms).max(50),
            },
            None => LeaseAction::Finished,
        }
    }

    /// The human lease-state summary `campaign report` and the distributed
    /// coordinator print: batch totals, stolen ranges, and per-worker
    /// heartbeat ages judged at `now_ms`.
    pub fn render(&self, lease_cells: usize, total_cells: usize, now_ms: u64) -> String {
        let mut active = 0usize;
        let mut expired = 0usize;
        let mut stolen_ranges: Vec<String> = Vec::new();
        for (b, lease) in self.batches.iter().enumerate() {
            let range_label = |b: usize| {
                format!(
                    "[{}, {})",
                    b * lease_cells,
                    ((b + 1) * lease_cells).min(total_cells)
                )
            };
            match *lease {
                BatchLease::Held {
                    deadline_ms,
                    steals,
                    ..
                } => {
                    if deadline_ms <= now_ms {
                        expired += 1;
                    } else {
                        active += 1;
                    }
                    if steals > 0 {
                        stolen_ranges.push(range_label(b));
                    }
                }
                BatchLease::Done { steals, .. } if steals > 0 => {
                    stolen_ranges.push(range_label(b));
                }
                _ => {}
            }
        }
        let mut out = format!(
            "leases: {} batch(es) of {} cell(s): {} done, {active} active, \
             {expired} expired, {} steal(s)\n",
            self.batches.len(),
            lease_cells,
            self.done_count(),
            self.total_steals(),
        );
        if !stolen_ranges.is_empty() {
            out.push_str(&format!(
                "  stolen cell range(s): {}\n",
                stolen_ranges.join(", ")
            ));
        }
        for (worker, s) in &self.workers {
            let beat = if s.last_seen_ms == 0 {
                "never".to_string()
            } else {
                format!(
                    "{:.1} s ago",
                    now_ms.saturating_sub(s.last_seen_ms) as f64 / 1e3
                )
            };
            out.push_str(&format!(
                "  w{worker}: {} claim(s) ({} stolen, {} voided), {} renew(s), \
                 {} batch(es) done, heartbeat {beat}\n",
                s.claims, s.steals, s.voided, s.renews, s.batches_done,
            ));
        }
        out
    }
}

/// What a worker's lease loop should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseAction {
    /// Append a claim for this batch (a steal when `steal`), verify, and
    /// execute it on success.
    Claim {
        /// The batch to claim.
        batch: usize,
        /// Whether the claim rides over an expired lease.
        steal: bool,
    },
    /// Every batch is leased and live: sleep about this long and re-check.
    Wait {
        /// Suggested sleep, ms (until the earliest live deadline).
        ms: u64,
    },
    /// Every batch is done: the campaign is complete.
    Finished,
}

/// The parsed lease-log header: the geometry every worker must agree on.
/// `lease_cells` and `ttl_ms` live here (written once by the coordinator),
/// not in per-worker flags, so workers cannot disagree about batch
/// boundaries or expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseHeader {
    /// The campaign's spec fingerprint; every worker validates its own
    /// grid against it before claiming anything.
    pub spec_hash: u64,
    /// Total cells of the expanded grid.
    pub total_cells: usize,
    /// Cells per lease batch.
    pub lease_cells: usize,
    /// Lease time-to-live, ms.
    pub ttl_ms: u64,
}

impl LeaseHeader {
    /// Number of lease batches (the last one may be short).
    pub fn batch_count(&self) -> usize {
        self.total_cells.div_ceil(self.lease_cells)
    }

    /// The cell-index range of `batch`.
    pub fn batch_range(&self, batch: usize) -> std::ops::Range<usize> {
        let start = batch * self.lease_cells;
        start..((start + self.lease_cells).min(self.total_cells))
    }
}

/// A handle on `leases.log`: an `O_APPEND` writer plus an incremental
/// reader that replays new records into a [`LeaseState`].
#[derive(Debug)]
pub struct LeaseLog {
    path: PathBuf,
    file: fs::File,
    header: LeaseHeader,
    state: LeaseState,
    /// Bytes of the log consumed so far (complete lines only).
    read_pos: u64,
    /// Partial last line carried between refreshes (a record another
    /// writer had not finished flushing).
    tail: Vec<u8>,
    sync: bool,
}

impl LeaseLog {
    /// Create a fresh lease log in `dir` (truncating any previous one —
    /// stale leases from an earlier run must not outlive it; completed
    /// cells are protected by the manifest, not the lease log).
    pub fn create(
        dir: &Path,
        spec_hash: u64,
        total_cells: usize,
        lease_cells: usize,
        ttl_ms: u64,
    ) -> Result<(), String> {
        if lease_cells == 0 {
            return Err("--lease-cells must be >= 1".into());
        }
        if ttl_ms == 0 {
            return Err("--lease-ttl must be > 0".into());
        }
        let path = dir.join(LEASES_NAME);
        let mut file = fs::File::create(&path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        writeln!(
            file,
            "{LEASES_MAGIC} {LEASES_VERSION} {spec_hash:016x} {total_cells} {lease_cells} {ttl_ms}"
        )
        .and_then(|()| file.sync_data())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(())
    }

    /// Open an existing lease log, parse its header, and replay the
    /// records present so far.
    pub fn open(dir: &Path) -> Result<Self, String> {
        let path = dir.join(LEASES_NAME);
        let mut file = fs::OpenOptions::new()
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        // Parse the header line first; records stream in via refresh().
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let header_line = text.lines().next().unwrap_or("");
        let mut words = header_line.split_whitespace();
        if words.next() != Some(LEASES_MAGIC) {
            return Err(format!(
                "{} is not a campaign lease log (bad magic line {header_line:?})",
                path.display()
            ));
        }
        let version: u32 = words
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("lease log header {header_line:?} has no version"))?;
        if version != LEASES_VERSION {
            return Err(format!(
                "lease log version {version} is not the supported {LEASES_VERSION}"
            ));
        }
        let spec_hash = words
            .next()
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| format!("lease log header {header_line:?} has no spec hash"))?;
        let mut num = || words.next().and_then(|v| v.parse::<u64>().ok());
        let (Some(total_cells), Some(lease_cells), Some(ttl_ms)) = (num(), num(), num()) else {
            return Err(format!(
                "lease log header {header_line:?} is missing geometry fields"
            ));
        };
        if lease_cells == 0 || ttl_ms == 0 {
            return Err(format!(
                "lease log header {header_line:?} has zero geometry"
            ));
        }
        let header = LeaseHeader {
            spec_hash,
            total_cells: total_cells as usize,
            lease_cells: lease_cells as usize,
            ttl_ms,
        };
        let header_len = text
            .find('\n')
            .map(|i| i + 1)
            .ok_or_else(|| format!("{} has a torn header", path.display()))?;
        file.seek(SeekFrom::Start(header_len as u64))
            .map_err(|e| format!("cannot seek {}: {e}", path.display()))?;
        let mut log = LeaseLog {
            path,
            file,
            state: LeaseState::new(header.batch_count()),
            header,
            read_pos: header_len as u64,
            tail: Vec::new(),
            sync: true,
        };
        log.refresh()?;
        Ok(log)
    }

    /// Disable (or re-enable) fsync on record appends — the `--no-sync`
    /// escape hatch for tests and benches.
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// The header geometry.
    pub fn header(&self) -> &LeaseHeader {
        &self.header
    }

    /// Check the lease log belongs to this campaign before claiming into it.
    pub fn validate_spec(&self, spec_hash: u64, total_cells: usize) -> Result<(), String> {
        if self.header.spec_hash != spec_hash {
            return Err(format!(
                "lease log at {} was created for a different campaign spec \
                 (recorded fingerprint {:016x}, this worker's grid {spec_hash:016x}) — \
                 every worker must run the exact grid flags the coordinator used",
                self.path.display(),
                self.header.spec_hash,
            ));
        }
        if self.header.total_cells != total_cells {
            return Err(format!(
                "lease log at {} records {} cells but this worker's grid expands to \
                 {total_cells}",
                self.path.display(),
                self.header.total_cells,
            ));
        }
        Ok(())
    }

    /// The replayed lease state as of the last [`refresh`](Self::refresh).
    pub fn state(&self) -> &LeaseState {
        &self.state
    }

    /// Read records appended since the last refresh (by this or any other
    /// process) and fold them into the state. Only complete lines are
    /// consumed; a partial final line is carried to the next refresh.
    pub fn refresh(&mut self) -> Result<(), String> {
        let mut buf = Vec::new();
        self.file
            .seek(SeekFrom::Start(self.read_pos))
            .and_then(|_| self.file.read_to_end(&mut buf))
            .map_err(|e| format!("cannot read {}: {e}", self.path.display()))?;
        self.read_pos += buf.len() as u64;
        self.tail.extend_from_slice(&buf);
        // Consume up to the last newline; keep the rest as the new tail.
        let Some(last_nl) = self.tail.iter().rposition(|&b| b == b'\n') else {
            return Ok(());
        };
        let complete: Vec<u8> = self.tail.drain(..=last_nl).collect();
        for line in String::from_utf8_lossy(&complete).lines() {
            self.state.apply_line(line);
        }
        Ok(())
    }

    /// Append one record line with a single `O_APPEND` write. The caller
    /// must [`refresh`](Self::refresh) afterwards and re-check ownership —
    /// appending is not winning.
    fn append_record(&mut self, line: &str) -> Result<(), String> {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        self.file
            .write_all(&bytes)
            .and_then(|()| {
                if self.sync {
                    self.file.sync_data()
                } else {
                    Ok(())
                }
            })
            .map_err(|e| format!("cannot append to {}: {e}", self.path.display()))?;
        Ok(())
    }

    /// Append a claim for `batch` by `worker`, valid until `now + ttl`.
    pub fn append_claim(&mut self, batch: usize, worker: usize, now_ms: u64) -> Result<(), String> {
        let deadline = now_ms + self.header.ttl_ms;
        self.append_record(&format!("claim {batch} {worker} {now_ms} {deadline}"))
    }

    /// Append a heartbeat renew for `batch` by `worker`.
    pub fn append_renew(&mut self, batch: usize, worker: usize, now_ms: u64) -> Result<(), String> {
        let deadline = now_ms + self.header.ttl_ms;
        self.append_record(&format!("renew {batch} {worker} {now_ms} {deadline}"))
    }

    /// Append a completion record for `batch` by `worker`.
    pub fn append_done(&mut self, batch: usize, worker: usize, now_ms: u64) -> Result<(), String> {
        self.append_record(&format!("done {batch} {worker} {now_ms}"))
    }
}

/// Jittered exponential backoff for lost claim races: delays grow
/// `base * 2^attempt` and each carries a deterministic seeded jitter in
/// `[0, delay)`, so two workers that lose the same race do not retry in
/// lockstep. Purely a function of the seed and the attempt counter.
#[derive(Debug)]
pub struct Backoff {
    state: u64,
    attempt: u32,
    base_ms: u64,
    cap_ms: u64,
}

impl Backoff {
    /// A backoff seeded by `seed` (use the worker id), starting at
    /// `base_ms` and capped at `cap_ms` per delay.
    pub fn new(seed: u64, base_ms: u64, cap_ms: u64) -> Self {
        Backoff {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
            attempt: 0,
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
        }
    }

    /// The next delay: exponential with full jitter, capped.
    pub fn next_delay(&mut self) -> Duration {
        // SplitMix64 step for the jitter draw.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let ceiling = self
            .base_ms
            .saturating_mul(1 << self.attempt.min(10))
            .min(self.cap_ms);
        self.attempt = self.attempt.saturating_add(1);
        Duration::from_millis(ceiling / 2 + z % (ceiling / 2 + 1))
    }

    /// Reset after a won race.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("apc-lease-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn header_round_trips_and_validates() {
        let dir = temp_dir("header");
        LeaseLog::create(&dir, 0xabcd, 1000, 64, 5_000).unwrap();
        let log = LeaseLog::open(&dir).unwrap();
        assert_eq!(
            *log.header(),
            LeaseHeader {
                spec_hash: 0xabcd,
                total_cells: 1000,
                lease_cells: 64,
                ttl_ms: 5_000,
            }
        );
        assert_eq!(log.header().batch_count(), 16);
        assert_eq!(log.header().batch_range(15), 960..1000);
        log.validate_spec(0xabcd, 1000).unwrap();
        assert!(log.validate_spec(0xdead, 1000).is_err());
        assert!(log.validate_spec(0xabcd, 999).is_err());
        assert!(LeaseLog::create(&dir, 1, 10, 0, 5_000).is_err());
        assert!(LeaseLog::create(&dir, 1, 10, 4, 0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn claim_renew_done_lifecycle() {
        let mut s = LeaseState::new(2);
        assert!(s.apply_line("claim 0 1 100 600"));
        assert_eq!(s.owner(0), Some(1));
        // A rival claim against the live lease is void…
        assert!(!s.apply_line("claim 0 2 200 700"));
        assert_eq!(s.owner(0), Some(1));
        // …a renew extends it…
        assert!(s.apply_line("renew 0 1 300 900"));
        // …so a steal dated before the *renewed* deadline is still void
        // (a stale claim never shadows a newer renew)…
        assert!(!s.apply_line("claim 0 2 650 1200"));
        assert_eq!(s.owner(0), Some(1));
        // …but once the renewed deadline passes, the steal takes.
        assert!(s.apply_line("claim 0 2 900 1500"));
        assert_eq!(s.owner(0), Some(2));
        assert_eq!(s.total_steals(), 1);
        // The old holder's done is void; the thief's retires the batch.
        assert!(!s.apply_line("done 0 1 950"));
        assert!(s.apply_line("done 0 2 1000"));
        assert!(matches!(
            s.batches()[0],
            BatchLease::Done {
                worker: 2,
                steals: 1
            }
        ));
        // Claims after done are void forever.
        assert!(!s.apply_line("claim 0 1 99999 100999"));
        let w1 = s.worker_stats()[&1];
        let w2 = s.worker_stats()[&2];
        assert_eq!((w1.claims, w1.renews, w1.voided), (1, 1, 1));
        assert_eq!((w2.claims, w2.steals, w2.batches_done), (1, 1, 1));
        assert_eq!(w2.voided, 2);
    }

    #[test]
    fn torn_and_garbage_lines_are_skipped() {
        let mut s = LeaseState::new(4);
        for line in [
            "claim 0 1 100",          // too few fields
            "claim 0 1 100 600extra", // merged with another write
            "claim x 1 100 600",      // unparseable batch
            "release 0 1 100",        // unknown keyword
            "",                       // blank
            "claim 9 1 100 600",      // batch out of range
        ] {
            assert!(!s.apply_line(line), "{line:?} must be skipped");
        }
        assert_eq!(
            s,
            LeaseState::new(4),
            "void lines leave no trace on batches"
        );
    }

    #[test]
    fn own_reclaim_is_a_heartbeat_not_a_steal() {
        let mut s = LeaseState::new(1);
        assert!(s.apply_line("claim 0 3 100 600"));
        assert!(s.apply_line("claim 0 3 200 800"));
        match s.batches()[0] {
            BatchLease::Held {
                worker,
                deadline_ms,
                steals,
                ..
            } => {
                assert_eq!(worker, 3);
                assert_eq!(deadline_ms, 800);
                assert_eq!(steals, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.worker_stats()[&3].steals, 0);
    }

    #[test]
    fn next_action_prefers_free_then_expired_then_waits() {
        let mut s = LeaseState::new(3);
        // Batch 0 held live until 1000, batch 1 expired at 400, batch 2 free.
        s.apply_line("claim 0 0 100 1000");
        s.apply_line("claim 1 1 100 400");
        assert_eq!(
            s.next_action(2, 500),
            LeaseAction::Claim {
                batch: 2,
                steal: false
            }
        );
        // No free batches left: the expired one is stolen.
        s.apply_line("claim 2 2 500 1500");
        assert_eq!(
            s.next_action(3, 600),
            LeaseAction::Claim {
                batch: 1,
                steal: true
            }
        );
        // Everything live: wait for the earliest deadline.
        s.apply_line("claim 1 3 600 2000");
        assert_eq!(s.next_action(4, 700), LeaseAction::Wait { ms: 300 });
        // A worker holding a live lease is sent back to it.
        assert_eq!(
            s.next_action(0, 700),
            LeaseAction::Claim {
                batch: 0,
                steal: false
            }
        );
        // All done ⇒ finished.
        for line in ["done 0 0 800", "done 1 3 800", "done 2 2 800"] {
            s.apply_line(line);
        }
        assert!(s.all_done());
        assert_eq!(s.next_action(0, 900), LeaseAction::Finished);
    }

    #[test]
    fn multi_handle_appends_interleave_through_refresh() {
        let dir = temp_dir("interleave");
        LeaseLog::create(&dir, 0x1, 100, 10, 1_000).unwrap();
        let mut a = LeaseLog::open(&dir).unwrap();
        let mut b = LeaseLog::open(&dir).unwrap();
        a.set_sync(false);
        b.set_sync(false);
        a.append_claim(0, 0, 100).unwrap();
        b.append_claim(1, 1, 100).unwrap();
        // Each handle sees both appends after refresh.
        a.refresh().unwrap();
        b.refresh().unwrap();
        assert_eq!(a.state().owner(0), Some(0));
        assert_eq!(a.state().owner(1), Some(1));
        assert_eq!(b.state(), a.state());
        // A lost race is visible to the loser: b claims batch 0 while the
        // lease is live, then observes a's ownership intact.
        b.append_claim(0, 1, 200).unwrap();
        b.refresh().unwrap();
        assert_eq!(b.state().owner(0), Some(0));
        // Done + renew flow through too.
        a.append_renew(0, 0, 300).unwrap();
        a.append_done(0, 0, 400).unwrap();
        b.refresh().unwrap();
        assert_eq!(b.state().done_count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn render_summarises_state() {
        let mut s = LeaseState::new(3);
        s.apply_line("claim 0 0 100 1000");
        s.apply_line("claim 1 1 100 400");
        s.apply_line("claim 1 2 500 1500"); // steal of the expired batch 1
        s.apply_line("done 1 2 600");
        let text = s.render(10, 25, 800);
        assert!(text.contains("3 batch(es) of 10 cell(s)"), "{text}");
        assert!(
            text.contains("1 done, 1 active, 0 expired, 1 steal(s)"),
            "{text}"
        );
        assert!(text.contains("stolen cell range(s): [10, 20)"), "{text}");
        assert!(
            text.contains("w2: 1 claim(s) (1 stolen, 0 voided)"),
            "{text}"
        );
    }

    #[test]
    fn backoff_grows_jittered_and_capped() {
        let mut b = Backoff::new(7, 20, 400);
        let delays: Vec<u64> = (0..8).map(|_| b.next_delay().as_millis() as u64).collect();
        // Each delay sits in [ceiling/2, ceiling] for its attempt's ceiling.
        for (i, &d) in delays.iter().enumerate() {
            let ceiling = (20u64 << i.min(10)).min(400);
            assert!(
                d >= ceiling / 2 && d <= ceiling,
                "attempt {i}: {d} vs {ceiling}"
            );
        }
        // Deterministic per seed; different seeds jitter differently.
        let mut b2 = Backoff::new(7, 20, 400);
        assert_eq!(delays[0], b2.next_delay().as_millis() as u64);
        b.reset();
        assert!(b.next_delay().as_millis() as u64 <= 20);
    }
}

//! Streaming queries over a partitioned result store.
//!
//! [`ResultStore::open`](crate::store::ResultStore::open) loads every
//! trusted row into memory — right for resuming, wrong for *inspecting* a
//! huge campaign. The query path instead reads the manifest's completion
//! log once and then streams the partition files **one at a time**, keeping
//! only the current partition resident: a million-cell store is filtered
//! with the memory footprint of one partition plus the matches the caller
//! retains.
//!
//! On schema v3 partitions the scan never materialises non-matching rows at
//! all: each block's [`RowFilter`] is resolved once against the block's
//! dictionaries and zone maps ([`crate::colstore`]) — a partition every one
//! of whose blocks provably holds no matching row is **skipped** without
//! touching its column data, and within scanned blocks rows are matched by
//! integer compares on the raw columns, decoding only the matches into a
//! reused scratch row. v2 (CSV) partitions stream through the same
//! [`StoreScanner`] with the original line parser. The callback steers the
//! scan: returning [`ScanFlow::Stop`] ends it early (`--limit`), and the
//! returned [`ScanStats`] report matches plus partitions scanned/skipped.
//!
//! Duplicate records for a cell (a torn record followed by its rerun)
//! resolve to the last intact occurrence, exactly as the full loader does;
//! this stays correct under streaming because a cell's records always live
//! in the one partition its index maps to — and stays correct under
//! zone-map skipping because skipping never changes *which* occurrence is
//! last, only whether a partition provably contains no match at all.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::agg::CellRow;
use crate::colstore::PartitionBuf;
use crate::store::{
    is_v3_part, load_part_rows, sorted_part_paths, ParsedManifest, MANIFEST_NAME, PARTS_DIR,
};

/// A conjunctive row filter: every populated field must match.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowFilter {
    /// Keep rows of this workload label ("medianjob", "24h", "swf", …).
    pub workload: Option<String>,
    /// Keep rows of this scenario label ("60%/SHUT", "100%/None", …).
    pub scenario: Option<String>,
    /// Keep rows of this cap-window label ("7200+3600",
    /// "0+1800|16200+1800", "-" for the baseline).
    pub window: Option<String>,
    /// Keep rows of this policy name ("shut", "dvfs", "mix", "none").
    pub policy: Option<String>,
    /// Keep rows of this generator seed.
    pub seed: Option<u64>,
    /// Keep rows of this arrival load factor (matched by bit pattern, so
    /// the value parsed from a `--load` flag matches exactly what the spec
    /// recorded).
    pub load_factor: Option<f64>,
    /// Keep rows of this rack scale.
    pub racks: Option<usize>,
    /// Keep rows of this cap-schedule label (`"-"` keeps the rows without
    /// a time-varying schedule, including every row of a pre-schedule
    /// store).
    pub schedule: Option<String>,
    /// Keep rows of this fault-plan label (`"-"` keeps the fault-free
    /// rows, including every row of a pre-fault store).
    pub faults: Option<String>,
}

impl RowFilter {
    /// Does `row` pass every populated criterion?
    pub fn matches(&self, row: &CellRow) -> bool {
        self.workload.as_ref().is_none_or(|w| *w == row.workload)
            && self.scenario.as_ref().is_none_or(|s| *s == row.scenario)
            && self.window.as_ref().is_none_or(|w| *w == row.window)
            && self.policy.as_ref().is_none_or(|p| *p == row.policy)
            && self.seed.is_none_or(|s| row.seed == Some(s))
            && self
                .load_factor
                .is_none_or(|l| l.to_bits() == row.load_factor.to_bits())
            && self.racks.is_none_or(|r| r == row.racks)
            && self.schedule.as_ref().is_none_or(|s| *s == row.schedule)
            && self.faults.as_ref().is_none_or(|f| *f == row.faults)
    }
}

/// The column names [`project`] accepts, in canonical `cells.csv` order.
pub const QUERY_COLUMNS: [&str; 24] = [
    "index",
    "racks",
    "workload",
    "seed",
    "load_factor",
    "scenario",
    "window",
    "policy",
    "cap_percent",
    "grouping",
    "decision_rule",
    "schedule",
    "faults",
    "launched_jobs",
    "completed_jobs",
    "killed_jobs",
    "pending_jobs",
    "work_core_seconds",
    "energy_joules",
    "energy_normalized",
    "launched_jobs_normalized",
    "work_normalized",
    "mean_wait_seconds",
    "peak_power_watts",
];

// Bit positions of every column in [`QUERY_COLUMNS`] order, used by the
// v3 decoder to test a [`Projection`] without string compares on the
// per-row path. `projection_bits_match_query_columns` pins the mapping.
pub(crate) const PC_INDEX: usize = 0;
pub(crate) const PC_RACKS: usize = 1;
pub(crate) const PC_WORKLOAD: usize = 2;
pub(crate) const PC_SEED: usize = 3;
pub(crate) const PC_LOAD_FACTOR: usize = 4;
pub(crate) const PC_SCENARIO: usize = 5;
pub(crate) const PC_WINDOW: usize = 6;
pub(crate) const PC_POLICY: usize = 7;
pub(crate) const PC_CAP_PERCENT: usize = 8;
pub(crate) const PC_GROUPING: usize = 9;
pub(crate) const PC_DECISION_RULE: usize = 10;
pub(crate) const PC_SCHEDULE: usize = 11;
pub(crate) const PC_FAULTS: usize = 12;
pub(crate) const PC_LAUNCHED_JOBS: usize = 13;
pub(crate) const PC_COMPLETED_JOBS: usize = 14;
pub(crate) const PC_KILLED_JOBS: usize = 15;
pub(crate) const PC_PENDING_JOBS: usize = 16;
pub(crate) const PC_WORK_CORE_SECONDS: usize = 17;
pub(crate) const PC_ENERGY_JOULES: usize = 18;
pub(crate) const PC_ENERGY_NORMALIZED: usize = 19;
pub(crate) const PC_LAUNCHED_JOBS_NORMALIZED: usize = 20;
pub(crate) const PC_WORK_NORMALIZED: usize = 21;
pub(crate) const PC_MEAN_WAIT_SECONDS: usize = 22;
pub(crate) const PC_PEAK_POWER_WATTS: usize = 23;

/// The set of [`QUERY_COLUMNS`] a scan needs decoded — the column
/// projection the v3 codec pushes down into each block (satellite of the
/// scenario-engine refactor): unprojected columns are never read from the
/// column arrays, so `query --columns index,energy_joules` skips every
/// dictionary-string copy per row.
///
/// Projection is an *optimisation hint*: rows delivered from a v2 (CSV)
/// partition are always fully decoded, so callers must treat unprojected
/// fields as unspecified, never as guaranteed-blank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Projection(u32);

impl Projection {
    /// Every column.
    pub const ALL: Projection = Projection((1 << QUERY_COLUMNS.len()) - 1);

    /// The projection selecting exactly `columns`. Unknown names are an
    /// error listing the valid columns.
    pub fn of(columns: &[String]) -> Result<Projection, String> {
        let mut bits = 0u32;
        for column in columns {
            let i = QUERY_COLUMNS
                .iter()
                .position(|c| c == column)
                .ok_or_else(|| {
                    format!(
                        "unknown column {column:?} (valid: {})",
                        QUERY_COLUMNS.join(", ")
                    )
                })?;
            bits |= 1 << i;
        }
        Ok(Projection(bits))
    }

    /// Is column bit `i` (a `PC_*` constant) selected?
    pub(crate) fn bit(self, i: usize) -> bool {
        self.0 >> i & 1 != 0
    }

    /// Does the projection select every column?
    pub fn is_all(self) -> bool {
        self == Self::ALL
    }

    /// Number of selected columns.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is the projection empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Render one named column of a row as a CSV-safe field (full precision,
/// NaN/None as empty, labels quoted through the crate's `csv_field`
/// escaping like every other CSV writer). Unknown names are an error
/// listing the valid columns.
pub fn project(row: &CellRow, column: &str) -> Result<String, String> {
    use crate::sink::csv_field;
    fn float(v: f64) -> String {
        if v.is_nan() {
            String::new()
        } else {
            v.to_string()
        }
    }
    Ok(match column {
        "index" => row.index.to_string(),
        "racks" => row.racks.to_string(),
        "workload" => csv_field(&row.workload),
        "seed" => row.seed.map_or_else(String::new, |s| s.to_string()),
        "load_factor" => float(row.load_factor),
        "scenario" => csv_field(&row.scenario),
        "window" => csv_field(&row.window),
        "policy" => csv_field(&row.policy),
        "cap_percent" => float(row.cap_percent),
        "grouping" => csv_field(&row.grouping),
        "decision_rule" => csv_field(&row.decision_rule),
        "schedule" => csv_field(&row.schedule),
        "faults" => csv_field(&row.faults),
        "launched_jobs" => row.launched_jobs.to_string(),
        "completed_jobs" => row.completed_jobs.to_string(),
        "killed_jobs" => row.killed_jobs.to_string(),
        "pending_jobs" => row.pending_jobs.to_string(),
        "work_core_seconds" => float(row.work_core_seconds),
        "energy_joules" => float(row.energy_joules),
        "energy_normalized" => float(row.energy_normalized),
        "launched_jobs_normalized" => float(row.launched_jobs_normalized),
        "work_normalized" => float(row.work_normalized),
        "mean_wait_seconds" => float(row.mean_wait_seconds),
        "peak_power_watts" => float(row.peak_power_watts),
        other => {
            return Err(format!(
                "unknown column {other:?} (valid: {})",
                QUERY_COLUMNS.join(", ")
            ))
        }
    })
}

/// Every numeric column [`numeric`] can extract (superset of
/// [`DEFAULT_AGG_COLUMNS`]).
pub const NUMERIC_COLUMNS: [&str; 16] = [
    "index",
    "racks",
    "seed",
    "load_factor",
    "cap_percent",
    "launched_jobs",
    "completed_jobs",
    "killed_jobs",
    "pending_jobs",
    "work_core_seconds",
    "energy_joules",
    "energy_normalized",
    "launched_jobs_normalized",
    "work_normalized",
    "mean_wait_seconds",
    "peak_power_watts",
];

/// The numeric metric columns [`GroupAggregator`] folds by default when no
/// explicit column list is given.
pub const DEFAULT_AGG_COLUMNS: [&str; 11] = [
    "launched_jobs",
    "completed_jobs",
    "killed_jobs",
    "pending_jobs",
    "work_core_seconds",
    "energy_joules",
    "energy_normalized",
    "launched_jobs_normalized",
    "work_normalized",
    "mean_wait_seconds",
    "peak_power_watts",
];

/// Extract one named column of a row as a number, or `None` when the value
/// is absent (a fixed-trace seed/load, a NaN metric). Non-numeric columns
/// are an error listing the foldable ones.
pub fn numeric(row: &CellRow, column: &str) -> Result<Option<f64>, String> {
    fn float(v: f64) -> Option<f64> {
        (!v.is_nan()).then_some(v)
    }
    Ok(match column {
        "index" => Some(row.index as f64),
        "racks" => Some(row.racks as f64),
        "seed" => row.seed.map(|s| s as f64),
        "load_factor" => float(row.load_factor),
        "cap_percent" => float(row.cap_percent),
        "launched_jobs" => Some(row.launched_jobs as f64),
        "completed_jobs" => Some(row.completed_jobs as f64),
        "killed_jobs" => Some(row.killed_jobs as f64),
        "pending_jobs" => Some(row.pending_jobs as f64),
        "work_core_seconds" => float(row.work_core_seconds),
        "energy_joules" => float(row.energy_joules),
        "energy_normalized" => float(row.energy_normalized),
        "launched_jobs_normalized" => float(row.launched_jobs_normalized),
        "work_normalized" => float(row.work_normalized),
        "mean_wait_seconds" => float(row.mean_wait_seconds),
        "peak_power_watts" => float(row.peak_power_watts),
        other => {
            return Err(format!(
                "column {other:?} is not numeric and cannot be aggregated \
                 (numeric: {})",
                NUMERIC_COLUMNS.join(", ")
            ))
        }
    })
}

/// The aggregation functions `campaign query --agg` supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggKind {
    /// Arithmetic mean of the non-missing values.
    #[default]
    Mean,
    /// Minimum of the non-missing values.
    Min,
    /// Maximum of the non-missing values.
    Max,
}

impl AggKind {
    /// The CSV column prefix ("mean_energy_joules", …).
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Mean => "mean",
            AggKind::Min => "min",
            AggKind::Max => "max",
        }
    }
}

impl std::str::FromStr for AggKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "mean" => Ok(AggKind::Mean),
            "min" => Ok(AggKind::Min),
            "max" => Ok(AggKind::Max),
            other => Err(format!("--agg must be mean, min or max, got {other}")),
        }
    }
}

/// One column's running reduction (count of non-missing values, their sum
/// and extrema — enough for every [`AggKind`]).
#[derive(Debug, Clone, Copy)]
struct ColAcc {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for ColAcc {
    fn default() -> Self {
        ColAcc {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl ColAcc {
    fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn render(&self, kind: AggKind) -> String {
        if self.count == 0 {
            return String::new(); // all values missing, like an empty field
        }
        let v = match kind {
            AggKind::Mean => self.sum / self.count as f64,
            AggKind::Min => self.min,
            AggKind::Max => self.max,
        };
        format!("{v}")
    }
}

/// Separator between the rendered key fields inside a group's map key.
/// Projected fields never contain it (labels are CSV-escaped printable
/// text), so keys round-trip to fields by splitting.
const KEY_SEP: char = '\u{1f}';

/// Field-wise group-key ordering: fields that parse as numbers compare
/// numerically (so `racks` 2 sorts before 10), ties and non-numeric
/// fields compare as strings, and numbers sort before labels/empties.
/// Total, and `Equal` only for identical key strings — safe as a sort key
/// over distinct map keys.
fn compare_keys(a: &str, b: &str) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let (mut fa, mut fb) = (a.split(KEY_SEP), b.split(KEY_SEP));
    loop {
        let ord = match (fa.next(), fb.next()) {
            (None, None) => return Ordering::Equal,
            (None, Some(_)) => return Ordering::Less,
            (Some(_), None) => return Ordering::Greater,
            (Some(x), Some(y)) => match (x.parse::<f64>(), y.parse::<f64>()) {
                (Ok(nx), Ok(ny)) => nx
                    .partial_cmp(&ny)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| x.cmp(y)),
                (Ok(_), Err(_)) => Ordering::Less,
                (Err(_), Ok(_)) => Ordering::Greater,
                (Err(_), Err(_)) => x.cmp(y),
            },
        };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
}

/// Streaming `GROUP BY` over a store scan: rows fold into per-group
/// accumulators as the partitions stream past, so summarising a
/// million-cell store holds one accumulator per *group* — never the row
/// set (the ROADMAP's "query aggregation pushdown"). The group key is
/// probed through a reusable scratch buffer, so the steady state (a row
/// hitting an existing group) allocates only the projected field strings.
#[derive(Debug)]
pub struct GroupAggregator {
    group_by: Vec<String>,
    columns: Vec<String>,
    kind: AggKind,
    groups: std::collections::HashMap<String, (u64, Vec<ColAcc>)>,
    key_scratch: String,
}

impl GroupAggregator {
    /// Build an aggregator grouping on `group_by` columns and folding the
    /// numeric `columns` (both validated up front).
    pub fn new(group_by: &[String], columns: &[String], kind: AggKind) -> Result<Self, String> {
        if group_by.is_empty() {
            return Err("--group-by needs at least one column".into());
        }
        if let Some(unknown) = group_by
            .iter()
            .find(|c| !QUERY_COLUMNS.contains(&c.as_str()))
        {
            return Err(format!(
                "unknown column {unknown:?} (valid: {})",
                QUERY_COLUMNS.join(", ")
            ));
        }
        let columns: Vec<String> = columns
            .iter()
            .filter(|c| !group_by.contains(c))
            .cloned()
            .collect();
        // Validate every aggregated column is numeric up front so errors
        // surface before any output.
        if let Some(bad) = columns
            .iter()
            .find(|c| !NUMERIC_COLUMNS.contains(&c.as_str()))
        {
            return Err(format!(
                "column {bad:?} is not numeric and cannot be aggregated \
                 (numeric: {})",
                NUMERIC_COLUMNS.join(", ")
            ));
        }
        Ok(GroupAggregator {
            group_by: group_by.to_vec(),
            columns,
            kind,
            groups: std::collections::HashMap::new(),
            key_scratch: String::new(),
        })
    }

    /// Fold one row into its group.
    pub fn fold(&mut self, row: &CellRow) -> Result<(), String> {
        self.key_scratch.clear();
        for (i, column) in self.group_by.iter().enumerate() {
            if i > 0 {
                self.key_scratch.push(KEY_SEP);
            }
            self.key_scratch.push_str(&project(row, column)?);
        }
        let (n, accs) = match self.groups.get_mut(self.key_scratch.as_str()) {
            Some(entry) => entry,
            None => self
                .groups
                .entry(self.key_scratch.clone())
                .or_insert_with(|| (0, vec![ColAcc::default(); self.columns.len()])),
        };
        *n += 1;
        for (acc, column) in accs.iter_mut().zip(&self.columns) {
            if let Some(v) = numeric(row, column)? {
                acc.push(v);
            }
        }
        Ok(())
    }

    /// Number of groups seen so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// CSV header: group columns, the group size, then one
    /// `<agg>_<column>` per folded column.
    pub fn header(&self) -> String {
        let mut fields: Vec<String> = self.group_by.clone();
        fields.push("n".into());
        for column in &self.columns {
            fields.push(format!("{}_{column}", self.kind.name()));
        }
        fields.join(",")
    }

    /// The aggregated rows in group-key order (numeric-aware per field, so
    /// `racks` 2 precedes 10), capped at `limit` when given.
    pub fn rows(&self, limit: Option<usize>) -> Vec<String> {
        let mut keys: Vec<&String> = self.groups.keys().collect();
        keys.sort_by(|a, b| compare_keys(a, b));
        keys.into_iter()
            .take(limit.unwrap_or(usize::MAX))
            .map(|key| {
                let (n, accs) = &self.groups[key];
                let mut fields: Vec<String> = key.split(KEY_SEP).map(|f| f.to_string()).collect();
                fields.push(n.to_string());
                for acc in accs {
                    fields.push(acc.render(self.kind));
                }
                fields.join(",")
            })
            .collect()
    }
}

/// The scan callback's verdict: keep streaming or end the scan now.
///
/// `Stop` is how `campaign query --limit N` avoids reading partitions past
/// the N-th match — the scan returns immediately with
/// [`ScanStats::stopped_early`] set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanFlow {
    /// Deliver the next matching row.
    Continue,
    /// End the scan after this row.
    Stop,
}

/// What a [`StoreScanner::scan`] did: matches delivered and, on v3 stores,
/// how much work the zone maps saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Rows that passed the filter and were delivered to the callback.
    pub matched: usize,
    /// Partitions whose records were actually read.
    pub partitions_scanned: usize,
    /// Partitions proven row-free for this filter by their blocks'
    /// dictionaries/zone maps and skipped without reading column data
    /// (always 0 on v2 CSV partitions, which carry no zone maps).
    pub partitions_skipped: usize,
    /// Did the callback end the scan with [`ScanFlow::Stop`]?
    pub stopped_early: bool,
}

/// A validated handle for streaming reads of a store directory.
///
/// [`open`](StoreScanner::open) parses the manifest up front — magic,
/// schema version, completion log — exactly as
/// [`ResultStore::open`](crate::store::ResultStore::open) does, so a v1
/// store or a foreign directory is rejected *before* the caller produces
/// any output; [`scan`](StoreScanner::scan) then streams the partitions,
/// dispatching per file on the v2 (CSV) or v3 (columnar) codec.
#[derive(Debug)]
pub struct StoreScanner {
    dir: PathBuf,
    manifest: ParsedManifest,
}

impl StoreScanner {
    /// Validate the manifest of the store at `dir` and prepare a scanner.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        let manifest_path = dir.join(MANIFEST_NAME);
        let text = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let manifest = ParsedManifest::parse(&dir, &text)?;
        Ok(StoreScanner { dir, manifest })
    }

    /// Number of cells the completion log trusts.
    pub fn completed_count(&self) -> usize {
        self.manifest.done.len()
    }

    /// The campaign's total cell count, from the manifest header.
    pub fn total_cells(&self) -> usize {
        self.manifest.total_cells
    }

    /// The recorded spec fingerprint, from the manifest header.
    pub fn spec_hash(&self) -> u64 {
        self.manifest.spec_hash
    }

    /// The store's schema version (v2 text or v3 columnar).
    pub fn schema(&self) -> u32 {
        self.manifest.schema
    }

    /// Has every cell of the campaign been recorded?
    pub fn is_complete(&self) -> bool {
        self.manifest.done.len() == self.manifest.total_cells
    }

    /// Stream every trusted, filter-matching row to `on_row`, in cell-index
    /// order, without ever holding more than one partition in memory.
    pub fn scan(
        &self,
        filter: &RowFilter,
        on_row: impl FnMut(&CellRow) -> Result<ScanFlow, String>,
    ) -> Result<ScanStats, String> {
        self.scan_projected(filter, Projection::ALL, on_row)
    }

    /// [`scan`](Self::scan) with a column projection pushed down into the
    /// v3 block decoder: only the projected columns of matching rows are
    /// read from the column arrays (filtering and duplicate resolution
    /// still run on the raw columns, so the match set is identical to an
    /// unprojected scan). Unprojected fields of the delivered row are
    /// unspecified — the callback must only read projected columns. On v2
    /// CSV partitions rows are fully parsed regardless.
    pub fn scan_projected(
        &self,
        filter: &RowFilter,
        projection: Projection,
        mut on_row: impl FnMut(&CellRow) -> Result<ScanFlow, String>,
    ) -> Result<ScanStats, String> {
        let mut stats = ScanStats::default();
        let mut scratch = crate::colstore::blank_row();
        // Flatten the manifest's completion set into a bit-per-cell lookup
        // once per scan: the per-row trust check runs for every record of
        // every partition, and an O(log n) set probe there dominates large
        // scans.
        let done_len = self
            .manifest
            .done
            .iter()
            .next_back()
            .map_or(0, |&last| last + 1);
        let mut done = vec![false; done_len];
        for &idx in &self.manifest.done {
            done[idx] = true;
        }
        let is_done = |idx: usize| idx < done.len() && done[idx];
        let parts = sorted_part_paths(&self.dir.join(PARTS_DIR))?;
        let mut next = 0;
        while next < parts.len() {
            let group_start = next;
            let number = parts[group_start].0;
            while next < parts.len() && parts[next].0 == number {
                next += 1;
            }
            if next - group_start > 1 {
                // A distributed campaign whose lease bounced between workers
                // leaves several files for one partition number
                // (`part-N-wW.apc`), and a cell's duplicate records can then
                // span files. Merge the whole group in sorted-file order
                // before last-wins resolution — per-file resolution would
                // emit such a cell once per file — trading the zone-map
                // machinery for a plain merge on this (small, rare) group.
                let mut merged: BTreeMap<usize, CellRow> = BTreeMap::new();
                for (_, path) in &parts[group_start..next] {
                    stats.partitions_scanned += 1;
                    for row in load_part_rows(path)? {
                        if is_done(row.index) {
                            merged.insert(row.index, row);
                        }
                    }
                }
                for row in merged.values() {
                    if filter.matches(row) {
                        stats.matched += 1;
                        if on_row(row)? == ScanFlow::Stop {
                            stats.stopped_early = true;
                            return Ok(stats);
                        }
                    }
                }
                continue;
            }
            let path = &parts[group_start].1;
            if is_v3_part(path) {
                let buf = PartitionBuf::read(path)?;
                let blocks = buf.block_count();
                if blocks == 0 {
                    continue; // fully torn or empty file: nothing trusted
                }
                // Resolve the filter once per block: string criteria become
                // dictionary codes, numeric criteria check the zone maps. A
                // block that resolves to None provably holds no match.
                let resolved: Vec<_> = (0..blocks).map(|b| buf.resolve_filter(b, filter)).collect();
                if resolved.iter().all(|r| r.is_none()) {
                    // Every block of this partition is proven row-free for
                    // the filter: skip the partition without touching any
                    // column data. (Unreachable for an empty filter, which
                    // always resolves.)
                    stats.partitions_skipped += 1;
                    continue;
                }
                stats.partitions_scanned += 1;
                // Cells of one index always land in the same partition, so
                // last-wins duplicate resolution needs only the (block, row)
                // of each index's final trusted occurrence — found by
                // reading the index column alone. The common case (any
                // compacted store, and every live store that never re-ran a
                // cell) has strictly increasing indexes, which proves there
                // are no duplicates and the file order *is* index order: emit
                // directly, no dedup map. A last occurrence inside an
                // unmatchable block still wins (and simply emits nothing),
                // keeping skip decisions and duplicate resolution
                // independent.
                let mut monotone = true;
                let mut prev: Option<usize> = None;
                'check: for b in 0..blocks {
                    for r in 0..buf.block_rows(b) {
                        let idx = buf.cell_index(b, r);
                        if prev.is_some_and(|p| p >= idx) {
                            monotone = false;
                            break 'check;
                        }
                        prev = Some(idx);
                    }
                }
                if monotone {
                    for (b, rf) in resolved.iter().enumerate() {
                        let Some(rf) = rf else { continue };
                        // An unconstrained filter passes every row, so the
                        // per-row match call is pure overhead on full scans.
                        let check = !rf.is_unconstrained();
                        for r in 0..buf.block_rows(b) {
                            if is_done(buf.cell_index(b, r)) && (!check || buf.matches(b, r, rf)) {
                                buf.decode_into_projected(b, r, &mut scratch, projection);
                                stats.matched += 1;
                                if on_row(&scratch)? == ScanFlow::Stop {
                                    stats.stopped_early = true;
                                    return Ok(stats);
                                }
                            }
                        }
                    }
                    continue;
                }
                let mut last: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
                for b in 0..blocks {
                    for r in 0..buf.block_rows(b) {
                        let idx = buf.cell_index(b, r);
                        if is_done(idx) {
                            last.insert(idx, (b, r));
                        }
                    }
                }
                for &(b, r) in last.values() {
                    let Some(rf) = &resolved[b] else { continue };
                    if buf.matches(b, r, rf) {
                        buf.decode_into_projected(b, r, &mut scratch, projection);
                        stats.matched += 1;
                        if on_row(&scratch)? == ScanFlow::Stop {
                            stats.stopped_early = true;
                            return Ok(stats);
                        }
                    }
                }
            } else {
                stats.partitions_scanned += 1;
                let text = fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                // Per-partition map resolving duplicates to the last
                // parseable record, as in the full loader.
                let mut rows: BTreeMap<usize, CellRow> = BTreeMap::new();
                for line in text.lines().skip(1) {
                    if let Ok(row) = CellRow::parse_store_line(line) {
                        if is_done(row.index) {
                            rows.insert(row.index, row);
                        }
                    }
                }
                for row in rows.values() {
                    if filter.matches(row) {
                        stats.matched += 1;
                        if on_row(row)? == ScanFlow::Stop {
                            stats.stopped_early = true;
                            return Ok(stats);
                        }
                    }
                }
            }
        }
        Ok(stats)
    }
}

/// One-shot convenience over [`StoreScanner`]: validate, then stream.
pub fn scan_store(
    dir: &Path,
    filter: &RowFilter,
    on_row: impl FnMut(&CellRow) -> Result<ScanFlow, String>,
) -> Result<ScanStats, String> {
    StoreScanner::open(dir)?.scan(filter, on_row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn row(index: usize, workload: &str, scenario: &str) -> CellRow {
        CellRow {
            index,
            racks: 1,
            workload: workload.into(),
            seed: Some(index as u64 % 3),
            load_factor: 1.8,
            scenario: scenario.into(),
            window: "7200+3600".into(),
            policy: if scenario.contains("SHUT") {
                "shut".into()
            } else {
                "none".into()
            },
            cap_percent: 60.0,
            grouping: "grouped".into(),
            decision_rule: "paper-rho".into(),
            schedule: "-".into(),
            faults: "-".into(),
            launched_jobs: index,
            completed_jobs: index,
            killed_jobs: 0,
            pending_jobs: 0,
            work_core_seconds: index as f64,
            energy_joules: 1.0,
            energy_normalized: 0.5,
            launched_jobs_normalized: 0.5,
            work_normalized: 0.25,
            mean_wait_seconds: f64::NAN,
            peak_power_watts: 900.0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("apc-query-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A 200-cell store spanning several partitions, alternating workloads.
    /// `schema` picks the partition codec; both must behave identically.
    fn build_store_with_schema(dir: &Path, schema: u32) {
        let mut store =
            crate::store::ResultStore::create_with_schema(dir, 0xabcd, 200, schema).unwrap();
        for i in 0..200 {
            let workload = if i % 2 == 0 { "medianjob" } else { "24h" };
            let scenario = if i % 4 == 0 { "60%/SHUT" } else { "100%/None" };
            store.append(&row(i, workload, scenario)).unwrap();
        }
    }

    fn build_store(dir: &Path) {
        build_store_with_schema(dir, crate::store::STORE_SCHEMA_VERSION);
    }

    #[test]
    fn scan_streams_matching_rows_in_index_order() {
        for schema in [
            crate::store::STORE_SCHEMA_V2,
            crate::store::STORE_SCHEMA_VERSION,
        ] {
            let dir = temp_dir(&format!("scan-v{schema}"));
            build_store_with_schema(&dir, schema);
            let filter = RowFilter {
                workload: Some("medianjob".into()),
                scenario: Some("60%/SHUT".into()),
                ..RowFilter::default()
            };
            let mut seen = Vec::new();
            let stats = scan_store(&dir, &filter, |r| {
                seen.push(r.index);
                Ok(ScanFlow::Continue)
            })
            .unwrap();
            assert_eq!(stats.matched, 50, "schema v{schema}");
            assert!(!stats.stopped_early);
            assert_eq!(seen.len(), 50);
            assert!(seen.windows(2).all(|w| w[0] < w[1]), "index-sorted");
            assert!(seen.iter().all(|i| i % 4 == 0));
            // Workloads alternate within every partition, so nothing is
            // provably row-free here; CSV partitions can never be skipped.
            assert_eq!(stats.partitions_skipped, 0);
            assert_eq!(stats.partitions_scanned, 200usize.div_ceil(64));
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn zone_maps_skip_partitions_that_cannot_match() {
        let dir = temp_dir("zone-skip");
        // Workloads in contiguous index ranges: cells [0, 100) medianjob,
        // [100, 200) 24h. With 64-cell partitions: part 0 all-medianjob,
        // part 1 mixed, parts 2 and 3 all-24h.
        let mut store = crate::store::ResultStore::create(&dir, 0xabcd, 200).unwrap();
        for i in 0..200 {
            let workload = if i < 100 { "medianjob" } else { "24h" };
            store.append(&row(i, workload, "60%/SHUT")).unwrap();
        }
        drop(store);
        let filter = RowFilter {
            workload: Some("24h".into()),
            ..RowFilter::default()
        };
        let mut seen = Vec::new();
        let stats = scan_store(&dir, &filter, |r| {
            seen.push(r.index);
            Ok(ScanFlow::Continue)
        })
        .unwrap();
        assert_eq!(stats.matched, 100);
        assert_eq!(stats.partitions_skipped, 1, "part 0 is provably 24h-free");
        assert_eq!(stats.partitions_scanned, 3);
        // The skip is provably sound: a brute-force pass over *all* rows
        // finds exactly the matches the skipping scan delivered.
        let mut brute = Vec::new();
        scan_store(&dir, &RowFilter::default(), |r| {
            if filter.matches(r) {
                brute.push(r.index);
            }
            Ok(ScanFlow::Continue)
        })
        .unwrap();
        assert_eq!(seen, brute);
        // The opposite filter skips the two all-24h partitions.
        let inverse = RowFilter {
            workload: Some("medianjob".into()),
            ..RowFilter::default()
        };
        let stats = scan_store(&dir, &inverse, |_| Ok(ScanFlow::Continue)).unwrap();
        assert_eq!((stats.matched, stats.partitions_skipped), (100, 2));
        // A filter matching nothing anywhere skips every partition.
        let nothing = RowFilter {
            workload: Some("bigjob".into()),
            ..RowFilter::default()
        };
        let stats = scan_store(&dir, &nothing, |_| Ok(ScanFlow::Continue)).unwrap();
        assert_eq!((stats.matched, stats.partitions_skipped), (0, 4));
        assert_eq!(stats.partitions_scanned, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_flow_stop_ends_the_scan_early() {
        let dir = temp_dir("early-exit");
        build_store(&dir);
        let mut seen = Vec::new();
        let limit = 5usize;
        let stats = scan_store(&dir, &RowFilter::default(), |r| {
            seen.push(r.index);
            Ok(if seen.len() == limit {
                ScanFlow::Stop
            } else {
                ScanFlow::Continue
            })
        })
        .unwrap();
        assert!(stats.stopped_early);
        assert_eq!(stats.matched, limit);
        assert_eq!(seen, [0, 1, 2, 3, 4]);
        assert_eq!(
            stats.partitions_scanned, 1,
            "remaining partitions are never opened"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_and_v3_scans_deliver_bit_identical_rows() {
        let dir_v2 = temp_dir("equiv-v2");
        let dir_v3 = temp_dir("equiv-v3");
        build_store_with_schema(&dir_v2, crate::store::STORE_SCHEMA_V2);
        build_store_with_schema(&dir_v3, crate::store::STORE_SCHEMA_VERSION);
        let mut v2_rows = Vec::new();
        let mut v3_rows = Vec::new();
        scan_store(&dir_v2, &RowFilter::default(), |r| {
            v2_rows.push(r.clone());
            Ok(ScanFlow::Continue)
        })
        .unwrap();
        scan_store(&dir_v3, &RowFilter::default(), |r| {
            v3_rows.push(r.clone());
            Ok(ScanFlow::Continue)
        })
        .unwrap();
        assert_eq!(v2_rows.len(), v3_rows.len());
        for (a, b) in v2_rows.iter().zip(&v3_rows) {
            assert!(
                crate::colstore::rows_bit_identical(a, b),
                "cell {}: {a:?} vs {b:?}",
                a.index
            );
        }
        fs::remove_dir_all(&dir_v2).unwrap();
        fs::remove_dir_all(&dir_v3).unwrap();
    }

    #[test]
    fn scan_skips_untrusted_rows_like_the_full_loader() {
        let dir = temp_dir("untrusted");
        build_store(&dir);
        // Drop one done entry: that cell must disappear from scans too.
        let manifest = dir.join(MANIFEST_NAME);
        let text = fs::read_to_string(&manifest).unwrap();
        let kept: Vec<&str> = text.lines().filter(|l| *l != "done 8").collect();
        fs::write(&manifest, kept.join("\n") + "\n").unwrap();
        let stats = scan_store(&dir, &RowFilter::default(), |_| Ok(ScanFlow::Continue)).unwrap();
        assert_eq!(stats.matched, 199);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filters_compose_conjunctively() {
        let r = row(4, "medianjob", "60%/SHUT");
        assert!(RowFilter::default().matches(&r));
        let hit = RowFilter {
            workload: Some("medianjob".into()),
            policy: Some("shut".into()),
            seed: Some(1),
            racks: Some(1),
            ..RowFilter::default()
        };
        assert!(hit.matches(&r));
        let sweep_hit = RowFilter {
            window: Some("7200+3600".into()),
            load_factor: Some(1.8),
            ..hit.clone()
        };
        assert!(sweep_hit.matches(&r));
        for miss in [
            RowFilter {
                workload: Some("24h".into()),
                ..hit.clone()
            },
            RowFilter {
                seed: Some(2),
                ..hit.clone()
            },
            RowFilter {
                racks: Some(2),
                ..hit.clone()
            },
            RowFilter {
                window: Some("0+1800|16200+1800".into()),
                ..hit.clone()
            },
            RowFilter {
                load_factor: Some(1.0),
                ..hit.clone()
            },
        ] {
            assert!(!miss.matches(&r));
        }
        // A fixed-trace row (no seed) never matches a seed filter.
        let mut fixed = row(4, "swf", "60%/SHUT");
        fixed.seed = None;
        assert!(!hit.matches(&fixed));
    }

    #[test]
    fn projection_covers_every_column_and_rejects_unknown_ones() {
        let r = row(4, "medianjob", "60%/SHUT");
        for column in QUERY_COLUMNS {
            let value = project(&r, column).unwrap();
            if column == "mean_wait_seconds" {
                assert!(value.is_empty(), "NaN renders empty");
            }
        }
        assert_eq!(project(&r, "index").unwrap(), "4");
        assert_eq!(project(&r, "seed").unwrap(), "1");
        assert_eq!(project(&r, "window").unwrap(), "7200+3600");
        let err = project(&r, "nope").unwrap_err();
        assert!(err.contains("unknown column") && err.contains("work_normalized"));
        // Labels go through csv_field like every other CSV writer, so a
        // separator-carrying label cannot tear query output.
        let mut odd = r.clone();
        odd.scenario = "a,b".into();
        assert_eq!(project(&odd, "scenario").unwrap(), "\"a,b\"");
    }

    #[test]
    fn group_aggregation_folds_in_the_streaming_scan() {
        let dir = temp_dir("agg");
        build_store(&dir);
        let mut agg = GroupAggregator::new(
            &["workload".to_string(), "scenario".to_string()],
            &["launched_jobs".to_string(), "mean_wait_seconds".to_string()],
            AggKind::Mean,
        )
        .unwrap();
        let stats = scan_store(&dir, &RowFilter::default(), |row| {
            agg.fold(row)?;
            Ok(ScanFlow::Continue)
        })
        .unwrap();
        assert_eq!(stats.matched, 200);
        // Groups: (medianjob, 60%/SHUT) = indices ≡ 0 (mod 4),
        // (medianjob, 100%/None) = 2 (mod 4), (24h, 100%/None) = odd.
        assert_eq!(agg.group_count(), 3);
        assert_eq!(
            agg.header(),
            "workload,scenario,n,mean_launched_jobs,mean_mean_wait_seconds"
        );
        let rows = agg.rows(None);
        assert_eq!(rows.len(), 3);
        // BTreeMap order: "24h" < "medianjob"; launched_jobs == index, so
        // the odd indices 1..199 average to 100.
        assert_eq!(rows[0], "24h,100%/None,100,100,");
        // Even-but-not-multiple-of-4 indices 2,6,…,198 average to 100; the
        // all-NaN wait column renders empty.
        assert_eq!(rows[1], "medianjob,100%/None,50,100,");
        assert_eq!(rows[2], "medianjob,60%/SHUT,50,98,");
        // Limit caps the rendered groups, not the fold.
        assert_eq!(agg.rows(Some(2)).len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aggregation_kinds_and_validation() {
        let rows: Vec<CellRow> = (0..4).map(|i| row(i, "medianjob", "60%/SHUT")).collect();
        for (kind, expected) in [
            (AggKind::Min, "medianjob,4,0"),
            (AggKind::Max, "medianjob,4,3"),
            (AggKind::Mean, "medianjob,4,1.5"),
        ] {
            let mut agg = GroupAggregator::new(
                &["workload".to_string()],
                &["launched_jobs".to_string()],
                kind,
            )
            .unwrap();
            for r in &rows {
                agg.fold(r).unwrap();
            }
            assert_eq!(agg.rows(None), vec![expected.to_string()], "{kind:?}");
        }
        // Validation: empty key list, unknown key, non-numeric column.
        assert!(GroupAggregator::new(&[], &[], AggKind::Mean).is_err());
        let err = GroupAggregator::new(&["nope".to_string()], &[], AggKind::Mean).unwrap_err();
        assert!(err.contains("unknown column"));
        let err = GroupAggregator::new(
            &["workload".to_string()],
            &["scenario".to_string()],
            AggKind::Mean,
        )
        .unwrap_err();
        assert!(err.contains("not numeric"));
        // Group-by columns are dropped from the aggregated set, not
        // double-counted.
        let agg = GroupAggregator::new(
            &["racks".to_string()],
            &["racks".to_string(), "launched_jobs".to_string()],
            AggKind::Mean,
        )
        .unwrap();
        assert_eq!(agg.header(), "racks,n,mean_launched_jobs");
        // Agg kind parsing.
        assert_eq!("mean".parse::<AggKind>().unwrap(), AggKind::Mean);
        assert_eq!("max".parse::<AggKind>().unwrap().name(), "max");
        assert!("median".parse::<AggKind>().is_err());
    }

    #[test]
    fn numeric_group_keys_sort_by_value_not_lexicographically() {
        let mut agg = GroupAggregator::new(
            &["racks".to_string()],
            &["launched_jobs".to_string()],
            AggKind::Mean,
        )
        .unwrap();
        for racks in [10usize, 2, 33] {
            let mut r = row(1, "medianjob", "60%/SHUT");
            r.racks = racks;
            agg.fold(&r).unwrap();
        }
        // Lexicographic order would put "10" before "2".
        assert_eq!(agg.rows(None), vec!["2,1,1", "10,1,1", "33,1,1"]);
        // --limit keeps the numerically-first groups.
        assert_eq!(agg.rows(Some(1)), vec!["2,1,1"]);
    }

    #[test]
    fn numeric_extraction_handles_missing_values() {
        let mut r = row(4, "medianjob", "60%/SHUT");
        assert_eq!(numeric(&r, "launched_jobs").unwrap(), Some(4.0));
        assert_eq!(numeric(&r, "mean_wait_seconds").unwrap(), None, "NaN");
        assert_eq!(numeric(&r, "seed").unwrap(), Some(1.0));
        r.seed = None;
        assert_eq!(numeric(&r, "seed").unwrap(), None);
        assert!(numeric(&r, "workload").is_err());
        for column in NUMERIC_COLUMNS {
            assert!(numeric(&r, column).is_ok());
        }
    }

    #[test]
    fn projection_bits_match_query_columns() {
        // The PC_* constants must track QUERY_COLUMNS positions exactly —
        // the v3 decoder trusts them.
        for (i, name) in [
            (PC_INDEX, "index"),
            (PC_RACKS, "racks"),
            (PC_WORKLOAD, "workload"),
            (PC_SEED, "seed"),
            (PC_LOAD_FACTOR, "load_factor"),
            (PC_SCENARIO, "scenario"),
            (PC_WINDOW, "window"),
            (PC_POLICY, "policy"),
            (PC_CAP_PERCENT, "cap_percent"),
            (PC_GROUPING, "grouping"),
            (PC_DECISION_RULE, "decision_rule"),
            (PC_SCHEDULE, "schedule"),
            (PC_FAULTS, "faults"),
            (PC_LAUNCHED_JOBS, "launched_jobs"),
            (PC_COMPLETED_JOBS, "completed_jobs"),
            (PC_KILLED_JOBS, "killed_jobs"),
            (PC_PENDING_JOBS, "pending_jobs"),
            (PC_WORK_CORE_SECONDS, "work_core_seconds"),
            (PC_ENERGY_JOULES, "energy_joules"),
            (PC_ENERGY_NORMALIZED, "energy_normalized"),
            (PC_LAUNCHED_JOBS_NORMALIZED, "launched_jobs_normalized"),
            (PC_WORK_NORMALIZED, "work_normalized"),
            (PC_MEAN_WAIT_SECONDS, "mean_wait_seconds"),
            (PC_PEAK_POWER_WATTS, "peak_power_watts"),
        ] {
            assert_eq!(QUERY_COLUMNS[i], name, "bit {i}");
        }
        let all = Projection::ALL;
        assert!(all.is_all());
        assert_eq!(all.len(), QUERY_COLUMNS.len());
        let narrow = Projection::of(&["index".to_string(), "faults".to_string()]).unwrap();
        assert!(narrow.bit(PC_INDEX) && narrow.bit(PC_FAULTS));
        assert!(!narrow.bit(PC_WORKLOAD) && !narrow.is_all());
        assert_eq!(narrow.len(), 2);
        assert!(Projection::of(&[]).unwrap().is_empty());
        assert!(Projection::of(&["nope".to_string()])
            .unwrap_err()
            .contains("unknown column"));
    }

    #[test]
    fn schedule_and_fault_filters_compose_like_the_others() {
        let mut r = row(4, "medianjob", "SCHED/SHUT");
        r.schedule = "0+7200@80|7200+10800@40".into();
        r.faults = "3x600@7".into();
        let hit = RowFilter {
            schedule: Some("0+7200@80|7200+10800@40".into()),
            faults: Some("3x600@7".into()),
            ..RowFilter::default()
        };
        assert!(hit.matches(&r));
        for miss in [
            RowFilter {
                schedule: Some("-".into()),
                ..RowFilter::default()
            },
            RowFilter {
                faults: Some("2x600@7".into()),
                ..RowFilter::default()
            },
        ] {
            assert!(!miss.matches(&r));
        }
        // A legacy row matches the "-" filters.
        let legacy = row(5, "medianjob", "60%/SHUT");
        let dashes = RowFilter {
            schedule: Some("-".into()),
            faults: Some("-".into()),
            ..RowFilter::default()
        };
        assert!(dashes.matches(&legacy));
    }

    #[test]
    fn projected_scans_match_full_scans_on_the_projected_columns() {
        let dir = temp_dir("projected");
        build_store(&dir);
        let projection =
            Projection::of(&["index".to_string(), "energy_joules".to_string()]).unwrap();
        let mut narrow = Vec::new();
        let scanner = StoreScanner::open(&dir).unwrap();
        let stats = scanner
            .scan_projected(&RowFilter::default(), projection, |r| {
                narrow.push((r.index, r.energy_joules.to_bits()));
                Ok(ScanFlow::Continue)
            })
            .unwrap();
        assert_eq!(stats.matched, 200);
        let mut full = Vec::new();
        scan_store(&dir, &RowFilter::default(), |r| {
            full.push((r.index, r.energy_joules.to_bits()));
            Ok(ScanFlow::Continue)
        })
        .unwrap();
        assert_eq!(narrow, full);
        // Projection never changes the match set under a filter either.
        let filter = RowFilter {
            scenario: Some("60%/SHUT".into()),
            ..RowFilter::default()
        };
        let mut filtered = Vec::new();
        scanner
            .scan_projected(&filter, projection, |r| {
                filtered.push(r.index);
                Ok(ScanFlow::Continue)
            })
            .unwrap();
        assert!(filtered.iter().all(|i| i % 4 == 0));
        assert_eq!(filtered.len(), 50);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_rejects_foreign_and_mismatched_stores() {
        let dir = temp_dir("foreign");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST_NAME), "not a store\n").unwrap();
        let err = scan_store(&dir, &RowFilter::default(), |_| Ok(ScanFlow::Continue)).unwrap_err();
        assert!(err.contains("bad magic"), "got: {err}");
        // Validation happens at open(), before any row callback could run —
        // the query CLI relies on this to keep stdout clean on error.
        assert!(StoreScanner::open(&dir).is_err());
        assert!(StoreScanner::open(dir.join("missing")).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scanner_reports_the_completion_count() {
        let dir = temp_dir("count");
        build_store(&dir);
        let scanner = StoreScanner::open(&dir).unwrap();
        assert_eq!(scanner.completed_count(), 200);
        assert_eq!(scanner.total_cells(), 200);
        assert_eq!(scanner.spec_hash(), 0xabcd);
        assert_eq!(scanner.schema(), crate::store::STORE_SCHEMA_VERSION);
        assert!(scanner.is_complete());
        fs::remove_dir_all(&dir).unwrap();
    }
}

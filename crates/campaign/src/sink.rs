//! Result sinks: CSV and JSON renderers plus directory writers.
//!
//! The workspace's serde dependency is an offline marker stub (nothing
//! actually serializes through it), so the renderers here are hand-rolled —
//! which also makes the byte layout fully explicit, a requirement for the
//! campaign's "byte-identical across thread counts" guarantee. Floats are
//! printed with fixed precisions; non-finite values (an empty interval's
//! mean wait, say) become empty CSV fields and JSON `null`s.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::agg::{CellRow, MetricSummary, SummaryRow};

/// Decimal places used for every floating-point column.
const FLOAT_PRECISION: usize = 6;

/// Fixed-precision float field; empty/`null` for non-finite values.
fn float_field(v: f64, json: bool) -> String {
    if v.is_finite() {
        format!("{v:.FLOAT_PRECISION$}")
    } else if json {
        "null".to_string()
    } else {
        String::new()
    }
}

/// Quote a CSV field if it contains a separator, quote or newline.
pub(crate) fn csv_field(raw: &str) -> String {
    if raw.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_string()
    }
}

/// Split one CSV line into fields, undoing [`csv_field`] quoting.
///
/// Rejects malformed quoting (an unterminated quoted field or a stray quote
/// mid-field) — the store loader uses that to detect rows torn by a crash.
pub(crate) fn split_csv_line(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek() {
            Some('"') => {
                chars.next();
                loop {
                    match chars.next() {
                        Some('"') if chars.peek() == Some(&'"') => {
                            chars.next();
                            field.push('"');
                        }
                        Some('"') => break,
                        Some(c) => field.push(c),
                        None => return Err("unterminated quoted CSV field".into()),
                    }
                }
                match chars.next() {
                    None => {
                        fields.push(std::mem::take(&mut field));
                        return Ok(fields);
                    }
                    Some(',') => fields.push(std::mem::take(&mut field)),
                    Some(c) => return Err(format!("unexpected '{c}' after closing quote")),
                }
            }
            _ => match chars.next() {
                None => {
                    fields.push(field);
                    return Ok(fields);
                }
                Some(',') => fields.push(std::mem::take(&mut field)),
                Some('"') => return Err("stray quote inside unquoted CSV field".into()),
                Some(c) => field.push(c),
            },
        }
    }
}

/// Escape a JSON string (the labels here are ASCII, but stay correct).
fn json_string(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Header of the per-cell CSV.
pub const CELLS_CSV_HEADER: &str = "index,racks,workload,seed,load_factor,scenario,window,\
policy,cap_percent,grouping,decision_rule,launched_jobs,completed_jobs,killed_jobs,pending_jobs,\
work_core_seconds,energy_joules,energy_normalized,launched_jobs_normalized,\
work_normalized,mean_wait_seconds,peak_power_watts";

/// [`CELLS_CSV_HEADER`] with the `schedule`/`faults` columns, used when any
/// rendered row carries a cap-schedule or fault-plan label.
pub const CELLS_CSV_HEADER_LABELLED: &str = "index,racks,workload,seed,load_factor,scenario,\
window,policy,cap_percent,grouping,decision_rule,schedule,faults,launched_jobs,completed_jobs,\
killed_jobs,pending_jobs,work_core_seconds,energy_joules,energy_normalized,\
launched_jobs_normalized,work_normalized,mean_wait_seconds,peak_power_watts";

/// Do any of these rows carry a schedule or fault label? Decides whether
/// the renderers emit the two label columns — campaigns without the new
/// axes keep their pre-refactor output bytes exactly.
fn cells_labelled(rows: &[CellRow]) -> bool {
    rows.iter().any(|r| r.schedule != "-" || r.faults != "-")
}

/// Render the per-cell rows as CSV (with header and trailing newline).
pub fn render_cells_csv(rows: &[CellRow]) -> String {
    let labelled = cells_labelled(rows);
    let mut out = String::from(if labelled {
        CELLS_CSV_HEADER_LABELLED
    } else {
        CELLS_CSV_HEADER
    });
    out.push('\n');
    for r in rows {
        let labels = if labelled {
            format!("{},{},", csv_field(&r.schedule), csv_field(&r.faults))
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{labels}{},{},{},{},{},{},{},{},{},{},{}\n",
            r.index,
            r.racks,
            csv_field(&r.workload),
            r.seed.map_or_else(String::new, |s| s.to_string()),
            float_field(r.load_factor, false),
            csv_field(&r.scenario),
            csv_field(&r.window),
            csv_field(&r.policy),
            float_field(r.cap_percent, false),
            csv_field(&r.grouping),
            csv_field(&r.decision_rule),
            r.launched_jobs,
            r.completed_jobs,
            r.killed_jobs,
            r.pending_jobs,
            float_field(r.work_core_seconds, false),
            float_field(r.energy_joules, false),
            float_field(r.energy_normalized, false),
            float_field(r.launched_jobs_normalized, false),
            float_field(r.work_normalized, false),
            float_field(r.mean_wait_seconds, false),
            float_field(r.peak_power_watts, false),
        ));
    }
    out
}

fn summary_metric_csv(m: &MetricSummary) -> String {
    format!(
        "{},{},{},{}",
        float_field(m.mean, false),
        float_field(m.min, false),
        float_field(m.max, false),
        float_field(m.stddev, false)
    )
}

/// Header of the across-seed summary CSV.
pub const SUMMARY_CSV_HEADER: &str =
    "racks,workload,load_factor,scenario,window,cap_percent,grouping,decision_rule,replications,\
launched_jobs_mean,launched_jobs_min,launched_jobs_max,launched_jobs_stddev,\
energy_normalized_mean,energy_normalized_min,energy_normalized_max,energy_normalized_stddev,\
work_normalized_mean,work_normalized_min,work_normalized_max,work_normalized_stddev,\
mean_wait_seconds_mean,mean_wait_seconds_min,mean_wait_seconds_max,mean_wait_seconds_stddev,\
peak_power_watts_mean,peak_power_watts_min,peak_power_watts_max,peak_power_watts_stddev";

/// [`SUMMARY_CSV_HEADER`] with the `schedule`/`faults` columns, used when
/// any summary group carries a cap-schedule or fault-plan label.
pub const SUMMARY_CSV_HEADER_LABELLED: &str =
    "racks,workload,load_factor,scenario,window,cap_percent,grouping,decision_rule,\
schedule,faults,replications,\
launched_jobs_mean,launched_jobs_min,launched_jobs_max,launched_jobs_stddev,\
energy_normalized_mean,energy_normalized_min,energy_normalized_max,energy_normalized_stddev,\
work_normalized_mean,work_normalized_min,work_normalized_max,work_normalized_stddev,\
mean_wait_seconds_mean,mean_wait_seconds_min,mean_wait_seconds_max,mean_wait_seconds_stddev,\
peak_power_watts_mean,peak_power_watts_min,peak_power_watts_max,peak_power_watts_stddev";

/// Do any of these summary groups carry a schedule or fault label?
fn summaries_labelled(summaries: &[SummaryRow]) -> bool {
    summaries
        .iter()
        .any(|s| s.schedule != "-" || s.faults != "-")
}

/// Render the across-seed summaries as CSV (with header and trailing
/// newline).
pub fn render_summary_csv(summaries: &[SummaryRow]) -> String {
    let labelled = summaries_labelled(summaries);
    let mut out = String::from(if labelled {
        SUMMARY_CSV_HEADER_LABELLED
    } else {
        SUMMARY_CSV_HEADER
    });
    out.push('\n');
    for s in summaries {
        let labels = if labelled {
            format!("{},{},", csv_field(&s.schedule), csv_field(&s.faults))
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{labels}{},{},{},{},{},{}\n",
            s.racks,
            csv_field(&s.workload),
            float_field(s.load_factor, false),
            csv_field(&s.scenario),
            csv_field(&s.window),
            float_field(s.cap_percent, false),
            csv_field(&s.grouping),
            csv_field(&s.decision_rule),
            s.replications,
            summary_metric_csv(&s.launched_jobs),
            summary_metric_csv(&s.energy_normalized),
            summary_metric_csv(&s.work_normalized),
            summary_metric_csv(&s.mean_wait_seconds),
            summary_metric_csv(&s.peak_power_watts),
        ));
    }
    out
}

/// Render the per-cell rows as a JSON array (pretty, two-space indent).
pub fn render_cells_json(rows: &[CellRow]) -> String {
    let labelled = cells_labelled(rows);
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("  {");
        out.push_str(&format!("\"index\": {}, ", r.index));
        out.push_str(&format!("\"racks\": {}, ", r.racks));
        out.push_str(&format!("\"workload\": {}, ", json_string(&r.workload)));
        out.push_str(&format!(
            "\"seed\": {}, ",
            r.seed.map_or_else(|| "null".to_string(), |s| s.to_string())
        ));
        out.push_str(&format!(
            "\"load_factor\": {}, ",
            float_field(r.load_factor, true)
        ));
        out.push_str(&format!("\"scenario\": {}, ", json_string(&r.scenario)));
        out.push_str(&format!("\"window\": {}, ", json_string(&r.window)));
        out.push_str(&format!("\"policy\": {}, ", json_string(&r.policy)));
        out.push_str(&format!(
            "\"cap_percent\": {}, ",
            float_field(r.cap_percent, true)
        ));
        out.push_str(&format!("\"grouping\": {}, ", json_string(&r.grouping)));
        out.push_str(&format!(
            "\"decision_rule\": {}, ",
            json_string(&r.decision_rule)
        ));
        if labelled {
            out.push_str(&format!("\"schedule\": {}, ", json_string(&r.schedule)));
            out.push_str(&format!("\"faults\": {}, ", json_string(&r.faults)));
        }
        out.push_str(&format!("\"launched_jobs\": {}, ", r.launched_jobs));
        out.push_str(&format!("\"completed_jobs\": {}, ", r.completed_jobs));
        out.push_str(&format!("\"killed_jobs\": {}, ", r.killed_jobs));
        out.push_str(&format!("\"pending_jobs\": {}, ", r.pending_jobs));
        out.push_str(&format!(
            "\"work_core_seconds\": {}, ",
            float_field(r.work_core_seconds, true)
        ));
        out.push_str(&format!(
            "\"energy_joules\": {}, ",
            float_field(r.energy_joules, true)
        ));
        out.push_str(&format!(
            "\"energy_normalized\": {}, ",
            float_field(r.energy_normalized, true)
        ));
        out.push_str(&format!(
            "\"launched_jobs_normalized\": {}, ",
            float_field(r.launched_jobs_normalized, true)
        ));
        out.push_str(&format!(
            "\"work_normalized\": {}, ",
            float_field(r.work_normalized, true)
        ));
        out.push_str(&format!(
            "\"mean_wait_seconds\": {}, ",
            float_field(r.mean_wait_seconds, true)
        ));
        out.push_str(&format!(
            "\"peak_power_watts\": {}",
            float_field(r.peak_power_watts, true)
        ));
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("]\n");
    out
}

fn summary_metric_json(name: &str, m: &MetricSummary) -> String {
    format!(
        "\"{name}\": {{\"mean\": {}, \"min\": {}, \"max\": {}, \"stddev\": {}}}",
        float_field(m.mean, true),
        float_field(m.min, true),
        float_field(m.max, true),
        float_field(m.stddev, true)
    )
}

/// Render the across-seed summaries as a JSON array.
pub fn render_summary_json(summaries: &[SummaryRow]) -> String {
    let labelled = summaries_labelled(summaries);
    let mut out = String::from("[\n");
    for (i, s) in summaries.iter().enumerate() {
        out.push_str("  {");
        out.push_str(&format!("\"racks\": {}, ", s.racks));
        out.push_str(&format!("\"workload\": {}, ", json_string(&s.workload)));
        out.push_str(&format!(
            "\"load_factor\": {}, ",
            float_field(s.load_factor, true)
        ));
        out.push_str(&format!("\"scenario\": {}, ", json_string(&s.scenario)));
        out.push_str(&format!("\"window\": {}, ", json_string(&s.window)));
        out.push_str(&format!(
            "\"cap_percent\": {}, ",
            float_field(s.cap_percent, true)
        ));
        out.push_str(&format!("\"grouping\": {}, ", json_string(&s.grouping)));
        out.push_str(&format!(
            "\"decision_rule\": {}, ",
            json_string(&s.decision_rule)
        ));
        if labelled {
            out.push_str(&format!("\"schedule\": {}, ", json_string(&s.schedule)));
            out.push_str(&format!("\"faults\": {}, ", json_string(&s.faults)));
        }
        out.push_str(&format!("\"replications\": {}, ", s.replications));
        out.push_str(&summary_metric_json("launched_jobs", &s.launched_jobs));
        out.push_str(", ");
        out.push_str(&summary_metric_json(
            "energy_normalized",
            &s.energy_normalized,
        ));
        out.push_str(", ");
        out.push_str(&summary_metric_json("work_normalized", &s.work_normalized));
        out.push_str(", ");
        out.push_str(&summary_metric_json(
            "mean_wait_seconds",
            &s.mean_wait_seconds,
        ));
        out.push_str(", ");
        out.push_str(&summary_metric_json(
            "peak_power_watts",
            &s.peak_power_watts,
        ));
        out.push_str(if i + 1 == summaries.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("]\n");
    out
}

/// A pluggable results sink.
///
/// Since the executor streams every row into the partitioned
/// [`ResultStore`](crate::store::ResultStore), the sinks here are **render
/// frontends over the store**: [`write_store`](CampaignSink::write_store)
/// pulls the index-sorted rows back out, folds the summaries and renders
/// `cells.*`/`summary.*` exactly as the pre-store whole-file sinks did —
/// the output bytes are unchanged.
pub trait CampaignSink {
    /// Persist the rows and summaries; returns the paths written.
    fn write(&mut self, rows: &[CellRow], summaries: &[SummaryRow]) -> io::Result<Vec<PathBuf>>;

    /// Render everything a result store records (rows sorted by cell
    /// index, summaries re-folded from them) — byte-identical to a
    /// [`write`](CampaignSink::write) of the same campaign's in-memory
    /// outcome.
    fn write_store(&mut self, store: &crate::store::ResultStore) -> io::Result<Vec<PathBuf>> {
        let rows = store.rows();
        let summaries = crate::agg::summarize(&rows);
        self.write(&rows, &summaries)
    }
}

fn write_into(dir: &Path, name: &str, content: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

/// Writes `cells.csv` and `summary.csv` into a results directory.
#[derive(Debug, Clone)]
pub struct CsvSink {
    dir: PathBuf,
}

impl CsvSink {
    /// A CSV sink rooted at `dir` (created on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CsvSink { dir: dir.into() }
    }
}

impl CampaignSink for CsvSink {
    fn write(&mut self, rows: &[CellRow], summaries: &[SummaryRow]) -> io::Result<Vec<PathBuf>> {
        Ok(vec![
            write_into(&self.dir, "cells.csv", &render_cells_csv(rows))?,
            write_into(&self.dir, "summary.csv", &render_summary_csv(summaries))?,
        ])
    }
}

/// Writes `cells.json` and `summary.json` into a results directory.
#[derive(Debug, Clone)]
pub struct JsonSink {
    dir: PathBuf,
}

impl JsonSink {
    /// A JSON sink rooted at `dir` (created on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JsonSink { dir: dir.into() }
    }
}

impl CampaignSink for JsonSink {
    fn write(&mut self, rows: &[CellRow], summaries: &[SummaryRow]) -> io::Result<Vec<PathBuf>> {
        Ok(vec![
            write_into(&self.dir, "cells.json", &render_cells_json(rows))?,
            write_into(&self.dir, "summary.json", &render_summary_json(summaries))?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<CellRow> {
        vec![CellRow {
            index: 0,
            racks: 1,
            workload: "medianjob".into(),
            seed: Some(7),
            load_factor: 1.8,
            scenario: "60%/SHUT".into(),
            window: "7200+3600".into(),
            policy: "shut".into(),
            cap_percent: 60.0,
            grouping: "grouped".into(),
            decision_rule: "paper-rho".into(),
            schedule: "-".into(),
            faults: "-".into(),
            launched_jobs: 12,
            completed_jobs: 10,
            killed_jobs: 0,
            pending_jobs: 2,
            work_core_seconds: 123.456789,
            energy_joules: 9.875,
            energy_normalized: 0.5,
            launched_jobs_normalized: 0.25,
            work_normalized: 0.125,
            mean_wait_seconds: f64::NAN,
            peak_power_watts: 1000.0,
        }]
    }

    #[test]
    fn csv_has_header_and_one_line_per_row() {
        let csv = render_cells_csv(&rows());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("index,racks,workload,seed,load_factor,scenario,window"));
        assert!(lines[1].starts_with("0,1,medianjob,7,1.800000,60%/SHUT,7200+3600,shut,60.000000"));
        assert!(lines[1].contains("123.456789"));
        // NaN mean wait renders as an empty field, keeping the column count.
        assert_eq!(lines[1].split(',').count(), lines[0].split(',').count());
        assert!(lines[1].contains(",,"));
    }

    #[test]
    fn csv_quotes_separator_carrying_fields() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_split_undoes_csv_field_quoting() {
        for raw in ["plain", "a,b", "say \"hi\"", "", "trail,", "\"x\",y\nz"] {
            let line = format!("{},{},end", csv_field(raw), csv_field(raw));
            let fields = split_csv_line(&line).unwrap();
            assert_eq!(fields, [raw, raw, "end"], "round-trip of {raw:?}");
        }
        assert_eq!(split_csv_line("a,,c").unwrap(), ["a", "", "c"]);
        assert_eq!(split_csv_line("").unwrap(), [""]);
        assert!(split_csv_line("\"unterminated").is_err());
        assert!(split_csv_line("\"x\"tail,y").is_err());
        assert!(split_csv_line("mid\"quote").is_err());
    }

    #[test]
    fn write_store_renders_the_same_bytes_as_write() {
        let dir = std::env::temp_dir().join(format!(
            "apc-campaign-sink-store-test-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let rows = rows();
        let summaries = crate::agg::summarize(&rows);
        let mut store =
            crate::store::ResultStore::create(dir.join("store"), 7, rows.len()).unwrap();
        for row in &rows {
            store.append(row).unwrap();
        }
        let direct_dir = dir.join("direct");
        let fronted_dir = dir.join("fronted");
        CsvSink::new(&direct_dir).write(&rows, &summaries).unwrap();
        JsonSink::new(&direct_dir).write(&rows, &summaries).unwrap();
        CsvSink::new(&fronted_dir).write_store(&store).unwrap();
        JsonSink::new(&fronted_dir).write_store(&store).unwrap();
        for name in ["cells.csv", "summary.csv", "cells.json", "summary.json"] {
            assert_eq!(
                fs::read(direct_dir.join(name)).unwrap(),
                fs::read(fronted_dir.join(name)).unwrap(),
                "{name} differs between direct render and store frontend"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_is_well_formed_and_null_for_nan() {
        let json = render_cells_json(&rows());
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"mean_wait_seconds\": null"));
        assert!(json.contains("\"scenario\": \"60%/SHUT\""));
        // Balanced braces and a single object.
        assert_eq!(json.matches('{').count(), 1);
        assert_eq!(json.matches('}').count(), 1);
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
    }

    #[test]
    fn summary_renderers_cover_every_metric_block() {
        let summaries = vec![SummaryRow {
            racks: 1,
            workload: "medianjob".into(),
            load_factor: 1.8,
            scenario: "60%/SHUT".into(),
            window: "7200+3600".into(),
            cap_percent: 60.0,
            grouping: "grouped".into(),
            decision_rule: "paper-rho".into(),
            schedule: "-".into(),
            faults: "-".into(),
            replications: 3,
            launched_jobs: MetricSummary {
                mean: 10.0,
                min: 8.0,
                max: 12.0,
                stddev: 1.63,
            },
            energy_normalized: MetricSummary::default(),
            work_normalized: MetricSummary::default(),
            mean_wait_seconds: MetricSummary::default(),
            peak_power_watts: MetricSummary::default(),
        }];
        let csv = render_summary_csv(&summaries);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
        assert!(lines[1].starts_with(
            "1,medianjob,1.800000,60%/SHUT,7200+3600,60.000000,grouped,paper-rho,3,10.000000"
        ));
        let json = render_summary_json(&summaries);
        assert!(json.contains("\"launched_jobs\": {\"mean\": 10.000000"));
        assert!(json.contains("\"replications\": 3"));
    }

    #[test]
    fn label_columns_appear_only_for_labelled_rows() {
        // A label-free render keeps the pre-refactor header and column
        // count exactly.
        let legacy = render_cells_csv(&rows());
        assert!(legacy.starts_with(CELLS_CSV_HEADER));
        assert!(!legacy.contains("schedule"));
        // One labelled row switches both header and rows to the extended
        // layout, with "-" filled for label-free rows.
        let mut labelled = rows();
        labelled.push({
            let mut r = labelled[0].clone();
            r.index = 1;
            r.scenario = "SCHED/SHUT".into();
            r.schedule = "0+7200@80".into();
            r.faults = "3x600@7".into();
            r
        });
        let csv = render_cells_csv(&labelled);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with(CELLS_CSV_HEADER_LABELLED));
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), lines[0].split(',').count());
        }
        assert!(lines[1].contains(",paper-rho,-,-,"));
        assert!(lines[2].contains(",paper-rho,0+7200@80,3x600@7,"));
        // JSON mirrors the conditional keys.
        let json = render_cells_json(&labelled);
        assert!(json.contains("\"schedule\": \"0+7200@80\""));
        assert!(json.contains("\"faults\": \"-\""));
        assert!(!render_cells_json(&rows()).contains("\"schedule\""));
        // Summaries follow the same rule.
        let summaries = crate::agg::summarize(&labelled);
        let sum_csv = render_summary_csv(&summaries);
        assert!(sum_csv.starts_with(SUMMARY_CSV_HEADER_LABELLED));
        assert!(sum_csv.contains(",0+7200@80,3x600@7,"));
        assert!(render_summary_json(&summaries).contains("\"schedule\": \"0+7200@80\""));
    }

    #[test]
    fn sinks_write_into_the_results_directory() {
        let dir =
            std::env::temp_dir().join(format!("apc-campaign-sink-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let rows = rows();
        let summaries = crate::agg::summarize(&rows);
        let mut csv = CsvSink::new(&dir);
        let mut json = JsonSink::new(&dir);
        let mut written = csv.write(&rows, &summaries).unwrap();
        written.extend(json.write(&rows, &summaries).unwrap());
        assert_eq!(written.len(), 4);
        for path in &written {
            assert!(path.exists(), "{path:?} missing");
            assert!(!fs::read_to_string(path).unwrap().is_empty());
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Pareto-front extraction over campaign summaries.
//!
//! The window/load-factor sweeps make the grid large enough that "which
//! scenario wins" stops having a single answer: a tighter cap saves energy
//! but costs work and wait. The GreenSlot-style framing (see PAPERS.md) is
//! to report the **non-dominated front** of the energy-vs-performance
//! trade-off instead: a scenario is on the front exactly when no other
//! scenario of the same workload is at least as good on every objective and
//! strictly better on one.
//!
//! Objectives, taken from the across-seed means of `summary.csv`:
//!
//! * `energy_normalized` — minimise;
//! * `work_normalized`   — maximise;
//! * `mean_wait_seconds` — minimise.
//!
//! Fronts are computed per **workload group** (rack scale × workload label ×
//! load factor × fault plan): comparing a 24 h interval against a 5 h one,
//! or a 1.0-load run against an overloaded 1.8 one, would mix incomparable
//! baselines — and so would comparing a clean run against one whose nodes
//! were being failed under it. Cap *schedules*, by contrast, are competing
//! policies and share a front with the static-window scenarios: "flat 80 %"
//! versus "day/night tariff" is exactly the trade-off the front is for.
//! Rows with an undefined (`NaN`) objective are excluded — they can neither
//! dominate nor sit on the front.
//!
//! [`pareto_front_cells`] is the per-replication variant: it fronts the raw
//! cell rows instead of across-seed means, with the seed joining the group
//! key so dominance is counted per seed. A scenario whose *mean* sits on
//! the summary front can still lose every individual seed to a rival with
//! higher variance; the cells front makes those variance-driven trade-offs
//! visible.

use crate::agg::{CellRow, SummaryRow};
use crate::sink::csv_field;

/// The objective triple of one summary row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Across-seed mean of the normalised energy (minimise).
    pub energy_normalized: f64,
    /// Across-seed mean of the normalised work (maximise).
    pub work_normalized: f64,
    /// Across-seed mean of the queue wait in seconds (minimise).
    pub mean_wait_seconds: f64,
}

impl Objectives {
    /// Extract the objective means from a summary row.
    pub fn of(row: &SummaryRow) -> Self {
        Objectives {
            energy_normalized: row.energy_normalized.mean,
            work_normalized: row.work_normalized.mean,
            mean_wait_seconds: row.mean_wait_seconds.mean,
        }
    }

    /// Extract the objectives of one replication (cell row).
    pub fn of_cell(row: &CellRow) -> Self {
        Objectives {
            energy_normalized: row.energy_normalized,
            work_normalized: row.work_normalized,
            mean_wait_seconds: row.mean_wait_seconds,
        }
    }

    /// Is any objective undefined? Such rows are excluded from the front.
    pub fn has_nan(&self) -> bool {
        self.energy_normalized.is_nan()
            || self.work_normalized.is_nan()
            || self.mean_wait_seconds.is_nan()
    }

    /// Does `self` dominate `other`: at least as good on every objective and
    /// strictly better on at least one? Undefined objectives never dominate.
    pub fn dominates(&self, other: &Objectives) -> bool {
        if self.has_nan() || other.has_nan() {
            return false;
        }
        let no_worse = self.energy_normalized <= other.energy_normalized
            && self.work_normalized >= other.work_normalized
            && self.mean_wait_seconds <= other.mean_wait_seconds;
        let strictly_better = self.energy_normalized < other.energy_normalized
            || self.work_normalized > other.work_normalized
            || self.mean_wait_seconds < other.mean_wait_seconds;
        no_worse && strictly_better
    }
}

/// One row of a Pareto report: a non-dominated summary row plus how many
/// rows of its workload group it dominates.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoRow {
    /// The non-dominated summary row.
    pub summary: SummaryRow,
    /// Its objective triple.
    pub objectives: Objectives,
    /// Number of same-group rows this row dominates.
    pub dominated: usize,
}

/// One row of the per-replication Pareto report: a non-dominated cell row
/// plus how many same-group (same-seed) cells it dominates.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoCellRow {
    /// The non-dominated replication.
    pub cell: CellRow,
    /// Its objective triple.
    pub objectives: Objectives,
    /// Number of same-group cells this cell dominates.
    pub dominated: usize,
}

/// Workload-group key: rows are only comparable within one of these. The
/// fault plan is part of the key: an injected outage perturbs the workload
/// that actually ran, so a faulted row and a clean row have incomparable
/// baselines. Cap schedules are deliberately *not* in the key — they are
/// competing policies and belong on the same front as static windows.
fn group_key(row: &SummaryRow) -> (usize, &str, u64, &str) {
    (
        row.racks,
        row.workload.as_str(),
        row.load_factor.to_bits(),
        row.faults.as_str(),
    )
}

/// Per-replication group key: the summary key plus the seed, so dominance
/// is counted between scenarios that replayed the *same* perturbed trace.
fn cell_group_key(row: &CellRow) -> (usize, &str, u64, &str, Option<u64>) {
    (
        row.racks,
        row.workload.as_str(),
        row.load_factor.to_bits(),
        row.faults.as_str(),
        row.seed,
    )
}

/// Dominance scan shared by both fronts: for each row, `Some(dominated)`
/// when it is on the front of its group, `None` when it is dominated or has
/// an undefined objective. Rows are bucketed by group first, so the scan is
/// quadratic in the **group** size (a scenario grid: tens to a few thousand
/// rows), not in the total row count of a big multi-workload sweep.
fn front_mask<K: std::hash::Hash + Eq>(
    objectives: &[Objectives],
    keys: &[K],
) -> Vec<Option<usize>> {
    let mut groups: std::collections::HashMap<&K, Vec<usize>> = std::collections::HashMap::new();
    for (i, key) in keys.iter().enumerate() {
        groups.entry(key).or_default().push(i);
    }
    let mut mask = Vec::with_capacity(objectives.len());
    for i in 0..objectives.len() {
        if objectives[i].has_nan() {
            mask.push(None);
            continue;
        }
        let mut dominated = 0usize;
        let mut is_dominated = false;
        for &j in &groups[&keys[i]] {
            if i == j {
                continue;
            }
            if objectives[j].dominates(&objectives[i]) {
                is_dominated = true;
                break;
            }
            if objectives[i].dominates(&objectives[j]) {
                dominated += 1;
            }
        }
        mask.push(if is_dominated { None } else { Some(dominated) });
    }
    mask
}

/// Extract the non-dominated front of every workload group, preserving the
/// input (first-occurrence) order of groups and of rows within a group.
///
/// The front is *exactly* the set of rows no other same-group row
/// dominates; rows with a `NaN` objective are skipped.
pub fn pareto_front(summaries: &[SummaryRow]) -> Vec<ParetoRow> {
    let objectives: Vec<Objectives> = summaries.iter().map(Objectives::of).collect();
    let keys: Vec<_> = summaries.iter().map(group_key).collect();
    front_mask(&objectives, &keys)
        .into_iter()
        .enumerate()
        .filter_map(|(i, dominated)| {
            dominated.map(|dominated| ParetoRow {
                summary: summaries[i].clone(),
                objectives: objectives[i],
                dominated,
            })
        })
        .collect()
}

/// Extract the per-replication front: every cell row no other cell of the
/// same workload group **and seed** dominates (`campaign pareto --cells`).
///
/// Fronting individual replications instead of across-seed means exposes
/// variance-driven trade-offs: a scenario whose mean is non-dominated may
/// still lose every individual seed to a noisier rival, and vice versa.
pub fn pareto_front_cells(cells: &[CellRow]) -> Vec<ParetoCellRow> {
    let objectives: Vec<Objectives> = cells.iter().map(Objectives::of_cell).collect();
    let keys: Vec<_> = cells.iter().map(cell_group_key).collect();
    front_mask(&objectives, &keys)
        .into_iter()
        .enumerate()
        .filter_map(|(i, dominated)| {
            dominated.map(|dominated| ParetoCellRow {
                cell: cells[i].clone(),
                objectives: objectives[i],
                dominated,
            })
        })
        .collect()
}

/// Header of the rendered `pareto.csv`.
pub const PARETO_CSV_HEADER: &str = "racks,workload,load_factor,scenario,window,cap_percent,\
grouping,decision_rule,replications,energy_normalized_mean,work_normalized_mean,\
mean_wait_seconds_mean,dominated";

/// Header of `pareto.csv` when any front row carries a schedule or fault
/// label. Label-free fronts keep the legacy header byte-for-byte.
pub const PARETO_CSV_HEADER_LABELLED: &str =
    "racks,workload,load_factor,scenario,window,cap_percent,\
grouping,decision_rule,schedule,faults,replications,energy_normalized_mean,\
work_normalized_mean,mean_wait_seconds_mean,dominated";

/// Header of the per-replication `pareto --cells` CSV.
pub const PARETO_CELLS_CSV_HEADER: &str = "racks,workload,load_factor,seed,scenario,window,\
cap_percent,grouping,decision_rule,energy_normalized,work_normalized,\
mean_wait_seconds,dominated";

/// Labelled variant of the `pareto --cells` header.
pub const PARETO_CELLS_CSV_HEADER_LABELLED: &str =
    "racks,workload,load_factor,seed,scenario,window,\
cap_percent,grouping,decision_rule,schedule,faults,energy_normalized,work_normalized,\
mean_wait_seconds,dominated";

fn float_field(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        String::new()
    }
}

/// Render a Pareto front as CSV (with header and trailing newline), using
/// the same float formatting as `summary.csv`. The `schedule`/`faults`
/// columns appear only when some front row actually carries a label, so
/// legacy (static-window) campaigns render byte-identically.
pub fn render_pareto_csv(front: &[ParetoRow]) -> String {
    let labelled = front
        .iter()
        .any(|r| r.summary.schedule != "-" || r.summary.faults != "-");
    let mut out = String::from(if labelled {
        PARETO_CSV_HEADER_LABELLED
    } else {
        PARETO_CSV_HEADER
    });
    out.push('\n');
    for row in front {
        let s = &row.summary;
        let labels = if labelled {
            format!("{},{},", csv_field(&s.schedule), csv_field(&s.faults))
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{labels}{},{},{},{},{}\n",
            s.racks,
            csv_field(&s.workload),
            float_field(s.load_factor),
            csv_field(&s.scenario),
            csv_field(&s.window),
            float_field(s.cap_percent),
            csv_field(&s.grouping),
            csv_field(&s.decision_rule),
            s.replications,
            float_field(row.objectives.energy_normalized),
            float_field(row.objectives.work_normalized),
            float_field(row.objectives.mean_wait_seconds),
            row.dominated,
        ));
    }
    out
}

/// Render a per-replication front as CSV (`campaign pareto --cells`), with
/// the same conditional label columns as the summary front.
pub fn render_pareto_cells_csv(front: &[ParetoCellRow]) -> String {
    let labelled = front
        .iter()
        .any(|r| r.cell.schedule != "-" || r.cell.faults != "-");
    let mut out = String::from(if labelled {
        PARETO_CELLS_CSV_HEADER_LABELLED
    } else {
        PARETO_CELLS_CSV_HEADER
    });
    out.push('\n');
    for row in front {
        let c = &row.cell;
        let labels = if labelled {
            format!("{},{},", csv_field(&c.schedule), csv_field(&c.faults))
        } else {
            String::new()
        };
        let seed = c.seed.map(|s| s.to_string()).unwrap_or_default();
        out.push_str(&format!(
            "{},{},{},{seed},{},{},{},{},{},{labels}{},{},{},{}\n",
            c.racks,
            csv_field(&c.workload),
            float_field(c.load_factor),
            csv_field(&c.scenario),
            csv_field(&c.window),
            float_field(c.cap_percent),
            csv_field(&c.grouping),
            csv_field(&c.decision_rule),
            float_field(row.objectives.energy_normalized),
            float_field(row.objectives.work_normalized),
            float_field(row.objectives.mean_wait_seconds),
            row.dominated,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::MetricSummary;

    fn summary(workload: &str, scenario: &str, energy: f64, work: f64, wait: f64) -> SummaryRow {
        let metric = |mean: f64| MetricSummary {
            mean,
            min: mean,
            max: mean,
            stddev: 0.0,
        };
        SummaryRow {
            racks: 1,
            workload: workload.into(),
            load_factor: 1.8,
            scenario: scenario.into(),
            window: "7200+3600".into(),
            cap_percent: 60.0,
            grouping: "grouped".into(),
            decision_rule: "paper-rho".into(),
            schedule: "-".into(),
            faults: "-".into(),
            replications: 2,
            launched_jobs: metric(10.0),
            energy_normalized: metric(energy),
            work_normalized: metric(work),
            mean_wait_seconds: metric(wait),
            peak_power_watts: metric(1000.0),
        }
    }

    #[test]
    fn dominated_rows_are_dropped_and_counted() {
        let rows = vec![
            // Dominates b (less energy, more work, same wait).
            summary("medianjob", "A", 0.5, 0.8, 100.0),
            summary("medianjob", "B", 0.6, 0.7, 100.0),
            // Trade-off against A: more energy but less wait — stays.
            summary("medianjob", "C", 0.7, 0.8, 50.0),
        ];
        let front = pareto_front(&rows);
        let labels: Vec<&str> = front.iter().map(|r| r.summary.scenario.as_str()).collect();
        assert_eq!(labels, ["A", "C"]);
        assert_eq!(front[0].dominated, 1);
        assert_eq!(front[1].dominated, 0);
    }

    #[test]
    fn fronts_are_per_workload_group() {
        let rows = vec![
            summary("medianjob", "A", 0.5, 0.8, 100.0),
            // Strictly better than A on every objective, but a different
            // workload: both rows survive, each on its own front.
            summary("24h", "B", 0.4, 0.9, 50.0),
            // Same workload label, different load factor: still a separate
            // group.
            {
                let mut r = summary("medianjob", "D", 0.4, 0.9, 50.0);
                r.load_factor = 1.0;
                r
            },
        ];
        let front = pareto_front(&rows);
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn nan_objectives_are_excluded_but_do_not_block_others() {
        let rows = vec![
            summary("medianjob", "A", 0.5, 0.8, f64::NAN),
            summary("medianjob", "B", 0.6, 0.7, 100.0),
        ];
        let front = pareto_front(&rows);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].summary.scenario, "B");
        // NaN rows neither dominate nor get dominated.
        assert!(!Objectives::of(&rows[0]).dominates(&Objectives::of(&rows[1])));
        assert!(!Objectives::of(&rows[1]).dominates(&Objectives::of(&rows[0])));
    }

    #[test]
    fn equal_rows_are_both_kept() {
        // Neither strictly better ⇒ neither dominates ⇒ both on the front.
        let rows = vec![
            summary("medianjob", "A", 0.5, 0.8, 100.0),
            summary("medianjob", "B", 0.5, 0.8, 100.0),
        ];
        assert_eq!(pareto_front(&rows).len(), 2);
    }

    fn cell(seed: u64, scenario: &str, energy: f64, work: f64, wait: f64) -> CellRow {
        CellRow {
            index: seed as usize,
            racks: 1,
            workload: "medianjob".into(),
            seed: Some(seed),
            load_factor: 1.8,
            scenario: scenario.into(),
            window: "7200+3600".into(),
            policy: "shut".into(),
            cap_percent: 60.0,
            grouping: "grouped".into(),
            decision_rule: "paper-rho".into(),
            schedule: "-".into(),
            faults: "-".into(),
            launched_jobs: 10,
            completed_jobs: 10,
            killed_jobs: 0,
            pending_jobs: 0,
            work_core_seconds: 100.0,
            energy_joules: 1.0,
            energy_normalized: energy,
            launched_jobs_normalized: 0.5,
            work_normalized: work,
            mean_wait_seconds: wait,
            peak_power_watts: 900.0,
        }
    }

    #[test]
    fn fault_plans_split_groups_but_schedules_compete() {
        // B is strictly better than A but ran under injected outages: the
        // fault plan is part of the group key, so both stay on their own
        // fronts.
        let mut faulted = summary("medianjob", "B", 0.4, 0.9, 50.0);
        faulted.faults = "3x600@7".into();
        let rows = vec![summary("medianjob", "A", 0.5, 0.8, 100.0), faulted];
        assert_eq!(pareto_front(&rows).len(), 2);

        // A cap schedule, by contrast, competes on the same front as the
        // static window it beats.
        let mut scheduled = summary("medianjob", "B", 0.4, 0.9, 50.0);
        scheduled.schedule = "0+43200@80|43200+43200@40".into();
        let rows = vec![summary("medianjob", "A", 0.5, 0.8, 100.0), scheduled];
        let front = pareto_front(&rows);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].summary.scenario, "B");
        assert_eq!(front[0].dominated, 1);
    }

    #[test]
    fn labelled_fronts_add_schedule_and_fault_columns() {
        let mut scheduled = summary("medianjob", "B", 0.4, 0.9, 50.0);
        scheduled.schedule = "0+43200@80|43200+43200@40".into();
        scheduled.faults = "3x600@7".into();
        let csv = render_pareto_csv(&pareto_front(&[scheduled]));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], PARETO_CSV_HEADER_LABELLED);
        assert!(lines[1].contains(",0+43200@80|43200+43200@40,3x600@7,"));
        assert_eq!(
            lines[1].split(',').count(),
            PARETO_CSV_HEADER_LABELLED.split(',').count()
        );
    }

    #[test]
    fn cells_front_counts_dominance_per_seed() {
        let rows = vec![
            // Seed 1: A dominates B.
            cell(1, "A", 0.5, 0.8, 100.0),
            cell(1, "B", 0.6, 0.7, 100.0),
            // Seed 2: the ranking flips — B dominates A. Neither cell of
            // seed 1 may dominate (or save) a cell of seed 2.
            cell(2, "A", 0.6, 0.7, 100.0),
            cell(2, "B", 0.5, 0.8, 100.0),
        ];
        let front = pareto_front_cells(&rows);
        let ids: Vec<(u64, &str)> = front
            .iter()
            .map(|r| (r.cell.seed.unwrap(), r.cell.scenario.as_str()))
            .collect();
        assert_eq!(ids, [(1, "A"), (2, "B")]);
        assert_eq!(front[0].dominated, 1);
        assert_eq!(front[1].dominated, 1);
    }

    #[test]
    fn cells_csv_renders_seed_column() {
        let front = pareto_front_cells(&[cell(7, "A", 0.5, 0.8, 100.0)]);
        let csv = render_pareto_cells_csv(&front);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], PARETO_CELLS_CSV_HEADER);
        assert!(lines[1].starts_with("1,medianjob,1.800000,7,A,7200+3600,60.000000"));
        assert_eq!(
            lines[1].split(',').count(),
            PARETO_CELLS_CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn rendered_csv_has_one_line_per_front_row() {
        let rows = vec![
            summary("medianjob", "A", 0.5, 0.8, 100.0),
            summary("medianjob", "B", 0.6, 0.7, 100.0),
        ];
        let csv = render_pareto_csv(&pareto_front(&rows));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], PARETO_CSV_HEADER);
        assert_eq!(
            lines[1].split(',').count(),
            PARETO_CSV_HEADER.split(',').count()
        );
        assert!(lines[1].starts_with("1,medianjob,1.800000,A,7200+3600,60.000000"));
        assert!(lines[1].ends_with(",1"), "dominated count column");
    }
}

//! Pareto-front extraction over campaign summaries.
//!
//! The window/load-factor sweeps make the grid large enough that "which
//! scenario wins" stops having a single answer: a tighter cap saves energy
//! but costs work and wait. The GreenSlot-style framing (see PAPERS.md) is
//! to report the **non-dominated front** of the energy-vs-performance
//! trade-off instead: a scenario is on the front exactly when no other
//! scenario of the same workload is at least as good on every objective and
//! strictly better on one.
//!
//! Objectives, taken from the across-seed means of `summary.csv`:
//!
//! * `energy_normalized` — minimise;
//! * `work_normalized`   — maximise;
//! * `mean_wait_seconds` — minimise.
//!
//! Fronts are computed per **workload group** (rack scale × workload label ×
//! load factor): comparing a 24 h interval against a 5 h one, or a 1.0-load
//! run against an overloaded 1.8 one, would mix incomparable baselines.
//! Rows with an undefined (`NaN`) objective are excluded — they can neither
//! dominate nor sit on the front.

use crate::agg::SummaryRow;
use crate::sink::csv_field;

/// The objective triple of one summary row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Across-seed mean of the normalised energy (minimise).
    pub energy_normalized: f64,
    /// Across-seed mean of the normalised work (maximise).
    pub work_normalized: f64,
    /// Across-seed mean of the queue wait in seconds (minimise).
    pub mean_wait_seconds: f64,
}

impl Objectives {
    /// Extract the objective means from a summary row.
    pub fn of(row: &SummaryRow) -> Self {
        Objectives {
            energy_normalized: row.energy_normalized.mean,
            work_normalized: row.work_normalized.mean,
            mean_wait_seconds: row.mean_wait_seconds.mean,
        }
    }

    /// Is any objective undefined? Such rows are excluded from the front.
    pub fn has_nan(&self) -> bool {
        self.energy_normalized.is_nan()
            || self.work_normalized.is_nan()
            || self.mean_wait_seconds.is_nan()
    }

    /// Does `self` dominate `other`: at least as good on every objective and
    /// strictly better on at least one? Undefined objectives never dominate.
    pub fn dominates(&self, other: &Objectives) -> bool {
        if self.has_nan() || other.has_nan() {
            return false;
        }
        let no_worse = self.energy_normalized <= other.energy_normalized
            && self.work_normalized >= other.work_normalized
            && self.mean_wait_seconds <= other.mean_wait_seconds;
        let strictly_better = self.energy_normalized < other.energy_normalized
            || self.work_normalized > other.work_normalized
            || self.mean_wait_seconds < other.mean_wait_seconds;
        no_worse && strictly_better
    }
}

/// One row of a Pareto report: a non-dominated summary row plus how many
/// rows of its workload group it dominates.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoRow {
    /// The non-dominated summary row.
    pub summary: SummaryRow,
    /// Its objective triple.
    pub objectives: Objectives,
    /// Number of same-group rows this row dominates.
    pub dominated: usize,
}

/// Workload-group key: rows are only comparable within one of these.
fn group_key(row: &SummaryRow) -> (usize, &str, u64) {
    (row.racks, row.workload.as_str(), row.load_factor.to_bits())
}

/// Extract the non-dominated front of every workload group, preserving the
/// input (first-occurrence) order of groups and of rows within a group.
///
/// The front is *exactly* the set of rows no other same-group row
/// dominates; rows with a `NaN` objective are skipped. Rows are bucketed
/// by group first, so the dominance scan is quadratic in the **group**
/// size (a scenario grid: tens to a few thousand rows), not in the total
/// row count of a big multi-workload sweep.
pub fn pareto_front(summaries: &[SummaryRow]) -> Vec<ParetoRow> {
    let objectives: Vec<Objectives> = summaries.iter().map(Objectives::of).collect();
    let mut groups: std::collections::HashMap<(usize, &str, u64), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, row) in summaries.iter().enumerate() {
        groups.entry(group_key(row)).or_default().push(i);
    }
    let mut front = Vec::new();
    for (i, candidate) in summaries.iter().enumerate() {
        if objectives[i].has_nan() {
            continue;
        }
        let mut dominated = 0usize;
        let mut is_dominated = false;
        for &j in &groups[&group_key(candidate)] {
            if i == j {
                continue;
            }
            if objectives[j].dominates(&objectives[i]) {
                is_dominated = true;
                break;
            }
            if objectives[i].dominates(&objectives[j]) {
                dominated += 1;
            }
        }
        if !is_dominated {
            front.push(ParetoRow {
                summary: candidate.clone(),
                objectives: objectives[i],
                dominated,
            });
        }
    }
    front
}

/// Header of the rendered `pareto.csv`.
pub const PARETO_CSV_HEADER: &str = "racks,workload,load_factor,scenario,window,cap_percent,\
grouping,decision_rule,replications,energy_normalized_mean,work_normalized_mean,\
mean_wait_seconds_mean,dominated";

/// Render a Pareto front as CSV (with header and trailing newline), using
/// the same float formatting as `summary.csv`.
pub fn render_pareto_csv(front: &[ParetoRow]) -> String {
    fn float_field(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.6}")
        } else {
            String::new()
        }
    }
    let mut out = String::from(PARETO_CSV_HEADER);
    out.push('\n');
    for row in front {
        let s = &row.summary;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            s.racks,
            csv_field(&s.workload),
            float_field(s.load_factor),
            csv_field(&s.scenario),
            csv_field(&s.window),
            float_field(s.cap_percent),
            csv_field(&s.grouping),
            csv_field(&s.decision_rule),
            s.replications,
            float_field(row.objectives.energy_normalized),
            float_field(row.objectives.work_normalized),
            float_field(row.objectives.mean_wait_seconds),
            row.dominated,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::MetricSummary;

    fn summary(workload: &str, scenario: &str, energy: f64, work: f64, wait: f64) -> SummaryRow {
        let metric = |mean: f64| MetricSummary {
            mean,
            min: mean,
            max: mean,
            stddev: 0.0,
        };
        SummaryRow {
            racks: 1,
            workload: workload.into(),
            load_factor: 1.8,
            scenario: scenario.into(),
            window: "7200+3600".into(),
            cap_percent: 60.0,
            grouping: "grouped".into(),
            decision_rule: "paper-rho".into(),
            replications: 2,
            launched_jobs: metric(10.0),
            energy_normalized: metric(energy),
            work_normalized: metric(work),
            mean_wait_seconds: metric(wait),
            peak_power_watts: metric(1000.0),
        }
    }

    #[test]
    fn dominated_rows_are_dropped_and_counted() {
        let rows = vec![
            // Dominates b (less energy, more work, same wait).
            summary("medianjob", "A", 0.5, 0.8, 100.0),
            summary("medianjob", "B", 0.6, 0.7, 100.0),
            // Trade-off against A: more energy but less wait — stays.
            summary("medianjob", "C", 0.7, 0.8, 50.0),
        ];
        let front = pareto_front(&rows);
        let labels: Vec<&str> = front.iter().map(|r| r.summary.scenario.as_str()).collect();
        assert_eq!(labels, ["A", "C"]);
        assert_eq!(front[0].dominated, 1);
        assert_eq!(front[1].dominated, 0);
    }

    #[test]
    fn fronts_are_per_workload_group() {
        let rows = vec![
            summary("medianjob", "A", 0.5, 0.8, 100.0),
            // Strictly better than A on every objective, but a different
            // workload: both rows survive, each on its own front.
            summary("24h", "B", 0.4, 0.9, 50.0),
            // Same workload label, different load factor: still a separate
            // group.
            {
                let mut r = summary("medianjob", "D", 0.4, 0.9, 50.0);
                r.load_factor = 1.0;
                r
            },
        ];
        let front = pareto_front(&rows);
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn nan_objectives_are_excluded_but_do_not_block_others() {
        let rows = vec![
            summary("medianjob", "A", 0.5, 0.8, f64::NAN),
            summary("medianjob", "B", 0.6, 0.7, 100.0),
        ];
        let front = pareto_front(&rows);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].summary.scenario, "B");
        // NaN rows neither dominate nor get dominated.
        assert!(!Objectives::of(&rows[0]).dominates(&Objectives::of(&rows[1])));
        assert!(!Objectives::of(&rows[1]).dominates(&Objectives::of(&rows[0])));
    }

    #[test]
    fn equal_rows_are_both_kept() {
        // Neither strictly better ⇒ neither dominates ⇒ both on the front.
        let rows = vec![
            summary("medianjob", "A", 0.5, 0.8, 100.0),
            summary("medianjob", "B", 0.5, 0.8, 100.0),
        ];
        assert_eq!(pareto_front(&rows).len(), 2);
    }

    #[test]
    fn rendered_csv_has_one_line_per_front_row() {
        let rows = vec![
            summary("medianjob", "A", 0.5, 0.8, 100.0),
            summary("medianjob", "B", 0.6, 0.7, 100.0),
        ];
        let csv = render_pareto_csv(&pareto_front(&rows));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], PARETO_CSV_HEADER);
        assert_eq!(
            lines[1].split(',').count(),
            PARETO_CSV_HEADER.split(',').count()
        );
        assert!(lines[1].starts_with("1,medianjob,1.800000,A,7200+3600,60.000000"));
        assert!(lines[1].ends_with(",1"), "dominated count column");
    }
}

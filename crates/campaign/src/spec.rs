//! Declarative campaign specifications and their grid expansion.
//!
//! A [`CampaignSpec`] describes a whole experiment campaign the way the
//! paper's evaluation is laid out: a grid of powercap policies × cap
//! fractions × ablation knobs (grouping strategy, decision rule) × workload
//! intervals × seed replications × rack scales. [`CampaignSpec::expand`]
//! turns the description into concrete [`CampaignCell`]s with **stable,
//! dense indices** — the executor shards cells across threads by index, and
//! every aggregation step orders by index, so the expansion order *is* the
//! determinism contract of the whole subsystem.

use apc_core::PowercapPolicy;
use apc_power::bonus::GroupingStrategy;
use apc_power::tradeoff::DecisionRule;
use apc_replay::scenario::{CapSchedule, CapWindow, FaultPlan};
use apc_replay::Scenario;
use apc_rjms::time::HOUR;
use apc_workload::IntervalKind;

/// One cap-window placement of a window-sweep axis: a start fraction in
/// `[0, 1]` (0 = the window starts at the interval begin, 1 = it ends at the
/// interval end, 0.5 = centred — the paper's placement) plus a duration in
/// seconds. The duration is clamped to the interval before placement, so a
/// sweep written for 5-hour intervals stays valid on shorter ones.
pub type WindowPlacement = (f64, u64);

/// One value of the cap-window axis: the set of windows a single scenario
/// replays. The paper's evaluation uses one centred 1-hour window
/// ([`SINGLE_PAPER_WINDOW`]); multi-window values cap two or more disjoint
/// slots of the same interval.
pub type WindowSet = Vec<WindowPlacement>;

/// The paper's window placement: one 1-hour window centred in the interval.
pub const SINGLE_PAPER_WINDOW: WindowPlacement = (0.5, HOUR);

/// Place one window set inside an interval of `duration` seconds: clamp
/// each window's duration to the interval, position its start by the start
/// fraction, and reject overlapping placements (two caps on the same slot
/// would silently resolve to one, making the sweep lie about its grid).
pub fn place_windows(set: &[WindowPlacement], duration: u64) -> Result<Vec<CapWindow>, String> {
    let mut placed = Vec::with_capacity(set.len());
    for &(fraction, window_duration) in set {
        if !(0.0..=1.0).contains(&fraction) || !fraction.is_finite() {
            return Err(format!(
                "window start fraction must be in [0, 1], got {fraction}"
            ));
        }
        if window_duration == 0 {
            return Err("window duration must be >= 1 second".to_string());
        }
        let clamped = window_duration.min(duration);
        let slack = duration - clamped;
        let start = (fraction * slack as f64).round() as u64;
        placed.push(CapWindow::new(start, clamped));
    }
    let mut sorted = placed.clone();
    sorted.sort_by_key(|w| w.start);
    for pair in sorted.windows(2) {
        if pair[0].end() > pair[1].start {
            return Err(format!(
                "cap windows overlap once placed in a {duration} s interval: \
                 [{}, {}) and [{}, {})",
                pair[0].start,
                pair[0].end(),
                pair[1].start,
                pair[1].end()
            ));
        }
    }
    Ok(placed)
}

/// Where the replayed workload comes from.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// The calibrated synthetic Curie generator, driven by the spec's
    /// interval × seed grid.
    Synthetic,
    /// One fixed trace shared by every cell (e.g. parsed from an SWF file).
    /// The interval and seed axes collapse: replays are deterministic, so
    /// replications of an identical trace would produce identical rows.
    Fixed(std::sync::Arc<apc_workload::Trace>),
}

/// The workload coordinate of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellWorkload {
    /// A synthetic interval replayed with a generator seed at an arrival
    /// load factor.
    Synthetic {
        /// Interval flavour.
        interval: IntervalKind,
        /// Generator seed.
        seed: u64,
        /// `f64::to_bits` of the generator's arrival load factor (stored as
        /// bits so the coordinate stays `Eq`/`Hash`-able).
        load_bits: u64,
    },
    /// The campaign's fixed (SWF) trace.
    Fixed,
}

impl CellWorkload {
    /// Label used in result tables ("medianjob", "24h", "swf", …).
    pub fn label(&self) -> &'static str {
        match self {
            CellWorkload::Synthetic { interval, .. } => interval.name(),
            CellWorkload::Fixed => "swf",
        }
    }

    /// The generator seed, or `None` for a fixed trace. (Fixed traces used
    /// to report seed 0, which made an SWF row indistinguishable from a
    /// legitimate synthetic `seed=0` row — the workload kind is now explicit
    /// in every key derived from this.)
    pub fn seed(&self) -> Option<u64> {
        match self {
            CellWorkload::Synthetic { seed, .. } => Some(*seed),
            CellWorkload::Fixed => None,
        }
    }

    /// The generator's arrival load factor, or `None` for a fixed trace
    /// (whose arrival intensity is whatever the trace file recorded).
    pub fn load_factor(&self) -> Option<f64> {
        match self {
            CellWorkload::Synthetic { load_bits, .. } => Some(f64::from_bits(*load_bits)),
            CellWorkload::Fixed => None,
        }
    }
}

/// One concrete experiment: a workload replayed under one scenario.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Dense index in expansion order — the sharding and ordering key.
    pub index: usize,
    /// Platform scale in racks of 90 nodes (>= 56 means the full Curie).
    pub racks: usize,
    /// The workload coordinate.
    pub workload: CellWorkload,
    /// The powercap scenario to replay.
    pub scenario: Scenario,
}

/// A declarative experiment campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Platform scales, in racks of 90 nodes each.
    pub racks: Vec<usize>,
    /// Workload intervals (ignored when the campaign runs on a fixed trace).
    pub intervals: Vec<IntervalKind>,
    /// Generator seeds — one replication per seed (ignored for fixed traces).
    pub seeds: Vec<u64>,
    /// Policies applied to the capped cells.
    pub policies: Vec<PowercapPolicy>,
    /// Cap fractions in `(0, 1)`, e.g. `[0.8, 0.6, 0.4]`.
    pub cap_fractions: Vec<f64>,
    /// Also run the uncapped "100 %/None" baseline for every workload.
    pub include_baseline: bool,
    /// Cap-window sweep axis: each value is the window set one scenario
    /// replays — `[(0.5, 3600)]` is the paper's centred hour; a value with
    /// several placements produces a multi-window scenario.
    pub cap_windows: Vec<WindowSet>,
    /// Time-varying cap-schedule axis: each value is one [`CapSchedule`]
    /// (per-segment fractions, absolute placement), replayed under every
    /// policy × grouping × decision rule. Empty (the default) leaves the
    /// legacy grid — and its fingerprint — untouched.
    pub cap_schedules: Vec<CapSchedule>,
    /// Fault-injection axis: each value is one fault plan crossed with every
    /// scenario of the grid (`None` = the fault-free variant). Empty (the
    /// default) behaves exactly like `[None]` without touching legacy
    /// fingerprints.
    pub faults: Vec<Option<FaultPlan>>,
    /// Switch-off grouping strategies (ablation axis).
    pub groupings: Vec<GroupingStrategy>,
    /// DVFS-vs-shutdown decision rules (ablation axis).
    pub decision_rules: Vec<DecisionRule>,
    /// Arrival load-factor sweep handed to the synthetic generator — one
    /// workload replication per (interval, seed, load) triple (ignored for
    /// fixed traces).
    pub load_factors: Vec<f64>,
    /// Initial backlog factor handed to the synthetic generator.
    pub backlog_factor: f64,
    /// Seeded per-user fair-share history, in core-hours.
    pub initial_fairshare_core_hours: f64,
}

impl Default for CampaignSpec {
    /// The paper's full evaluation grid: {SHUT, DVFS, MIX} × {80, 60, 40 %}
    /// plus the baseline, over all four intervals, one seed, at a 2-rack
    /// reduced scale.
    fn default() -> Self {
        CampaignSpec {
            racks: vec![2],
            intervals: IntervalKind::ALL.to_vec(),
            seeds: vec![2012],
            policies: vec![
                PowercapPolicy::Shut,
                PowercapPolicy::Dvfs,
                PowercapPolicy::Mix,
            ],
            cap_fractions: vec![0.80, 0.60, 0.40],
            include_baseline: true,
            cap_windows: vec![vec![SINGLE_PAPER_WINDOW]],
            cap_schedules: Vec::new(),
            faults: Vec::new(),
            groupings: vec![GroupingStrategy::Grouped],
            decision_rules: vec![DecisionRule::PaperRho],
            load_factors: vec![1.8],
            backlog_factor: 1.3,
            initial_fairshare_core_hours: 1_000.0,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold bytes into a running FNV-1a hash.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// `a * b`, or a clear complaint naming the axes that overflowed.
fn checked_mul(a: usize, b: usize, what: &str) -> Result<usize, String> {
    a.checked_mul(b)
        .ok_or_else(|| format!("campaign grid overflows usize while multiplying {what}"))
}

impl CampaignSpec {
    /// The paper grid with `replications` consecutive seeds starting at
    /// `base_seed`.
    pub fn paper(base_seed: u64, replications: usize) -> Self {
        CampaignSpec {
            seeds: (0..replications as u64).map(|i| base_seed + i).collect(),
            ..CampaignSpec::default()
        }
    }

    /// A stable 64-bit fingerprint of the spec plus its workload source.
    ///
    /// Two `(spec, source)` pairs produce the same fingerprint exactly when
    /// they expand to the same cell grid and replay the same workloads — the
    /// resume machinery compares it against the hash recorded in a result
    /// store's manifest before skipping any cell. Floats are hashed by bit
    /// pattern, fixed traces by folding every job field, so the fingerprint
    /// is independent of process, platform and run.
    pub fn fingerprint(&self, source: &TraceSource) -> u64 {
        let mut h = FNV_OFFSET;
        let mut put = |label: &str, value: &str| {
            fnv1a(&mut h, label.as_bytes());
            fnv1a(&mut h, b"=");
            fnv1a(&mut h, value.as_bytes());
            fnv1a(&mut h, b";");
        };
        for &r in &self.racks {
            put("rack", &r.to_string());
        }
        for &i in &self.intervals {
            put("interval", i.name());
        }
        for &s in &self.seeds {
            put("seed", &s.to_string());
        }
        for &p in &self.policies {
            put("policy", p.name());
        }
        for &f in &self.cap_fractions {
            put("cap", &format!("{:016x}", f.to_bits()));
        }
        put("baseline", if self.include_baseline { "1" } else { "0" });
        for set in &self.cap_windows {
            let value: Vec<String> = set
                .iter()
                .map(|(f, d)| format!("{:016x}x{d}", f.to_bits()))
                .collect();
            put("windows", &value.join("|"));
        }
        // The schedule and fault axes are hashed only when present, so every
        // legacy (static-window) spec keeps its pre-refactor fingerprint and
        // existing stores resume cleanly.
        for s in &self.cap_schedules {
            let value: Vec<String> = s
                .segments()
                .iter()
                .map(|seg| {
                    format!(
                        "{}+{}@{:016x}",
                        seg.start,
                        seg.duration,
                        seg.fraction.to_bits()
                    )
                })
                .collect();
            put("schedule", &value.join("|"));
        }
        for f in &self.faults {
            match f {
                None => put("fault", "-"),
                Some(plan) => put("fault", &plan.label()),
            }
        }
        for &g in &self.groupings {
            put("grouping", g.name());
        }
        for &d in &self.decision_rules {
            put("rule", d.name());
        }
        for &l in &self.load_factors {
            put("load", &format!("{:016x}", l.to_bits()));
        }
        put(
            "backlog",
            &format!("{:016x}", self.backlog_factor.to_bits()),
        );
        put(
            "fairshare",
            &format!("{:016x}", self.initial_fairshare_core_hours.to_bits()),
        );
        match source {
            TraceSource::Synthetic => put("source", "synthetic"),
            TraceSource::Fixed(trace) => {
                let mut t = FNV_OFFSET;
                fnv1a(&mut t, &trace.duration.to_le_bytes());
                for job in &trace.jobs {
                    fnv1a(&mut t, &(job.id as u64).to_le_bytes());
                    fnv1a(&mut t, &job.submit_time.to_le_bytes());
                    fnv1a(&mut t, &job.run_time.to_le_bytes());
                    fnv1a(&mut t, &u64::from(job.cores).to_le_bytes());
                    fnv1a(&mut t, &job.requested_time.to_le_bytes());
                    fnv1a(&mut t, &(job.user as u64).to_le_bytes());
                    fnv1a(&mut t, &u64::from(job.app_class).to_le_bytes());
                }
                put("source", &format!("fixed:{t:016x}"));
            }
        }
        h
    }

    /// Check the spec is runnable; returns a human-readable complaint if not.
    pub fn validate(&self) -> Result<(), String> {
        if self.racks.is_empty() {
            return Err("spec has no rack scales".into());
        }
        if let Some(r) = self.racks.iter().find(|&&r| r == 0) {
            return Err(format!("rack scale must be >= 1, got {r}"));
        }
        if self.intervals.is_empty() {
            return Err("spec has no intervals".into());
        }
        if self.seeds.is_empty() {
            return Err("spec has no seeds".into());
        }
        if !self.include_baseline
            && self.cap_schedules.is_empty()
            && (self.policies.is_empty() || self.cap_fractions.is_empty())
        {
            return Err(
                "spec expands to zero cells: no baseline and an empty policy/cap grid".into(),
            );
        }
        if let Some(f) = self
            .cap_fractions
            .iter()
            .find(|&&f| !(f > 0.0 && f < 1.0 && f.is_finite()))
        {
            return Err(format!("cap fraction must be in (0, 1), got {f}"));
        }
        if self.load_factors.is_empty() {
            return Err("spec has no load factors".into());
        }
        if let Some(l) = self
            .load_factors
            .iter()
            .find(|&&l| !(l.is_finite() && l > 0.0))
        {
            return Err(format!("load factor must be > 0, got {l}"));
        }
        for set in &self.cap_windows {
            if set.is_empty() {
                return Err("a cap-window axis value has no windows (use [(0.5, 3600)] \
                            for the paper placement)"
                    .into());
            }
            // Fractions and durations are checkable here; overlap depends on
            // the replayed duration, which validate() does not know — a
            // fixed (SWF) campaign ignores the interval axis entirely — so
            // placement is checked by [`validate_for`](Self::validate_for)
            // and re-checked during expansion per actual duration.
            for &(fraction, duration) in set {
                if !(0.0..=1.0).contains(&fraction) || !fraction.is_finite() {
                    return Err(format!(
                        "window start fraction must be in [0, 1], got {fraction}"
                    ));
                }
                if duration == 0 {
                    return Err("window duration must be >= 1 second".to_string());
                }
            }
        }
        self.reject_duplicate_axis_values()?;
        if self.backlog_factor < 0.0 || !self.backlog_factor.is_finite() {
            return Err(format!(
                "backlog factor must be >= 0, got {}",
                self.backlog_factor
            ));
        }
        if self.groupings.is_empty() || self.decision_rules.is_empty() {
            return Err("spec needs at least one grouping and one decision rule".into());
        }
        // Catch grids too large to even index before any expansion work.
        self.cell_count()?;
        Ok(())
    }

    /// [`validate`](Self::validate) plus window **placement** checks against
    /// the durations `source` will actually replay: every interval of the
    /// grid for a synthetic campaign, the trace's own duration for a fixed
    /// (SWF) one. Checking only the real durations matters — a window set
    /// that overlaps inside a 5 h interval can be perfectly disjoint in a
    /// 24 h SWF trace, and the interval axis is ignored for fixed sources.
    pub fn validate_for(&self, source: &TraceSource) -> Result<(), String> {
        self.validate()?;
        let durations: Vec<u64> = match source {
            TraceSource::Synthetic => self.intervals.iter().map(|i| i.duration()).collect(),
            TraceSource::Fixed(trace) => vec![trace.duration],
        };
        for set in &self.cap_windows {
            for &duration in &durations {
                place_windows(set, duration)?;
            }
        }
        // Schedules are placed absolutely: a segment past the replayed
        // horizon would silently never activate, so reject it up front.
        for schedule in &self.cap_schedules {
            for &duration in &durations {
                if schedule.end() > duration {
                    return Err(format!(
                        "cap schedule ends at {} s but the replayed interval lasts only \
                         {duration} s — later segments would silently never activate",
                        schedule.end()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Reject axes with repeated values: a duplicated seed, cap, window set
    /// or load factor expands into indistinguishable rows that share one
    /// summary group and silently skew its mean/stddev (a duplicated rack or
    /// ablation value likewise doubles rows without widening the grid).
    fn reject_duplicate_axis_values(&self) -> Result<(), String> {
        fn check<T: PartialEq + std::fmt::Debug>(values: &[T], axis: &str) -> Result<(), String> {
            for (i, v) in values.iter().enumerate() {
                if values[..i].contains(v) {
                    return Err(format!(
                        "{axis} axis repeats the value {v:?} — duplicate axis values \
                         expand into indistinguishable rows that skew the summaries"
                    ));
                }
            }
            Ok(())
        }
        fn check_floats(values: &[f64], axis: &str) -> Result<(), String> {
            for (i, v) in values.iter().enumerate() {
                if values[..i].iter().any(|p| p.to_bits() == v.to_bits()) {
                    return Err(format!(
                        "{axis} axis repeats the value {v} — duplicate axis values \
                         expand into indistinguishable rows that skew the summaries"
                    ));
                }
            }
            Ok(())
        }
        check(&self.racks, "rack-scale")?;
        check(&self.intervals, "interval")?;
        check(&self.seeds, "seed")?;
        check_floats(&self.cap_fractions, "cap-fraction")?;
        check_floats(&self.load_factors, "load-factor")?;
        check(&self.cap_windows, "cap-window")?;
        check(&self.cap_schedules, "cap-schedule")?;
        check(&self.faults, "fault")?;
        check(&self.groupings, "grouping")?;
        check(&self.decision_rules, "decision-rule")?;
        Ok(())
    }

    /// The scenarios of one workload cell, in stable order: the baseline
    /// first (once, with the default knobs), then windows × caps × policies
    /// for every grouping × decision-rule combination, then the schedule
    /// axis (schedules × policies per grouping × rule), the whole grid
    /// finally crossed with the fault axis (fault-major, the fault-free
    /// legacy order inside). Errors when a window set overlaps once placed
    /// in an interval of `duration` seconds.
    fn scenarios(&self, duration: u64) -> Result<Vec<Scenario>, String> {
        let mut scenarios = Vec::new();
        if self.include_baseline {
            scenarios.push(Scenario::baseline());
        }
        for &grouping in &self.groupings {
            for &rule in &self.decision_rules {
                for set in &self.cap_windows {
                    let windows = place_windows(set, duration)?;
                    for &fraction in &self.cap_fractions {
                        for &policy in &self.policies {
                            scenarios.push(
                                Scenario::paper(policy, fraction, duration)
                                    .with_windows(windows.clone())
                                    .with_grouping(grouping)
                                    .with_decision_rule(rule),
                            );
                        }
                    }
                }
                for schedule in &self.cap_schedules {
                    for &policy in &self.policies {
                        scenarios.push(
                            Scenario::scheduled(policy, schedule.clone())
                                .with_grouping(grouping)
                                .with_decision_rule(rule),
                        );
                    }
                }
            }
        }
        if !self.faults.is_empty() {
            scenarios = self
                .faults
                .iter()
                .flat_map(|fault| {
                    scenarios.iter().map(move |s| match fault {
                        Some(plan) => s.clone().with_faults(*plan),
                        None => s.clone(),
                    })
                })
                .collect();
        }
        Ok(scenarios)
    }

    /// Expand the grid into concrete cells, densely indexed in a stable
    /// order: racks → interval → seed → load factor → (baseline, then
    /// grouping → rule → window set → cap → policy).
    ///
    /// Errors (instead of silently producing an empty or wrapped grid) when
    /// an axis is zero-sized, a window set overlaps once placed, or the cell
    /// count overflows `usize`.
    pub fn expand(&self, source: &TraceSource) -> Result<Vec<CampaignCell>, String> {
        let total = match source {
            TraceSource::Synthetic => self.cell_count()?,
            TraceSource::Fixed(_) => checked_mul(
                self.racks.len(),
                self.per_workload_count()?,
                "racks × scenarios",
            )?,
        };
        let workloads: Vec<(CellWorkload, u64)> = match source {
            TraceSource::Fixed(trace) => vec![(CellWorkload::Fixed, trace.duration)],
            TraceSource::Synthetic => {
                let mut w = Vec::new();
                for &interval in &self.intervals {
                    for &seed in &self.seeds {
                        for &load in &self.load_factors {
                            w.push((
                                CellWorkload::Synthetic {
                                    interval,
                                    seed,
                                    load_bits: load.to_bits(),
                                },
                                interval.duration(),
                            ));
                        }
                    }
                }
                w
            }
        };
        let mut cells = Vec::with_capacity(total);
        for &racks in &self.racks {
            for &(workload, duration) in &workloads {
                for scenario in self.scenarios(duration)? {
                    cells.push(CampaignCell {
                        index: cells.len(),
                        racks,
                        workload,
                        scenario,
                    });
                }
            }
        }
        debug_assert_eq!(cells.len(), total);
        Ok(cells)
    }

    /// Scenarios per workload cell: the optional baseline plus the capped
    /// grid and the schedule axis, all crossed with the fault axis, with
    /// overflow and zero-sized-axis checks.
    fn per_workload_count(&self) -> Result<usize, String> {
        if !self.include_baseline && self.cap_schedules.is_empty() {
            for (len, axis) in [
                (self.policies.len(), "policies"),
                (self.cap_fractions.len(), "cap fractions"),
                (self.cap_windows.len(), "cap windows"),
                (self.groupings.len(), "groupings"),
                (self.decision_rules.len(), "decision rules"),
            ] {
                if len == 0 {
                    return Err(format!(
                        "campaign grid has a zero-sized {axis} axis and no baseline — \
                         it would expand to zero cells"
                    ));
                }
            }
        }
        let ablations = checked_mul(
            self.groupings.len(),
            self.decision_rules.len(),
            "groupings × rules",
        )?;
        let capped = checked_mul(
            checked_mul(
                ablations,
                self.cap_windows.len(),
                "groupings × rules × windows",
            )?,
            checked_mul(
                self.cap_fractions.len(),
                self.policies.len(),
                "caps × policies",
            )?,
            "groupings × rules × windows × caps × policies",
        )?;
        let scheduled = checked_mul(
            checked_mul(
                ablations,
                self.cap_schedules.len(),
                "groupings × rules × schedules",
            )?,
            self.policies.len(),
            "groupings × rules × schedules × policies",
        )?;
        let base = capped
            .checked_add(scheduled)
            .and_then(|n| n.checked_add(usize::from(self.include_baseline)))
            .ok_or_else(|| "campaign grid overflows usize adding the baseline".to_string())?;
        checked_mul(base, self.faults.len().max(1), "scenarios × faults")
    }

    /// Number of cells [`expand`](Self::expand) would produce for a
    /// synthetic-source campaign.
    ///
    /// Uses checked arithmetic throughout: a zero-sized axis or a product
    /// beyond `usize::MAX` is reported as an error rather than silently
    /// collapsing the grid to zero or wrapping.
    pub fn cell_count(&self) -> Result<usize, String> {
        for (len, axis) in [
            (self.racks.len(), "rack-scale"),
            (self.intervals.len(), "interval"),
            (self.seeds.len(), "seed"),
            (self.load_factors.len(), "load-factor"),
        ] {
            if len == 0 {
                return Err(format!("campaign grid has a zero-sized {axis} axis"));
            }
        }
        let per_workload = self.per_workload_count()?;
        if per_workload == 0 {
            return Err(
                "campaign grid expands to zero scenarios per workload (no baseline and an \
                 empty policy/cap grid)"
                    .to_string(),
            );
        }
        checked_mul(
            checked_mul(
                checked_mul(self.racks.len(), self.intervals.len(), "racks × intervals")?,
                self.load_factors.len(),
                "racks × intervals × loads",
            )?,
            checked_mul(self.seeds.len(), per_workload, "seeds × scenarios")?,
            "racks × intervals × loads × seeds × scenarios",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_the_paper_grid() {
        let spec = CampaignSpec::default();
        spec.validate().unwrap();
        // 1 rack scale × 4 intervals × 1 seed × (1 baseline + 3 × 3 capped).
        assert_eq!(spec.cell_count().unwrap(), 4 * 10);
        let cells = spec.expand(&TraceSource::Synthetic).unwrap();
        assert_eq!(cells.len(), spec.cell_count().unwrap());
    }

    #[test]
    fn indices_are_dense_and_stable() {
        let spec = CampaignSpec::paper(100, 3);
        let a = spec.expand(&TraceSource::Synthetic).unwrap();
        let b = spec.expand(&TraceSource::Synthetic).unwrap();
        for (i, (ca, cb)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(ca.index, i);
            assert_eq!(cb.index, i);
            assert_eq!(ca.scenario, cb.scenario);
            assert_eq!(ca.workload, cb.workload);
        }
        assert_eq!(a.len(), 4 * 3 * 10);
    }

    #[test]
    fn baseline_is_emitted_once_per_workload() {
        let spec = CampaignSpec {
            groupings: vec![GroupingStrategy::Grouped, GroupingStrategy::Scattered],
            decision_rules: vec![DecisionRule::PaperRho, DecisionRule::WorkMaximizing],
            intervals: vec![IntervalKind::MedianJob],
            ..CampaignSpec::default()
        };
        let cells = spec.expand(&TraceSource::Synthetic).unwrap();
        let baselines = cells
            .iter()
            .filter(|c| c.scenario.cap_fraction.is_none())
            .count();
        assert_eq!(baselines, 1);
        // 1 baseline + 2 groupings × 2 rules × 3 caps × 3 policies.
        assert_eq!(cells.len(), 1 + 2 * 2 * 3 * 3);
        assert_eq!(cells.len(), spec.cell_count().unwrap());
    }

    #[test]
    fn fixed_source_collapses_the_workload_axes() {
        let platform = apc_rjms::cluster::Platform::curie_scaled(1);
        let trace = apc_workload::CurieTraceGenerator::new(1)
            .load_factor(0.3)
            .backlog_factor(0.0)
            .generate_for(&platform);
        let spec = CampaignSpec::paper(1, 5);
        let cells = spec
            .expand(&TraceSource::Fixed(std::sync::Arc::new(trace)))
            .unwrap();
        assert_eq!(
            cells.len(),
            10,
            "intervals × seeds collapse to one workload"
        );
        assert!(cells.iter().all(|c| c.workload == CellWorkload::Fixed));
        assert_eq!(cells[0].workload.label(), "swf");
        // Regression: a fixed trace used to report seed 0, conflating its
        // rows with a legitimate synthetic seed=0 replication.
        assert_eq!(cells[0].workload.seed(), None);
        assert_eq!(cells[0].workload.load_factor(), None);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let ok = CampaignSpec::default();
        assert!(ok.validate().is_ok());
        let bad = CampaignSpec {
            cap_fractions: vec![1.5],
            ..CampaignSpec::default()
        };
        assert!(bad.validate().unwrap_err().contains("cap fraction"));
        let bad = CampaignSpec {
            seeds: vec![],
            ..CampaignSpec::default()
        };
        assert!(bad.validate().unwrap_err().contains("seeds"));
        let bad = CampaignSpec {
            racks: vec![0],
            ..CampaignSpec::default()
        };
        assert!(bad.validate().unwrap_err().contains("rack"));
        let bad = CampaignSpec {
            include_baseline: false,
            policies: vec![],
            ..CampaignSpec::default()
        };
        assert!(bad.validate().unwrap_err().contains("zero cells"));
    }

    #[test]
    fn cell_count_reports_overflow_instead_of_wrapping() {
        let spec = CampaignSpec {
            racks: vec![1; 1 << 17],
            seeds: vec![0; 1 << 17],
            cap_fractions: vec![0.5; 1 << 17],
            policies: vec![apc_core::PowercapPolicy::Shut; 1 << 17],
            ..CampaignSpec::default()
        };
        let err = spec.cell_count().unwrap_err();
        assert!(err.contains("overflow"), "unexpected error: {err}");
        assert!(spec.expand(&TraceSource::Synthetic).is_err());
        assert!(spec.validate().is_err());
    }

    #[test]
    fn expand_rejects_zero_sized_axes() {
        let spec = CampaignSpec {
            intervals: vec![],
            ..CampaignSpec::default()
        };
        let err = spec.expand(&TraceSource::Synthetic).unwrap_err();
        assert!(err.contains("zero-sized interval axis"), "got: {err}");
        // A fixed-source expansion ignores the interval axis but still
        // rejects an all-empty scenario grid.
        let spec = CampaignSpec {
            include_baseline: false,
            policies: vec![],
            ..CampaignSpec::default()
        };
        let platform = apc_rjms::cluster::Platform::curie_scaled(1);
        let trace = apc_workload::CurieTraceGenerator::new(1)
            .load_factor(0.3)
            .backlog_factor(0.0)
            .generate_for(&platform);
        let err = spec
            .expand(&TraceSource::Fixed(std::sync::Arc::new(trace)))
            .unwrap_err();
        assert!(err.contains("zero-sized policies axis"), "got: {err}");
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let spec = CampaignSpec::paper(2012, 3);
        let a = spec.fingerprint(&TraceSource::Synthetic);
        let b = spec.fingerprint(&TraceSource::Synthetic);
        assert_eq!(a, b, "fingerprint must be deterministic");
        // Any grid knob changes the hash.
        for changed in [
            CampaignSpec {
                seeds: vec![2012, 2013],
                ..spec.clone()
            },
            CampaignSpec {
                cap_fractions: vec![0.8, 0.6],
                ..spec.clone()
            },
            CampaignSpec {
                include_baseline: false,
                ..spec.clone()
            },
            CampaignSpec {
                load_factors: vec![1.9],
                ..spec.clone()
            },
            CampaignSpec {
                cap_windows: vec![vec![(0.25, 1800)]],
                ..spec.clone()
            },
        ] {
            assert_ne!(changed.fingerprint(&TraceSource::Synthetic), a);
        }
        // The workload source is part of the identity.
        let platform = apc_rjms::cluster::Platform::curie_scaled(1);
        let trace = apc_workload::CurieTraceGenerator::new(5)
            .load_factor(0.3)
            .backlog_factor(0.0)
            .generate_for(&platform);
        let fixed = TraceSource::Fixed(std::sync::Arc::new(trace.clone()));
        assert_ne!(spec.fingerprint(&fixed), a);
        // Same trace content ⇒ same hash, regardless of the Arc identity.
        let fixed2 = TraceSource::Fixed(std::sync::Arc::new(trace));
        assert_eq!(spec.fingerprint(&fixed), spec.fingerprint(&fixed2));
    }

    #[test]
    fn scenario_windows_follow_the_interval_duration() {
        let spec = CampaignSpec {
            intervals: vec![IntervalKind::Day24h],
            ..CampaignSpec::default()
        };
        let cells = spec.expand(&TraceSource::Synthetic).unwrap();
        let capped = cells
            .iter()
            .find(|c| c.scenario.cap_fraction.is_some())
            .unwrap();
        let w = capped.scenario.window().unwrap();
        assert_eq!(w.duration(), 3600);
        assert_eq!(w.start, (24 * 3600 - 3600) / 2);
    }

    #[test]
    fn window_and_load_sweeps_multiply_the_grid() {
        let spec = CampaignSpec {
            intervals: vec![IntervalKind::MedianJob],
            cap_windows: vec![
                vec![SINGLE_PAPER_WINDOW],
                vec![(0.0, 1800)],
                vec![(0.0, 1800), (1.0, 1800)],
            ],
            load_factors: vec![1.0, 1.8],
            ..CampaignSpec::default()
        };
        spec.validate().unwrap();
        // 1 rack × 1 interval × 1 seed × 2 loads × (1 baseline + 3 windows ×
        // 3 caps × 3 policies).
        assert_eq!(spec.cell_count().unwrap(), 2 * (1 + 3 * 3 * 3));
        let cells = spec.expand(&TraceSource::Synthetic).unwrap();
        assert_eq!(cells.len(), spec.cell_count().unwrap());
        // Every load factor appears in the workload coordinates.
        let loads: std::collections::BTreeSet<u64> = cells
            .iter()
            .filter_map(|c| c.workload.load_factor().map(f64::to_bits))
            .collect();
        assert_eq!(loads.len(), 2);
        // The multi-window set produces scenarios with two disjoint windows
        // placed at the interval edges.
        let multi = cells
            .iter()
            .find(|c| c.scenario.cap_windows.len() == 2)
            .expect("a multi-window cell");
        let ws = multi.scenario.windows();
        assert_eq!((ws[0].start, ws[0].end), (0, 1800));
        assert_eq!((ws[1].start, ws[1].end), (16_200, 18_000));
    }

    #[test]
    fn window_placement_clamps_and_rejects_overlap() {
        // A 2-hour window in a 1-hour-equivalent slot clamps to the span.
        let placed = place_windows(&[(0.5, 48 * 3600)], 18_000).unwrap();
        assert_eq!((placed[0].start, placed[0].duration), (0, 18_000));
        // Fractions place within the slack.
        let placed = place_windows(&[(1.0, 3600)], 18_000).unwrap();
        assert_eq!(placed[0].start, 14_400);
        assert_eq!(placed[0].end(), 18_000);
        // Overlapping placements are an error, not a silent merge.
        let err = place_windows(&[(0.0, 10_000), (0.5, 10_000)], 18_000).unwrap_err();
        assert!(err.contains("overlap"), "got: {err}");
        // And a spec carrying such a sweep fails source-aware validation
        // (and expansion) up front.
        let spec = CampaignSpec {
            cap_windows: vec![vec![(0.0, 10_000), (0.5, 10_000)]],
            intervals: vec![IntervalKind::MedianJob],
            ..CampaignSpec::default()
        };
        assert!(spec
            .validate_for(&TraceSource::Synthetic)
            .unwrap_err()
            .contains("overlap"));
        assert!(spec.expand(&TraceSource::Synthetic).is_err());
        // Bad fractions and zero durations are caught too.
        assert!(place_windows(&[(1.5, 3600)], 18_000).is_err());
        assert!(place_windows(&[(0.5, 0)], 18_000).is_err());
        let empty = CampaignSpec {
            cap_windows: vec![vec![]],
            ..CampaignSpec::default()
        };
        assert!(empty.validate().unwrap_err().contains("no windows"));
    }

    #[test]
    fn fixed_source_window_placement_is_checked_against_the_trace_duration() {
        // Two disjoint 3-hour windows fit a 24 h trace but overlap inside
        // the 5 h intervals of the (ignored) synthetic axis. A fixed-source
        // campaign must validate against the trace duration only.
        let spec = CampaignSpec {
            cap_windows: vec![vec![(0.0, 3 * 3600), (1.0, 3 * 3600)]],
            intervals: vec![IntervalKind::MedianJob],
            ..CampaignSpec::default()
        };
        // Static validity passes either way; synthetic placement rejects.
        spec.validate().unwrap();
        assert!(spec
            .validate_for(&TraceSource::Synthetic)
            .unwrap_err()
            .contains("overlap"));
        // A day-long fixed trace accepts the same sweep.
        let platform = apc_rjms::cluster::Platform::curie_scaled(1);
        let trace = apc_workload::CurieTraceGenerator::new(1)
            .interval(IntervalKind::Day24h)
            .load_factor(0.3)
            .backlog_factor(0.0)
            .generate_for(&platform);
        let fixed = TraceSource::Fixed(std::sync::Arc::new(trace));
        spec.validate_for(&fixed).unwrap();
        let cells = spec.expand(&fixed).unwrap();
        let multi = cells
            .iter()
            .find(|c| c.scenario.cap_windows.len() == 2)
            .expect("a multi-window SWF cell");
        let ws = multi.scenario.windows();
        assert_eq!((ws[0].start, ws[0].end), (0, 10_800));
        assert_eq!((ws[1].start, ws[1].end), (75_600, 86_400));
    }

    fn day_night_schedule() -> CapSchedule {
        use apc_replay::scenario::CapSegment;
        CapSchedule::new(vec![
            CapSegment::new(0, 2 * 3600, 0.8),
            CapSegment::new(2 * 3600, 3 * 3600, 0.4),
        ])
        .unwrap()
    }

    #[test]
    fn schedule_and_fault_axes_multiply_the_grid() {
        let spec = CampaignSpec {
            intervals: vec![IntervalKind::MedianJob],
            cap_schedules: vec![day_night_schedule()],
            faults: vec![None, Some(FaultPlan::new(3, 600, 7))],
            ..CampaignSpec::default()
        };
        spec.validate_for(&TraceSource::Synthetic).unwrap();
        // (1 baseline + 1 window set × 3 caps × 3 policies + 1 schedule ×
        // 3 policies) × 2 fault values.
        assert_eq!(spec.cell_count().unwrap(), (1 + 9 + 3) * 2);
        let cells = spec.expand(&TraceSource::Synthetic).unwrap();
        assert_eq!(cells.len(), spec.cell_count().unwrap());
        // Fault-free cells come first (fault-major order) and replicate the
        // legacy grid exactly.
        let fault_free: Vec<_> = cells
            .iter()
            .filter(|c| c.scenario.faults.is_none())
            .collect();
        assert_eq!(fault_free.len(), 13);
        let legacy = CampaignSpec {
            intervals: vec![IntervalKind::MedianJob],
            ..CampaignSpec::default()
        };
        let legacy_cells = legacy.expand(&TraceSource::Synthetic).unwrap();
        for (a, b) in legacy_cells.iter().zip(fault_free.iter()) {
            assert_eq!(a.scenario, b.scenario);
        }
        // Scheduled cells expose segment windows and the schedule label.
        let scheduled = cells
            .iter()
            .find(|c| c.scenario.cap_schedule.is_some())
            .unwrap();
        assert_eq!(scheduled.scenario.windows().len(), 2);
        assert_eq!(
            scheduled.scenario.schedule_label(),
            "0+7200@80|7200+10800@40"
        );
        // Faulty cells carry the plan's label.
        let faulty = cells.iter().find(|c| c.scenario.faults.is_some()).unwrap();
        assert_eq!(faulty.scenario.fault_label(), "3x600@7");
    }

    #[test]
    fn new_axes_leave_legacy_fingerprints_unchanged() {
        let spec = CampaignSpec::paper(2012, 2);
        let base = spec.fingerprint(&TraceSource::Synthetic);
        // Adding either axis changes the fingerprint; explicitly-empty axes
        // (the legacy shape) do not.
        let with_schedule = CampaignSpec {
            cap_schedules: vec![day_night_schedule()],
            ..spec.clone()
        };
        assert_ne!(with_schedule.fingerprint(&TraceSource::Synthetic), base);
        let with_faults = CampaignSpec {
            faults: vec![Some(FaultPlan::new(1, 600, 3))],
            ..spec.clone()
        };
        assert_ne!(with_faults.fingerprint(&TraceSource::Synthetic), base);
        let nofault_axis = CampaignSpec {
            faults: vec![None],
            ..spec.clone()
        };
        assert_ne!(
            nofault_axis.fingerprint(&TraceSource::Synthetic),
            base,
            "an explicit [None] fault axis is a different spec than no axis"
        );
        let empty_axes = CampaignSpec {
            cap_schedules: Vec::new(),
            faults: Vec::new(),
            ..spec.clone()
        };
        assert_eq!(empty_axes.fingerprint(&TraceSource::Synthetic), base);
    }

    #[test]
    fn schedules_past_the_horizon_are_rejected() {
        use apc_replay::scenario::CapSegment;
        let spec = CampaignSpec {
            intervals: vec![IntervalKind::MedianJob], // 5 h
            cap_schedules: vec![CapSchedule::new(vec![CapSegment::new(0, 24 * 3600, 0.5)]).unwrap()],
            ..CampaignSpec::default()
        };
        spec.validate().unwrap();
        let err = spec.validate_for(&TraceSource::Synthetic).unwrap_err();
        assert!(err.contains("never activate"), "got: {err}");
        // The same schedule fits a 24 h fixed trace.
        let platform = apc_rjms::cluster::Platform::curie_scaled(1);
        let trace = apc_workload::CurieTraceGenerator::new(1)
            .interval(IntervalKind::Day24h)
            .load_factor(0.3)
            .backlog_factor(0.0)
            .generate_for(&platform);
        spec.validate_for(&TraceSource::Fixed(std::sync::Arc::new(trace)))
            .unwrap();
    }

    #[test]
    fn duplicate_schedule_and_fault_values_are_rejected() {
        let dup_schedule = CampaignSpec {
            cap_schedules: vec![day_night_schedule(), day_night_schedule()],
            ..CampaignSpec::default()
        };
        let err = dup_schedule.validate().unwrap_err();
        assert!(err.contains("cap-schedule") && err.contains("repeats"));
        let dup_fault = CampaignSpec {
            faults: vec![None, None],
            ..CampaignSpec::default()
        };
        let err = dup_fault.validate().unwrap_err();
        assert!(err.contains("fault") && err.contains("repeats"));
    }

    #[test]
    fn schedule_only_grid_needs_no_baseline_or_windows() {
        let spec = CampaignSpec {
            include_baseline: false,
            cap_fractions: vec![],
            cap_windows: vec![],
            cap_schedules: vec![day_night_schedule()],
            intervals: vec![IntervalKind::MedianJob],
            ..CampaignSpec::default()
        };
        spec.validate().unwrap();
        assert_eq!(spec.cell_count().unwrap(), 3, "3 policies × 1 schedule");
        let cells = spec.expand(&TraceSource::Synthetic).unwrap();
        assert!(cells.iter().all(|c| c.scenario.cap_schedule.is_some()));
    }

    #[test]
    fn duplicate_axis_values_are_rejected() {
        for (spec, what) in [
            (
                CampaignSpec {
                    seeds: vec![2012, 2013, 2012],
                    ..CampaignSpec::default()
                },
                "seed",
            ),
            (
                CampaignSpec {
                    cap_fractions: vec![0.6, 0.6],
                    ..CampaignSpec::default()
                },
                "cap-fraction",
            ),
            (
                CampaignSpec {
                    cap_windows: vec![vec![(0.5, 3600)], vec![(0.5, 3600)]],
                    ..CampaignSpec::default()
                },
                "cap-window",
            ),
            (
                CampaignSpec {
                    load_factors: vec![1.0, 1.0],
                    ..CampaignSpec::default()
                },
                "load-factor",
            ),
            (
                CampaignSpec {
                    racks: vec![2, 2],
                    ..CampaignSpec::default()
                },
                "rack-scale",
            ),
        ] {
            let err = spec.validate().unwrap_err();
            assert!(
                err.contains(what) && err.contains("repeats"),
                "{what}: got {err}"
            );
        }
    }
}

//! Declarative campaign specifications and their grid expansion.
//!
//! A [`CampaignSpec`] describes a whole experiment campaign the way the
//! paper's evaluation is laid out: a grid of powercap policies × cap
//! fractions × ablation knobs (grouping strategy, decision rule) × workload
//! intervals × seed replications × rack scales. [`CampaignSpec::expand`]
//! turns the description into concrete [`CampaignCell`]s with **stable,
//! dense indices** — the executor shards cells across threads by index, and
//! every aggregation step orders by index, so the expansion order *is* the
//! determinism contract of the whole subsystem.

use apc_core::PowercapPolicy;
use apc_power::bonus::GroupingStrategy;
use apc_power::tradeoff::DecisionRule;
use apc_replay::Scenario;
use apc_workload::IntervalKind;

/// Where the replayed workload comes from.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// The calibrated synthetic Curie generator, driven by the spec's
    /// interval × seed grid.
    Synthetic,
    /// One fixed trace shared by every cell (e.g. parsed from an SWF file).
    /// The interval and seed axes collapse: replays are deterministic, so
    /// replications of an identical trace would produce identical rows.
    Fixed(std::sync::Arc<apc_workload::Trace>),
}

/// The workload coordinate of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellWorkload {
    /// A synthetic interval replayed with a generator seed.
    Synthetic {
        /// Interval flavour.
        interval: IntervalKind,
        /// Generator seed.
        seed: u64,
    },
    /// The campaign's fixed (SWF) trace.
    Fixed,
}

impl CellWorkload {
    /// Label used in result tables ("medianjob", "24h", "swf", …).
    pub fn label(&self) -> &'static str {
        match self {
            CellWorkload::Synthetic { interval, .. } => interval.name(),
            CellWorkload::Fixed => "swf",
        }
    }

    /// The generator seed, or 0 for a fixed trace.
    pub fn seed(&self) -> u64 {
        match self {
            CellWorkload::Synthetic { seed, .. } => *seed,
            CellWorkload::Fixed => 0,
        }
    }
}

/// One concrete experiment: a workload replayed under one scenario.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Dense index in expansion order — the sharding and ordering key.
    pub index: usize,
    /// Platform scale in racks of 90 nodes (>= 56 means the full Curie).
    pub racks: usize,
    /// The workload coordinate.
    pub workload: CellWorkload,
    /// The powercap scenario to replay.
    pub scenario: Scenario,
}

/// A declarative experiment campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Platform scales, in racks of 90 nodes each.
    pub racks: Vec<usize>,
    /// Workload intervals (ignored when the campaign runs on a fixed trace).
    pub intervals: Vec<IntervalKind>,
    /// Generator seeds — one replication per seed (ignored for fixed traces).
    pub seeds: Vec<u64>,
    /// Policies applied to the capped cells.
    pub policies: Vec<PowercapPolicy>,
    /// Cap fractions in `(0, 1)`, e.g. `[0.8, 0.6, 0.4]`.
    pub cap_fractions: Vec<f64>,
    /// Also run the uncapped "100 %/None" baseline for every workload.
    pub include_baseline: bool,
    /// Switch-off grouping strategies (ablation axis).
    pub groupings: Vec<GroupingStrategy>,
    /// DVFS-vs-shutdown decision rules (ablation axis).
    pub decision_rules: Vec<DecisionRule>,
    /// Arrival load factor handed to the synthetic generator.
    pub load_factor: f64,
    /// Initial backlog factor handed to the synthetic generator.
    pub backlog_factor: f64,
    /// Seeded per-user fair-share history, in core-hours.
    pub initial_fairshare_core_hours: f64,
}

impl Default for CampaignSpec {
    /// The paper's full evaluation grid: {SHUT, DVFS, MIX} × {80, 60, 40 %}
    /// plus the baseline, over all four intervals, one seed, at a 2-rack
    /// reduced scale.
    fn default() -> Self {
        CampaignSpec {
            racks: vec![2],
            intervals: IntervalKind::ALL.to_vec(),
            seeds: vec![2012],
            policies: vec![
                PowercapPolicy::Shut,
                PowercapPolicy::Dvfs,
                PowercapPolicy::Mix,
            ],
            cap_fractions: vec![0.80, 0.60, 0.40],
            include_baseline: true,
            groupings: vec![GroupingStrategy::Grouped],
            decision_rules: vec![DecisionRule::PaperRho],
            load_factor: 1.8,
            backlog_factor: 1.3,
            initial_fairshare_core_hours: 1_000.0,
        }
    }
}

impl CampaignSpec {
    /// The paper grid with `replications` consecutive seeds starting at
    /// `base_seed`.
    pub fn paper(base_seed: u64, replications: usize) -> Self {
        CampaignSpec {
            seeds: (0..replications as u64).map(|i| base_seed + i).collect(),
            ..CampaignSpec::default()
        }
    }

    /// Check the spec is runnable; returns a human-readable complaint if not.
    pub fn validate(&self) -> Result<(), String> {
        if self.racks.is_empty() {
            return Err("spec has no rack scales".into());
        }
        if let Some(r) = self.racks.iter().find(|&&r| r == 0) {
            return Err(format!("rack scale must be >= 1, got {r}"));
        }
        if self.intervals.is_empty() {
            return Err("spec has no intervals".into());
        }
        if self.seeds.is_empty() {
            return Err("spec has no seeds".into());
        }
        if !self.include_baseline && (self.policies.is_empty() || self.cap_fractions.is_empty()) {
            return Err(
                "spec expands to zero cells: no baseline and an empty policy/cap grid".into(),
            );
        }
        if let Some(f) = self
            .cap_fractions
            .iter()
            .find(|&&f| !(f > 0.0 && f < 1.0 && f.is_finite()))
        {
            return Err(format!("cap fraction must be in (0, 1), got {f}"));
        }
        if !(self.load_factor.is_finite() && self.load_factor > 0.0) {
            return Err(format!("load factor must be > 0, got {}", self.load_factor));
        }
        if self.backlog_factor < 0.0 || !self.backlog_factor.is_finite() {
            return Err(format!(
                "backlog factor must be >= 0, got {}",
                self.backlog_factor
            ));
        }
        if self.groupings.is_empty() || self.decision_rules.is_empty() {
            return Err("spec needs at least one grouping and one decision rule".into());
        }
        Ok(())
    }

    /// The scenarios of one workload cell, in stable order: the baseline
    /// first (once, with the default knobs), then caps × policies for every
    /// grouping × decision-rule combination.
    fn scenarios(&self, duration: u64) -> Vec<Scenario> {
        let mut scenarios = Vec::new();
        if self.include_baseline {
            scenarios.push(Scenario::baseline());
        }
        for &grouping in &self.groupings {
            for &rule in &self.decision_rules {
                for &fraction in &self.cap_fractions {
                    for &policy in &self.policies {
                        scenarios.push(
                            Scenario::paper(policy, fraction, duration)
                                .with_grouping(grouping)
                                .with_decision_rule(rule),
                        );
                    }
                }
            }
        }
        scenarios
    }

    /// Expand the grid into concrete cells, densely indexed in a stable
    /// order: racks → interval → seed → (baseline, then grouping → rule →
    /// cap → policy).
    pub fn expand(&self, source: &TraceSource) -> Vec<CampaignCell> {
        let workloads: Vec<(CellWorkload, u64)> = match source {
            TraceSource::Fixed(trace) => vec![(CellWorkload::Fixed, trace.duration)],
            TraceSource::Synthetic => {
                let mut w = Vec::new();
                for &interval in &self.intervals {
                    for &seed in &self.seeds {
                        w.push((
                            CellWorkload::Synthetic { interval, seed },
                            interval.duration(),
                        ));
                    }
                }
                w
            }
        };
        let mut cells = Vec::new();
        for &racks in &self.racks {
            for &(workload, duration) in &workloads {
                for scenario in self.scenarios(duration) {
                    cells.push(CampaignCell {
                        index: cells.len(),
                        racks,
                        workload,
                        scenario,
                    });
                }
            }
        }
        cells
    }

    /// Number of cells [`expand`](Self::expand) would produce for a
    /// synthetic-source campaign.
    pub fn cell_count(&self) -> usize {
        let per_workload = usize::from(self.include_baseline)
            + self.groupings.len()
                * self.decision_rules.len()
                * self.cap_fractions.len()
                * self.policies.len();
        self.racks.len() * self.intervals.len() * self.seeds.len() * per_workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_the_paper_grid() {
        let spec = CampaignSpec::default();
        spec.validate().unwrap();
        // 1 rack scale × 4 intervals × 1 seed × (1 baseline + 3 × 3 capped).
        assert_eq!(spec.cell_count(), 4 * 10);
        let cells = spec.expand(&TraceSource::Synthetic);
        assert_eq!(cells.len(), spec.cell_count());
    }

    #[test]
    fn indices_are_dense_and_stable() {
        let spec = CampaignSpec::paper(100, 3);
        let a = spec.expand(&TraceSource::Synthetic);
        let b = spec.expand(&TraceSource::Synthetic);
        for (i, (ca, cb)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(ca.index, i);
            assert_eq!(cb.index, i);
            assert_eq!(ca.scenario, cb.scenario);
            assert_eq!(ca.workload, cb.workload);
        }
        assert_eq!(a.len(), 4 * 3 * 10);
    }

    #[test]
    fn baseline_is_emitted_once_per_workload() {
        let spec = CampaignSpec {
            groupings: vec![GroupingStrategy::Grouped, GroupingStrategy::Scattered],
            decision_rules: vec![DecisionRule::PaperRho, DecisionRule::WorkMaximizing],
            intervals: vec![IntervalKind::MedianJob],
            ..CampaignSpec::default()
        };
        let cells = spec.expand(&TraceSource::Synthetic);
        let baselines = cells
            .iter()
            .filter(|c| c.scenario.cap_fraction.is_none())
            .count();
        assert_eq!(baselines, 1);
        // 1 baseline + 2 groupings × 2 rules × 3 caps × 3 policies.
        assert_eq!(cells.len(), 1 + 2 * 2 * 3 * 3);
        assert_eq!(cells.len(), spec.cell_count());
    }

    #[test]
    fn fixed_source_collapses_the_workload_axes() {
        let platform = apc_rjms::cluster::Platform::curie_scaled(1);
        let trace = apc_workload::CurieTraceGenerator::new(1)
            .load_factor(0.3)
            .backlog_factor(0.0)
            .generate_for(&platform);
        let spec = CampaignSpec::paper(1, 5);
        let cells = spec.expand(&TraceSource::Fixed(std::sync::Arc::new(trace)));
        assert_eq!(
            cells.len(),
            10,
            "intervals × seeds collapse to one workload"
        );
        assert!(cells.iter().all(|c| c.workload == CellWorkload::Fixed));
        assert_eq!(cells[0].workload.label(), "swf");
        assert_eq!(cells[0].workload.seed(), 0);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let ok = CampaignSpec::default();
        assert!(ok.validate().is_ok());
        let bad = CampaignSpec {
            cap_fractions: vec![1.5],
            ..CampaignSpec::default()
        };
        assert!(bad.validate().unwrap_err().contains("cap fraction"));
        let bad = CampaignSpec {
            seeds: vec![],
            ..CampaignSpec::default()
        };
        assert!(bad.validate().unwrap_err().contains("seeds"));
        let bad = CampaignSpec {
            racks: vec![0],
            ..CampaignSpec::default()
        };
        assert!(bad.validate().unwrap_err().contains("rack"));
        let bad = CampaignSpec {
            include_baseline: false,
            policies: vec![],
            ..CampaignSpec::default()
        };
        assert!(bad.validate().unwrap_err().contains("zero cells"));
    }

    #[test]
    fn scenario_windows_follow_the_interval_duration() {
        let spec = CampaignSpec {
            intervals: vec![IntervalKind::Day24h],
            ..CampaignSpec::default()
        };
        let cells = spec.expand(&TraceSource::Synthetic);
        let capped = cells
            .iter()
            .find(|c| c.scenario.cap_fraction.is_some())
            .unwrap();
        let w = capped.scenario.window().unwrap();
        assert_eq!(w.duration(), 3600);
        assert_eq!(w.start, (24 * 3600 - 3600) / 2);
    }
}

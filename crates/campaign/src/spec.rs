//! Declarative campaign specifications and their grid expansion.
//!
//! A [`CampaignSpec`] describes a whole experiment campaign the way the
//! paper's evaluation is laid out: a grid of powercap policies × cap
//! fractions × ablation knobs (grouping strategy, decision rule) × workload
//! intervals × seed replications × rack scales. [`CampaignSpec::expand`]
//! turns the description into concrete [`CampaignCell`]s with **stable,
//! dense indices** — the executor shards cells across threads by index, and
//! every aggregation step orders by index, so the expansion order *is* the
//! determinism contract of the whole subsystem.

use apc_core::PowercapPolicy;
use apc_power::bonus::GroupingStrategy;
use apc_power::tradeoff::DecisionRule;
use apc_replay::Scenario;
use apc_workload::IntervalKind;

/// Where the replayed workload comes from.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// The calibrated synthetic Curie generator, driven by the spec's
    /// interval × seed grid.
    Synthetic,
    /// One fixed trace shared by every cell (e.g. parsed from an SWF file).
    /// The interval and seed axes collapse: replays are deterministic, so
    /// replications of an identical trace would produce identical rows.
    Fixed(std::sync::Arc<apc_workload::Trace>),
}

/// The workload coordinate of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellWorkload {
    /// A synthetic interval replayed with a generator seed.
    Synthetic {
        /// Interval flavour.
        interval: IntervalKind,
        /// Generator seed.
        seed: u64,
    },
    /// The campaign's fixed (SWF) trace.
    Fixed,
}

impl CellWorkload {
    /// Label used in result tables ("medianjob", "24h", "swf", …).
    pub fn label(&self) -> &'static str {
        match self {
            CellWorkload::Synthetic { interval, .. } => interval.name(),
            CellWorkload::Fixed => "swf",
        }
    }

    /// The generator seed, or 0 for a fixed trace.
    pub fn seed(&self) -> u64 {
        match self {
            CellWorkload::Synthetic { seed, .. } => *seed,
            CellWorkload::Fixed => 0,
        }
    }
}

/// One concrete experiment: a workload replayed under one scenario.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Dense index in expansion order — the sharding and ordering key.
    pub index: usize,
    /// Platform scale in racks of 90 nodes (>= 56 means the full Curie).
    pub racks: usize,
    /// The workload coordinate.
    pub workload: CellWorkload,
    /// The powercap scenario to replay.
    pub scenario: Scenario,
}

/// A declarative experiment campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Platform scales, in racks of 90 nodes each.
    pub racks: Vec<usize>,
    /// Workload intervals (ignored when the campaign runs on a fixed trace).
    pub intervals: Vec<IntervalKind>,
    /// Generator seeds — one replication per seed (ignored for fixed traces).
    pub seeds: Vec<u64>,
    /// Policies applied to the capped cells.
    pub policies: Vec<PowercapPolicy>,
    /// Cap fractions in `(0, 1)`, e.g. `[0.8, 0.6, 0.4]`.
    pub cap_fractions: Vec<f64>,
    /// Also run the uncapped "100 %/None" baseline for every workload.
    pub include_baseline: bool,
    /// Switch-off grouping strategies (ablation axis).
    pub groupings: Vec<GroupingStrategy>,
    /// DVFS-vs-shutdown decision rules (ablation axis).
    pub decision_rules: Vec<DecisionRule>,
    /// Arrival load factor handed to the synthetic generator.
    pub load_factor: f64,
    /// Initial backlog factor handed to the synthetic generator.
    pub backlog_factor: f64,
    /// Seeded per-user fair-share history, in core-hours.
    pub initial_fairshare_core_hours: f64,
}

impl Default for CampaignSpec {
    /// The paper's full evaluation grid: {SHUT, DVFS, MIX} × {80, 60, 40 %}
    /// plus the baseline, over all four intervals, one seed, at a 2-rack
    /// reduced scale.
    fn default() -> Self {
        CampaignSpec {
            racks: vec![2],
            intervals: IntervalKind::ALL.to_vec(),
            seeds: vec![2012],
            policies: vec![
                PowercapPolicy::Shut,
                PowercapPolicy::Dvfs,
                PowercapPolicy::Mix,
            ],
            cap_fractions: vec![0.80, 0.60, 0.40],
            include_baseline: true,
            groupings: vec![GroupingStrategy::Grouped],
            decision_rules: vec![DecisionRule::PaperRho],
            load_factor: 1.8,
            backlog_factor: 1.3,
            initial_fairshare_core_hours: 1_000.0,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold bytes into a running FNV-1a hash.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// `a * b`, or a clear complaint naming the axes that overflowed.
fn checked_mul(a: usize, b: usize, what: &str) -> Result<usize, String> {
    a.checked_mul(b)
        .ok_or_else(|| format!("campaign grid overflows usize while multiplying {what}"))
}

impl CampaignSpec {
    /// The paper grid with `replications` consecutive seeds starting at
    /// `base_seed`.
    pub fn paper(base_seed: u64, replications: usize) -> Self {
        CampaignSpec {
            seeds: (0..replications as u64).map(|i| base_seed + i).collect(),
            ..CampaignSpec::default()
        }
    }

    /// A stable 64-bit fingerprint of the spec plus its workload source.
    ///
    /// Two `(spec, source)` pairs produce the same fingerprint exactly when
    /// they expand to the same cell grid and replay the same workloads — the
    /// resume machinery compares it against the hash recorded in a result
    /// store's manifest before skipping any cell. Floats are hashed by bit
    /// pattern, fixed traces by folding every job field, so the fingerprint
    /// is independent of process, platform and run.
    pub fn fingerprint(&self, source: &TraceSource) -> u64 {
        let mut h = FNV_OFFSET;
        let mut put = |label: &str, value: &str| {
            fnv1a(&mut h, label.as_bytes());
            fnv1a(&mut h, b"=");
            fnv1a(&mut h, value.as_bytes());
            fnv1a(&mut h, b";");
        };
        for &r in &self.racks {
            put("rack", &r.to_string());
        }
        for &i in &self.intervals {
            put("interval", i.name());
        }
        for &s in &self.seeds {
            put("seed", &s.to_string());
        }
        for &p in &self.policies {
            put("policy", p.name());
        }
        for &f in &self.cap_fractions {
            put("cap", &format!("{:016x}", f.to_bits()));
        }
        put("baseline", if self.include_baseline { "1" } else { "0" });
        for &g in &self.groupings {
            put("grouping", g.name());
        }
        for &d in &self.decision_rules {
            put("rule", d.name());
        }
        put("load", &format!("{:016x}", self.load_factor.to_bits()));
        put(
            "backlog",
            &format!("{:016x}", self.backlog_factor.to_bits()),
        );
        put(
            "fairshare",
            &format!("{:016x}", self.initial_fairshare_core_hours.to_bits()),
        );
        match source {
            TraceSource::Synthetic => put("source", "synthetic"),
            TraceSource::Fixed(trace) => {
                let mut t = FNV_OFFSET;
                fnv1a(&mut t, &trace.duration.to_le_bytes());
                for job in &trace.jobs {
                    fnv1a(&mut t, &(job.id as u64).to_le_bytes());
                    fnv1a(&mut t, &job.submit_time.to_le_bytes());
                    fnv1a(&mut t, &job.run_time.to_le_bytes());
                    fnv1a(&mut t, &u64::from(job.cores).to_le_bytes());
                    fnv1a(&mut t, &job.requested_time.to_le_bytes());
                    fnv1a(&mut t, &(job.user as u64).to_le_bytes());
                    fnv1a(&mut t, &u64::from(job.app_class).to_le_bytes());
                }
                put("source", &format!("fixed:{t:016x}"));
            }
        }
        h
    }

    /// Check the spec is runnable; returns a human-readable complaint if not.
    pub fn validate(&self) -> Result<(), String> {
        if self.racks.is_empty() {
            return Err("spec has no rack scales".into());
        }
        if let Some(r) = self.racks.iter().find(|&&r| r == 0) {
            return Err(format!("rack scale must be >= 1, got {r}"));
        }
        if self.intervals.is_empty() {
            return Err("spec has no intervals".into());
        }
        if self.seeds.is_empty() {
            return Err("spec has no seeds".into());
        }
        if !self.include_baseline && (self.policies.is_empty() || self.cap_fractions.is_empty()) {
            return Err(
                "spec expands to zero cells: no baseline and an empty policy/cap grid".into(),
            );
        }
        if let Some(f) = self
            .cap_fractions
            .iter()
            .find(|&&f| !(f > 0.0 && f < 1.0 && f.is_finite()))
        {
            return Err(format!("cap fraction must be in (0, 1), got {f}"));
        }
        if !(self.load_factor.is_finite() && self.load_factor > 0.0) {
            return Err(format!("load factor must be > 0, got {}", self.load_factor));
        }
        if self.backlog_factor < 0.0 || !self.backlog_factor.is_finite() {
            return Err(format!(
                "backlog factor must be >= 0, got {}",
                self.backlog_factor
            ));
        }
        if self.groupings.is_empty() || self.decision_rules.is_empty() {
            return Err("spec needs at least one grouping and one decision rule".into());
        }
        // Catch grids too large to even index before any expansion work.
        self.cell_count()?;
        Ok(())
    }

    /// The scenarios of one workload cell, in stable order: the baseline
    /// first (once, with the default knobs), then caps × policies for every
    /// grouping × decision-rule combination.
    fn scenarios(&self, duration: u64) -> Vec<Scenario> {
        let mut scenarios = Vec::new();
        if self.include_baseline {
            scenarios.push(Scenario::baseline());
        }
        for &grouping in &self.groupings {
            for &rule in &self.decision_rules {
                for &fraction in &self.cap_fractions {
                    for &policy in &self.policies {
                        scenarios.push(
                            Scenario::paper(policy, fraction, duration)
                                .with_grouping(grouping)
                                .with_decision_rule(rule),
                        );
                    }
                }
            }
        }
        scenarios
    }

    /// Expand the grid into concrete cells, densely indexed in a stable
    /// order: racks → interval → seed → (baseline, then grouping → rule →
    /// cap → policy).
    ///
    /// Errors (instead of silently producing an empty or wrapped grid) when
    /// an axis is zero-sized or the cell count overflows `usize`.
    pub fn expand(&self, source: &TraceSource) -> Result<Vec<CampaignCell>, String> {
        let total = match source {
            TraceSource::Synthetic => self.cell_count()?,
            TraceSource::Fixed(_) => checked_mul(
                self.racks.len(),
                self.per_workload_count()?,
                "racks × scenarios",
            )?,
        };
        let workloads: Vec<(CellWorkload, u64)> = match source {
            TraceSource::Fixed(trace) => vec![(CellWorkload::Fixed, trace.duration)],
            TraceSource::Synthetic => {
                let mut w = Vec::new();
                for &interval in &self.intervals {
                    for &seed in &self.seeds {
                        w.push((
                            CellWorkload::Synthetic { interval, seed },
                            interval.duration(),
                        ));
                    }
                }
                w
            }
        };
        let mut cells = Vec::with_capacity(total);
        for &racks in &self.racks {
            for &(workload, duration) in &workloads {
                for scenario in self.scenarios(duration) {
                    cells.push(CampaignCell {
                        index: cells.len(),
                        racks,
                        workload,
                        scenario,
                    });
                }
            }
        }
        debug_assert_eq!(cells.len(), total);
        Ok(cells)
    }

    /// Scenarios per workload cell: the optional baseline plus the capped
    /// grid, with overflow and zero-sized-axis checks.
    fn per_workload_count(&self) -> Result<usize, String> {
        if !self.include_baseline {
            for (len, axis) in [
                (self.policies.len(), "policies"),
                (self.cap_fractions.len(), "cap fractions"),
                (self.groupings.len(), "groupings"),
                (self.decision_rules.len(), "decision rules"),
            ] {
                if len == 0 {
                    return Err(format!(
                        "campaign grid has a zero-sized {axis} axis and no baseline — \
                         it would expand to zero cells"
                    ));
                }
            }
        }
        let capped = checked_mul(
            checked_mul(
                self.groupings.len(),
                self.decision_rules.len(),
                "groupings × rules",
            )?,
            checked_mul(
                self.cap_fractions.len(),
                self.policies.len(),
                "caps × policies",
            )?,
            "groupings × rules × caps × policies",
        )?;
        capped
            .checked_add(usize::from(self.include_baseline))
            .ok_or_else(|| "campaign grid overflows usize adding the baseline".to_string())
    }

    /// Number of cells [`expand`](Self::expand) would produce for a
    /// synthetic-source campaign.
    ///
    /// Uses checked arithmetic throughout: a zero-sized axis or a product
    /// beyond `usize::MAX` is reported as an error rather than silently
    /// collapsing the grid to zero or wrapping.
    pub fn cell_count(&self) -> Result<usize, String> {
        for (len, axis) in [
            (self.racks.len(), "rack-scale"),
            (self.intervals.len(), "interval"),
            (self.seeds.len(), "seed"),
        ] {
            if len == 0 {
                return Err(format!("campaign grid has a zero-sized {axis} axis"));
            }
        }
        let per_workload = self.per_workload_count()?;
        if per_workload == 0 {
            return Err(
                "campaign grid expands to zero scenarios per workload (no baseline and an \
                 empty policy/cap grid)"
                    .to_string(),
            );
        }
        checked_mul(
            checked_mul(self.racks.len(), self.intervals.len(), "racks × intervals")?,
            checked_mul(self.seeds.len(), per_workload, "seeds × scenarios")?,
            "racks × intervals × seeds × scenarios",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_the_paper_grid() {
        let spec = CampaignSpec::default();
        spec.validate().unwrap();
        // 1 rack scale × 4 intervals × 1 seed × (1 baseline + 3 × 3 capped).
        assert_eq!(spec.cell_count().unwrap(), 4 * 10);
        let cells = spec.expand(&TraceSource::Synthetic).unwrap();
        assert_eq!(cells.len(), spec.cell_count().unwrap());
    }

    #[test]
    fn indices_are_dense_and_stable() {
        let spec = CampaignSpec::paper(100, 3);
        let a = spec.expand(&TraceSource::Synthetic).unwrap();
        let b = spec.expand(&TraceSource::Synthetic).unwrap();
        for (i, (ca, cb)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(ca.index, i);
            assert_eq!(cb.index, i);
            assert_eq!(ca.scenario, cb.scenario);
            assert_eq!(ca.workload, cb.workload);
        }
        assert_eq!(a.len(), 4 * 3 * 10);
    }

    #[test]
    fn baseline_is_emitted_once_per_workload() {
        let spec = CampaignSpec {
            groupings: vec![GroupingStrategy::Grouped, GroupingStrategy::Scattered],
            decision_rules: vec![DecisionRule::PaperRho, DecisionRule::WorkMaximizing],
            intervals: vec![IntervalKind::MedianJob],
            ..CampaignSpec::default()
        };
        let cells = spec.expand(&TraceSource::Synthetic).unwrap();
        let baselines = cells
            .iter()
            .filter(|c| c.scenario.cap_fraction.is_none())
            .count();
        assert_eq!(baselines, 1);
        // 1 baseline + 2 groupings × 2 rules × 3 caps × 3 policies.
        assert_eq!(cells.len(), 1 + 2 * 2 * 3 * 3);
        assert_eq!(cells.len(), spec.cell_count().unwrap());
    }

    #[test]
    fn fixed_source_collapses_the_workload_axes() {
        let platform = apc_rjms::cluster::Platform::curie_scaled(1);
        let trace = apc_workload::CurieTraceGenerator::new(1)
            .load_factor(0.3)
            .backlog_factor(0.0)
            .generate_for(&platform);
        let spec = CampaignSpec::paper(1, 5);
        let cells = spec
            .expand(&TraceSource::Fixed(std::sync::Arc::new(trace)))
            .unwrap();
        assert_eq!(
            cells.len(),
            10,
            "intervals × seeds collapse to one workload"
        );
        assert!(cells.iter().all(|c| c.workload == CellWorkload::Fixed));
        assert_eq!(cells[0].workload.label(), "swf");
        assert_eq!(cells[0].workload.seed(), 0);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let ok = CampaignSpec::default();
        assert!(ok.validate().is_ok());
        let bad = CampaignSpec {
            cap_fractions: vec![1.5],
            ..CampaignSpec::default()
        };
        assert!(bad.validate().unwrap_err().contains("cap fraction"));
        let bad = CampaignSpec {
            seeds: vec![],
            ..CampaignSpec::default()
        };
        assert!(bad.validate().unwrap_err().contains("seeds"));
        let bad = CampaignSpec {
            racks: vec![0],
            ..CampaignSpec::default()
        };
        assert!(bad.validate().unwrap_err().contains("rack"));
        let bad = CampaignSpec {
            include_baseline: false,
            policies: vec![],
            ..CampaignSpec::default()
        };
        assert!(bad.validate().unwrap_err().contains("zero cells"));
    }

    #[test]
    fn cell_count_reports_overflow_instead_of_wrapping() {
        let spec = CampaignSpec {
            racks: vec![1; 1 << 17],
            seeds: vec![0; 1 << 17],
            cap_fractions: vec![0.5; 1 << 17],
            policies: vec![apc_core::PowercapPolicy::Shut; 1 << 17],
            ..CampaignSpec::default()
        };
        let err = spec.cell_count().unwrap_err();
        assert!(err.contains("overflow"), "unexpected error: {err}");
        assert!(spec.expand(&TraceSource::Synthetic).is_err());
        assert!(spec.validate().is_err());
    }

    #[test]
    fn expand_rejects_zero_sized_axes() {
        let spec = CampaignSpec {
            intervals: vec![],
            ..CampaignSpec::default()
        };
        let err = spec.expand(&TraceSource::Synthetic).unwrap_err();
        assert!(err.contains("zero-sized interval axis"), "got: {err}");
        // A fixed-source expansion ignores the interval axis but still
        // rejects an all-empty scenario grid.
        let spec = CampaignSpec {
            include_baseline: false,
            policies: vec![],
            ..CampaignSpec::default()
        };
        let platform = apc_rjms::cluster::Platform::curie_scaled(1);
        let trace = apc_workload::CurieTraceGenerator::new(1)
            .load_factor(0.3)
            .backlog_factor(0.0)
            .generate_for(&platform);
        let err = spec
            .expand(&TraceSource::Fixed(std::sync::Arc::new(trace)))
            .unwrap_err();
        assert!(err.contains("zero-sized policies axis"), "got: {err}");
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let spec = CampaignSpec::paper(2012, 3);
        let a = spec.fingerprint(&TraceSource::Synthetic);
        let b = spec.fingerprint(&TraceSource::Synthetic);
        assert_eq!(a, b, "fingerprint must be deterministic");
        // Any grid knob changes the hash.
        for changed in [
            CampaignSpec {
                seeds: vec![2012, 2013],
                ..spec.clone()
            },
            CampaignSpec {
                cap_fractions: vec![0.8, 0.6],
                ..spec.clone()
            },
            CampaignSpec {
                include_baseline: false,
                ..spec.clone()
            },
            CampaignSpec {
                load_factor: 1.9,
                ..spec.clone()
            },
        ] {
            assert_ne!(changed.fingerprint(&TraceSource::Synthetic), a);
        }
        // The workload source is part of the identity.
        let platform = apc_rjms::cluster::Platform::curie_scaled(1);
        let trace = apc_workload::CurieTraceGenerator::new(5)
            .load_factor(0.3)
            .backlog_factor(0.0)
            .generate_for(&platform);
        let fixed = TraceSource::Fixed(std::sync::Arc::new(trace.clone()));
        assert_ne!(spec.fingerprint(&fixed), a);
        // Same trace content ⇒ same hash, regardless of the Arc identity.
        let fixed2 = TraceSource::Fixed(std::sync::Arc::new(trace));
        assert_eq!(spec.fingerprint(&fixed), spec.fingerprint(&fixed2));
    }

    #[test]
    fn scenario_windows_follow_the_interval_duration() {
        let spec = CampaignSpec {
            intervals: vec![IntervalKind::Day24h],
            ..CampaignSpec::default()
        };
        let cells = spec.expand(&TraceSource::Synthetic).unwrap();
        let capped = cells
            .iter()
            .find(|c| c.scenario.cap_fraction.is_some())
            .unwrap();
        let w = capped.scenario.window().unwrap();
        assert_eq!(w.duration(), 3600);
        assert_eq!(w.start, (24 * 3600 - 3600) / 2);
    }
}

//! The append-only, partitioned on-disk result store.
//!
//! A campaign's results live in a directory the executor appends to while
//! cells are still running, instead of one whole file written at the end:
//!
//! ```text
//! <dir>/
//!   manifest.txt            # header + one `done <index>` line per cell
//!   cells/part-0000.apc     # binary columnar rows for cells [0, 64)
//!   cells/part-0001.apc     # cells [64, 128), …
//! ```
//!
//! The manifest header records a format magic, the schema version, the
//! spec fingerprint ([`CampaignSpec::fingerprint`]), the total cell count
//! and the partition width. After the header comes the completion log: a
//! `done <index>` line is appended **after** the cell's row has been
//! written to its partition, so a row without a matching `done` entry (a
//! crash between the two writes, or a record torn mid-write) is simply not
//! trusted and the cell reruns on resume.
//!
//! Schema v3 partitions (`part-NNNN.apc`) are sequences of self-contained
//! columnar blocks (see [`crate::colstore`]): the executor appends one
//! single-row block per finished cell, each carrying its own dictionaries,
//! zone maps and checksum; `campaign compact` later merges them into one
//! wide block per partition. Schema v2 stores (`part-NNNN.csv`, text rows)
//! remain fully readable — every reader dispatches on the partition file's
//! extension, never on the manifest, which also makes the compact swap
//! crash-tolerant. Either way floats round-trip bit-exactly (v2 via
//! shortest round-trip `Display`, v3 via raw bit patterns), so a campaign
//! resumed from disk — or exported from either schema — renders
//! byte-identical CSV/JSON. Duplicate records for one index (a torn record
//! followed by its rerun) resolve to the **last** intact occurrence.
//!
//! Appends are fsync'd by default — the partition file before the `done`
//! line, the manifest after it — so a crash cannot reorder a completion
//! entry ahead of its row ([`ResultStore::set_sync`] turns this off for
//! tests and benches). Distributed workers
//! ([`ResultStore::open_worker`]) write worker-owned
//! `cells/part-NNNN-wW.apc` partitions and share only the manifest, whose
//! `done` lines are single atomic `O_APPEND` writes; readers merge all
//! files of one partition number in (plain, then worker-id) order with the
//! same last-wins rule.
//!
//! [`CampaignSpec::fingerprint`]: crate::spec::CampaignSpec::fingerprint

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::agg::CellRow;
use crate::colstore::{self, PartitionBuf};

/// Store format magic + schema version, the first manifest line.
const MANIFEST_MAGIC: &str = "apc-campaign-store";

/// On-disk schema version; bump when the row layout changes.
///
/// v1 (PR 3) rows had 20 fields; v2 added the `load_factor` and `window`
/// columns (and an optional `seed`) for the cap-window / load-factor sweep
/// axes; v3 (PR 8) keeps the 22-column row but stores partitions as binary
/// columnar blocks with dictionaries, zone maps and checksums
/// ([`crate::colstore`]). The scenario-engine refactor adds the optional
/// `schedule`/`faults` label columns *within* v3: label-free rows keep the
/// exact pre-refactor bytes in both codecs (22-field CSV lines, `"APC3"`
/// blocks), labelled rows extend them (24 fields, `"APC4"` blocks), and
/// readers fill `"-"` for the missing columns — so no schema bump, and
/// stores written before the refactor open unchanged. v2 stores stay
/// readable and resumable — readers
/// dispatch on the partition file extension — but a v1 store cannot be
/// opened: the row codec and the spec fingerprint both changed, so
/// [`ResultStore::open`] rejects it with a versioned error instead of
/// re-running cells into a mixed-layout store.
pub const STORE_SCHEMA_VERSION: u32 = 3;

/// The previous (text CSV partition) schema, still supported for reads,
/// resume and as an explicit `--store-schema 2` write target.
pub const STORE_SCHEMA_V2: u32 = 2;

/// Default number of cells per partition file.
pub const DEFAULT_CELLS_PER_PART: usize = 64;

/// Name of the manifest file inside a store directory.
pub const MANIFEST_NAME: &str = "manifest.txt";

/// Name of the partition subdirectory inside a store directory.
pub const PARTS_DIR: &str = "cells";

/// Header of every v2 (CSV) partition file (same columns as the rendered
/// `cells.csv`, but with full-precision float fields).
pub const PART_CSV_HEADER: &str = crate::sink::CELLS_CSV_HEADER;

/// The partition files of a store, sorted by **partition number** (parsed
/// from the `part-N.csv` / `part-N.apc` name, not lexically — `part-10000`
/// must come after `part-9999`, where a lexical sort would interleave them
/// once grids grow past 640 k cells). Distributed workers write
/// worker-owned `part-N-wW.{csv,apc}` partitions; those sort after the
/// plain file of the same number, then by worker id, so replaying files in
/// this order with last-wins duplicate resolution is deterministic however
/// a lease bounced between workers. Files that do not look like partitions
/// are ignored.
pub(crate) fn sorted_part_paths(parts_dir: &Path) -> Result<Vec<(usize, PathBuf)>, String> {
    let entries =
        fs::read_dir(parts_dir).map_err(|e| format!("cannot read {}: {e}", parts_dir.display()))?;
    let mut parts: Vec<(usize, Option<usize>, PathBuf)> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter_map(|p| {
            let stem = p
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix("part-"))?;
            let rest = stem
                .strip_suffix(".csv")
                .or_else(|| stem.strip_suffix(".apc"))?;
            let (number, worker) = match rest.split_once("-w") {
                Some((n, w)) => (n.parse::<usize>().ok()?, Some(w.parse::<usize>().ok()?)),
                None => (rest.parse::<usize>().ok()?, None),
            };
            Some((number, worker, p))
        })
        .collect();
    parts.sort_by_key(|(number, worker, _)| (*number, worker.is_some(), worker.unwrap_or(0)));
    Ok(parts
        .into_iter()
        .map(|(number, _, p)| (number, p))
        .collect())
}

/// Is this partition path a v3 (binary columnar) file? Readers dispatch on
/// the extension, not the manifest schema, so a directory mixing `.csv` and
/// `.apc` partitions (mid-migration, or resumed after `compact`) reads
/// correctly.
pub(crate) fn is_v3_part(path: &Path) -> bool {
    path.extension().and_then(|e| e.to_str()) == Some(colstore::PART_EXT_V3)
}

/// Decode every record of one partition file, whatever its codec, in file
/// order. Torn records are dropped by the codec (unparseable CSV line /
/// checksum-failing block); `done`-set filtering and last-wins duplicate
/// resolution are the caller's, exactly as before.
pub(crate) fn load_part_rows(path: &Path) -> Result<Vec<CellRow>, String> {
    if is_v3_part(path) {
        Ok(PartitionBuf::read(path)?.decode_all())
    } else {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Ok(text
            .lines()
            .skip(1)
            .filter_map(|line| CellRow::parse_store_line(line).ok())
            .collect())
    }
}

/// A parsed `manifest.txt`: the header fields plus the trusted `done` set.
/// Shared by the full loader ([`ResultStore::open`]), the streaming query
/// path ([`crate::query::scan_store`]) and [`crate::compact`] so all three
/// validate the magic and schema version identically.
#[derive(Debug)]
pub(crate) struct ParsedManifest {
    pub(crate) schema: u32,
    pub(crate) spec_hash: u64,
    pub(crate) total_cells: usize,
    pub(crate) cells_per_part: usize,
    pub(crate) done: std::collections::BTreeSet<usize>,
}

impl ParsedManifest {
    /// Parse a manifest's text; `dir` only labels error messages.
    pub(crate) fn parse(dir: &Path, text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let mut magic = header.split_whitespace();
        if magic.next() != Some(MANIFEST_MAGIC) {
            return Err(format!(
                "{} is not a campaign result store (bad magic line {header:?})",
                dir.display()
            ));
        }
        let schema: u32 = magic
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("manifest header {header:?} has no schema version"))?;
        if schema != STORE_SCHEMA_VERSION && schema != STORE_SCHEMA_V2 {
            return Err(format!(
                "store schema v{schema} is not the supported v{STORE_SCHEMA_VERSION} \
                 (or the read-compatible v{STORE_SCHEMA_V2}) — this store was written \
                 by an incompatible version; rerun the campaign into a fresh --out \
                 directory"
            ));
        }
        let mut spec_hash = None;
        let mut total_cells = None;
        let mut cells_per_part = DEFAULT_CELLS_PER_PART;
        let mut done = std::collections::BTreeSet::new();
        for line in lines {
            let mut words = line.split_whitespace();
            match (words.next(), words.next()) {
                (Some("spec"), Some(v)) => {
                    spec_hash = Some(
                        u64::from_str_radix(v, 16)
                            .map_err(|_| format!("bad spec hash in manifest: {v:?}"))?,
                    );
                }
                (Some("cells"), Some(v)) => {
                    total_cells = Some(
                        v.parse()
                            .map_err(|_| format!("bad cell count in manifest: {v:?}"))?,
                    );
                }
                (Some("per-part"), Some(v)) => {
                    cells_per_part = v
                        .parse()
                        .map_err(|_| format!("bad per-part width in manifest: {v:?}"))?;
                    if cells_per_part == 0 {
                        return Err("per-part width must be >= 1".into());
                    }
                }
                // A torn trailing `done` line (no index, or a half-written
                // number) means that cell never finished — skip it.
                (Some("done"), Some(v)) => {
                    if let Ok(idx) = v.parse::<usize>() {
                        done.insert(idx);
                    }
                }
                // Anything else is a line torn by a crash (or a future
                // extension): skip it rather than refusing to resume.
                _ => {}
            }
        }
        Ok(ParsedManifest {
            schema,
            spec_hash: spec_hash.ok_or("manifest has no spec hash")?,
            total_cells: total_cells.ok_or("manifest has no cell count")?,
            cells_per_part,
            done,
        })
    }
}

/// Read the final byte of a non-empty file.
fn last_byte(path: &Path, len: u64) -> io::Result<u8> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = fs::File::open(path)?;
    file.seek(SeekFrom::Start(len - 1))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    Ok(byte[0])
}

/// An append-only, crash-resumable campaign result store.
///
/// Create one with [`ResultStore::create`] for a fresh campaign (schema
/// v3), [`ResultStore::create_with_schema`] to pin the schema explicitly,
/// or [`ResultStore::open`] to resume; the executor calls
/// [`append`](ResultStore::append) once per finished cell.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    schema: u32,
    spec_hash: u64,
    total_cells: usize,
    cells_per_part: usize,
    /// Completed rows by cell index (trusted: listed in the manifest).
    /// Empty for [`open_worker`](Self::open_worker) handles, which track
    /// completion through `done` alone and never render.
    rows: BTreeMap<usize, CellRow>,
    /// Completed cell indices. For full opens this mirrors `rows`; a
    /// worker handle seeds it from the raw manifest `done` log and
    /// [`refresh_done`](Self::refresh_done) merges completions other
    /// workers appended since.
    done: std::collections::BTreeSet<usize>,
    /// Append handle for the manifest completion log.
    manifest: fs::File,
    /// Cached append handle for the most recently written partition.
    current_part: Option<(usize, fs::File)>,
    /// Worker id recorded in this handle's partition file names
    /// (`part-NNNN-wW.apc`), so concurrent worker processes never append
    /// to one another's partition files. `None` for single-process stores.
    worker_tag: Option<usize>,
    /// fsync the partition file before the `done` append and the manifest
    /// after it (the ordering a crash cannot reorder). On by default;
    /// `--no-sync` clears it for tests and benches.
    sync: bool,
}

impl ResultStore {
    /// Create a fresh store at `dir`, wiping any previous store files there.
    ///
    /// `spec_hash` is the campaign's [`fingerprint`] and `total_cells` its
    /// expanded grid size; both are recorded in the manifest and re-checked
    /// on [`open`](Self::open)+[`validate_spec`](Self::validate_spec).
    ///
    /// [`fingerprint`]: crate::spec::CampaignSpec::fingerprint
    pub fn create(dir: impl Into<PathBuf>, spec_hash: u64, total_cells: usize) -> io::Result<Self> {
        Self::create_with_schema(dir, spec_hash, total_cells, STORE_SCHEMA_VERSION)
    }

    /// [`create`](Self::create), but writing the given schema version:
    /// [`STORE_SCHEMA_VERSION`] (v3, binary columnar — the default) or
    /// [`STORE_SCHEMA_V2`] (text CSV partitions, for interop with older
    /// tooling).
    pub fn create_with_schema(
        dir: impl Into<PathBuf>,
        spec_hash: u64,
        total_cells: usize,
        schema: u32,
    ) -> io::Result<Self> {
        if schema != STORE_SCHEMA_VERSION && schema != STORE_SCHEMA_V2 {
            return Err(io::Error::other(format!(
                "unsupported store schema v{schema} (supported: \
                 v{STORE_SCHEMA_V2}, v{STORE_SCHEMA_VERSION})"
            )));
        }
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let parts = dir.join(PARTS_DIR);
        if parts.is_dir() {
            fs::remove_dir_all(&parts)?;
        }
        fs::create_dir_all(&parts)?;
        let manifest_path = dir.join(MANIFEST_NAME);
        let mut manifest = fs::File::create(&manifest_path)?;
        writeln!(manifest, "{MANIFEST_MAGIC} {schema}")?;
        writeln!(manifest, "spec {spec_hash:016x}")?;
        writeln!(manifest, "cells {total_cells}")?;
        writeln!(manifest, "per-part {DEFAULT_CELLS_PER_PART}")?;
        manifest.flush()?;
        // One-off: make the header durable before any worker trusts it.
        manifest.sync_data()?;
        Ok(ResultStore {
            dir,
            schema,
            spec_hash,
            total_cells,
            cells_per_part: DEFAULT_CELLS_PER_PART,
            rows: BTreeMap::new(),
            done: std::collections::BTreeSet::new(),
            manifest,
            current_part: None,
            worker_tag: None,
            sync: true,
        })
    }

    /// Open an existing store, parsing the manifest and loading every
    /// trusted row from the partition files.
    ///
    /// Untrusted data is skipped, never fatal: rows without a `done`
    /// manifest entry (crash between row and log append), records that fail
    /// to parse (a line or block torn by a crash), and trailing torn `done`
    /// lines.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        let manifest_path = dir.join(MANIFEST_NAME);
        let text = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let manifest = ParsedManifest::parse(&dir, &text)?;
        let ParsedManifest {
            schema,
            spec_hash,
            total_cells,
            cells_per_part,
            done,
        } = manifest;

        // Load rows from the partitions, trusting only indices in the done
        // set and keeping the last intact record per index.
        let mut rows = BTreeMap::new();
        for (_, path) in sorted_part_paths(&dir.join(PARTS_DIR))? {
            for row in load_part_rows(&path)? {
                if done.contains(&row.index) {
                    rows.insert(row.index, row);
                }
            }
        }
        // A done entry whose row is missing or unreadable is dropped from
        // the trusted set; the executor will simply rerun that cell.
        let mut manifest = fs::OpenOptions::new()
            .append(true)
            .open(&manifest_path)
            .map_err(|e| format!("cannot reopen {}: {e}", manifest_path.display()))?;
        // If the previous run died mid-line, terminate the torn line so the
        // next `done` append starts on a fresh one.
        if !text.is_empty() && !text.ends_with('\n') {
            manifest
                .write_all(b"\n")
                .map_err(|e| format!("cannot repair {}: {e}", manifest_path.display()))?;
        }
        let done = rows.keys().copied().collect();
        Ok(ResultStore {
            dir,
            schema,
            spec_hash,
            total_cells,
            cells_per_part,
            rows,
            done,
            manifest,
            current_part: None,
            worker_tag: None,
            sync: true,
        })
    }

    /// Open the store as distributed worker `worker`: the manifest's raw
    /// `done` log is trusted as-is (under fsync'd appends a `done` entry
    /// implies its row is durable) and **no rows are loaded** — a worker
    /// only needs the completion set to skip recorded cells, and N workers
    /// each deserializing the whole store would defeat the point. All
    /// partition files this handle writes carry a `-w<worker>` name suffix,
    /// so concurrent workers never append to the same file; the manifest's
    /// `done` appends are single `O_APPEND` writes, atomic between
    /// processes on a local filesystem.
    pub fn open_worker(dir: impl Into<PathBuf>, worker: usize) -> Result<Self, String> {
        let dir = dir.into();
        let manifest_path = dir.join(MANIFEST_NAME);
        let text = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let parsed = ParsedManifest::parse(&dir, &text)?;
        let mut manifest = fs::OpenOptions::new()
            .append(true)
            .open(&manifest_path)
            .map_err(|e| format!("cannot reopen {}: {e}", manifest_path.display()))?;
        if !text.is_empty() && !text.ends_with('\n') {
            manifest
                .write_all(b"\n")
                .map_err(|e| format!("cannot repair {}: {e}", manifest_path.display()))?;
        }
        Ok(ResultStore {
            dir,
            schema: parsed.schema,
            spec_hash: parsed.spec_hash,
            total_cells: parsed.total_cells,
            cells_per_part: parsed.cells_per_part,
            rows: BTreeMap::new(),
            done: parsed.done,
            manifest,
            current_part: None,
            worker_tag: Some(worker),
            sync: true,
        })
    }

    /// Re-read the manifest's completion log and merge `done` entries other
    /// workers appended since this handle last looked. Returns the total
    /// completed count. Torn trailing lines are skipped exactly as on open.
    pub fn refresh_done(&mut self) -> Result<usize, String> {
        let manifest_path = self.dir.join(MANIFEST_NAME);
        let text = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        for line in text.lines() {
            let mut words = line.split_whitespace();
            if let (Some("done"), Some(v)) = (words.next(), words.next()) {
                if let Ok(idx) = v.parse::<usize>() {
                    self.done.insert(idx);
                }
            }
        }
        Ok(self.done.len())
    }

    /// Disable (or re-enable) the per-append fsyncs. With `sync` off a
    /// crash can reorder the row write and its `done` entry across the
    /// page cache — acceptable for tests and benches, not for campaigns
    /// anyone intends to resume or distribute.
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// Check the store belongs to this campaign before resuming into it.
    pub fn validate_spec(&self, spec_hash: u64, total_cells: usize) -> Result<(), String> {
        if self.spec_hash != spec_hash {
            return Err(format!(
                "store at {} was produced by a different campaign spec \
                 (stored fingerprint {:016x}, current {spec_hash:016x}) — \
                 rerun with the original grid flags or start a fresh --out",
                self.dir.display(),
                self.spec_hash,
            ));
        }
        if self.total_cells != total_cells {
            return Err(format!(
                "store at {} records {} cells but the spec expands to {total_cells}",
                self.dir.display(),
                self.total_cells,
            ));
        }
        Ok(())
    }

    /// Append one finished cell: the row goes to its partition file first
    /// (fsync'd, unless [`set_sync`](Self::set_sync) turned syncing off),
    /// then the `done` line to the manifest (fsync'd likewise) — the
    /// ordering that makes a crash at any point safe: a `done` entry is
    /// only ever durable *after* the row it vouches for.
    pub fn append(&mut self, row: &CellRow) -> io::Result<()> {
        let part_no = row.index / self.cells_per_part;
        if self.current_part.as_ref().map(|(n, _)| *n) != Some(part_no) {
            let path = self.part_path(part_no);
            if self.schema == STORE_SCHEMA_V2 {
                let mut file = fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)?;
                let len = file.metadata()?.len();
                if len == 0 {
                    writeln!(file, "{PART_CSV_HEADER}")?;
                } else if last_byte(&path, len)? != b'\n' {
                    // The previous run died mid-record: terminate the torn
                    // line so this append starts cleanly (the torn row is
                    // already untrusted — its `done` entry was never
                    // written).
                    file.write_all(b"\n")?;
                }
                self.current_part = Some((part_no, file));
            } else {
                // v3: if the previous run died mid-block, truncate the file
                // to its trusted prefix so the new block is reachable (a
                // block after torn bytes would never parse).
                match fs::read(&path) {
                    Ok(data) => {
                        let len = data.len();
                        let trusted = PartitionBuf::parse(data).trusted_len();
                        if trusted < len {
                            let file = fs::OpenOptions::new().write(true).open(&path)?;
                            file.set_len(trusted as u64)?;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
                let file = fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)?;
                self.current_part = Some((part_no, file));
            }
        }
        let (_, file) = self.current_part.as_mut().expect("part handle just set");
        if self.schema == STORE_SCHEMA_V2 {
            writeln!(file, "{}", row.to_store_line())?;
        } else {
            file.write_all(&colstore::encode_block(std::slice::from_ref(row)))?;
        }
        file.flush()?;
        if self.sync {
            file.sync_data()?;
        }
        // One write_all, not writeln!'s several: concurrent worker
        // processes share the manifest via O_APPEND, and a single write of
        // a whole line is atomic between them on a local filesystem.
        self.manifest
            .write_all(format!("done {}\n", row.index).as_bytes())?;
        self.manifest.flush()?;
        if self.sync {
            self.manifest.sync_data()?;
        }
        self.done.insert(row.index);
        if self.worker_tag.is_none() {
            self.rows.insert(row.index, row.clone());
        }
        Ok(())
    }

    /// Path of partition `part_no` under this store's write schema (with
    /// the owning worker's suffix on distributed handles).
    fn part_path(&self, part_no: usize) -> PathBuf {
        let ext = if self.schema == STORE_SCHEMA_V2 {
            "csv"
        } else {
            colstore::PART_EXT_V3
        };
        let name = match self.worker_tag {
            Some(w) => format!("part-{part_no:04}-w{w}.{ext}"),
            None => format!("part-{part_no:04}.{ext}"),
        };
        self.dir.join(PARTS_DIR).join(name)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The schema version this store was created/opened with.
    pub fn schema(&self) -> u32 {
        self.schema
    }

    /// The recorded spec fingerprint.
    pub fn spec_hash(&self) -> u64 {
        self.spec_hash
    }

    /// The campaign's total cell count.
    pub fn total_cells(&self) -> usize {
        self.total_cells
    }

    /// Indices of the cells recorded so far (trusted entries only).
    pub fn completed(&self) -> impl Iterator<Item = usize> + '_ {
        self.done.iter().copied()
    }

    /// Number of trusted recorded cells.
    pub fn completed_count(&self) -> usize {
        self.done.len()
    }

    /// Whether a cell's result is already recorded.
    pub fn contains(&self, index: usize) -> bool {
        self.done.contains(&index)
    }

    /// Has every cell of the campaign been recorded?
    pub fn is_complete(&self) -> bool {
        self.done.len() == self.total_cells
    }

    /// All recorded rows, sorted by cell index — the input every render
    /// frontend ([`CsvSink`](crate::sink::CsvSink) /
    /// [`JsonSink`](crate::sink::JsonSink)) consumes.
    pub fn rows(&self) -> Vec<CellRow> {
        self.rows.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(index: usize) -> CellRow {
        CellRow {
            index,
            racks: 1,
            workload: "medianjob".into(),
            seed: Some(index as u64),
            load_factor: 1.8,
            scenario: "60%/SHUT".into(),
            window: "7200+3600".into(),
            policy: "shut".into(),
            cap_percent: 60.0,
            grouping: "grouped".into(),
            decision_rule: "paper-rho".into(),
            schedule: "-".into(),
            faults: "-".into(),
            launched_jobs: 10 + index,
            completed_jobs: 9,
            killed_jobs: 0,
            pending_jobs: 1,
            work_core_seconds: 0.1 + index as f64 / 3.0,
            energy_joules: 1e9 / 7.0,
            energy_normalized: 0.5,
            launched_jobs_normalized: 0.25,
            work_normalized: 0.125,
            mean_wait_seconds: if index.is_multiple_of(2) {
                12.5
            } else {
                f64::NAN
            },
            peak_power_watts: 1000.0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("apc-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_open_recovers_exact_rows() {
        let dir = temp_dir("roundtrip");
        let mut store = ResultStore::create(&dir, 0xfeed, 200).unwrap();
        assert_eq!(store.schema(), STORE_SCHEMA_VERSION);
        // Out-of-order appends across several partitions, as a work-stealing
        // run produces them.
        for i in [150usize, 3, 64, 0, 199, 65] {
            store.append(&row(i)).unwrap();
        }
        assert_eq!(store.completed_count(), 6);
        assert!(!store.is_complete());
        drop(store);

        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.spec_hash(), 0xfeed);
        assert_eq!(reopened.total_cells(), 200);
        let rows = reopened.rows();
        assert_eq!(
            rows.iter().map(|r| r.index).collect::<Vec<_>>(),
            [0, 3, 64, 65, 150, 199],
            "rows come back sorted by index"
        );
        for r in &rows {
            let expect = row(r.index);
            assert_eq!(
                r.work_core_seconds.to_bits(),
                expect.work_core_seconds.to_bits()
            );
            assert_eq!(
                r.mean_wait_seconds.is_nan(),
                expect.mean_wait_seconds.is_nan()
            );
        }
        // Partitioning: indices 0,3 → part 0; 64,65 → part 1; 150 → part 2;
        // 199 → part 3.
        for part in 0..4 {
            assert!(dir
                .join(PARTS_DIR)
                .join(format!("part-{part:04}.apc"))
                .exists());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_store_writes_csv_and_reads_back() {
        let dir = temp_dir("v2-compat");
        let mut store =
            ResultStore::create_with_schema(&dir, 0xfeed, 200, STORE_SCHEMA_V2).unwrap();
        assert_eq!(store.schema(), STORE_SCHEMA_V2);
        for i in [0usize, 64, 150] {
            store.append(&row(i)).unwrap();
        }
        drop(store);
        assert!(dir.join(PARTS_DIR).join("part-0000.csv").exists());
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.schema(), STORE_SCHEMA_V2);
        let rows = reopened.rows();
        assert_eq!(
            rows.iter().map(|r| r.index).collect::<Vec<_>>(),
            [0, 64, 150]
        );
        for r in &rows {
            assert_eq!(
                r.work_core_seconds.to_bits(),
                row(r.index).work_core_seconds.to_bits()
            );
        }
        // Resuming a v2 store keeps appending CSV.
        let mut resumed = ResultStore::open(&dir).unwrap();
        resumed.append(&row(1)).unwrap();
        drop(resumed);
        assert!(!dir.join(PARTS_DIR).join("part-0000.apc").exists());
        assert_eq!(ResultStore::open(&dir).unwrap().completed_count(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn labelled_rows_round_trip_through_both_schemas() {
        for schema in [STORE_SCHEMA_V2, STORE_SCHEMA_VERSION] {
            let dir = temp_dir(&format!("labels-v{schema}"));
            let mut store = ResultStore::create_with_schema(&dir, 0xfeed, 10, schema).unwrap();
            let mut labelled = row(0);
            labelled.scenario = "SCHED/SHUT".into();
            labelled.schedule = "0+7200@80|7200+10800@40".into();
            labelled.faults = "3x600@7".into();
            store.append(&labelled).unwrap();
            store.append(&row(1)).unwrap();
            drop(store);
            let rows = ResultStore::open(&dir).unwrap().rows();
            assert_eq!(rows.len(), 2, "schema v{schema}");
            assert_eq!(rows[0].schedule, "0+7200@80|7200+10800@40");
            assert_eq!(rows[0].faults, "3x600@7");
            assert_eq!(rows[1].schedule, "-");
            assert_eq!(rows[1].faults, "-");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn create_rejects_unknown_schema() {
        let dir = temp_dir("bad-schema");
        let err = ResultStore::create_with_schema(&dir, 1, 10, 7).unwrap_err();
        assert!(err.to_string().contains("unsupported store schema v7"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rows_without_done_entries_are_untrusted() {
        let dir = temp_dir("untrusted");
        let mut store = ResultStore::create(&dir, 1, 10).unwrap();
        store.append(&row(0)).unwrap();
        store.append(&row(1)).unwrap();
        drop(store);
        // Simulate a crash after the row write but before the manifest
        // append: drop row 1's done line.
        let manifest_path = dir.join(MANIFEST_NAME);
        let text = fs::read_to_string(&manifest_path).unwrap();
        let kept: Vec<&str> = text.lines().filter(|l| *l != "done 1").collect();
        fs::write(&manifest_path, kept.join("\n") + "\n").unwrap();

        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.completed().collect::<Vec<_>>(), [0]);
        assert!(!reopened.contains(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_part_blocks_and_duplicate_records_resolve_safely() {
        let dir = temp_dir("torn");
        let mut store = ResultStore::create(&dir, 1, 10).unwrap();
        store.append(&row(0)).unwrap();
        store.append(&row(1)).unwrap();
        drop(store);
        // Tear the last block in half (crash mid-write) …
        let part = dir.join(PARTS_DIR).join("part-0000.apc");
        let data = fs::read(&part).unwrap();
        fs::write(&part, &data[..data.len() - 30]).unwrap();
        // … then "rerun" cell 1: reopen and append a fresh record.
        let mut reopened = ResultStore::open(&dir).unwrap();
        assert!(!reopened.contains(1), "torn record must not be trusted");
        let mut fresh = row(1);
        fresh.launched_jobs = 999;
        reopened.append(&fresh).unwrap();
        drop(reopened);
        // The torn tail was truncated before the append, so the fresh block
        // parses; the duplicate resolves to the last intact record.
        let last = ResultStore::open(&dir).unwrap();
        let rows = last.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].launched_jobs, 999);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_manifest_done_line_is_skipped() {
        let dir = temp_dir("torn-manifest");
        let mut store = ResultStore::create(&dir, 1, 10).unwrap();
        store.append(&row(0)).unwrap();
        drop(store);
        let manifest_path = dir.join(MANIFEST_NAME);
        let mut text = fs::read_to_string(&manifest_path).unwrap();
        text.push_str("done"); // interrupted mid-line, no index, no newline
        fs::write(&manifest_path, text).unwrap();
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.completed_count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_spec_rejects_mismatches() {
        let dir = temp_dir("validate");
        let store = ResultStore::create(&dir, 0xabc, 40).unwrap();
        store.validate_spec(0xabc, 40).unwrap();
        let err = store.validate_spec(0xdef, 40).unwrap_err();
        assert!(err.contains("different campaign spec"), "got: {err}");
        let err = store.validate_spec(0xabc, 41).unwrap_err();
        assert!(err.contains("records 40 cells"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_a_v1_schema_store_with_a_versioned_error() {
        let dir = temp_dir("schema-v1");
        // Write a store, then rewrite its manifest header to schema v1 —
        // exactly what a store produced by the pre-sweep code looks like.
        let mut store = ResultStore::create(&dir, 0xbeef, 10).unwrap();
        store.append(&row(0)).unwrap();
        drop(store);
        let manifest_path = dir.join(MANIFEST_NAME);
        let text = fs::read_to_string(&manifest_path).unwrap();
        let downgraded = text.replacen(
            &format!("{MANIFEST_MAGIC} {STORE_SCHEMA_VERSION}"),
            &format!("{MANIFEST_MAGIC} 1"),
            1,
        );
        assert_ne!(text, downgraded, "header rewrite must take effect");
        fs::write(&manifest_path, downgraded).unwrap();
        let err = ResultStore::open(&dir).unwrap_err();
        assert!(
            err.contains("schema v1") && err.contains(&format!("v{STORE_SCHEMA_VERSION}")),
            "got: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partitions_are_ordered_numerically_not_lexically() {
        let dir = temp_dir("part-order");
        fs::create_dir_all(&dir).unwrap();
        // Simulate a grid large enough for 5-digit partition numbers next
        // to 4-digit ones: lexically "part-10000" sorts before "part-9999".
        // Both codec extensions participate in one ordering.
        for name in ["part-10000.apc", "part-9999.csv", "part-0002.apc"] {
            fs::write(dir.join(name), "x\n").unwrap();
        }
        fs::write(dir.join("not-a-part.txt"), "y\n").unwrap();
        let parts = sorted_part_paths(&dir).unwrap();
        let numbers: Vec<usize> = parts.iter().map(|(n, _)| *n).collect();
        assert_eq!(numbers, [2, 9999, 10000]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn worker_handles_merge_into_one_store() {
        let dir = temp_dir("workers");
        drop(ResultStore::create(&dir, 0xfeed, 200).unwrap());
        let mut w0 = ResultStore::open_worker(&dir, 0).unwrap();
        let mut w1 = ResultStore::open_worker(&dir, 1).unwrap();
        w0.set_sync(false);
        w1.set_sync(false);
        w0.append(&row(0)).unwrap();
        w1.append(&row(1)).unwrap();
        w0.append(&row(64)).unwrap();
        // Worker handles observe each other's completions only through the
        // shared manifest, on refresh.
        assert!(!w1.contains(64));
        w1.refresh_done().unwrap();
        assert!(w1.contains(64));
        assert_eq!(w1.completed_count(), 3);
        // A stolen lease re-executes a cell into a second worker's file;
        // readers resolve to the highest worker id (rows of a real rerun
        // are byte-identical anyway — replay is deterministic).
        let mut stolen = row(2);
        stolen.launched_jobs = 111;
        w0.append(&stolen).unwrap();
        stolen.launched_jobs = 222;
        w1.append(&stolen).unwrap();
        drop(w0);
        drop(w1);
        for name in ["part-0000-w0.apc", "part-0000-w1.apc", "part-0001-w0.apc"] {
            assert!(dir.join(PARTS_DIR).join(name).exists(), "missing {name}");
        }
        let merged = ResultStore::open(&dir).unwrap();
        let rows = merged.rows();
        assert_eq!(
            rows.iter().map(|r| r.index).collect::<Vec<_>>(),
            [0, 1, 2, 64]
        );
        assert_eq!(rows[2].launched_jobs, 222);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn worker_suffixed_partitions_sort_after_plain_files_of_same_number() {
        let dir = temp_dir("worker-order");
        fs::create_dir_all(&dir).unwrap();
        for name in [
            "part-0002-w1.apc",
            "part-0002.apc",
            "part-0002-w0.apc",
            "part-0001-w10.csv",
            "part-0001-w2.apc",
        ] {
            fs::write(dir.join(name), "x\n").unwrap();
        }
        let parts = sorted_part_paths(&dir).unwrap();
        let names: Vec<String> = parts
            .iter()
            .map(|(_, p)| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(
            names,
            [
                "part-0001-w2.apc",
                "part-0001-w10.csv",
                "part-0002.apc",
                "part-0002-w0.apc",
                "part-0002-w1.apc",
            ]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_foreign_directories() {
        let dir = temp_dir("foreign");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST_NAME), "not a store\n").unwrap();
        let err = ResultStore::open(&dir).unwrap_err();
        assert!(err.contains("bad magic"), "got: {err}");
        let err = ResultStore::open(dir.join("missing")).unwrap_err();
        assert!(err.contains("cannot read"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_wipes_a_previous_store() {
        let dir = temp_dir("wipe");
        let mut store = ResultStore::create(&dir, 1, 10).unwrap();
        store.append(&row(0)).unwrap();
        drop(store);
        let fresh = ResultStore::create(&dir, 2, 10).unwrap();
        assert_eq!(fresh.completed_count(), 0);
        drop(fresh);
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.spec_hash(), 2);
        assert_eq!(reopened.completed_count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}

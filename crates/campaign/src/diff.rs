//! Cross-campaign diffing of `summary.csv` files.
//!
//! Two campaigns over the **same grid** (same racks × workloads × scenarios
//! × ablation knobs) but different code revisions should agree row for row;
//! where they don't, the per-metric deltas are exactly the policy
//! regressions CI wants to catch. [`diff_summary_csv`] matches rows by
//! their identity columns and compares every numeric column;
//! [`DiffReport::breaches`] applies a relative-change threshold so noisy
//! metrics can be tolerated while real regressions still fail the build.
//!
//! The `campaign-diff` binary is a thin CLI over this module: exit 0 when
//! the grids match and no delta breaches the threshold, exit 1 otherwise.
//! With `--intersect` the grids may legitimately differ (e.g. a smoke
//! subset against the full campaign): only the common subgrid is judged
//! and [`DiffReport::coverage_summary`] reports what was left out.

use std::collections::BTreeMap;

use crate::sink::split_csv_line;

/// Columns that identify a summary row rather than measure it.
const KEY_COLUMNS: [&str; 8] = [
    "racks",
    "workload",
    "load_factor",
    "scenario",
    "window",
    "cap_percent",
    "grouping",
    "decision_rule",
];

/// Label columns that extend the row identity **when present**. Legacy
/// summaries don't render them at all, and labelled summaries mark
/// label-free rows with `-`; a `-` contributes nothing to the key, so a
/// legacy row and its label-free rendering under the new schema produce the
/// same identity — no silent relabeling when diffing an old store against a
/// new one. Non-`-` labels join the key (they are identity, not metrics).
const OPTIONAL_KEY_COLUMNS: [&str; 2] = ["schedule", "faults"];

/// One metric of one grid row whose value differs between the two files.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Human-readable row identity, e.g. `racks=2 workload=24h scenario=60%/SHUT …`.
    pub key: String,
    /// Column name, e.g. `work_normalized_mean`.
    pub metric: String,
    /// Value in the first (baseline) file; `NaN` for an empty field.
    pub a: f64,
    /// Value in the second (candidate) file.
    pub b: f64,
}

impl MetricDelta {
    /// Absolute change `b - a` (`NaN` when either side is undefined).
    pub fn delta(&self) -> f64 {
        self.b - self.a
    }

    /// Relative change in percent, against the baseline value.
    ///
    /// Defined-vs-undefined disagreements (`NaN` on one side, any
    /// non-finite flip like `inf -> 3.2`, and changes away from an exact
    /// zero baseline) report `inf` — they breach every finite threshold,
    /// which is the conservative reading of "the metric moved". Two `NaN`s
    /// compare as equal (0 %), whatever their provenance or payload bits.
    ///
    /// This function never returns `NaN`: the naive `(b - a) / a` formula
    /// would (e.g. `a = inf, b = 3.2` gives `-inf / inf = NaN`), and a `NaN`
    /// relative change silently passed every `>` threshold test — an
    /// infinite baseline regressing to a finite value slipped through
    /// `campaign-diff` unflagged.
    pub fn rel_percent(&self) -> f64 {
        if self.a.is_nan() && self.b.is_nan() {
            return 0.0;
        }
        if !self.a.is_finite() || !self.b.is_finite() {
            // inf == inf (same sign) is unchanged; any other pairing of
            // non-finite values is a defined-vs-undefined flip.
            return if self.a == self.b { 0.0 } else { f64::INFINITY };
        }
        if self.a == 0.0 {
            return if self.b == 0.0 { 0.0 } else { f64::INFINITY };
        }
        ((self.b - self.a) / self.a).abs() * 100.0
    }

    /// Does this delta exceed `threshold_percent`?
    ///
    /// Only a *defined* comparison showing `rel <= threshold` passes; an
    /// incomparable (NaN) relative change breaches. The old `rel > t` test
    /// had it backwards — `NaN > t` is `false` for every `t`, so
    /// NaN-producing deltas passed the diff silently.
    pub fn breaches(&self, threshold_percent: f64) -> bool {
        use std::cmp::Ordering;
        !matches!(
            self.rel_percent().partial_cmp(&threshold_percent),
            Some(Ordering::Less | Ordering::Equal)
        )
    }
}

/// Everything [`diff_summary_csv`] found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Number of grid rows present in both files.
    pub compared_rows: usize,
    /// Metrics whose values differ (bit-compared after parsing; two `NaN`s
    /// count as equal). Empty for identical campaigns.
    pub deltas: Vec<MetricDelta>,
    /// Row identities only the first file has.
    pub only_in_a: Vec<String>,
    /// Row identities only the second file has.
    pub only_in_b: Vec<String>,
}

impl DiffReport {
    /// Do the two files cover exactly the same grid rows?
    pub fn grid_matches(&self) -> bool {
        self.only_in_a.is_empty() && self.only_in_b.is_empty()
    }

    /// One-line coverage summary for intersect-mode diffs: how much of each
    /// grid was actually compared.
    ///
    /// Intersect mode (`campaign-diff --intersect`) deliberately compares
    /// partial grids — e.g. a full campaign against a cheap smoke subset —
    /// so "rows only in A" is expected, not an error. This line keeps the
    /// asymmetry visible so a diff that silently compared 3 of 3000 rows
    /// can't masquerade as a clean full-grid pass.
    pub fn coverage_summary(&self) -> String {
        format!(
            "coverage: {} common row(s); {} only in A, {} only in B\n",
            self.compared_rows,
            self.only_in_a.len(),
            self.only_in_b.len()
        )
    }

    /// Deltas whose relative change exceeds `threshold_percent` (including
    /// any whose relative change is undefined — see
    /// [`MetricDelta::breaches`]).
    pub fn breaches(&self, threshold_percent: f64) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.breaches(threshold_percent))
            .collect()
    }

    /// Render the report as human-readable text (one line per finding).
    pub fn render(&self, threshold_percent: f64) -> String {
        let mut out = String::new();
        for key in &self.only_in_a {
            out.push_str(&format!("only in A: {key}\n"));
        }
        for key in &self.only_in_b {
            out.push_str(&format!("only in B: {key}\n"));
        }
        for d in &self.deltas {
            let breach = if d.breaches(threshold_percent) {
                "  ** breach"
            } else {
                ""
            };
            out.push_str(&format!(
                "{} {}: {} -> {} (delta {:+.6}, {:.3}%){breach}\n",
                d.key,
                d.metric,
                d.a,
                d.b,
                d.delta(),
                d.rel_percent(),
            ));
        }
        if out.is_empty() {
            out.push_str(&format!(
                "identical summaries: {} rows, no metric deltas\n",
                self.compared_rows
            ));
        }
        out
    }
}

/// One parsed summary file: row identity → (metric name → value).
type ParsedSummary = BTreeMap<String, BTreeMap<String, f64>>;

/// Parse a rendered `summary.csv` (header + data lines).
fn parse_summary_csv(which: &str, text: &str) -> Result<ParsedSummary, String> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| format!("{which} is empty — not a summary.csv"))?;
    let columns: Vec<&str> = header.split(',').collect();
    for key in KEY_COLUMNS {
        if !columns.contains(&key) {
            return Err(format!(
                "{which} has no {key:?} column — not a summary.csv (header: {header})"
            ));
        }
    }
    let mut rows = ParsedSummary::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields =
            split_csv_line(line).map_err(|e| format!("{which} line {}: {e}", lineno + 2))?;
        if fields.len() != columns.len() {
            return Err(format!(
                "{which} line {}: {} fields but {} header columns",
                lineno + 2,
                fields.len(),
                columns.len()
            ));
        }
        let mut key_parts = Vec::with_capacity(KEY_COLUMNS.len());
        let mut metrics = BTreeMap::new();
        for (column, field) in columns.iter().zip(&fields) {
            if KEY_COLUMNS.contains(column) {
                key_parts.push(format!("{column}={field}"));
            } else if OPTIONAL_KEY_COLUMNS.contains(column) {
                if field != "-" {
                    key_parts.push(format!("{column}={field}"));
                }
            } else {
                // An empty field is a rendered NaN (e.g. the mean wait of
                // an interval that launched nothing).
                let value = if field.is_empty() {
                    f64::NAN
                } else {
                    field.parse().map_err(|_| {
                        format!("{which} line {}: bad {column} value {field:?}", lineno + 2)
                    })?
                };
                metrics.insert((*column).to_string(), value);
            }
        }
        let key = key_parts.join(" ");
        if rows.insert(key.clone(), metrics).is_some() {
            return Err(format!("{which} repeats grid row {key}"));
        }
    }
    Ok(rows)
}

/// Compare two rendered `summary.csv` texts from the same grid.
///
/// Errors on malformed input (not a summary.csv, torn lines, duplicate
/// rows); grid mismatches and metric deltas are reported in the
/// [`DiffReport`], not as errors.
pub fn diff_summary_csv(a_text: &str, b_text: &str) -> Result<DiffReport, String> {
    let a = parse_summary_csv("A", a_text)?;
    let b = parse_summary_csv("B", b_text)?;
    let mut report = DiffReport::default();
    for (key, a_metrics) in &a {
        let Some(b_metrics) = b.get(key) else {
            report.only_in_a.push(key.clone());
            continue;
        };
        report.compared_rows += 1;
        // Walk the union of both rows' metric columns: a column missing on
        // either side compares as NaN and therefore breaches, whether the
        // schema shrank (A-only) or grew (B-only).
        let metrics = a_metrics.keys().chain(
            b_metrics
                .keys()
                .filter(|metric| !a_metrics.contains_key(*metric)),
        );
        for metric in metrics {
            let va = a_metrics.get(metric).copied().unwrap_or(f64::NAN);
            let vb = b_metrics.get(metric).copied().unwrap_or(f64::NAN);
            let equal = (va.is_nan() && vb.is_nan()) || va == vb;
            if !equal {
                report.deltas.push(MetricDelta {
                    key: key.clone(),
                    metric: metric.clone(),
                    a: va,
                    b: vb,
                });
            }
        }
    }
    for key in b.keys() {
        if !a.contains_key(key) {
            report.only_in_b.push(key.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{summarize, CellRow};
    use crate::sink::render_summary_csv;

    fn row(index: usize, scenario: &str, launched: usize, wait: f64) -> CellRow {
        CellRow {
            index,
            racks: 1,
            workload: "medianjob".into(),
            seed: Some(index as u64),
            load_factor: 1.8,
            scenario: scenario.into(),
            window: "7200+3600".into(),
            policy: "shut".into(),
            cap_percent: 60.0,
            grouping: "grouped".into(),
            decision_rule: "paper-rho".into(),
            schedule: "-".into(),
            faults: "-".into(),
            launched_jobs: launched,
            completed_jobs: launched,
            killed_jobs: 0,
            pending_jobs: 0,
            work_core_seconds: 100.0,
            energy_joules: 1.0,
            energy_normalized: 0.5,
            launched_jobs_normalized: 0.5,
            work_normalized: 0.25,
            mean_wait_seconds: wait,
            peak_power_watts: 900.0,
        }
    }

    fn csv(rows: &[CellRow]) -> String {
        render_summary_csv(&summarize(rows))
    }

    #[test]
    fn identical_summaries_have_no_deltas() {
        let a = csv(&[row(0, "60%/SHUT", 10, 5.0), row(1, "40%/MIX", 8, 7.0)]);
        let report = diff_summary_csv(&a, &a).unwrap();
        assert!(report.grid_matches());
        assert_eq!(report.compared_rows, 2);
        assert!(report.deltas.is_empty());
        assert!(report.breaches(0.0).is_empty());
        assert!(report.render(0.0).contains("identical summaries"));
    }

    #[test]
    fn regressions_are_reported_per_metric_and_thresholded() {
        let a = csv(&[row(0, "60%/SHUT", 100, 5.0)]);
        let b = csv(&[row(0, "60%/SHUT", 98, 5.0)]); // 2 % fewer launches
        let report = diff_summary_csv(&a, &b).unwrap();
        assert!(report.grid_matches());
        assert!(!report.deltas.is_empty());
        let launched: Vec<&MetricDelta> = report
            .deltas
            .iter()
            .filter(|d| d.metric.starts_with("launched_jobs"))
            .collect();
        assert!(!launched.is_empty());
        assert!((launched[0].rel_percent() - 2.0).abs() < 1e-9);
        // A 5 % tolerance swallows it; a 1 % tolerance flags it.
        assert!(report.breaches(5.0).is_empty());
        assert!(!report.breaches(1.0).is_empty());
        assert!(report.render(1.0).contains("** breach"));
    }

    #[test]
    fn grid_mismatches_are_not_silently_compared() {
        let a = csv(&[row(0, "60%/SHUT", 10, 5.0), row(1, "40%/MIX", 8, 7.0)]);
        let b = csv(&[row(0, "60%/SHUT", 10, 5.0), row(1, "80%/DVFS", 8, 7.0)]);
        let report = diff_summary_csv(&a, &b).unwrap();
        assert!(!report.grid_matches());
        assert_eq!(report.compared_rows, 1);
        assert_eq!(report.only_in_a.len(), 1);
        assert_eq!(report.only_in_b.len(), 1);
        assert!(report.only_in_a[0].contains("40%/MIX"));
        let rendered = report.render(0.0);
        assert!(rendered.contains("only in A"));
        assert!(rendered.contains("only in B"));
    }

    #[test]
    fn coverage_summary_reports_the_compared_subgrid() {
        let a = csv(&[row(0, "60%/SHUT", 10, 5.0), row(1, "40%/MIX", 8, 7.0)]);
        let b = csv(&[row(0, "60%/SHUT", 10, 5.0), row(1, "80%/DVFS", 8, 7.0)]);
        let report = diff_summary_csv(&a, &b).unwrap();
        assert_eq!(
            report.coverage_summary(),
            "coverage: 1 common row(s); 1 only in A, 1 only in B\n"
        );
        // The common subgrid itself is clean: intersect mode would pass.
        assert!(report.breaches(0.0).is_empty());
        let full = diff_summary_csv(&a, &a).unwrap();
        assert_eq!(
            full.coverage_summary(),
            "coverage: 2 common row(s); 0 only in A, 0 only in B\n"
        );
    }

    #[test]
    fn nan_fields_compare_as_equal_but_mismatches_breach() {
        let a = csv(&[row(0, "60%/SHUT", 0, f64::NAN)]);
        let report = diff_summary_csv(&a, &a).unwrap();
        assert!(report.deltas.is_empty(), "NaN == NaN for diffing purposes");
        let b = csv(&[row(0, "60%/SHUT", 0, 9.0)]);
        let report = diff_summary_csv(&a, &b).unwrap();
        let wait: Vec<&MetricDelta> = report
            .deltas
            .iter()
            .filter(|d| d.metric.starts_with("mean_wait"))
            .collect();
        assert!(!wait.is_empty());
        assert_eq!(wait[0].rel_percent(), f64::INFINITY);
        assert!(
            !report.breaches(1e12).is_empty(),
            "NaN mismatch always breaches"
        );
    }

    #[test]
    fn schema_drift_in_either_direction_breaches() {
        let a = csv(&[row(0, "60%/SHUT", 10, 5.0)]);
        // Append an extra metric column to one side only.
        let grow = |text: &str, value: &str| -> String {
            let mut lines = text.lines();
            let header = lines.next().unwrap();
            let row = lines.next().unwrap();
            format!("{header},new_metric_mean\n{row},{value}\n")
        };
        let b = grow(&a, "1.5");
        // B grew a column: every row breaches regardless of threshold.
        let report = diff_summary_csv(&a, &b).unwrap();
        assert!(report.deltas.iter().any(|d| d.metric == "new_metric_mean"));
        assert!(!report.breaches(1e12).is_empty());
        // And symmetrically when A has the extra column.
        let report = diff_summary_csv(&b, &a).unwrap();
        assert!(report.deltas.iter().any(|d| d.metric == "new_metric_mean"));
        assert!(!report.breaches(1e12).is_empty());
    }

    #[test]
    fn label_columns_are_identity_not_metrics_and_dashes_match_legacy() {
        // A labelled summary: one scheduled row, one legacy row marked "-".
        let mut scheduled = row(0, "SCHED/SHUT", 10, 5.0);
        scheduled.schedule = "0+43200@80|43200+43200@40".into();
        let legacy_row = row(1, "60%/SHUT", 8, 7.0);
        let labelled = csv(&[scheduled.clone(), legacy_row.clone()]);
        assert!(labelled
            .lines()
            .next()
            .unwrap()
            .contains(",schedule,faults,"));

        // Labels are identity: the same grid diffs clean against itself, and
        // the schedule string never tries to parse as a metric.
        let report = diff_summary_csv(&labelled, &labelled).unwrap();
        assert!(report.grid_matches());
        assert!(report.deltas.is_empty());
        assert!(report
            .only_in_a
            .iter()
            .chain(&report.only_in_b)
            .all(|k| !k.contains("schedule=-")));

        // Changing only the schedule label is a grid mismatch, not a
        // tolerated metric delta.
        let mut relabelled = scheduled.clone();
        relabelled.schedule = "0+86400@80".into();
        let other = csv(&[relabelled, legacy_row.clone()]);
        let report = diff_summary_csv(&labelled, &other).unwrap();
        assert!(!report.grid_matches());
        assert_eq!(report.compared_rows, 1);

        // The "-" rows of a labelled file match the same rows of a legacy
        // (label-free) file: only the scheduled row is unmatched.
        let legacy = csv(&[legacy_row]);
        assert!(!legacy.lines().next().unwrap().contains("schedule"));
        let report = diff_summary_csv(&labelled, &legacy).unwrap();
        assert_eq!(report.compared_rows, 1);
        assert!(report.deltas.is_empty());
        assert_eq!(report.only_in_a.len(), 1);
        assert!(report.only_in_a[0].contains("SCHED/SHUT"));
        assert!(report.only_in_b.is_empty());
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        assert!(diff_summary_csv("", "").is_err());
        assert!(diff_summary_csv("index,foo\n1,2\n", "index,foo\n1,2\n").is_err());
        let good = csv(&[row(0, "60%/SHUT", 10, 5.0)]);
        let torn = good.lines().next().unwrap().to_string() + "\n1,medianjob\n";
        assert!(diff_summary_csv(&good, &torn).is_err());
        // Duplicate grid rows are ambiguous — refuse.
        let dup = good.clone() + good.lines().nth(1).unwrap() + "\n";
        assert!(diff_summary_csv(&good, &dup).is_err());
    }

    #[test]
    fn zero_baseline_changes_report_infinite_relative_delta() {
        let d = MetricDelta {
            key: "k".into(),
            metric: "m".into(),
            a: 0.0,
            b: 0.5,
        };
        assert_eq!(d.rel_percent(), f64::INFINITY);
        let same = MetricDelta { b: 0.0, ..d };
        assert_eq!(same.rel_percent(), 0.0);
    }

    #[test]
    fn non_finite_flips_always_breach_instead_of_nan_passing() {
        // Regression: `(b - a) / a` with an infinite baseline is NaN, and
        // `NaN > threshold` is false — an inf -> finite regression passed
        // `campaign-diff` silently. rel_percent must never return NaN.
        let delta = |a: f64, b: f64| MetricDelta {
            key: "k".into(),
            metric: "m".into(),
            a,
            b,
        };
        for (a, b) in [
            (f64::INFINITY, 3.2),
            (3.2, f64::INFINITY),
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::INFINITY, f64::NAN),
            (f64::NAN, 0.0),
        ] {
            let d = delta(a, b);
            assert!(
                !d.rel_percent().is_nan(),
                "rel_percent({a}, {b}) must not be NaN"
            );
            assert_eq!(d.rel_percent(), f64::INFINITY, "rel_percent({a}, {b})");
            assert!(d.breaches(1e300), "({a} -> {b}) must breach any threshold");
        }
        // Unchanged non-finite values compare as equal.
        assert_eq!(delta(f64::INFINITY, f64::INFINITY).rel_percent(), 0.0);
        assert_eq!(
            delta(f64::NEG_INFINITY, f64::NEG_INFINITY).rel_percent(),
            0.0
        );
        assert_eq!(delta(f64::NAN, f64::NAN).rel_percent(), 0.0);
        assert!(!delta(f64::NAN, f64::NAN).breaches(0.0));
    }

    #[test]
    fn infinite_peak_regressions_are_caught_end_to_end() {
        // The same hole exercised through the full summary.csv diff. Our own
        // renderer writes non-finite values as empty fields, but `inf` is
        // valid `f64::from_str` input and appears in files produced by other
        // tooling (and in the full-precision store rows): a metric that was
        // `inf` in A and finite in B used to produce a NaN relative change
        // and pass silently.
        let base = csv(&[row(0, "60%/SHUT", 10, 5.0)]);
        let grow = |text: &str, value: &str| -> String {
            let mut lines = text.lines();
            let header = lines.next().unwrap();
            let row = lines.next().unwrap();
            format!("{header},extra_metric_mean\n{row},{value}\n")
        };
        let a = grow(&base, "inf");
        let b = grow(&base, "3.2");
        let report = diff_summary_csv(&a, &b).unwrap();
        let extra: Vec<&MetricDelta> = report
            .deltas
            .iter()
            .filter(|d| d.metric == "extra_metric_mean")
            .collect();
        assert_eq!(extra.len(), 1, "inf -> finite must produce a delta");
        assert_eq!(extra[0].rel_percent(), f64::INFINITY);
        assert!(
            !report.breaches(1e300).is_empty(),
            "inf -> finite must breach every threshold"
        );
        assert!(report.render(1e300).contains("** breach"));
        // Two inf runs of the same sign are identical, not a breach.
        let report = diff_summary_csv(&a, &a).unwrap();
        assert!(report.deltas.is_empty());
    }
}

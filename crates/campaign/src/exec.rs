//! The deterministic sharded campaign executor.
//!
//! Cells are partitioned across `N` `std::thread` workers by **stable cell
//! index** (worker `w` owns cells `w, w + N, w + 2N, …`). Each worker builds
//! the cell's platform, fetches the workload from the shared
//! [`TraceCache`] (each distinct `(platform, interval, seed)` trace is
//! generated once per campaign, not once per cell), replays the scenario
//! with the ordinary [`ReplayHarness`], reduces the outcome to a
//! [`CellRow`] and streams the row back over a channel.
//!
//! Determinism contract: each cell's replay depends only on its own
//! `(platform, trace, scenario)` triple — workers share nothing mutable but
//! the trace cache, whose values are pure functions of their keys. Rows are
//! re-ordered by cell index before aggregation, so the campaign output is
//! **byte-identical for any thread count** (asserted by
//! `tests/campaign_determinism.rs`).

use std::sync::mpsc;
use std::time::{Duration, Instant};

use apc_replay::ReplayHarness;
use apc_rjms::cluster::Platform;
use apc_workload::{CurieTraceGenerator, TraceCache};

use crate::agg::{summarize, CellRow, SummaryRow};
use crate::spec::{CampaignCell, CampaignSpec, CellWorkload, TraceSource};

/// Run-wide counters reported next to the results.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of cells executed.
    pub cells: usize,
    /// Worker threads actually used.
    pub threads: usize,
    /// Trace-cache lookups served without regeneration.
    pub trace_cache_hits: usize,
    /// Distinct traces generated.
    pub trace_cache_misses: usize,
}

/// Everything a finished campaign produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// One row per cell, sorted by cell index.
    pub rows: Vec<CellRow>,
    /// Across-seed summaries, in first-occurrence order.
    pub summaries: Vec<SummaryRow>,
    /// Run-wide counters.
    pub stats: RunStats,
    /// Wall-clock time of the execution phase.
    pub wall: Duration,
}

/// A configured, runnable campaign.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    spec: CampaignSpec,
    source: TraceSource,
    threads: usize,
}

impl CampaignRunner {
    /// A campaign over the synthetic generator with one worker thread.
    pub fn new(spec: CampaignSpec) -> Self {
        CampaignRunner {
            spec,
            source: TraceSource::Synthetic,
            threads: 1,
        }
    }

    /// Replace the workload source (builder style).
    pub fn with_source(mut self, source: TraceSource) -> Self {
        self.source = source;
        self
    }

    /// Set the worker-thread count; 0 means "all available cores"
    /// (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The spec being run.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The expanded cell grid this runner would execute.
    pub fn cells(&self) -> Vec<CampaignCell> {
        self.spec.expand(&self.source)
    }

    /// The thread count after resolving 0 ⇒ available parallelism.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// The worker count [`run`](Self::run) will actually use: the resolved
    /// thread count clamped to the number of cells.
    pub fn effective_threads(&self) -> usize {
        self.clamped_threads(self.cells().len())
    }

    fn clamped_threads(&self, cell_count: usize) -> usize {
        self.resolved_threads().clamp(1, cell_count.max(1))
    }

    /// Execute every cell and aggregate the results.
    ///
    /// Fails fast (before spawning anything) if the spec does not validate.
    pub fn run(&self) -> Result<CampaignOutcome, String> {
        self.spec.validate()?;
        let cells = self.cells();
        let threads = self.clamped_threads(cells.len());
        let cache = TraceCache::new();
        let started = Instant::now();

        let mut rows: Vec<CellRow> = Vec::with_capacity(cells.len());
        let (tx, rx) = mpsc::channel::<CellRow>();
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let tx = tx.clone();
                let cells = &cells;
                let cache = &cache;
                let spec = &self.spec;
                let source = &self.source;
                scope.spawn(move || {
                    for cell in cells.iter().skip(worker).step_by(threads) {
                        let row = run_cell(spec, source, cache, cell);
                        // The receiver only disappears if the parent
                        // panicked; nothing useful to do with the row then.
                        let _ = tx.send(row);
                    }
                });
            }
            drop(tx);
            // Stream rows in as workers produce them (only flat rows are
            // ever buffered — never whole replay outcomes).
            for row in rx {
                rows.push(row);
            }
        });
        let wall = started.elapsed();

        rows.sort_by_key(|r| r.index);
        let summaries = summarize(&rows);
        Ok(CampaignOutcome {
            stats: RunStats {
                cells: rows.len(),
                threads,
                trace_cache_hits: cache.hits(),
                trace_cache_misses: cache.misses(),
            },
            rows,
            summaries,
            wall,
        })
    }
}

/// The platform for a cell's rack scale (>= 56 racks ⇒ the full Curie).
pub fn platform_for(racks: usize) -> Platform {
    if racks >= 56 {
        Platform::curie()
    } else {
        Platform::curie_scaled(racks)
    }
}

/// Replay one cell and reduce it to its row (runs on a worker thread).
fn run_cell(
    spec: &CampaignSpec,
    source: &TraceSource,
    cache: &TraceCache,
    cell: &CampaignCell,
) -> CellRow {
    let platform = platform_for(cell.racks);
    let trace = match (&cell.workload, source) {
        (CellWorkload::Fixed, TraceSource::Fixed(trace)) => std::sync::Arc::clone(trace),
        (CellWorkload::Synthetic { interval, seed }, _) => {
            let generator = CurieTraceGenerator::new(*seed)
                .interval(*interval)
                .load_factor(spec.load_factor)
                .backlog_factor(spec.backlog_factor);
            cache.get_or_generate(&generator, &platform)
        }
        (CellWorkload::Fixed, TraceSource::Synthetic) => {
            unreachable!("fixed cells only come from fixed-source expansions")
        }
    };
    let harness = ReplayHarness::from_shared(platform, trace)
        .with_initial_fairshare(spec.initial_fairshare_core_hours);
    let outcome = harness.run(&cell.scenario);
    CellRow::from_outcome(cell, &outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_workload::IntervalKind;

    /// A grid small and light enough for unit tests.
    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            racks: vec![1],
            intervals: vec![IntervalKind::MedianJob],
            seeds: vec![1, 2],
            policies: vec![apc_core::PowercapPolicy::Shut],
            cap_fractions: vec![0.6],
            load_factor: 0.5,
            backlog_factor: 0.2,
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn run_produces_one_row_per_cell_in_index_order() {
        let runner = CampaignRunner::new(small_spec()).with_threads(2);
        let outcome = runner.run().unwrap();
        assert_eq!(outcome.rows.len(), runner.cells().len());
        for (i, row) in outcome.rows.iter().enumerate() {
            assert_eq!(row.index, i);
        }
        assert_eq!(outcome.stats.cells, outcome.rows.len());
        assert_eq!(outcome.stats.threads, 2);
        // 2 seeds × 1 interval × 1 platform ⇒ 2 distinct traces over 4
        // lookups. Concurrent first lookups of the same key may both count
        // as misses (the duplicate generation is discarded), so only the
        // totals are exact.
        assert_eq!(
            outcome.stats.trace_cache_hits + outcome.stats.trace_cache_misses,
            4
        );
        assert!(outcome.stats.trace_cache_misses >= 2);
    }

    #[test]
    fn thread_count_does_not_change_rows() {
        let spec = small_spec();
        let one = CampaignRunner::new(spec.clone())
            .with_threads(1)
            .run()
            .unwrap();
        let four = CampaignRunner::new(spec).with_threads(4).run().unwrap();
        assert_eq!(one.rows, four.rows);
        assert_eq!(one.summaries, four.summaries);
    }

    #[test]
    fn baseline_delivers_at_least_as_much_work_as_capped() {
        let outcome = CampaignRunner::new(small_spec())
            .with_threads(2)
            .run()
            .unwrap();
        let baseline = outcome
            .rows
            .iter()
            .find(|r| r.scenario == "100%/None")
            .unwrap();
        let capped = outcome
            .rows
            .iter()
            .find(|r| r.scenario == "60%/SHUT")
            .unwrap();
        assert!(capped.work_core_seconds <= baseline.work_core_seconds + 1e-6);
        assert!(baseline.launched_jobs > 0);
    }

    #[test]
    fn summaries_fold_the_seed_axis() {
        let outcome = CampaignRunner::new(small_spec())
            .with_threads(3)
            .run()
            .unwrap();
        // 4 rows (2 seeds × 2 scenarios) fold into 2 summary groups.
        assert_eq!(outcome.rows.len(), 4);
        assert_eq!(outcome.summaries.len(), 2);
        assert!(outcome.summaries.iter().all(|s| s.replications == 2));
        for s in &outcome.summaries {
            assert!(s.launched_jobs.min <= s.launched_jobs.mean);
            assert!(s.launched_jobs.mean <= s.launched_jobs.max);
        }
    }

    #[test]
    fn fixed_source_replays_the_supplied_trace() {
        let platform = platform_for(1);
        let trace = CurieTraceGenerator::new(9)
            .load_factor(0.4)
            .backlog_factor(0.1)
            .generate_for(&platform);
        let runner = CampaignRunner::new(small_spec())
            .with_source(TraceSource::Fixed(std::sync::Arc::new(trace)))
            .with_threads(2);
        let outcome = runner.run().unwrap();
        // Seeds collapse: one workload × 2 scenarios.
        assert_eq!(outcome.rows.len(), 2);
        assert!(outcome.rows.iter().all(|r| r.workload == "swf"));
        assert_eq!(outcome.stats.trace_cache_misses, 0);
    }

    #[test]
    fn invalid_specs_are_rejected_before_running() {
        let spec = CampaignSpec {
            cap_fractions: vec![2.0],
            ..small_spec()
        };
        assert!(CampaignRunner::new(spec).run().is_err());
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let runner = CampaignRunner::new(small_spec()).with_threads(0);
        assert!(runner.resolved_threads() >= 1);
    }
}

//! The deterministic work-stealing campaign executor.
//!
//! Cells are seeded round-robin by **stable cell index** into one deque per
//! worker (worker `w` starts with cells `w, w + N, w + 2N, …`). Each worker
//! pulls from the *front* of its own deque; when that runs dry it steals
//! from the *back* of a victim's deque instead of idling — so one 24 h
//! straggler cell no longer pins every other worker to an empty shard, the
//! failure mode of the old static-sharding executor (still available as
//! [`ExecStrategy::StaticShard`] for comparison benchmarks).
//!
//! For every pulled cell the worker builds (or **reuses**, when the cell
//! shares the previous cell's platform scale and workload) a
//! [`ReplayHarness`], fetches the trace from the shared [`TraceCache`],
//! replays the scenario, reduces the outcome to a [`CellRow`] and streams
//! the row to the coordinator, which hands it to the caller's sink — the
//! in-memory collector for [`CampaignRunner::run`], or an incremental
//! [`ResultStore`] append for [`CampaignRunner::run_with_store`].
//!
//! Determinism contract: each cell's replay depends only on its own
//! `(platform, trace, scenario)` triple — workers share nothing mutable but
//! the trace cache, whose values are pure functions of their keys. Rows are
//! re-ordered by cell index before aggregation, so the campaign output is
//! **byte-identical for any thread count and either strategy** (asserted by
//! `tests/campaign_determinism.rs`), even though which worker runs which
//! cell is scheduling-dependent under stealing.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use apc_obs::Registry;
use apc_replay::ReplayHarness;
use apc_rjms::cluster::Platform;
use apc_workload::{CurieTraceGenerator, TraceCache};

use crate::agg::{summarize, CellRow, SummaryRow};
use crate::lease::{now_ms, Backoff, LeaseAction, LeaseLog};
use crate::obs::{CampaignObs, ExecObs};
use crate::spec::{CampaignCell, CampaignSpec, CellWorkload, TraceSource};
use crate::store::ResultStore;

/// How cells are distributed across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecStrategy {
    /// Per-worker deques with steal-on-empty: an idle worker takes cells
    /// from the back of a busy worker's deque. The default.
    #[default]
    WorkStealing,
    /// The PR-2 static partition (worker `w` owns cells `w, w + N, …`,
    /// nothing moves): kept for benchmarks and as a scheduling baseline.
    StaticShard,
}

/// Per-worker execution counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Worker id in `0..threads`.
    pub worker: usize,
    /// Cells this worker completed.
    pub completed: usize,
    /// Of those, cells stolen from another worker's deque.
    pub stolen: usize,
}

/// Run-wide counters reported next to the results.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of cells executed by this run.
    pub cells: usize,
    /// Cells skipped because a resumed [`ResultStore`] already recorded
    /// them (always 0 for a fresh run).
    pub skipped: usize,
    /// Worker threads actually used.
    pub threads: usize,
    /// Trace-cache lookups served without regeneration.
    pub trace_cache_hits: usize,
    /// Distinct traces generated.
    pub trace_cache_misses: usize,
    /// Per-worker completion/steal counters, indexed by worker id. (Which
    /// worker ran which cell is scheduling-dependent; only the results are
    /// deterministic.)
    pub per_worker: Vec<WorkerStats>,
}

impl RunStats {
    /// Total cells that moved between workers via stealing.
    pub fn total_steals(&self) -> usize {
        self.per_worker.iter().map(|w| w.stolen).sum()
    }

    /// The human summary the `campaign` CLI prints: run totals (including
    /// total steals) on the first line, then one line per worker with its
    /// completion rate and the share of its cells that were stolen.
    pub fn render(&self, wall: Duration) -> String {
        let skipped = if self.skipped > 0 {
            format!(", {} resumed from store", self.skipped)
        } else {
            String::new()
        };
        let secs = wall.as_secs_f64();
        let mut out = format!(
            "ran {} cells on {} thread(s) in {secs:.2} s ({} trace(s) generated, \
             {} cache hits, {} steal(s){skipped})\n",
            self.cells,
            self.threads,
            self.trace_cache_misses,
            self.trace_cache_hits,
            self.total_steals(),
        );
        for w in &self.per_worker {
            let rate = w.completed as f64 / secs.max(1e-9);
            let stolen_share = if w.completed > 0 {
                w.stolen as f64 * 100.0 / w.completed as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  w{}: {} cell(s) ({rate:.1} cells/s), {} stolen ({stolen_share:.0}%)\n",
                w.worker, w.completed, w.stolen
            ));
        }
        out
    }
}

/// Everything a finished campaign produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// One row per cell, sorted by cell index.
    pub rows: Vec<CellRow>,
    /// Across-seed summaries, in first-occurrence order.
    pub summaries: Vec<SummaryRow>,
    /// Run-wide counters.
    pub stats: RunStats,
    /// Wall-clock time of the execution phase.
    pub wall: Duration,
}

/// A configured, runnable campaign.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    spec: CampaignSpec,
    source: TraceSource,
    threads: usize,
    strategy: ExecStrategy,
    obs: CampaignObs,
}

impl CampaignRunner {
    /// A campaign over the synthetic generator with one worker thread.
    pub fn new(spec: CampaignSpec) -> Self {
        CampaignRunner {
            spec,
            source: TraceSource::Synthetic,
            threads: 1,
            strategy: ExecStrategy::default(),
            obs: CampaignObs::disabled(),
        }
    }

    /// Attach observability (a metrics registry the progress monitor can
    /// sample, and/or a span recorder for Chrome-trace export). Results are
    /// byte-identical with or without it (builder style).
    pub fn with_obs(mut self, obs: CampaignObs) -> Self {
        self.obs = obs;
        self
    }

    /// Replace the workload source (builder style).
    pub fn with_source(mut self, source: TraceSource) -> Self {
        self.source = source;
        self
    }

    /// Set the worker-thread count; 0 means "all available cores"
    /// (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Choose the scheduling strategy (builder style).
    pub fn with_strategy(mut self, strategy: ExecStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The spec being run.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The scheduling strategy in effect.
    pub fn strategy(&self) -> ExecStrategy {
        self.strategy
    }

    /// The expanded cell grid this runner would execute.
    pub fn cells(&self) -> Result<Vec<CampaignCell>, String> {
        self.spec.expand(&self.source)
    }

    /// The stable fingerprint identifying this campaign (spec + workload
    /// source) — what a [`ResultStore`] manifest records and resume
    /// validates.
    pub fn fingerprint(&self) -> u64 {
        self.spec.fingerprint(&self.source)
    }

    /// The thread count after resolving 0 ⇒ available parallelism.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// The worker count [`run`](Self::run) will actually use: the resolved
    /// thread count clamped to the number of cells.
    pub fn effective_threads(&self) -> usize {
        let cell_count = self.cells().map_or(1, |c| c.len());
        self.clamped_threads(cell_count)
    }

    fn clamped_threads(&self, cell_count: usize) -> usize {
        self.resolved_threads().clamp(1, cell_count.max(1))
    }

    /// Execute every cell in memory and aggregate the results.
    ///
    /// Fails fast (before spawning anything) if the spec does not validate.
    pub fn run(&self) -> Result<CampaignOutcome, String> {
        self.spec.validate_for(&self.source)?;
        let cells = self.cells()?;
        let pending: Vec<usize> = (0..cells.len()).collect();
        let started = Instant::now();
        let mut rows: Vec<CellRow> = Vec::with_capacity(cells.len());
        let inner = self.execute(&cells, &pending, |row| {
            rows.push(row);
            Ok(())
        })?;
        let wall = started.elapsed();
        rows.sort_by_key(|r| r.index);
        let summaries = summarize(&rows);
        Ok(CampaignOutcome {
            stats: RunStats {
                cells: rows.len(),
                skipped: 0,
                threads: inner.threads,
                trace_cache_hits: inner.hits,
                trace_cache_misses: inner.misses,
                per_worker: inner.per_worker,
            },
            rows,
            summaries,
            wall,
        })
    }

    /// Execute the campaign against an on-disk [`ResultStore`], appending
    /// each cell's row as it completes and **skipping cells the store
    /// already records** — pointing this at a store that crashed mid-run
    /// resumes it, and the final output is byte-identical to an
    /// uninterrupted run (asserted by `tests/campaign_resume.rs`).
    ///
    /// The store must belong to this campaign: its manifest fingerprint is
    /// checked against [`fingerprint`](Self::fingerprint) before anything
    /// runs.
    pub fn run_with_store(&self, store: &mut ResultStore) -> Result<CampaignOutcome, String> {
        self.spec.validate_for(&self.source)?;
        let cells = self.cells()?;
        store.validate_spec(self.fingerprint(), cells.len())?;
        let skipped = store.completed_count();
        let pending: Vec<usize> = (0..cells.len()).filter(|i| !store.contains(*i)).collect();
        let executed = pending.len();
        let started = Instant::now();
        let inner = self.execute(&cells, &pending, |row| {
            store
                .append(&row)
                .map_err(|e| format!("cannot append cell {} to result store: {e}", row.index))
        })?;
        let wall = started.elapsed();
        // Rows come back out of the store — including the skipped ones from
        // the previous run — so every render frontend downstream reads one
        // consistent, index-sorted view.
        let rows = store.rows();
        debug_assert_eq!(rows.len(), cells.len());
        let summaries = summarize(&rows);
        Ok(CampaignOutcome {
            stats: RunStats {
                cells: executed,
                skipped,
                threads: inner.threads,
                trace_cache_hits: inner.hits,
                trace_cache_misses: inner.misses,
                per_worker: inner.per_worker,
            },
            rows,
            summaries,
            wall,
        })
    }

    /// Run one distributed worker process's lease loop against the store
    /// and lease log in `dir` (both created by `campaign --distributed`).
    ///
    /// The loop pulls whole **batches** instead of cells: refresh the lease
    /// log, take the [`LeaseAction`] it prescribes — claim a free batch,
    /// steal an expired one (after the jittered [`Backoff`] when a claim
    /// race was lost), wait, or finish — then execute the batch's
    /// unrecorded cells through the same in-process work-stealing pool as a
    /// local run, appending rows to this worker's own partition files and
    /// heartbeat-renewing the lease at half its TTL as rows stream in. The
    /// manifest `done` set is re-read at claim time, so a stolen batch
    /// re-executes only what its dead holder had not recorded.
    ///
    /// Exactly-once, in effect: a batch retires exactly once (lease-log
    /// replay is deterministic), and though an alive-but-slow holder can
    /// race its stealer into executing a cell twice, both append
    /// byte-identical rows — replay is a pure function of the cell — which
    /// last-wins duplicate resolution collapses. With `sync` off the
    /// store's and lease log's fsyncs are skipped (tests only).
    ///
    /// The fingerprint check gates every worker: both the manifest and the
    /// lease-log header must record this runner's exact grid.
    pub fn run_worker(
        &self,
        dir: &Path,
        worker: usize,
        sync: bool,
    ) -> Result<WorkerOutcome, String> {
        self.spec.validate_for(&self.source)?;
        let cells = self.cells()?;
        let fingerprint = self.fingerprint();
        let mut store = ResultStore::open_worker(dir, worker)?;
        store.set_sync(sync);
        store.validate_spec(fingerprint, cells.len())?;
        let mut lease = LeaseLog::open(dir)?;
        lease.set_sync(sync);
        lease.validate_spec(fingerprint, cells.len())?;
        let ttl_ms = lease.header().ttl_ms;
        // Per-worker lease counters, published like the executor's worker
        // counters (on the caller's registry when one is attached).
        let registry = if self.obs.registry.is_live() {
            self.obs.registry.clone()
        } else {
            Registry::new()
        };
        let claims_c = registry.counter(&format!("campaign.worker.{worker}.lease.claims"));
        let steals_c = registry.counter(&format!("campaign.worker.{worker}.lease.steals"));
        let renews_c = registry.counter(&format!("campaign.worker.{worker}.lease.renews"));
        let conflicts_c = registry.counter(&format!("campaign.worker.{worker}.lease.conflicts"));
        let batches_c = registry.counter(&format!("campaign.worker.{worker}.lease.batches_done"));
        let mut backoff = Backoff::new(worker as u64, 50, (ttl_ms / 2).clamp(200, 5_000));
        let mut out = WorkerOutcome {
            worker,
            ..WorkerOutcome::default()
        };
        loop {
            lease.refresh()?;
            match lease.state().next_action(worker, now_ms()) {
                LeaseAction::Finished => break,
                LeaseAction::Wait { ms } => {
                    // Bounded naps so an expiry (or completion) is noticed
                    // promptly even when the suggested wait is a whole TTL.
                    std::thread::sleep(Duration::from_millis(ms.min(1_000)));
                }
                LeaseAction::Claim { batch, steal } => {
                    if lease.state().owner(batch) != Some(worker) {
                        // Append-then-verify: the claim only took effect if
                        // the re-read log replays us as the owner. Losing
                        // the race is answered with jittered backoff, not
                        // retried immediately (the winner is running).
                        lease.append_claim(batch, worker, now_ms())?;
                        lease.refresh()?;
                        if lease.state().owner(batch) != Some(worker) {
                            out.conflicts += 1;
                            conflicts_c.inc();
                            std::thread::sleep(backoff.next_delay());
                            continue;
                        }
                        out.claims += 1;
                        claims_c.inc();
                        if steal {
                            out.steals += 1;
                            steals_c.inc();
                        }
                    }
                    backoff.reset();
                    // The manifest, not the lease log, is the ground truth
                    // for completed cells: skip everything recorded — by us,
                    // by the batch's dead previous holder, by anyone.
                    store.refresh_done()?;
                    let pending: Vec<usize> = lease
                        .header()
                        .batch_range(batch)
                        .filter(|i| !store.contains(*i))
                        .collect();
                    let mut last_beat = now_ms();
                    let mut renews = 0usize;
                    {
                        let store = &mut store;
                        let lease = &mut lease;
                        self.execute(&cells, &pending, |row| {
                            store.append(&row).map_err(|e| {
                                format!("cannot append cell {} to result store: {e}", row.index)
                            })?;
                            let t = now_ms();
                            if t.saturating_sub(last_beat) >= ttl_ms / 2 {
                                lease.append_renew(batch, worker, t)?;
                                last_beat = t;
                                renews += 1;
                            }
                            Ok(())
                        })?;
                    }
                    out.renews += renews;
                    renews_c.add(renews as u64);
                    lease.append_done(batch, worker, now_ms())?;
                    out.batches += 1;
                    batches_c.inc();
                    out.cells += pending.len();
                }
            }
        }
        Ok(out)
    }

    /// Run the `pending` cell indices through the worker pool, handing each
    /// finished row to `on_row` on the coordinator thread (in completion
    /// order, *not* index order). An `on_row` error stops the run early.
    fn execute(
        &self,
        cells: &[CampaignCell],
        pending: &[usize],
        mut on_row: impl FnMut(CellRow) -> Result<(), String>,
    ) -> Result<ExecInner, String> {
        let threads = self.clamped_threads(pending.len());
        let cache = TraceCache::new();
        if pending.is_empty() {
            return Ok(ExecInner {
                threads,
                per_worker: Vec::new(),
                hits: 0,
                misses: 0,
            });
        }
        // Run statistics live on the metrics registry: the caller's when one
        // is attached (so a progress monitor sampling it sees the same
        // numbers), a private live one otherwise — either way the executor
        // publishes identically and RunStats is read back off the registry.
        let registry = if self.obs.registry.is_live() {
            self.obs.registry.clone()
        } else {
            Registry::new()
        };
        let obs = ExecObs::new(&registry, self.obs.spans.clone(), threads);
        let queues = WorkQueues::seed(pending, threads);
        let steal = self.strategy == ExecStrategy::WorkStealing;
        let (tx, rx) = mpsc::channel::<CellRow>();
        let mut sink_err: Option<String> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for worker in 0..threads {
                let tx = tx.clone();
                let queues = &queues;
                let cache = &cache;
                let spec = &self.spec;
                let source = &self.source;
                let obs = &obs;
                handles.push(scope.spawn(move || {
                    // Worker-local harness slot: consecutive pulled cells of
                    // the same (racks, workload) reuse one ReplayHarness
                    // instead of rebuilding the platform and re-fetching the
                    // trace per cell.
                    let mut harness: Option<HarnessSlot> = None;
                    while let Some((idx, was_stolen)) = queues.next(worker, steal) {
                        obs.set_queue_depth(worker, queues.depth(worker));
                        let cell_span = obs.cell_begin();
                        let row = run_cell(spec, source, cache, &cells[idx], &mut harness);
                        obs.cell_end(cell_span, worker, idx, was_stolen, &row.scenario);
                        // The receiver only disappears if the coordinator's
                        // sink failed; stop producing rows then.
                        if tx.send(row).is_err() {
                            break;
                        }
                    }
                    obs.set_queue_depth(worker, 0);
                }));
            }
            drop(tx);
            // Stream rows in as workers produce them (only flat rows are
            // ever buffered — never whole replay outcomes).
            for row in rx {
                if let Err(e) = on_row(row) {
                    sink_err = Some(e);
                    break;
                }
            }
            for handle in handles {
                handle.join().expect("campaign worker panicked");
            }
        });
        if let Some(e) = sink_err {
            return Err(e);
        }
        obs.publish_cache(cache.hits(), cache.misses());
        Ok(ExecInner {
            threads,
            per_worker: obs.per_worker_stats(),
            hits: cache.hits(),
            misses: cache.misses(),
        })
    }
}

/// What one distributed worker process did
/// ([`CampaignRunner::run_worker`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// This worker's id.
    pub worker: usize,
    /// Cells this worker executed (not counting skipped recorded ones).
    pub cells: usize,
    /// Batches this worker retired.
    pub batches: usize,
    /// Accepted claims (fresh batches plus steals).
    pub claims: usize,
    /// Of those, claims over an expired lease (steals).
    pub steals: usize,
    /// Heartbeat renews appended.
    pub renews: usize,
    /// Claim races lost (answered with backoff).
    pub conflicts: usize,
}

impl WorkerOutcome {
    /// The one-line summary the `campaign worker` CLI prints to stderr.
    pub fn render(&self) -> String {
        format!(
            "worker {}: {} cell(s) over {} batch(es) ({} claim(s), {} steal(s), \
             {} renew(s), {} lost race(s))\n",
            self.worker,
            self.cells,
            self.batches,
            self.claims,
            self.steals,
            self.renews,
            self.conflicts,
        )
    }
}

/// What [`CampaignRunner::execute`] hands back to the run wrappers.
struct ExecInner {
    threads: usize,
    per_worker: Vec<WorkerStats>,
    hits: usize,
    misses: usize,
}

/// One deque of pending cell indices per worker, stealable from the back.
struct WorkQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl WorkQueues {
    /// Deal `pending` round-robin so worker `w` starts with the same shard
    /// the static executor would give it.
    fn seed(pending: &[usize], workers: usize) -> Self {
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, &cell) in pending.iter().enumerate() {
            deques[i % workers].push_back(cell);
        }
        WorkQueues {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Cells left in `worker`'s own deque (for the queue-depth gauge).
    fn depth(&self, worker: usize) -> usize {
        self.deques[worker]
            .lock()
            .expect("work deque poisoned")
            .len()
    }

    /// Pull the next cell for `worker`: own deque front first, then (when
    /// stealing is on) the back of the nearest non-empty victim. Returns
    /// `(cell index, was_stolen)`, or `None` when every deque is drained —
    /// cells never re-enter a deque, so drained means done.
    fn next(&self, worker: usize, steal: bool) -> Option<(usize, bool)> {
        if let Some(idx) = self.deques[worker]
            .lock()
            .expect("work deque poisoned")
            .pop_front()
        {
            return Some((idx, false));
        }
        if steal {
            let n = self.deques.len();
            for offset in 1..n {
                let victim = (worker + offset) % n;
                if let Some(idx) = self.deques[victim]
                    .lock()
                    .expect("work deque poisoned")
                    .pop_back()
                {
                    return Some((idx, true));
                }
            }
        }
        None
    }
}

/// A worker's cached harness and the coordinates it was built for.
type HarnessSlot = (usize, CellWorkload, ReplayHarness);

/// The platform for a cell's rack scale (>= 56 racks ⇒ the full Curie).
pub fn platform_for(racks: usize) -> Platform {
    if racks >= 56 {
        Platform::curie()
    } else {
        Platform::curie_scaled(racks)
    }
}

/// Replay one cell and reduce it to its row (runs on a worker thread).
/// `slot` carries the worker's previous harness for reuse when the cell
/// shares its (racks, workload) coordinates.
fn run_cell(
    spec: &CampaignSpec,
    source: &TraceSource,
    cache: &TraceCache,
    cell: &CampaignCell,
    slot: &mut Option<HarnessSlot>,
) -> CellRow {
    let reusable = matches!(
        slot,
        Some((racks, workload, _)) if *racks == cell.racks && *workload == cell.workload
    );
    if !reusable {
        let platform = platform_for(cell.racks);
        let trace = match (&cell.workload, source) {
            (CellWorkload::Fixed, TraceSource::Fixed(trace)) => std::sync::Arc::clone(trace),
            (
                CellWorkload::Synthetic {
                    interval,
                    seed,
                    load_bits,
                },
                _,
            ) => {
                let generator = CurieTraceGenerator::new(*seed)
                    .interval(*interval)
                    .load_factor(f64::from_bits(*load_bits))
                    .backlog_factor(spec.backlog_factor);
                cache.get_or_generate(&generator, &platform)
            }
            (CellWorkload::Fixed, TraceSource::Synthetic) => {
                unreachable!("fixed cells only come from fixed-source expansions")
            }
        };
        let harness = ReplayHarness::from_shared(platform, trace)
            .with_initial_fairshare(spec.initial_fairshare_core_hours);
        *slot = Some((cell.racks, cell.workload, harness));
    }
    let (_, _, harness) = slot.as_ref().expect("harness slot just filled");
    // The lean replay path: no utilisation series, no event-log clone —
    // only what the row reads is ever materialised.
    let summary = harness.run_summary(&cell.scenario);
    CellRow::from_summary(cell, &summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_workload::IntervalKind;

    /// A grid small and light enough for unit tests.
    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            racks: vec![1],
            intervals: vec![IntervalKind::MedianJob],
            seeds: vec![1, 2],
            policies: vec![apc_core::PowercapPolicy::Shut],
            cap_fractions: vec![0.6],
            load_factors: vec![0.5],
            backlog_factor: 0.2,
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn run_produces_one_row_per_cell_in_index_order() {
        let runner = CampaignRunner::new(small_spec()).with_threads(2);
        let outcome = runner.run().unwrap();
        assert_eq!(outcome.rows.len(), runner.cells().unwrap().len());
        for (i, row) in outcome.rows.iter().enumerate() {
            assert_eq!(row.index, i);
        }
        assert_eq!(outcome.stats.cells, outcome.rows.len());
        assert_eq!(outcome.stats.skipped, 0);
        assert_eq!(outcome.stats.threads, 2);
        // 2 seeds × 1 interval × 1 platform ⇒ 2 distinct traces over at
        // most 4 lookups: each distinct trace is generated at least once
        // (a miss), while harness reuse can skip lookups entirely and
        // concurrent first lookups of the same key may both count as
        // misses, so only these bounds are exact.
        assert!(outcome.stats.trace_cache_hits + outcome.stats.trace_cache_misses <= 4);
        assert!((2..=4).contains(&outcome.stats.trace_cache_misses));
    }

    #[test]
    fn worker_stats_account_for_every_cell() {
        let runner = CampaignRunner::new(small_spec()).with_threads(3);
        let outcome = runner.run().unwrap();
        assert_eq!(outcome.stats.per_worker.len(), 3);
        let completed: usize = outcome.stats.per_worker.iter().map(|w| w.completed).sum();
        assert_eq!(completed, outcome.rows.len());
        assert!(outcome.stats.total_steals() <= completed);
        for (i, w) in outcome.stats.per_worker.iter().enumerate() {
            assert_eq!(w.worker, i);
            assert!(w.stolen <= w.completed);
        }
    }

    #[test]
    fn static_sharding_matches_work_stealing_results() {
        let spec = small_spec();
        let stealing = CampaignRunner::new(spec.clone())
            .with_threads(2)
            .run()
            .unwrap();
        let static_shard = CampaignRunner::new(spec)
            .with_threads(2)
            .with_strategy(ExecStrategy::StaticShard)
            .run()
            .unwrap();
        assert_eq!(stealing.rows, static_shard.rows);
        assert_eq!(stealing.summaries, static_shard.summaries);
        // The static shard never steals, by construction.
        assert_eq!(static_shard.stats.total_steals(), 0);
    }

    #[test]
    fn oversubscribed_workers_drain_the_queue_by_stealing() {
        // 8 workers over 4 cells: most workers own an empty or one-cell
        // deque and must steal or exit cleanly — the run still completes
        // with every cell executed exactly once.
        let outcome = CampaignRunner::new(small_spec())
            .with_threads(8)
            .run()
            .unwrap();
        assert_eq!(outcome.rows.len(), 4);
        let mut indices: Vec<usize> = outcome.rows.iter().map(|r| r.index).collect();
        indices.dedup();
        assert_eq!(indices, [0, 1, 2, 3]);
        // Thread count clamps to the cell count.
        assert_eq!(outcome.stats.threads, 4);
    }

    #[test]
    fn thread_count_does_not_change_rows() {
        let spec = small_spec();
        let one = CampaignRunner::new(spec.clone())
            .with_threads(1)
            .run()
            .unwrap();
        let four = CampaignRunner::new(spec).with_threads(4).run().unwrap();
        assert_eq!(one.rows, four.rows);
        assert_eq!(one.summaries, four.summaries);
    }

    #[test]
    fn baseline_delivers_at_least_as_much_work_as_capped() {
        let outcome = CampaignRunner::new(small_spec())
            .with_threads(2)
            .run()
            .unwrap();
        let baseline = outcome
            .rows
            .iter()
            .find(|r| r.scenario == "100%/None")
            .unwrap();
        let capped = outcome
            .rows
            .iter()
            .find(|r| r.scenario == "60%/SHUT")
            .unwrap();
        assert!(capped.work_core_seconds <= baseline.work_core_seconds + 1e-6);
        assert!(baseline.launched_jobs > 0);
    }

    #[test]
    fn summaries_fold_the_seed_axis() {
        let outcome = CampaignRunner::new(small_spec())
            .with_threads(3)
            .run()
            .unwrap();
        // 4 rows (2 seeds × 2 scenarios) fold into 2 summary groups.
        assert_eq!(outcome.rows.len(), 4);
        assert_eq!(outcome.summaries.len(), 2);
        assert!(outcome.summaries.iter().all(|s| s.replications == 2));
        for s in &outcome.summaries {
            assert!(s.launched_jobs.min <= s.launched_jobs.mean);
            assert!(s.launched_jobs.mean <= s.launched_jobs.max);
        }
    }

    #[test]
    fn fixed_source_replays_the_supplied_trace() {
        let platform = platform_for(1);
        let trace = CurieTraceGenerator::new(9)
            .load_factor(0.4)
            .backlog_factor(0.1)
            .generate_for(&platform);
        let runner = CampaignRunner::new(small_spec())
            .with_source(TraceSource::Fixed(std::sync::Arc::new(trace)))
            .with_threads(2);
        let outcome = runner.run().unwrap();
        // Seeds collapse: one workload × 2 scenarios.
        assert_eq!(outcome.rows.len(), 2);
        assert!(outcome.rows.iter().all(|r| r.workload == "swf"));
        assert_eq!(outcome.stats.trace_cache_misses, 0);
    }

    #[test]
    fn invalid_specs_are_rejected_before_running() {
        let spec = CampaignSpec {
            cap_fractions: vec![2.0],
            ..small_spec()
        };
        assert!(CampaignRunner::new(spec).run().is_err());
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let runner = CampaignRunner::new(small_spec()).with_threads(0);
        assert!(runner.resolved_threads() >= 1);
    }

    #[test]
    fn work_queues_hand_out_every_cell_exactly_once() {
        let pending = [3usize, 5, 8, 13, 21, 34];
        let queues = WorkQueues::seed(&pending, 3);
        // Worker 2 drains everything alone: 2 cells of its own, 4 stolen.
        let mut own = 0;
        let mut stolen = 0;
        let mut seen = Vec::new();
        while let Some((idx, was_stolen)) = queues.next(2, true) {
            seen.push(idx);
            if was_stolen {
                stolen += 1;
            } else {
                own += 1;
            }
        }
        assert_eq!(own, 2);
        assert_eq!(stolen, 4);
        seen.sort_unstable();
        assert_eq!(seen, pending);
        // And without stealing, an empty own deque ends the worker.
        let queues = WorkQueues::seed(&pending, 3);
        assert!(queues.next(0, false).is_some());
        assert!(queues.next(0, false).is_some());
        assert!(queues.next(0, false).is_none());
    }
}

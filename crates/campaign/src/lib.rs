//! # apc-campaign — parallel experiment campaigns
//!
//! The paper's evaluation is a grid — {SHUT, DVFS, MIX} policies ×
//! {80, 60, 40 %} cap fractions × four workload intervals × seeds — but the
//! replay harness runs one `(Scenario, Trace)` cell at a time. This crate
//! turns "replay one scenario" into "run a campaign":
//!
//! * [`spec`] — a declarative [`CampaignSpec`](spec::CampaignSpec) expanding
//!   policies × caps × ablation knobs × intervals × seeds × rack scales into
//!   densely-indexed [`CampaignCell`](spec::CampaignCell)s;
//! * [`exec`] — a **work-stealing** [`CampaignRunner`](exec::CampaignRunner)
//!   on `std::thread`: per-worker deques seeded by stable cell index with
//!   steal-on-empty (so a straggler cell no longer idles the other
//!   workers), shared generated traces through the
//!   [`TraceCache`](apc_workload::TraceCache), worker-local harness reuse,
//!   and **byte-identical results for any thread count**;
//! * [`store`] — the append-only partitioned
//!   [`ResultStore`](store::ResultStore) (binary columnar
//!   `cells/part-NNNN.apc` partitions — see [`colstore`] — plus a manifest
//!   recording the spec fingerprint and completed cell indices) that rows
//!   stream into as they finish, giving crash-safe campaigns and
//!   `--resume`; v2 CSV stores stay readable and [`compact`] migrates
//!   them;
//! * [`agg`] — streaming reduction of each replay outcome to a flat
//!   [`CellRow`](agg::CellRow) plus across-seed mean/min/max/stddev
//!   [`SummaryRow`](agg::SummaryRow)s, without ever buffering whole
//!   [`ReplayOutcome`](apc_replay::ReplayOutcome)s;
//! * [`sink`] — CSV and JSON render frontends over the store (or an
//!   in-memory outcome) writing `cells.*` and `summary.*`;
//! * [`diff`] — cross-campaign comparison of two `summary.csv` files with
//!   a regression threshold, exposed as the `campaign-diff` binary;
//! * the `campaign` binary (`cargo run --release -p apc-campaign --bin
//!   campaign -- --threads N --seeds K [--resume DIR] …`) exposing all of
//!   the above.
//!
//! ```no_run
//! use apc_campaign::prelude::*;
//!
//! let spec = CampaignSpec::paper(2012, 3); // the paper grid, 3 seeds
//! let runner = CampaignRunner::new(spec).with_threads(4);
//! // Stream rows into a crash-resumable on-disk store as cells finish…
//! let mut store =
//!     ResultStore::create("results", runner.fingerprint(), runner.cells().unwrap().len())
//!         .unwrap();
//! let outcome = runner.run_with_store(&mut store).unwrap();
//! // …or run purely in memory.
//! println!("{}", render_summary_csv(&outcome.summaries));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod colstore;
pub mod compact;
pub mod diff;
pub mod exec;
pub mod lease;
pub mod obs;
pub mod pareto;
pub mod progress;
pub mod query;
pub mod sink;
pub mod spec;
pub mod store;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::agg::{summarize, CellRow, MetricSummary, SummaryRow};
    pub use crate::colstore::{encode_block, PartitionBuf};
    pub use crate::compact::{compact_store, CompactStats};
    pub use crate::diff::{diff_summary_csv, DiffReport, MetricDelta};
    pub use crate::exec::{
        platform_for, CampaignOutcome, CampaignRunner, ExecStrategy, RunStats, WorkerOutcome,
        WorkerStats,
    };
    pub use crate::lease::{
        now_ms, Backoff, BatchLease, LeaseAction, LeaseHeader, LeaseLog, LeaseState,
        WorkerLeaseStats, DEFAULT_LEASE_CELLS, DEFAULT_LEASE_TTL_MS, LEASES_NAME,
    };
    pub use crate::obs::CampaignObs;
    pub use crate::pareto::{
        pareto_front, pareto_front_cells, render_pareto_cells_csv, render_pareto_csv, Objectives,
        ParetoCellRow, ParetoRow,
    };
    pub use crate::progress::{render_lease_progress, render_progress, ProgressMonitor};
    pub use crate::query::{
        numeric, project, scan_store, AggKind, GroupAggregator, Projection, RowFilter, ScanFlow,
        ScanStats, StoreScanner, DEFAULT_AGG_COLUMNS, NUMERIC_COLUMNS, QUERY_COLUMNS,
    };
    pub use crate::sink::{
        render_cells_csv, render_cells_json, render_summary_csv, render_summary_json, CampaignSink,
        CsvSink, JsonSink,
    };
    pub use crate::spec::{
        place_windows, CampaignCell, CampaignSpec, CellWorkload, TraceSource, WindowPlacement,
        WindowSet, SINGLE_PAPER_WINDOW,
    };
    pub use crate::store::{ResultStore, STORE_SCHEMA_V2, STORE_SCHEMA_VERSION};
}

pub use prelude::*;

/// Compile-time audit that everything the sharded executor moves across or
/// shares between worker threads really is `Send`/`Sync`. The replay stack
/// is plain owned data (no `Rc`, no interior mutability besides the trace
/// cache's own locks), so these hold structurally — this pins that property
/// against future regressions.
#[allow(dead_code)]
fn thread_safety_audit() {
    fn send<T: Send>() {}
    fn send_sync<T: Send + Sync>() {}
    // Shared read-only between workers.
    send_sync::<apc_rjms::cluster::Platform>();
    send_sync::<apc_workload::Trace>();
    send_sync::<apc_workload::TraceCache>();
    send_sync::<apc_replay::Scenario>();
    send_sync::<spec::CampaignSpec>();
    send_sync::<spec::TraceSource>();
    send_sync::<spec::CampaignCell>();
    // Moved from workers to the aggregator.
    send::<apc_replay::ReplayOutcome>();
    send::<apc_rjms::controller::SimulationReport>();
    send::<agg::CellRow>();
    // Worker-local state and per-worker results under the stealing executor.
    send::<apc_replay::ReplayHarness>();
    send::<exec::WorkerStats>();
    send_sync::<exec::ExecStrategy>();
}

//! Streaming result aggregation.
//!
//! Workers reduce each heavy [`ReplayOutcome`](apc_replay::ReplayOutcome)
//! (simulation log + time series) to a flat [`CellRow`] *inside the worker
//! thread*, immediately after the replay finishes — only rows ever cross the
//! channel and only rows are retained, so a campaign's resident footprint is
//! proportional to the number of cells, not to the size of the simulations.
//!
//! [`summarize`] then folds the rows, grouped over the seed axis, into
//! across-replication mean / min / max / stddev [`SummaryRow`]s. Rows are
//! always folded in cell-index order, so every float accumulation is
//! order-stable and the summaries are byte-identical for any thread count.

use apc_replay::metrics::{NormalizedOutcome, PowerSeries};
use apc_replay::{ReplayOutcome, ReplaySummary, SimulationReport};

use crate::spec::CampaignCell;

/// The flat per-cell result record (one CSV/JSON row).
#[derive(Debug, Clone, PartialEq)]
pub struct CellRow {
    /// Cell index in expansion order.
    pub index: usize,
    /// Platform scale in racks.
    pub racks: usize,
    /// Workload label ("smalljob", "medianjob", "bigjob", "24h" or "swf").
    pub workload: String,
    /// Generator seed; `None` for a fixed trace (rendered as an empty
    /// field, so an SWF row can never masquerade as a synthetic `seed=0`
    /// replication).
    pub seed: Option<u64>,
    /// Generator arrival load factor; `NaN` for a fixed trace (rendered as
    /// an empty field).
    pub load_factor: f64,
    /// Scenario label, e.g. "60%/SHUT" or "100%/None".
    pub scenario: String,
    /// Cap-window label (`start+duration` pairs joined with `|`, `"-"` for
    /// the baseline) — see [`Scenario::window_label`](apc_replay::Scenario::window_label).
    pub window: String,
    /// Policy name ("none", "shut", "dvfs", "mix").
    pub policy: String,
    /// Cap as a percentage of maximum power (100 for the baseline).
    pub cap_percent: f64,
    /// Grouping strategy name.
    pub grouping: String,
    /// Decision rule name.
    pub decision_rule: String,
    /// Cap-schedule label (`start+duration@percent` pairs joined with `|`,
    /// `"-"` for scenarios without a time-varying schedule) — see
    /// [`Scenario::schedule_label`](apc_replay::Scenario::schedule_label).
    pub schedule: String,
    /// Fault-plan label (`COUNTxDURATION@SEED`, `"-"` for fault-free
    /// scenarios) — see
    /// [`Scenario::fault_label`](apc_replay::Scenario::fault_label).
    pub faults: String,
    /// Jobs started during the interval.
    pub launched_jobs: usize,
    /// Jobs run to completion.
    pub completed_jobs: usize,
    /// Jobs killed by the controller.
    pub killed_jobs: usize,
    /// Jobs still pending at the horizon.
    pub pending_jobs: usize,
    /// Useful work delivered, in core-seconds.
    pub work_core_seconds: f64,
    /// Total energy, in joules.
    pub energy_joules: f64,
    /// Energy normalised by the flat-out maximum (Fig. 8).
    pub energy_normalized: f64,
    /// Launched jobs normalised by the trace size (Fig. 8).
    pub launched_jobs_normalized: f64,
    /// Work normalised by the interval capacity (Fig. 8).
    pub work_normalized: f64,
    /// Mean queue wait of started jobs, in seconds.
    pub mean_wait_seconds: f64,
    /// Peak power inside the cap window (whole interval for the baseline).
    pub peak_power_watts: f64,
}

impl CellRow {
    /// Reduce a full replay outcome to its flat row.
    pub fn from_outcome(cell: &CampaignCell, outcome: &ReplayOutcome) -> Self {
        Self::from_parts(cell, &outcome.report, &outcome.normalized, &outcome.power)
    }

    /// Reduce a lean [`ReplaySummary`] to its flat row — the campaign
    /// executor's per-cell path (the summary carries exactly the fields a
    /// row reads, so no utilisation series or log is ever built).
    pub fn from_summary(cell: &CampaignCell, summary: &ReplaySummary) -> Self {
        Self::from_parts(cell, &summary.report, &summary.normalized, &summary.power)
    }

    fn from_parts(
        cell: &CampaignCell,
        report: &SimulationReport,
        normalized: &NormalizedOutcome,
        power: &PowerSeries,
    ) -> Self {
        let scenario = &cell.scenario;
        let duration_end = report.horizon;
        // Peak power inside the cap windows (the max across them for a
        // multi-window scenario); whole interval for the baseline.
        let windows = scenario.windows();
        let peak_power_watts = if windows.is_empty() {
            power.peak_within(0, duration_end).as_watts()
        } else {
            windows
                .iter()
                .map(|w| power.peak_within(w.start, w.end).as_watts())
                .fold(f64::NEG_INFINITY, f64::max)
        };
        CellRow {
            index: cell.index,
            racks: cell.racks,
            workload: cell.workload.label().to_string(),
            seed: cell.workload.seed(),
            load_factor: cell.workload.load_factor().unwrap_or(f64::NAN),
            scenario: scenario.label(),
            window: scenario.window_label(),
            policy: scenario.policy.name().to_ascii_lowercase(),
            cap_percent: scenario.cap_fraction.map_or(100.0, |f| f * 100.0),
            grouping: scenario.grouping.name().to_string(),
            decision_rule: scenario.decision_rule.name().to_string(),
            schedule: scenario.schedule_label(),
            faults: scenario.fault_label(),
            launched_jobs: report.launched_jobs,
            completed_jobs: report.completed_jobs,
            killed_jobs: report.killed_jobs,
            pending_jobs: report.pending_jobs,
            work_core_seconds: report.work_core_seconds,
            energy_joules: report.energy.as_joules(),
            energy_normalized: normalized.energy_normalized,
            launched_jobs_normalized: normalized.launched_jobs_normalized,
            work_normalized: normalized.work_normalized,
            mean_wait_seconds: report.mean_wait_seconds,
            peak_power_watts,
        }
    }

    /// Encode the row as one CSV record for the on-disk result store.
    ///
    /// Unlike the rendered `cells.csv` (which rounds floats to six decimals
    /// for human consumption), the store keeps every float in Rust's
    /// shortest round-trip `Display` form, so
    /// [`parse_store_line`](Self::parse_store_line) recovers the exact bit
    /// pattern and a resumed campaign aggregates the same values an
    /// uninterrupted one would. Non-finite values print as `NaN`/`inf`,
    /// which `f64::from_str` accepts back.
    pub fn to_store_line(&self) -> String {
        use crate::sink::csv_field;
        // Rows without schedule/fault labels keep the original 22-field
        // layout byte for byte; labelled rows append the two columns. The
        // parser accepts both, so stores written before the scenario-engine
        // refactor load unchanged.
        let labels = if self.schedule == "-" && self.faults == "-" {
            String::new()
        } else {
            format!(",{},{}", csv_field(&self.schedule), csv_field(&self.faults))
        };
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}{labels}",
            self.index,
            self.racks,
            csv_field(&self.workload),
            self.seed.map_or_else(String::new, |s| s.to_string()),
            self.load_factor,
            csv_field(&self.scenario),
            csv_field(&self.window),
            csv_field(&self.policy),
            self.cap_percent,
            csv_field(&self.grouping),
            csv_field(&self.decision_rule),
            self.launched_jobs,
            self.completed_jobs,
            self.killed_jobs,
            self.pending_jobs,
            self.work_core_seconds,
            self.energy_joules,
            self.energy_normalized,
            self.launched_jobs_normalized,
            self.work_normalized,
            self.mean_wait_seconds,
            self.peak_power_watts,
        )
    }

    /// Decode a store record written by [`to_store_line`](Self::to_store_line).
    ///
    /// Any malformed input — wrong field count, bad quoting, an unparsable
    /// number — is an error, never a panic: the store loader treats such
    /// lines (e.g. a row torn in half by a crash) as "cell not recorded".
    pub fn parse_store_line(line: &str) -> Result<CellRow, String> {
        let fields = crate::sink::split_csv_line(line)?;
        // 22 fields = a label-free row (possibly from a pre-refactor store);
        // 24 fields = a row carrying schedule/fault labels.
        if fields.len() != 22 && fields.len() != 24 {
            return Err(format!("expected 22 or 24 fields, got {}", fields.len()));
        }
        fn int(raw: &str, what: &str) -> Result<usize, String> {
            raw.parse()
                .map_err(|_| format!("bad {what} field: {raw:?}"))
        }
        fn float(raw: &str, what: &str) -> Result<f64, String> {
            raw.parse()
                .map_err(|_| format!("bad {what} field: {raw:?}"))
        }
        let seed = if fields[3].is_empty() {
            None
        } else {
            Some(
                fields[3]
                    .parse()
                    .map_err(|_| format!("bad seed field: {:?}", fields[3]))?,
            )
        };
        Ok(CellRow {
            index: int(&fields[0], "index")?,
            racks: int(&fields[1], "racks")?,
            workload: fields[2].clone(),
            seed,
            load_factor: float(&fields[4], "load_factor")?,
            scenario: fields[5].clone(),
            window: fields[6].clone(),
            policy: fields[7].clone(),
            cap_percent: float(&fields[8], "cap_percent")?,
            grouping: fields[9].clone(),
            decision_rule: fields[10].clone(),
            schedule: fields.get(22).cloned().unwrap_or_else(|| "-".to_string()),
            faults: fields.get(23).cloned().unwrap_or_else(|| "-".to_string()),
            launched_jobs: int(&fields[11], "launched_jobs")?,
            completed_jobs: int(&fields[12], "completed_jobs")?,
            killed_jobs: int(&fields[13], "killed_jobs")?,
            pending_jobs: int(&fields[14], "pending_jobs")?,
            work_core_seconds: float(&fields[15], "work_core_seconds")?,
            energy_joules: float(&fields[16], "energy_joules")?,
            energy_normalized: float(&fields[17], "energy_normalized")?,
            launched_jobs_normalized: float(&fields[18], "launched_jobs_normalized")?,
            work_normalized: float(&fields[19], "work_normalized")?,
            mean_wait_seconds: float(&fields[20], "mean_wait_seconds")?,
            peak_power_watts: float(&fields[21], "peak_power_watts")?,
        })
    }

    /// The across-seed grouping key: everything except the seed (and index).
    /// The exact cap and load bits are part of the key because the labels
    /// round — `--caps 59.6,60.4` must stay two groups even though both
    /// label as "60%/…" — and the workload *kind* (fixed vs synthetic) is
    /// explicit so an SWF row can never share a group with a synthetic one.
    fn group_key(&self) -> GroupKey {
        (
            self.racks,
            self.seed.is_none(),
            self.cap_percent.to_bits(),
            self.load_factor.to_bits(),
            self.workload.clone(),
            self.scenario.clone(),
            self.window.clone(),
            self.grouping.clone(),
            self.decision_rule.clone(),
            self.schedule.clone(),
            self.faults.clone(),
        )
    }
}

/// (racks, fixed-workload?, cap bits, load bits, workload, scenario, window,
/// grouping, decision rule, schedule, faults).
type GroupKey = (
    usize,
    bool,
    u64,
    u64,
    String,
    String,
    String,
    String,
    String,
    String,
    String,
);

/// Mean / min / max / standard deviation of one metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Population standard deviation (0 for a single replication).
    pub stddev: f64,
}

/// Running accumulator behind a [`MetricSummary`].
#[derive(Debug, Clone, Copy, Default)]
struct MetricAcc {
    n: usize,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    saw_nan: bool,
}

impl MetricAcc {
    fn push(&mut self, v: f64) {
        // An undefined observation (e.g. mean wait of an interval that
        // launched nothing) poisons the whole group — see finish().
        if v.is_nan() {
            self.saw_nan = true;
        }
        if self.n == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.n += 1;
        self.sum += v;
        self.sum_sq += v * v;
    }

    fn finish(&self) -> MetricSummary {
        // All four statistics become NaN together if any observation was
        // NaN (the sinks render them as empty/null); `f64::min`/`max` skip
        // NaN and `.max(0.0)` would map a NaN variance to 0, so without
        // this a group could report a defined min/max/stddev next to an
        // undefined mean.
        if self.saw_nan {
            return MetricSummary {
                mean: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                stddev: f64::NAN,
            };
        }
        let n = self.n.max(1) as f64;
        let mean = self.sum / n;
        let variance = (self.sum_sq / n - mean * mean).max(0.0);
        MetricSummary {
            mean,
            min: self.min,
            max: self.max,
            stddev: variance.sqrt(),
        }
    }
}

/// Across-seed statistics for one scenario of one workload at one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Platform scale in racks.
    pub racks: usize,
    /// Workload label.
    pub workload: String,
    /// Generator arrival load factor (`NaN` for a fixed trace; renders as
    /// an empty field, which also keeps an SWF group visibly distinct from
    /// any synthetic one).
    pub load_factor: f64,
    /// Scenario label.
    pub scenario: String,
    /// Cap-window label (`"-"` for the baseline).
    pub window: String,
    /// Exact cap percentage (100 for the baseline) — kept alongside the
    /// label because the label rounds to whole percents.
    pub cap_percent: f64,
    /// Grouping strategy name.
    pub grouping: String,
    /// Decision rule name.
    pub decision_rule: String,
    /// Cap-schedule label (`"-"` when the group has no time-varying cap).
    pub schedule: String,
    /// Fault-plan label (`"-"` for fault-free groups).
    pub faults: String,
    /// Number of seed replications folded in.
    pub replications: usize,
    /// Launched jobs across seeds.
    pub launched_jobs: MetricSummary,
    /// Normalised energy across seeds.
    pub energy_normalized: MetricSummary,
    /// Normalised work across seeds.
    pub work_normalized: MetricSummary,
    /// Mean wait time across seeds.
    pub mean_wait_seconds: MetricSummary,
    /// Peak power across seeds.
    pub peak_power_watts: MetricSummary,
}

/// Running accumulator for one summary group.
#[derive(Debug, Clone, Default)]
struct GroupAcc {
    replications: usize,
    launched_jobs: MetricAcc,
    energy_normalized: MetricAcc,
    work_normalized: MetricAcc,
    mean_wait_seconds: MetricAcc,
    peak_power_watts: MetricAcc,
}

/// Fold cell rows into across-seed summaries.
///
/// `rows` **must already be sorted by cell index** (the executor guarantees
/// this): groups appear in first-occurrence order and floats accumulate in a
/// fixed order, making the output independent of worker scheduling.
pub fn summarize(rows: &[CellRow]) -> Vec<SummaryRow> {
    debug_assert!(rows.windows(2).all(|w| w[0].index < w[1].index));
    let mut order: Vec<GroupKey> = Vec::new();
    let mut groups: std::collections::HashMap<GroupKey, GroupAcc> =
        std::collections::HashMap::new();
    for row in rows {
        let key = row.group_key();
        let acc = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            GroupAcc::default()
        });
        acc.replications += 1;
        acc.launched_jobs.push(row.launched_jobs as f64);
        acc.energy_normalized.push(row.energy_normalized);
        acc.work_normalized.push(row.work_normalized);
        acc.mean_wait_seconds.push(row.mean_wait_seconds);
        acc.peak_power_watts.push(row.peak_power_watts);
    }
    order
        .into_iter()
        .map(|key| {
            let acc = &groups[&key];
            let (
                racks,
                _fixed,
                cap_bits,
                load_bits,
                workload,
                scenario,
                window,
                grouping,
                decision_rule,
                schedule,
                faults,
            ) = key;
            SummaryRow {
                racks,
                workload,
                load_factor: f64::from_bits(load_bits),
                scenario,
                window,
                cap_percent: f64::from_bits(cap_bits),
                grouping,
                decision_rule,
                schedule,
                faults,
                replications: acc.replications,
                launched_jobs: acc.launched_jobs.finish(),
                energy_normalized: acc.energy_normalized.finish(),
                work_normalized: acc.work_normalized.finish(),
                mean_wait_seconds: acc.mean_wait_seconds.finish(),
                peak_power_watts: acc.peak_power_watts.finish(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(index: usize, seed: u64, scenario: &str, launched: usize, work: f64) -> CellRow {
        CellRow {
            index,
            racks: 1,
            workload: "medianjob".into(),
            seed: Some(seed),
            load_factor: 1.8,
            scenario: scenario.into(),
            window: "7200+3600".into(),
            policy: "shut".into(),
            cap_percent: 60.0,
            grouping: "grouped".into(),
            decision_rule: "paper-rho".into(),
            schedule: "-".into(),
            faults: "-".into(),
            launched_jobs: launched,
            completed_jobs: launched,
            killed_jobs: 0,
            pending_jobs: 0,
            work_core_seconds: work,
            energy_joules: 1.0,
            energy_normalized: 0.5,
            launched_jobs_normalized: 0.5,
            work_normalized: work / 100.0,
            mean_wait_seconds: 10.0,
            peak_power_watts: 100.0,
        }
    }

    #[test]
    fn summaries_group_across_seeds() {
        let rows = vec![
            row(0, 1, "60%/SHUT", 10, 40.0),
            row(1, 2, "60%/SHUT", 20, 60.0),
            row(2, 1, "40%/MIX", 5, 20.0),
        ];
        let summaries = summarize(&rows);
        assert_eq!(summaries.len(), 2);
        let shut = &summaries[0];
        assert_eq!(shut.scenario, "60%/SHUT");
        assert_eq!(shut.replications, 2);
        assert!((shut.launched_jobs.mean - 15.0).abs() < 1e-12);
        assert!((shut.launched_jobs.min - 10.0).abs() < 1e-12);
        assert!((shut.launched_jobs.max - 20.0).abs() < 1e-12);
        assert!((shut.launched_jobs.stddev - 5.0).abs() < 1e-12);
        let mix = &summaries[1];
        assert_eq!(mix.replications, 1);
        assert_eq!(mix.launched_jobs.stddev, 0.0);
        assert_eq!(mix.launched_jobs.min, mix.launched_jobs.max);
    }

    #[test]
    fn one_nan_observation_poisons_all_four_statistics() {
        let mut a = row(0, 1, "60%/SHUT", 10, 40.0);
        a.mean_wait_seconds = f64::NAN;
        let b = row(1, 2, "60%/SHUT", 12, 42.0);
        let summaries = summarize(&[a, b]);
        assert_eq!(summaries.len(), 1);
        let wait = &summaries[0].mean_wait_seconds;
        assert!(wait.mean.is_nan());
        assert!(wait.min.is_nan());
        assert!(wait.max.is_nan());
        assert!(wait.stddev.is_nan());
        // Other metrics of the same group are unaffected.
        assert!((summaries[0].launched_jobs.mean - 11.0).abs() < 1e-12);
    }

    #[test]
    fn caps_rounding_to_the_same_label_stay_separate_groups() {
        let mut a = row(0, 1, "60%/SHUT", 10, 40.0);
        a.cap_percent = 59.6;
        let mut b = row(1, 2, "60%/SHUT", 12, 42.0);
        b.cap_percent = 60.4;
        let summaries = summarize(&[a, b]);
        assert_eq!(summaries.len(), 2);
        assert!(summaries.iter().all(|s| s.replications == 1));
    }

    #[test]
    fn window_and_load_sweeps_stay_separate_groups() {
        // Same scenario label, different cap windows ⇒ two groups.
        let a = row(0, 1, "60%/SHUT", 10, 40.0);
        let mut b = row(1, 2, "60%/SHUT", 12, 42.0);
        b.window = "0+1800|16200+1800".into();
        let summaries = summarize(&[a.clone(), b]);
        assert_eq!(summaries.len(), 2);
        // Same everything, different load factor ⇒ two groups.
        let mut c = row(1, 2, "60%/SHUT", 12, 42.0);
        c.load_factor = 1.0;
        let summaries = summarize(&[a, c]);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].load_factor, 1.8);
        assert_eq!(summaries[1].load_factor, 1.0);
    }

    #[test]
    fn fixed_rows_never_group_with_synthetic_ones() {
        // Regression for the seed-conflation bug: a fixed-trace row (no
        // seed) must not fold into a synthetic group even if every label
        // matches — the workload kind is part of the key.
        let synthetic = row(0, 0, "60%/SHUT", 10, 40.0); // legitimate seed=0
        let mut fixed = row(1, 0, "60%/SHUT", 12, 42.0);
        fixed.seed = None;
        fixed.workload = synthetic.workload.clone();
        fixed.load_factor = synthetic.load_factor;
        let summaries = summarize(&[synthetic, fixed]);
        assert_eq!(summaries.len(), 2, "fixed and synthetic must stay apart");
        assert!(summaries.iter().all(|s| s.replications == 1));
    }

    #[test]
    fn store_codec_round_trips_exactly() {
        let mut r = row(42, 7, "60%/SHUT", 13, 123.456);
        // Values that 6-decimal rendering would mangle must survive the
        // store: shortest-Display round-trips are bit-exact.
        r.work_core_seconds = 0.1 + 0.2;
        r.energy_joules = 1.0 / 3.0;
        r.mean_wait_seconds = f64::NAN;
        r.peak_power_watts = f64::INFINITY;
        let line = r.to_store_line();
        let back = CellRow::parse_store_line(&line).unwrap();
        assert_eq!(back.index, r.index);
        assert_eq!(
            back.work_core_seconds.to_bits(),
            r.work_core_seconds.to_bits()
        );
        assert_eq!(back.energy_joules.to_bits(), r.energy_joules.to_bits());
        assert!(back.mean_wait_seconds.is_nan());
        assert_eq!(back.peak_power_watts, f64::INFINITY);
        assert_eq!(back.scenario, r.scenario);
        // Re-encoding is byte-stable.
        assert_eq!(back.to_store_line(), line);
        // A fixed-trace row (no seed, NaN load factor) round-trips too.
        let mut fixed = row(7, 0, "60%/SHUT", 3, 9.0);
        fixed.seed = None;
        fixed.load_factor = f64::NAN;
        fixed.workload = "swf".into();
        let line = fixed.to_store_line();
        let back = CellRow::parse_store_line(&line).unwrap();
        assert_eq!(back.seed, None);
        assert!(back.load_factor.is_nan());
        assert_eq!(back.to_store_line(), line);
    }

    #[test]
    fn store_codec_quotes_separator_carrying_labels() {
        let mut r = row(0, 1, "odd,\"label\"", 1, 1.0);
        r.workload = "a,b".into();
        let line = r.to_store_line();
        let back = CellRow::parse_store_line(&line).unwrap();
        assert_eq!(back.scenario, "odd,\"label\"");
        assert_eq!(back.workload, "a,b");
    }

    #[test]
    fn labelled_rows_round_trip_and_legacy_lines_still_parse() {
        // A row with schedule/fault labels appends two columns…
        let mut r = row(3, 1, "SCHED/SHUT", 5, 9.0);
        r.schedule = "0+7200@80|7200+10800@40".into();
        r.faults = "3x600@7".into();
        let line = r.to_store_line();
        assert_eq!(crate::sink::split_csv_line(&line).unwrap().len(), 24);
        let back = CellRow::parse_store_line(&line).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_store_line(), line);
        // …while a label-free row keeps the pre-refactor 22-field layout,
        // and a line from an old store (no label columns at all) parses
        // with "-" placeholders.
        let legacy = row(4, 1, "60%/SHUT", 5, 9.0);
        let line = legacy.to_store_line();
        assert_eq!(crate::sink::split_csv_line(&line).unwrap().len(), 22);
        let back = CellRow::parse_store_line(&line).unwrap();
        assert_eq!(back.schedule, "-");
        assert_eq!(back.faults, "-");
        assert_eq!(back, legacy);
    }

    #[test]
    fn schedule_and_fault_labels_split_summary_groups() {
        let a = row(0, 1, "SCHED/SHUT", 10, 40.0);
        let mut b = row(1, 2, "SCHED/SHUT", 12, 42.0);
        b.schedule = "0+7200@80".into();
        let mut c = row(2, 1, "SCHED/SHUT", 9, 39.0);
        c.faults = "2x600@7".into();
        let summaries = summarize(&[a, b, c]);
        assert_eq!(summaries.len(), 3);
        assert!(summaries.iter().all(|s| s.replications == 1));
        assert_eq!(summaries[1].schedule, "0+7200@80");
        assert_eq!(summaries[2].faults, "2x600@7");
    }

    #[test]
    fn store_codec_rejects_torn_lines() {
        let r = row(3, 1, "60%/SHUT", 5, 9.0);
        let line = r.to_store_line();
        // A crash can truncate the final record anywhere. Any prefix short
        // of the last separator must parse as an error, not a bogus row or
        // a panic. (A cut inside the very last numeric field can still
        // parse — which is why the store only trusts rows whose `done`
        // manifest entry, written *after* the row, is present.)
        let last_comma = line.rfind(',').unwrap();
        for cut in 0..=last_comma {
            assert!(
                CellRow::parse_store_line(&line[..cut]).is_err(),
                "prefix of length {cut} unexpectedly parsed"
            );
        }
        assert!(CellRow::parse_store_line("").is_err());
        assert!(CellRow::parse_store_line("not,a,row").is_err());
    }

    #[test]
    fn groups_appear_in_first_occurrence_order() {
        let rows = vec![
            row(0, 1, "B", 1, 1.0),
            row(1, 1, "A", 1, 1.0),
            row(2, 2, "B", 1, 1.0),
        ];
        let summaries = summarize(&rows);
        let labels: Vec<&str> = summaries.iter().map(|s| s.scenario.as_str()).collect();
        assert_eq!(labels, ["B", "A"]);
    }
}

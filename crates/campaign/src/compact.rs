//! `campaign compact` — store compaction and v2 → v3 migration.
//!
//! A live campaign appends one record per finished cell: a v3 partition
//! accumulates single-row blocks (each with its own header, dictionaries
//! and checksum), a resumed campaign leaves superseded duplicates behind,
//! and a v2 store is text CSV throughout. [`compact_store`] rewrites the
//! partitions into their ideal form — **wide partitions of
//! [`DEFAULT_COMPACT_CELLS_PER_PART`] cells, each a run of
//! [`COMPACT_BLOCK_ROWS`]-row columnar blocks** — duplicates resolved to
//! the last trusted occurrence, untrusted records dropped, everything v3.
//! That is both smaller (shared dictionaries, no per-row framing) and
//! faster to scan: wide partitions amortize the per-file open cost that
//! dominates a scan over thousands of 64-cell live partitions, while the
//! moderate block size keeps zone maps fine-grained enough to skip
//! unmatchable row ranges *within* a partition, not just whole files.
//!
//! The swap is crash-tolerant without ever leaving the store unreadable:
//! the new partitions are fully written to a temp directory first, then the
//! new manifest replaces the old one (readers dispatch on the partition
//! *file extension*, so a v3 manifest over not-yet-swapped old partitions
//! still reads correctly — the manifest's `done` set and the records agree
//! at every instant), and only then are the partition directories renamed.
//! A crash mid-swap leaves either the old store, the new store, or the new
//! manifest over the old partitions — all three open fine; rerunning
//! `compact` converges.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::Write;
use std::path::Path;

use crate::agg::CellRow;
use crate::colstore::encode_block;
use crate::store::{
    load_part_rows, sorted_part_paths, ParsedManifest, MANIFEST_NAME, PARTS_DIR,
    STORE_SCHEMA_VERSION,
};

/// Temp names used during the swap; left-over copies from a crashed run
/// are removed before reuse.
const TMP_PARTS: &str = "cells.compact-tmp";
const TMP_MANIFEST: &str = "manifest.compact-tmp";
const OLD_PARTS: &str = "cells.pre-compact";

/// Partition width a compacted store defaults to (unless the store is
/// already wider): big enough that file-open overhead vanishes from scans,
/// small enough that one partition is still a modest read.
pub const DEFAULT_COMPACT_CELLS_PER_PART: usize = 4096;

/// Rows per columnar block inside a compacted partition — the zone-map
/// skip granularity within a file.
pub const COMPACT_BLOCK_ROWS: usize = 256;

/// What [`compact_store`] did, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Schema version the store had before compaction (2 or 3).
    pub from_schema: u32,
    /// Trusted rows kept (one per completed cell).
    pub rows: usize,
    /// Superseded duplicate records dropped (torn-then-rerun cells).
    pub dropped_duplicates: usize,
    /// Records dropped for lacking a `done` manifest entry.
    pub dropped_untrusted: usize,
    /// Partition files read.
    pub partitions_in: usize,
    /// Partition files written.
    pub partitions_out: usize,
    /// Total bytes of the input partitions.
    pub bytes_in: u64,
    /// Total bytes of the output partitions.
    pub bytes_out: u64,
    /// Cells-per-partition width of the compacted store.
    pub cells_per_part: usize,
}

impl CompactStats {
    /// Human-readable multi-line report (for the CLI's stderr).
    pub fn render(&self) -> String {
        format!(
            "compacted v{} -> v{STORE_SCHEMA_VERSION}: {} row(s) into {} partition(s) \
             of {} cell(s) ({} -> {} bytes)\ndropped: {} duplicate record(s), \
             {} untrusted record(s)\n",
            self.from_schema,
            self.rows,
            self.partitions_out,
            self.cells_per_part,
            self.bytes_in,
            self.bytes_out,
            self.dropped_duplicates,
            self.dropped_untrusted,
        )
    }
}

/// Compact the store at `dir` in place: merge duplicate/superseded records
/// (last trusted occurrence wins, exactly the read-side rule), drop
/// untrusted rows, and rewrite the partitions as wide v3 columnar files
/// ([`COMPACT_BLOCK_ROWS`]-row blocks). A v2 store migrates to v3; a v3
/// store's single-row append blocks merge. `cells_per_part` overrides the
/// partition width (default: widen to
/// [`DEFAULT_COMPACT_CELLS_PER_PART`], or keep the store's width if it is
/// already wider).
pub fn compact_store(dir: &Path, cells_per_part: Option<usize>) -> Result<CompactStats, String> {
    let manifest_path = dir.join(MANIFEST_NAME);
    let text = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let manifest = ParsedManifest::parse(dir, &text)?;
    let width = cells_per_part
        .unwrap_or_else(|| manifest.cells_per_part.max(DEFAULT_COMPACT_CELLS_PER_PART));
    if width == 0 {
        return Err("--per-part width must be >= 1".into());
    }

    let parts_dir = dir.join(PARTS_DIR);
    let tmp_parts = dir.join(TMP_PARTS);
    let _ = fs::remove_dir_all(&tmp_parts);
    fs::create_dir_all(&tmp_parts)
        .map_err(|e| format!("cannot create {}: {e}", tmp_parts.display()))?;

    let mut stats = CompactStats {
        from_schema: manifest.schema,
        cells_per_part: width,
        ..CompactStats::default()
    };

    // Stream input partitions in index order, buffering one *output*
    // partition of rows at a time. Input partitions hold contiguous index
    // ranges in file-number order, so output partitions fill strictly left
    // to right whatever the old and new widths are.
    let mut out_rows: Vec<CellRow> = Vec::new();
    let mut out_part: Option<usize> = None;
    let mut done_sorted: Vec<usize> = Vec::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let flush = |part: usize, rows: &mut Vec<CellRow>, stats: &mut CompactStats| {
        let path = tmp_parts.join(format!("part-{part:04}.apc"));
        let mut data = Vec::new();
        for chunk in rows.chunks(COMPACT_BLOCK_ROWS) {
            data.extend_from_slice(&encode_block(chunk));
        }
        stats.bytes_out += data.len() as u64;
        stats.partitions_out += 1;
        rows.clear();
        let mut file = fs::File::create(&path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        file.write_all(&data)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        file.flush()
            .map_err(|e| format!("cannot flush {}: {e}", path.display()))
    };
    for (_, path) in sorted_part_paths(&parts_dir)? {
        stats.partitions_in += 1;
        if let Ok(meta) = fs::metadata(&path) {
            stats.bytes_in += meta.len();
        }
        // Per-partition last-wins over trusted records, as every reader
        // resolves duplicates (cells of one index share a partition).
        let mut keep: BTreeMap<usize, CellRow> = BTreeMap::new();
        for row in load_part_rows(&path)? {
            if !manifest.done.contains(&row.index) {
                stats.dropped_untrusted += 1;
            } else if keep.insert(row.index, row).is_some() {
                stats.dropped_duplicates += 1;
            }
        }
        for (idx, row) in keep {
            if !seen.insert(idx) {
                // A foreign store could repeat an index across partitions;
                // first partition wins rather than corrupting the output.
                stats.dropped_duplicates += 1;
                continue;
            }
            let part = idx / width;
            if let Some(current) = out_part {
                if part != current {
                    if part < current {
                        return Err(format!(
                            "store partitions at {} are not index-ordered \
                             (cell {idx} after partition {current})",
                            dir.display()
                        ));
                    }
                    flush(current, &mut out_rows, &mut stats)?;
                }
            }
            out_part = Some(part);
            out_rows.push(row);
            done_sorted.push(idx);
            stats.rows += 1;
        }
    }
    if let Some(current) = out_part {
        flush(current, &mut out_rows, &mut stats)?;
    }

    // New manifest: v3 header plus one done line per kept row. A done
    // entry whose record was lost (torn beyond repair) drops out here,
    // exactly as the read side already refuses to trust it.
    done_sorted.sort_unstable();
    let mut m = String::new();
    m.push_str(&format!(
        "apc-campaign-store {STORE_SCHEMA_VERSION}\nspec {:016x}\ncells {}\nper-part {width}\n",
        manifest.spec_hash, manifest.total_cells
    ));
    for idx in &done_sorted {
        m.push_str(&format!("done {idx}\n"));
    }
    let tmp_manifest = dir.join(TMP_MANIFEST);
    fs::write(&tmp_manifest, m)
        .map_err(|e| format!("cannot write {}: {e}", tmp_manifest.display()))?;

    // Swap, crash-tolerant at every point: manifest first (readers dispatch
    // per partition-file extension, so the new manifest over the old
    // partitions still reads), then the partition directories.
    fs::rename(&tmp_manifest, &manifest_path)
        .map_err(|e| format!("cannot swap in {}: {e}", manifest_path.display()))?;
    let old_parts = dir.join(OLD_PARTS);
    let _ = fs::remove_dir_all(&old_parts);
    fs::rename(&parts_dir, &old_parts)
        .map_err(|e| format!("cannot retire {}: {e}", parts_dir.display()))?;
    fs::rename(&tmp_parts, &parts_dir)
        .map_err(|e| format!("cannot swap in {}: {e}", parts_dir.display()))?;
    fs::remove_dir_all(&old_parts)
        .map_err(|e| format!("cannot remove {}: {e}", old_parts.display()))?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{scan_store, RowFilter, ScanFlow};
    use crate::store::{ResultStore, STORE_SCHEMA_V2};
    use std::path::PathBuf;

    fn row(index: usize) -> CellRow {
        CellRow {
            index,
            racks: 1 + index % 2,
            workload: if index.is_multiple_of(2) {
                "medianjob"
            } else {
                "24h"
            }
            .into(),
            seed: Some(index as u64),
            load_factor: 1.8,
            scenario: "60%/SHUT".into(),
            window: "7200+3600".into(),
            policy: "shut".into(),
            cap_percent: 60.0,
            grouping: "grouped".into(),
            decision_rule: "paper-rho".into(),
            schedule: if index.is_multiple_of(5) {
                "0+43200@80|43200+43200@40"
            } else {
                "-"
            }
            .into(),
            faults: "-".into(),
            launched_jobs: 10 + index,
            completed_jobs: 9,
            killed_jobs: 0,
            pending_jobs: 1,
            work_core_seconds: 0.1 + index as f64 / 3.0,
            energy_joules: 1e9 / 7.0,
            energy_normalized: 0.5,
            launched_jobs_normalized: 0.25,
            work_normalized: 0.125,
            mean_wait_seconds: if index.is_multiple_of(2) {
                12.5
            } else {
                f64::NAN
            },
            peak_power_watts: 1000.0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("apc-compact-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn scan_all(dir: &Path) -> Vec<CellRow> {
        let mut rows = Vec::new();
        scan_store(dir, &RowFilter::default(), |r| {
            rows.push(r.clone());
            Ok(ScanFlow::Continue)
        })
        .unwrap();
        rows
    }

    #[test]
    fn compact_migrates_v2_to_v3_with_bit_identical_rows() {
        let dir = temp_dir("migrate");
        let mut store =
            ResultStore::create_with_schema(&dir, 0xfeed, 200, STORE_SCHEMA_V2).unwrap();
        for i in 0..150 {
            store.append(&row(i)).unwrap();
        }
        drop(store);
        let before = scan_all(&dir);
        let stats = compact_store(&dir, None).unwrap();
        assert_eq!(stats.from_schema, STORE_SCHEMA_V2);
        assert_eq!(stats.rows, 150);
        // 150 cells fit one default-width (4096-cell) partition.
        assert_eq!(stats.partitions_out, 1);
        assert_eq!(stats.cells_per_part, DEFAULT_COMPACT_CELLS_PER_PART);
        assert!(dir.join(PARTS_DIR).join("part-0000.apc").exists());
        assert!(!dir.join(PARTS_DIR).join("part-0000.csv").exists());
        let after = scan_all(&dir);
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert!(
                crate::colstore::rows_bit_identical(a, b),
                "cell {}",
                a.index
            );
        }
        // The migrated store opens as v3 and resumes.
        let mut reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.schema(), crate::store::STORE_SCHEMA_VERSION);
        assert_eq!(reopened.completed_count(), 150);
        reopened.append(&row(150)).unwrap();
        drop(reopened);
        assert_eq!(scan_all(&dir).len(), 151);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_merges_duplicates_and_drops_untrusted_records() {
        let dir = temp_dir("dedup");
        let mut store = ResultStore::create(&dir, 1, 100).unwrap();
        for i in 0..80 {
            store.append(&row(i)).unwrap();
        }
        // Rerun cell 7 with a different payload: two records, last wins.
        let mut rerun = row(7);
        rerun.launched_jobs = 777;
        store.append(&rerun).unwrap();
        drop(store);
        // Untrust cell 9 (crash between row and done append).
        let manifest = dir.join(MANIFEST_NAME);
        let text = fs::read_to_string(&manifest).unwrap();
        let kept: Vec<&str> = text.lines().filter(|l| *l != "done 9").collect();
        fs::write(&manifest, kept.join("\n") + "\n").unwrap();

        let stats = compact_store(&dir, None).unwrap();
        assert_eq!(stats.rows, 79);
        assert_eq!(stats.dropped_duplicates, 1);
        assert_eq!(stats.dropped_untrusted, 1);
        assert!(
            stats.bytes_out < stats.bytes_in,
            "merging single-row blocks must shrink the store \
             ({} -> {} bytes)",
            stats.bytes_in,
            stats.bytes_out
        );
        let rows = scan_all(&dir);
        assert_eq!(rows.len(), 79);
        assert!(rows.iter().all(|r| r.index != 9));
        assert_eq!(
            rows.iter().find(|r| r.index == 7).unwrap().launched_jobs,
            777
        );
        // Compacting again is a no-op on the content.
        let again = compact_store(&dir, None).unwrap();
        assert_eq!(again.rows, 79);
        assert_eq!(again.dropped_duplicates, 0);
        assert_eq!(scan_all(&dir).len(), 79);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_can_rewidth_partitions() {
        let dir = temp_dir("rewidth");
        let mut store = ResultStore::create(&dir, 1, 100).unwrap();
        for i in 0..100 {
            store.append(&row(i)).unwrap();
        }
        drop(store);
        let stats = compact_store(&dir, Some(25)).unwrap();
        assert_eq!(stats.cells_per_part, 25);
        assert_eq!(stats.partitions_out, 4);
        let rows = scan_all(&dir);
        assert_eq!(rows.len(), 100);
        assert!(rows.windows(2).all(|w| w[0].index < w[1].index));
        // Resume honours the new width recorded in the manifest.
        assert!(compact_store(&dir, Some(0)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_rejects_foreign_directories() {
        let dir = temp_dir("foreign");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST_NAME), "not a store\n").unwrap();
        assert!(compact_store(&dir, None).unwrap_err().contains("bad magic"));
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Campaign-side observability: the executor's metrics and per-cell spans.
//!
//! [`CampaignObs`] is what callers attach to a
//! [`CampaignRunner`](crate::exec::CampaignRunner) via
//! [`with_obs`](crate::exec::CampaignRunner::with_obs): a metrics
//! [`Registry`] plus a [`SpanRecorder`]. The executor publishes onto it —
//! and when the caller attaches nothing, the executor instruments itself on
//! a **private live registry** anyway, because [`RunStats`](crate::exec::RunStats)
//! is now *derived from* these instruments rather than from ad-hoc per-worker
//! counters. The per-cell publication cost (a handful of relaxed atomics per
//! multi-millisecond cell) is pinned by the `obs` criterion bench and the
//! perf gate.
//!
//! Metric names (all under the `campaign.` prefix):
//!
//! | name                             | kind      | meaning                                |
//! |----------------------------------|-----------|----------------------------------------|
//! | `campaign.cells.completed`       | counter   | cells executed                         |
//! | `campaign.cells.stolen`          | counter   | of those, pulled from a victim's deque |
//! | `campaign.cell.latency_ns`       | histogram | wall time of one cell replay           |
//! | `campaign.trace_cache.hits`      | counter   | trace-cache lookups served from cache  |
//! | `campaign.trace_cache.misses`    | counter   | distinct traces generated              |
//! | `campaign.worker.W.completed`    | counter   | cells completed by worker `W`          |
//! | `campaign.worker.W.stolen`       | counter   | cells worker `W` stole                 |
//! | `campaign.worker.W.queue_depth`  | gauge     | cells left in worker `W`'s own deque   |

use apc_obs::{ArgValue, Counter, Gauge, Histogram, Registry, SpanRecorder, SpanStart};

use crate::exec::WorkerStats;

/// Observability attachments for a campaign run.
#[derive(Debug, Clone, Default)]
pub struct CampaignObs {
    /// Metrics registry; the live progress monitor samples it.
    pub registry: Registry,
    /// Per-cell span recorder (Chrome-trace export).
    pub spans: SpanRecorder,
}

impl CampaignObs {
    /// Nothing attached: the executor still keeps exact run statistics on a
    /// private registry, invisibly to the caller.
    pub fn disabled() -> Self {
        CampaignObs::default()
    }

    /// A live metrics registry, no span recording.
    pub fn metrics() -> Self {
        CampaignObs {
            registry: Registry::new(),
            spans: SpanRecorder::disabled(),
        }
    }

    /// Live metrics and span recording.
    pub fn full() -> Self {
        CampaignObs {
            registry: Registry::new(),
            spans: SpanRecorder::new(),
        }
    }
}

/// Per-worker instrument handles.
pub(crate) struct WorkerObs {
    completed: Counter,
    stolen: Counter,
    queue_depth: Gauge,
    /// Counter values at run start, so a registry shared across several
    /// runs still yields exact per-run [`WorkerStats`].
    base_completed: u64,
    base_stolen: u64,
}

/// One run's executor instruments, shared read-only by every worker.
pub(crate) struct ExecObs {
    cells_completed: Counter,
    cells_stolen: Counter,
    cell_latency: Histogram,
    cache_hits: Counter,
    cache_misses: Counter,
    workers: Vec<WorkerObs>,
    spans: SpanRecorder,
}

impl ExecObs {
    /// Register this run's instruments on `registry` (which must be live —
    /// the executor substitutes a private live one for disabled callers).
    pub(crate) fn new(registry: &Registry, spans: SpanRecorder, threads: usize) -> Self {
        let workers = (0..threads)
            .map(|w| {
                let completed = registry.counter(&format!("campaign.worker.{w}.completed"));
                let stolen = registry.counter(&format!("campaign.worker.{w}.stolen"));
                WorkerObs {
                    base_completed: completed.get(),
                    base_stolen: stolen.get(),
                    completed,
                    stolen,
                    queue_depth: registry.gauge(&format!("campaign.worker.{w}.queue_depth")),
                }
            })
            .collect();
        ExecObs {
            cells_completed: registry.counter("campaign.cells.completed"),
            cells_stolen: registry.counter("campaign.cells.stolen"),
            cell_latency: registry.histogram("campaign.cell.latency_ns"),
            cache_hits: registry.counter("campaign.trace_cache.hits"),
            cache_misses: registry.counter("campaign.trace_cache.misses"),
            workers,
            spans,
        }
    }

    /// Start timing one cell (always captures the clock: the latency
    /// histogram records every cell, instrumented caller or not).
    #[inline]
    pub(crate) fn cell_begin(&self) -> SpanStart {
        self.spans.start_if(true)
    }

    /// Publish one finished cell: worker + run counters, the latency
    /// histogram, and (when a recorder is attached) a span on the worker's
    /// trace lane.
    pub(crate) fn cell_end(
        &self,
        cell: SpanStart,
        worker: usize,
        index: usize,
        was_stolen: bool,
        scenario: &str,
    ) {
        self.cell_latency.record(cell.elapsed_ns());
        self.cells_completed.inc();
        self.workers[worker].completed.inc();
        if was_stolen {
            self.cells_stolen.inc();
            self.workers[worker].stolen.inc();
        }
        self.spans.complete(
            cell,
            "cell",
            "campaign",
            worker as u64,
            vec![
                ("index", index.into()),
                ("scenario", ArgValue::Str(scenario.to_string())),
                ("stolen", u64::from(was_stolen).into()),
            ],
        );
    }

    /// Update a worker's own-deque depth gauge.
    #[inline]
    pub(crate) fn set_queue_depth(&self, worker: usize, depth: usize) {
        self.workers[worker].queue_depth.set(depth as i64);
    }

    /// Publish the trace cache's end-of-run totals.
    pub(crate) fn publish_cache(&self, hits: usize, misses: usize) {
        self.cache_hits.add(hits as u64);
        self.cache_misses.add(misses as u64);
    }

    /// This run's per-worker statistics, read back off the registry
    /// (net of any counts a shared registry carried in from earlier runs).
    pub(crate) fn per_worker_stats(&self) -> Vec<WorkerStats> {
        self.workers
            .iter()
            .enumerate()
            .map(|(worker, w)| WorkerStats {
                worker,
                completed: (w.completed.get() - w.base_completed) as usize,
                stolen: (w.stolen.get() - w.base_stolen) as usize,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_worker_stats_are_deltas_over_a_shared_registry() {
        let registry = Registry::new();
        // A previous run left counts behind.
        registry.counter("campaign.worker.0.completed").add(7);
        registry.counter("campaign.worker.0.stolen").add(2);
        let obs = ExecObs::new(&registry, SpanRecorder::disabled(), 2);
        obs.cell_end(obs.cell_begin(), 0, 3, false, "60%/SHUT");
        obs.cell_end(obs.cell_begin(), 1, 4, true, "60%/MIX");
        let stats = obs.per_worker_stats();
        assert_eq!(stats[0].completed, 1, "previous run's 7 are excluded");
        assert_eq!(stats[0].stolen, 0);
        assert_eq!(stats[1].completed, 1);
        assert_eq!(stats[1].stolen, 1);
        // The run-wide counters are cumulative across runs by design.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("campaign.cells.completed"), Some(2));
        assert_eq!(snap.counter("campaign.cells.stolen"), Some(1));
        assert_eq!(snap.histogram("campaign.cell.latency_ns").unwrap().count, 2);
    }

    #[test]
    fn cell_spans_land_on_the_worker_lane() {
        let spans = SpanRecorder::new();
        let obs = ExecObs::new(&Registry::new(), spans.clone(), 3);
        obs.cell_end(obs.cell_begin(), 2, 9, true, "40%/DVFS");
        let events = spans.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].tid, 2);
        assert_eq!(events[0].name, "cell");
        assert!(events[0]
            .args
            .iter()
            .any(|(k, v)| *k == "scenario" && *v == ArgValue::Str("40%/DVFS".into())));
    }

    #[test]
    fn queue_depth_gauge_tracks_the_latest_value() {
        let registry = Registry::new();
        let obs = ExecObs::new(&registry, SpanRecorder::disabled(), 1);
        obs.set_queue_depth(0, 5);
        obs.set_queue_depth(0, 3);
        assert_eq!(
            registry.snapshot().gauge("campaign.worker.0.queue_depth"),
            Some(3)
        );
    }
}

//! Compare two `summary.csv` files from the same campaign grid.
//!
//! ```text
//! cargo run --release -p apc-campaign --bin campaign-diff -- A.csv B.csv [options]
//!
//! options:
//!   --threshold PCT    max tolerated relative change per metric, in percent
//!                      (default 0: any delta fails)
//!   --quiet            only print breaches, not the full delta list
//!
//! exit status:
//!   0  same grid, no metric beyond the threshold
//!   1  grids differ, or at least one metric breached the threshold
//!   2  usage or input error
//! ```

use std::process::ExitCode;

use apc_campaign::diff::diff_summary_csv;

const USAGE: &str = "usage: campaign-diff A.csv B.csv [--threshold PCT] [--quiet]";

struct Options {
    a_path: String,
    b_path: String,
    threshold_percent: f64,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold_percent = 0.0f64;
    let mut quiet = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--threshold" => {
                let raw = iter
                    .next()
                    .ok_or_else(|| "--threshold needs a value".to_string())?;
                threshold_percent = raw
                    .parse()
                    .map_err(|_| "--threshold needs a number (percent)".to_string())?;
                if threshold_percent.is_nan() || threshold_percent < 0.0 {
                    return Err(format!("--threshold must be >= 0, got {threshold_percent}"));
                }
            }
            "--quiet" => quiet = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option: {flag}")),
            path => paths.push(path.to_string()),
        }
    }
    let [a_path, b_path] = <[String; 2]>::try_from(paths)
        .map_err(|got| format!("expected exactly 2 summary.csv paths, got {}", got.len()))?;
    Ok(Some(Options {
        a_path,
        b_path,
        threshold_percent,
        quiet,
    }))
}

fn run(options: &Options) -> Result<bool, String> {
    let a = std::fs::read_to_string(&options.a_path)
        .map_err(|e| format!("cannot read {}: {e}", options.a_path))?;
    let b = std::fs::read_to_string(&options.b_path)
        .map_err(|e| format!("cannot read {}: {e}", options.b_path))?;
    let report = diff_summary_csv(&a, &b)?;
    let breaches = report.breaches(options.threshold_percent);
    if options.quiet {
        for d in &breaches {
            println!(
                "{} {}: {} -> {} ({:.3}% > {:.3}%)",
                d.key,
                d.metric,
                d.a,
                d.b,
                d.rel_percent(),
                options.threshold_percent
            );
        }
        if !report.grid_matches() {
            println!(
                "grid mismatch: {} rows only in A, {} only in B",
                report.only_in_a.len(),
                report.only_in_b.len()
            );
        }
    } else {
        print!("{}", report.render(options.threshold_percent));
    }
    eprintln!(
        "compared {} rows: {} metric deltas, {} beyond {}% threshold{}",
        report.compared_rows,
        report.deltas.len(),
        breaches.len(),
        options.threshold_percent,
        if report.grid_matches() {
            ""
        } else {
            " (GRID MISMATCH)"
        },
    );
    Ok(report.grid_matches() && breaches.is_empty())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Some(options)) => match run(&options) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(1),
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(2)
            }
        },
        Ok(None) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

//! Compare two campaign summaries — rendered `summary.csv` files or result
//! store directories — from the same campaign grid.
//!
//! ```text
//! cargo run --release -p apc-campaign --bin campaign-diff -- A B [options]
//!
//! A and B are each either a rendered summary.csv file or a result store
//! directory (one containing manifest.txt); store inputs are scanned and
//! summarized in memory, so v2 CSV and v3 columnar stores both work and
//! no intermediate export file is needed.
//!
//! options:
//!   --threshold PCT    max tolerated relative change per metric, in percent
//!                      (default 0: any delta fails)
//!   --intersect        compare only the grid rows both sides have instead
//!                      of failing on a grid mismatch; prints a coverage
//!                      line so partial overlap stays visible. An empty
//!                      intersection still fails — nothing was compared.
//!   --quiet            only print breaches, not the full delta list
//!
//! exit status:
//!   0  same grid (or, with --intersect, a non-empty common subgrid) and
//!      no metric beyond the threshold
//!   1  grids differ (without --intersect), the intersection is empty, or
//!      at least one metric breached the threshold
//!   2  usage or input error
//! ```

use std::path::Path;
use std::process::ExitCode;

use apc_campaign::agg::summarize;
use apc_campaign::diff::diff_summary_csv;
use apc_campaign::query::{RowFilter, ScanFlow, StoreScanner};
use apc_campaign::sink::render_summary_csv;

const USAGE: &str =
    "usage: campaign-diff A B [--threshold PCT] [--intersect] [--quiet]  (A/B: summary.csv or store dir)";

struct Options {
    a_path: String,
    b_path: String,
    threshold_percent: f64,
    intersect: bool,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold_percent = 0.0f64;
    let mut intersect = false;
    let mut quiet = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--threshold" => {
                let raw = iter
                    .next()
                    .ok_or_else(|| "--threshold needs a value".to_string())?;
                threshold_percent = raw
                    .parse()
                    .map_err(|_| "--threshold needs a number (percent)".to_string())?;
                if threshold_percent.is_nan() || threshold_percent < 0.0 {
                    return Err(format!("--threshold must be >= 0, got {threshold_percent}"));
                }
            }
            "--intersect" => intersect = true,
            "--quiet" => quiet = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option: {flag}")),
            path => paths.push(path.to_string()),
        }
    }
    let [a_path, b_path] = <[String; 2]>::try_from(paths)
        .map_err(|got| format!("expected exactly 2 inputs, got {}", got.len()))?;
    Ok(Some(Options {
        a_path,
        b_path,
        threshold_percent,
        intersect,
        quiet,
    }))
}

/// Load one input as rendered summary.csv text: read the file directly, or
/// scan + summarize a result store directory in memory.
fn load_summary(path_str: &str) -> Result<String, String> {
    let path = Path::new(path_str);
    if path.is_dir() {
        let scanner = StoreScanner::open(path)?;
        let mut rows = Vec::new();
        scanner.scan(&RowFilter::default(), |row| {
            rows.push(row.clone());
            Ok(ScanFlow::Continue)
        })?;
        return Ok(render_summary_csv(&summarize(&rows)));
    }
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path_str}: {e}"))
}

fn run(options: &Options) -> Result<bool, String> {
    let a = load_summary(&options.a_path)?;
    let b = load_summary(&options.b_path)?;
    let report = diff_summary_csv(&a, &b)?;
    let breaches = report.breaches(options.threshold_percent);
    if options.quiet {
        for d in &breaches {
            println!(
                "{} {}: {} -> {} ({:.3}% > {:.3}%)",
                d.key,
                d.metric,
                d.a,
                d.b,
                d.rel_percent(),
                options.threshold_percent
            );
        }
        if !report.grid_matches() && !options.intersect {
            println!(
                "grid mismatch: {} rows only in A, {} only in B",
                report.only_in_a.len(),
                report.only_in_b.len()
            );
        }
    } else {
        print!("{}", report.render(options.threshold_percent));
    }
    if options.intersect {
        print!("{}", report.coverage_summary());
    }
    eprintln!(
        "compared {} rows: {} metric deltas, {} beyond {}% threshold{}",
        report.compared_rows,
        report.deltas.len(),
        breaches.len(),
        options.threshold_percent,
        if report.grid_matches() {
            ""
        } else if options.intersect {
            " (partial grids, intersect mode)"
        } else {
            " (GRID MISMATCH)"
        },
    );
    let grid_ok = if options.intersect {
        // Comparing nothing proves nothing — an empty intersection is a
        // failure, not a vacuous pass.
        report.compared_rows > 0
    } else {
        report.grid_matches()
    };
    Ok(grid_ok && breaches.is_empty())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Some(options)) => match run(&options) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(1),
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(2)
            }
        },
        Ok(None) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

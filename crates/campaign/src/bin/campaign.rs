//! Command-line driver for parallel experiment campaigns.
//!
//! ```text
//! cargo run --release -p apc-campaign --bin campaign -- [options]
//! cargo run --release -p apc-campaign --bin campaign -- worker DIR --worker-id N [options]
//! cargo run --release -p apc-campaign --bin campaign -- pareto DIR [options]
//! cargo run --release -p apc-campaign --bin campaign -- query DIR [options]
//! cargo run --release -p apc-campaign --bin campaign -- report DIR
//! cargo run --release -p apc-campaign --bin campaign -- compact DIR [options]
//!
//! campaign options:
//!   --threads N        worker threads (0 = all cores; default 1)
//!   --seeds K          seed replications per cell group (default 3)
//!   --seed-base S      first seed; replications use S, S+1, … (default 2012)
//!   --racks LIST       rack scales, e.g. 1,2,6 (default 2; >= 56 = full Curie)
//!   --intervals LIST   smalljob,medianjob,bigjob,24h (default: all four)
//!   --policies LIST    shut,dvfs,mix (default: all three)
//!   --caps LIST        cap percentages, e.g. 80,60,40 (default)
//!   --no-baseline      skip the uncapped 100%/None rows
//!   --groupings LIST   grouped,scattered (default grouped)
//!   --rules LIST       paper-rho,work-max (default paper-rho)
//!   --windows LIST     cap-window sweep: FRACxSECONDS placements, `+` joins
//!                      the windows of one scenario, `,` separates axis
//!                      values — e.g. `0.5x3600` (paper) or
//!                      `0.5x3600,0x1800+1x1800` (default 0.5x3600)
//!   --cap-schedule PATH
//!                      add one time-varying cap schedule axis value read
//!                      from PATH (`START DURATION FRACTION` lines, `#`
//!                      comments; see README "Scenarios"); repeatable —
//!                      scheduled scenarios run in addition to the
//!                      static-window grid
//!   --faults LIST      fault-plan axis values: `none` or `NxDUR@SEED`
//!                      (N node outages of DUR seconds each, placement
//!                      seeded by SEED), e.g. `none,3x600@7` — each value
//!                      crosses the whole scenario grid
//!   --load LIST        generator arrival load factors, e.g. 1.0,1.8
//!                      (default 1.8; each value is one workload axis entry)
//!   --backlog F        generator initial backlog factor (default 1.3)
//!   --swf PATH         replay an SWF trace instead of the synthetic grid
//!   --out DIR          results directory (default campaign-results)
//!   --store-schema V   store partition codec: 3 = binary columnar .apc
//!                      (default), 2 = text CSV (interop with old tooling);
//!                      --resume keeps the store's existing schema
//!   --resume DIR       resume the interrupted campaign stored in DIR
//!                      (grid flags must match; validated by spec hash)
//!   --distributed DIR  run the campaign as N independent worker *processes*
//!                      coordinating through DIR/leases.log (see README
//!                      "Distributed execution"); excludes --out/--resume
//!   --workers N        worker processes to launch (default 2; 0 = only
//!                      initialise the store and lease log, then exit — for
//!                      launching `campaign worker` processes by hand)
//!   --lease-cells N    cells per lease batch (default 4096)
//!   --lease-ttl SECS   lease time-to-live; a worker silent this long is
//!                      presumed dead and its batch stolen (default 30)
//!   --no-sync          skip the per-append fsyncs of the store and lease
//!                      log (tests/benches only: a crash may then lose or
//!                      reorder trailing records)
//!   --strategy WHICH   work-steal | static (default work-steal)
//!   --format WHICH     csv | json | both (default both)
//!   --quiet            suppress the per-group stdout table
//!   --progress         live top-style progress view on stderr (overall %,
//!                      cells/s, ETA, steals, per-worker queue depths)
//!   --metrics          dump the metrics registry snapshot to stderr at
//!                      the end of the run
//!   --trace-out FILE   record one span per cell and write them to FILE in
//!                      Chrome Trace Event JSON (load at chrome://tracing)
//!
//! worker DIR --worker-id N: one distributed worker process over the store
//!   and lease log in DIR (normally spawned by --distributed; run by hand
//!   with the exact grid flags the coordinator used — the spec fingerprint
//!   is checked against both the manifest and the lease-log header)
//!
//! pareto DIR: non-dominated (energy, work, wait) front per workload group
//!   --out FILE         where to write the CSV (default DIR/pareto.csv)
//!   --cells            front individual replications instead of across-seed
//!                      means — dominance is counted per seed, exposing
//!                      variance-driven trade-offs (default output
//!                      DIR/pareto-cells.csv)
//!   --quiet            suppress the stdout table
//!
//! query DIR: stream filtered rows out of the partitioned store
//!   --workload L | --scenario L | --window L | --policy P | --seed N |
//!   --load F | --racks R | --schedule L | --faults L
//!                      conjunctive row filters (`--schedule -` / `--faults -`
//!                      keep the rows without that axis)
//!   --columns LIST     columns to print (default: all, cells.csv order);
//!                      with --group-by, the numeric columns to aggregate.
//!                      v3 partitions decode only the requested columns
//!                      (projection pushdown), so narrow queries over wide
//!                      stores skip most of the decode work
//!   --limit N          stop the scan after N matching rows — remaining
//!                      partitions are never read; with --group-by, render
//!                      at most N groups (the fold still sees every row)
//!   --group-by LIST    fold matching rows into one output row per distinct
//!                      combination of these columns, aggregated in the
//!                      streaming scan (the row set is never materialised)
//!   --agg WHICH        mean | min | max (default mean; needs --group-by)
//!
//! report DIR: post-run summary of a (possibly partial) result store —
//!   completion state, axis coverage, and the across-seed summary table
//!
//! compact DIR: merge duplicate/superseded records and rewrite every
//!   partition as one columnar v3 block (migrates v2 CSV stores to v3)
//!   --per-part N       change the partition width while compacting
//!   --quiet            suppress the stderr report
//! ```
//!
//! Results stream into an append-only partitioned store
//! (`DIR/cells/part-NNNN.apc` + `DIR/manifest.txt`) while cells run, so a
//! killed campaign can be picked up with `--resume DIR`; the rendered
//! `cells.*`/`summary.*` files are produced from the store at the end and
//! are byte-identical whether or not the campaign was interrupted (and
//! whichever `--store-schema` the store uses). `query` streams the store
//! one partition at a time — skipping v3 partitions whose zone maps prove
//! no row can match — so very large campaigns are inspectable without
//! loading every partition into memory.

use std::process::ExitCode;
use std::sync::Arc;

use apc_campaign::prelude::*;
use apc_core::PowercapPolicy;
use apc_power::bonus::GroupingStrategy;
use apc_power::tradeoff::DecisionRule;
use apc_replay::{CapSchedule, FaultPlan};
use apc_workload::{load_swf_file, IntervalKind};

const USAGE: &str = "usage: campaign [--threads N] [--seeds K] [--seed-base S] [--racks LIST] \
[--intervals LIST] [--policies LIST] [--caps LIST] [--no-baseline] [--groupings LIST] \
[--rules LIST] [--windows LIST] [--cap-schedule PATH]... [--faults LIST] [--load LIST] \
[--backlog F] [--swf PATH] [--out DIR] [--store-schema 2|3] [--resume DIR] \
[--distributed DIR [--workers N] [--lease-cells N] [--lease-ttl SECS]] [--no-sync] \
[--strategy work-steal|static] [--format csv|json|both] [--quiet] [--progress] [--metrics] \
[--trace-out FILE]
       campaign worker DIR --worker-id N [grid flags as the coordinator]
       campaign pareto DIR [--out FILE] [--cells] [--quiet]
       campaign query DIR [--workload L] [--scenario L] [--window L] [--policy P] [--seed N] \
[--load F] [--racks R] [--schedule L] [--faults L] [--columns LIST] [--limit N] \
[--group-by LIST [--agg mean|min|max]]
       campaign report DIR
       campaign compact DIR [--per-part N] [--quiet]";

/// Parse one `--windows` axis value: `FRACxSECONDS` placements joined by
/// `+` (several windows of one scenario).
fn parse_window_set(raw: &str) -> Result<WindowSet, String> {
    let mut set = WindowSet::new();
    for placement in raw.split('+') {
        let (frac, duration) = placement.split_once('x').ok_or_else(|| {
            format!("--windows: {placement:?} is not FRACxSECONDS (e.g. 0.5x3600)")
        })?;
        let frac: f64 = frac
            .trim()
            .parse()
            .map_err(|_| format!("--windows: bad start fraction {frac:?}"))?;
        let duration: u64 = duration
            .trim()
            .parse()
            .map_err(|_| format!("--windows: bad duration {duration:?} (seconds)"))?;
        set.push((frac, duration));
    }
    Ok(set)
}

/// Parse a comma-separated list with a `FromStr` item type.
fn parse_list<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    let items: Result<Vec<T>, String> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse::<T>().map_err(|e| format!("{flag}: {e}")))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(format!("{flag} needs a non-empty comma-separated list"));
    }
    Ok(items)
}

struct Options {
    spec: CampaignSpec,
    threads: usize,
    strategy: ExecStrategy,
    source: TraceSource,
    out_dir: String,
    store_schema: u32,
    resume: bool,
    /// `--distributed DIR`: multi-process mode over this store directory.
    distributed: Option<String>,
    workers: usize,
    lease_cells: usize,
    lease_ttl_ms: u64,
    no_sync: bool,
    format: Format,
    quiet: bool,
    progress: bool,
    metrics: bool,
    trace_out: Option<String>,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Csv,
    Json,
    Both,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut spec = CampaignSpec::paper(2012, 3);
    let mut threads = 1usize;
    let mut strategy = ExecStrategy::WorkStealing;
    let mut seeds = 3usize;
    let mut seed_base = 2012u64;
    let mut swf = None;
    let mut out_dir: Option<String> = None;
    let mut store_schema = STORE_SCHEMA_VERSION;
    let mut resume_dir: Option<String> = None;
    let mut distributed: Option<String> = None;
    let mut workers = 2usize;
    let mut lease_cells = DEFAULT_LEASE_CELLS;
    let mut lease_ttl_ms = DEFAULT_LEASE_TTL_MS;
    let mut no_sync = false;
    let mut format = Format::Both;
    let mut quiet = false;
    let mut progress = false;
    let mut metrics = false;
    let mut trace_out: Option<String> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?;
            }
            "--seeds" => {
                seeds = value("--seeds")?
                    .parse()
                    .map_err(|_| "--seeds needs an integer".to_string())?;
                if seeds == 0 {
                    return Err("--seeds must be >= 1".into());
                }
            }
            "--seed-base" => {
                seed_base = value("--seed-base")?
                    .parse()
                    .map_err(|_| "--seed-base needs an integer".to_string())?;
            }
            "--racks" => spec.racks = parse_list::<usize>("--racks", value("--racks")?)?,
            "--intervals" => {
                spec.intervals = parse_list::<IntervalKind>("--intervals", value("--intervals")?)?;
            }
            "--policies" => {
                spec.policies = parse_list::<PowercapPolicy>("--policies", value("--policies")?)?;
            }
            "--caps" => {
                let percents = parse_list::<f64>("--caps", value("--caps")?)?;
                // Validate in the unit the user typed; the spec re-checks
                // the fractions for library callers.
                if let Some(p) = percents
                    .iter()
                    .find(|&&p| !(p.is_finite() && p > 0.0 && p < 100.0))
                {
                    return Err(format!(
                        "--caps: cap percent must be in (0, 100), got {p} \
                         (the 100% baseline is included unless --no-baseline)"
                    ));
                }
                spec.cap_fractions = percents.iter().map(|p| p / 100.0).collect();
            }
            "--no-baseline" => spec.include_baseline = false,
            "--groupings" => {
                spec.groupings =
                    parse_list::<GroupingStrategy>("--groupings", value("--groupings")?)?;
            }
            "--rules" => {
                spec.decision_rules = parse_list::<DecisionRule>("--rules", value("--rules")?)?;
            }
            "--windows" => {
                let sets: Result<Vec<WindowSet>, String> = value("--windows")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(parse_window_set)
                    .collect();
                let sets = sets?;
                if sets.is_empty() {
                    return Err("--windows needs a non-empty comma-separated list".into());
                }
                spec.cap_windows = sets;
            }
            "--cap-schedule" => {
                let path = value("--cap-schedule")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("--cap-schedule: cannot read {path}: {e}"))?;
                let schedule =
                    CapSchedule::parse(&text).map_err(|e| format!("--cap-schedule {path}: {e}"))?;
                spec.cap_schedules.push(schedule);
            }
            "--faults" => {
                let plans: Result<Vec<Option<FaultPlan>>, String> = value("--faults")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|item| match item.trim() {
                        "none" => Ok(None),
                        spec => FaultPlan::parse(spec)
                            .map(Some)
                            .map_err(|e| format!("--faults: {e}")),
                    })
                    .collect();
                let plans = plans?;
                if plans.is_empty() {
                    return Err("--faults needs a non-empty comma-separated list \
                                (`none` or NxDUR@SEED)"
                        .into());
                }
                spec.faults = plans;
            }
            "--load" => {
                spec.load_factors = parse_list::<f64>("--load", value("--load")?)?;
            }
            "--backlog" => {
                spec.backlog_factor = value("--backlog")?
                    .parse()
                    .map_err(|_| "--backlog needs a number".to_string())?;
            }
            "--swf" => swf = Some(value("--swf")?.clone()),
            "--out" => out_dir = Some(value("--out")?.clone()),
            "--store-schema" => {
                store_schema = match value("--store-schema")?.as_str() {
                    "2" => STORE_SCHEMA_V2,
                    "3" => STORE_SCHEMA_VERSION,
                    other => {
                        return Err(format!("--store-schema must be 2 or 3, got {other}"));
                    }
                };
            }
            "--resume" => resume_dir = Some(value("--resume")?.clone()),
            "--distributed" => distributed = Some(value("--distributed")?.clone()),
            "--workers" => {
                workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
            }
            "--lease-cells" => {
                lease_cells = value("--lease-cells")?
                    .parse()
                    .map_err(|_| "--lease-cells needs an integer".to_string())?;
                if lease_cells == 0 {
                    return Err("--lease-cells must be >= 1".into());
                }
            }
            "--lease-ttl" => {
                let secs: f64 = value("--lease-ttl")?
                    .parse()
                    .map_err(|_| "--lease-ttl needs a number of seconds".to_string())?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err("--lease-ttl must be > 0 seconds".into());
                }
                lease_ttl_ms = (secs * 1_000.0).round().max(1.0) as u64;
            }
            "--no-sync" => no_sync = true,
            "--strategy" => {
                strategy = match value("--strategy")?.as_str() {
                    "work-steal" | "steal" => ExecStrategy::WorkStealing,
                    "static" => ExecStrategy::StaticShard,
                    other => {
                        return Err(format!(
                            "--strategy must be work-steal or static, got {other}"
                        ))
                    }
                };
            }
            "--format" => {
                format = match value("--format")?.as_str() {
                    "csv" => Format::Csv,
                    "json" => Format::Json,
                    "both" => Format::Both,
                    other => {
                        return Err(format!("--format must be csv, json or both, got {other}"))
                    }
                };
            }
            "--quiet" => quiet = true,
            "--progress" => progress = true,
            "--metrics" => metrics = true,
            "--trace-out" => trace_out = Some(value("--trace-out")?.clone()),
            unknown => return Err(format!("unknown option: {unknown}")),
        }
    }
    spec.seeds = (0..seeds as u64).map(|i| seed_base + i).collect();
    // Resuming means "continue the campaign stored in DIR" — the store is
    // both input and output, so a separate --out makes no sense. And a
    // distributed run names its directory through --distributed alone.
    if distributed.is_some() && (out_dir.is_some() || resume_dir.is_some()) {
        return Err(
            "--distributed DIR names the store directory itself and always starts \
             fresh — it excludes --out and --resume"
                .into(),
        );
    }
    let (out_dir, resume) = match (out_dir, resume_dir) {
        (Some(_), Some(_)) => {
            return Err("--out and --resume are mutually exclusive (results are \
                        appended into the resumed directory)"
                .into())
        }
        (None, Some(dir)) => (dir, true),
        (out, None) => (out.unwrap_or_else(|| "campaign-results".to_string()), false),
    };
    // Load the SWF here, in the parse phase, so a bad --swf value exits 2
    // with usage like every other bad flag value.
    let source = match swf {
        None => TraceSource::Synthetic,
        Some(path) => {
            let trace = load_swf_file(&path)?;
            eprintln!(
                "loaded {} jobs over {} s from {path}; interval/seed axes collapse to one workload",
                trace.len(),
                trace.duration
            );
            TraceSource::Fixed(Arc::new(trace))
        }
    };
    // Validate after the SWF is loaded: window placement is checked against
    // the durations the campaign will actually replay (a window set that
    // overlaps in a 5 h interval can be disjoint in a 24 h SWF trace).
    spec.validate_for(&source)?;
    Ok(Some(Options {
        spec,
        threads,
        strategy,
        source,
        out_dir,
        store_schema,
        resume,
        distributed,
        workers,
        lease_cells,
        lease_ttl_ms,
        no_sync,
        format,
        quiet,
        progress,
        metrics,
        trace_out,
    }))
}

fn run(options: Options) -> Result<(), String> {
    // Instrumentation attachments. Spans are only recorded when asked for
    // (every cell would otherwise buffer an event); the metrics registry is
    // shared with the progress monitor. Neither changes the campaign's
    // stdout or result files — `instrumented_campaign_output_is_byte_identical`
    // pins that.
    let obs = if options.trace_out.is_some() {
        CampaignObs::full()
    } else if options.progress || options.metrics {
        CampaignObs::metrics()
    } else {
        CampaignObs::disabled()
    };
    let runner = CampaignRunner::new(options.spec.clone())
        .with_threads(options.threads)
        .with_strategy(options.strategy)
        .with_source(options.source)
        .with_obs(obs.clone());

    let cells = runner.cells()?.len();
    // Open (resume) or create the append-only result store; every finished
    // cell streams into it, so a killed run can be resumed from here.
    let mut store = if options.resume {
        // A resumed store keeps whatever schema it was created with.
        let store = ResultStore::open(&options.out_dir)?;
        eprintln!(
            "resuming {}: {} of {} cells already recorded",
            options.out_dir,
            store.completed_count(),
            store.total_cells()
        );
        store
    } else {
        ResultStore::create_with_schema(
            &options.out_dir,
            runner.fingerprint(),
            cells,
            options.store_schema,
        )
        .map_err(|e| format!("cannot create result store in {}: {e}", options.out_dir))?
    };
    if options.no_sync {
        store.set_sync(false);
    }
    let pending = cells - store.completed_count().min(cells);
    eprintln!(
        "campaign: {cells} cells ({pending} to run) on {} thread(s)",
        runner.resolved_threads().min(pending.max(1))
    );
    let monitor = options
        .progress
        .then(|| ProgressMonitor::start(obs.registry.clone(), pending));
    let outcome = runner.run_with_store(&mut store);
    if let Some(monitor) = monitor {
        monitor.stop();
    }
    let outcome = outcome?;

    if !options.quiet {
        print!("{}", summary_table(&outcome.summaries));
    }

    // Render the store-derived outcome (run_with_store reads every row —
    // including resumed ones — back out of the store, so this is the
    // render-from-store path without re-cloning and re-folding per sink;
    // `write_store_renders_the_same_bytes_as_write` pins the equivalence).
    let written = render_outputs(
        &options.out_dir,
        options.format,
        &outcome.rows,
        &outcome.summaries,
    )?;

    eprint!("{}", outcome.stats.render(outcome.wall));
    if options.metrics {
        eprint!("{}", obs.registry.snapshot());
    }
    if let Some(path) = &options.trace_out {
        let events = obs.spans.take_events();
        let json = apc_obs::write_chrome_trace(&events, "campaign");
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {} span(s) to {path}", events.len());
    }
    for path in written {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// The flags a spawned worker inherits from the coordinator's own argv:
/// the grid flags (the spec fingerprint must match), `--threads`,
/// `--strategy` and `--no-sync`. Coordinator-only flags are stripped —
/// mode/directory selection, lease geometry (recorded once in the
/// lease-log header, so workers cannot disagree) and render/monitor
/// options.
fn worker_passthrough_args(args: &[String]) -> Vec<String> {
    const DROP_WITH_VALUE: &[&str] = &[
        "--distributed",
        "--workers",
        "--lease-cells",
        "--lease-ttl",
        "--out",
        "--resume",
        "--store-schema",
        "--format",
        "--trace-out",
    ];
    const DROP_BARE: &[&str] = &["--quiet", "--progress", "--metrics"];
    let mut out = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if DROP_WITH_VALUE.contains(&arg.as_str()) {
            iter.next();
            continue;
        }
        if DROP_BARE.contains(&arg.as_str()) {
            continue;
        }
        out.push(arg.clone());
    }
    out
}

/// `campaign --distributed DIR`: create the store and lease log, spawn
/// `--workers` worker processes of this same binary, supervise them, and
/// render the final outputs from the merged store. A worker that dies
/// (even `kill -9`) does not fail the campaign: the survivors steal its
/// expired lease, and the run only errors if the store ends incomplete.
fn run_distributed(options: Options, raw_args: &[String]) -> Result<(), String> {
    let dir = options
        .distributed
        .clone()
        .expect("caller dispatches on --distributed");
    let dir_path = std::path::Path::new(&dir).to_path_buf();
    let runner = CampaignRunner::new(options.spec.clone())
        .with_threads(options.threads)
        .with_strategy(options.strategy)
        .with_source(options.source.clone());
    let cells = runner.cells()?.len();
    let fingerprint = runner.fingerprint();
    ResultStore::create_with_schema(&dir, fingerprint, cells, options.store_schema)
        .map_err(|e| format!("cannot create result store in {dir}: {e}"))?;
    LeaseLog::create(
        &dir_path,
        fingerprint,
        cells,
        options.lease_cells,
        options.lease_ttl_ms,
    )?;
    let batches = cells.div_ceil(options.lease_cells);
    eprintln!(
        "distributed campaign: {cells} cells in {batches} lease batch(es) of {} \
         (ttl {:.1} s) in {dir}",
        options.lease_cells,
        options.lease_ttl_ms as f64 / 1e3,
    );
    if options.workers == 0 {
        eprintln!(
            "initialised store and lease log only (--workers 0): launch \
             `campaign worker {dir} --worker-id N <grid flags>` processes to execute it, \
             then render with `campaign --resume {dir} <grid flags>`"
        );
        return Ok(());
    }

    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own executable: {e}"))?;
    let pass = worker_passthrough_args(raw_args);
    let mut children = Vec::new();
    for w in 0..options.workers {
        let child = std::process::Command::new(&exe)
            .arg("worker")
            .arg(&dir)
            .arg("--worker-id")
            .arg(w.to_string())
            .args(&pass)
            .spawn()
            .map_err(|e| format!("cannot spawn worker {w}: {e}"))?;
        children.push((w, child));
    }
    let started = std::time::Instant::now();
    let mut failed: Vec<String> = Vec::new();
    let mut exited = vec![false; children.len()];
    loop {
        let mut running = false;
        for (i, (w, child)) in children.iter_mut().enumerate() {
            if exited[i] {
                continue;
            }
            match child.try_wait() {
                Ok(Some(status)) => {
                    exited[i] = true;
                    if !status.success() {
                        eprintln!("worker {w} exited abnormally ({status})");
                        failed.push(format!("worker {w}: {status}"));
                    }
                }
                Ok(None) => running = true,
                Err(e) => return Err(format!("cannot wait for worker {w}: {e}")),
            }
        }
        if !running {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(400));
        if options.progress {
            // The coordinator monitors through the same shared files the
            // workers coordinate through — no channel to the children.
            if let Ok(log) = LeaseLog::open(&dir_path) {
                eprint!(
                    "{}",
                    render_lease_progress(log.state(), log.header(), now_ms(), started.elapsed())
                );
            }
        }
    }

    let log = LeaseLog::open(&dir_path)?;
    eprint!(
        "{}",
        log.state()
            .render(log.header().lease_cells, log.header().total_cells, now_ms())
    );
    let store = ResultStore::open(&dir)?;
    if !store.is_complete() {
        let why = if failed.is_empty() {
            "no worker reported failure".to_string()
        } else {
            failed.join(", ")
        };
        return Err(format!(
            "distributed campaign incomplete: {}/{} cells recorded ({why}) — \
             relaunch workers against {dir} or finish with --resume {dir}",
            store.completed_count(),
            store.total_cells(),
        ));
    }
    let rows = store.rows();
    let summaries = summarize(&rows);
    if !options.quiet {
        print!("{}", summary_table(&summaries));
    }
    let written = render_outputs(&dir, options.format, &rows, &summaries)?;
    eprintln!(
        "distributed campaign complete: {cells} cell(s) via {} worker process(es) in {:.2} s\
         {}",
        options.workers,
        started.elapsed().as_secs_f64(),
        if failed.is_empty() {
            String::new()
        } else {
            format!(" (survived: {})", failed.join(", "))
        },
    );
    for path in written {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// `campaign worker DIR --worker-id N [grid flags]`: one distributed
/// worker process. Normally spawned by `--distributed`; running it by hand
/// requires the coordinator's exact grid flags (fingerprint-checked).
fn run_worker_cli(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut worker_id: Option<usize> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--worker-id" => {
                worker_id = Some(
                    iter.next()
                        .ok_or_else(|| "--worker-id needs a value".to_string())?
                        .parse()
                        .map_err(|_| "--worker-id needs an integer".to_string())?,
                );
            }
            path if !path.starts_with("--") && dir.is_none() && rest.is_empty() => {
                dir = Some(path.to_string());
            }
            other => rest.push(other.to_string()),
        }
    }
    let dir = dir.ok_or("worker needs a store directory (before any grid flags)")?;
    let worker = worker_id.ok_or("worker needs --worker-id N")?;
    let Some(options) = parse_args(&rest)? else {
        return Ok(());
    };
    let obs = if options.metrics {
        CampaignObs::metrics()
    } else {
        CampaignObs::disabled()
    };
    let runner = CampaignRunner::new(options.spec.clone())
        .with_threads(options.threads)
        .with_strategy(options.strategy)
        .with_source(options.source)
        .with_obs(obs.clone());
    let outcome = runner.run_worker(std::path::Path::new(&dir), worker, !options.no_sync)?;
    eprint!("{}", outcome.render());
    if options.metrics {
        eprint!("{}", obs.registry.snapshot());
    }
    Ok(())
}

/// Write the requested `cells.*`/`summary.*` render files. One render
/// path for every mode — local, resumed, and distributed runs produce
/// byte-identical files from the same rows.
fn render_outputs(
    out_dir: &str,
    format: Format,
    rows: &[CellRow],
    summaries: &[SummaryRow],
) -> Result<Vec<std::path::PathBuf>, String> {
    let mut written = Vec::new();
    if format != Format::Json {
        written.extend(
            CsvSink::new(out_dir)
                .write(rows, summaries)
                .map_err(|e| format!("cannot write CSV results to {out_dir}: {e}"))?,
        );
    }
    if format != Format::Csv {
        written.extend(
            JsonSink::new(out_dir)
                .write(rows, summaries)
                .map_err(|e| format!("cannot write JSON results to {out_dir}: {e}"))?,
        );
    }
    Ok(written)
}

/// Aligned stdout table of the across-seed summaries. The `load` and
/// `window` columns carry the sweep axes — without them, the rows of a
/// window/load sweep would all print the same scenario label.
fn summary_table(summaries: &[SummaryRow]) -> String {
    let mut out = String::from(
        "racks  workload    load  scenario     window               n   \
         launched (mean±sd)   energy   work     wait(s)\n",
    );
    for s in summaries {
        let load = if s.load_factor.is_nan() {
            "-".to_string()
        } else {
            format!("{:.2}", s.load_factor)
        };
        out.push_str(&format!(
            "{:<6} {:<11} {:<5} {:<12} {:<20} {:>3} {:>10.1} ±{:<7.1} {:>7.3} {:>7.3} {:>9.0}\n",
            s.racks,
            s.workload,
            load,
            s.scenario,
            s.window,
            s.replications,
            s.launched_jobs.mean,
            s.launched_jobs.stddev,
            s.energy_normalized.mean,
            s.work_normalized.mean,
            s.mean_wait_seconds.mean,
        ));
    }
    out
}

/// `campaign pareto DIR [--out FILE] [--cells] [--quiet]`: summarize the
/// store and report the non-dominated (energy, work, wait) front per
/// workload group — or, with `--cells`, front the individual replications
/// (dominance counted per seed).
fn run_pareto(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut out: Option<String> = None;
    let mut cells = false;
    let mut quiet = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(
                    iter.next()
                        .ok_or_else(|| "--out needs a value".to_string())?
                        .clone(),
                )
            }
            "--cells" => cells = true,
            "--quiet" => quiet = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option: {flag}")),
            path if dir.is_none() => dir = Some(path.to_string()),
            extra => return Err(format!("unexpected argument: {extra}")),
        }
    }
    let dir = dir.ok_or("pareto needs a result-store directory")?;
    // Stream the store through the scanner (one partition resident at a
    // time, columnar decode on v3) instead of the full loader.
    let scanner = StoreScanner::open(&dir)?;
    let mut rows = Vec::with_capacity(scanner.completed_count());
    scanner.scan(&RowFilter::default(), |row| {
        rows.push(row.clone());
        Ok(ScanFlow::Continue)
    })?;
    if rows.is_empty() {
        return Err(format!("store at {dir} records no completed cells yet"));
    }
    if cells {
        let front = pareto_front_cells(&rows);
        let csv = render_pareto_cells_csv(&front);
        let out = out.unwrap_or_else(|| format!("{dir}/pareto-cells.csv"));
        std::fs::write(&out, &csv).map_err(|e| format!("cannot write {out}: {e}"))?;
        if !quiet {
            print!("{csv}");
        }
        eprintln!(
            "pareto cells front: {} of {} replication(s) non-dominated; wrote {out}",
            front.len(),
            rows.len(),
        );
        return Ok(());
    }
    let summaries = summarize(&rows);
    let front = pareto_front(&summaries);
    let csv = render_pareto_csv(&front);
    let out = out.unwrap_or_else(|| format!("{dir}/pareto.csv"));
    std::fs::write(&out, &csv).map_err(|e| format!("cannot write {out}: {e}"))?;
    if !quiet {
        print!("{csv}");
    }
    eprintln!(
        "pareto front: {} of {} summary rows non-dominated ({} cells); wrote {out}",
        front.len(),
        summaries.len(),
        rows.len(),
    );
    Ok(())
}

/// `campaign query DIR [filters] [--columns LIST] [--limit N]
/// [--group-by LIST [--agg mean|min|max]]`: stream matching rows out of
/// the partitioned store without loading it whole; with `--group-by` the
/// aggregation folds into the same streaming scan, so only one accumulator
/// per group is ever resident.
fn run_query(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut filter = RowFilter::default();
    let mut columns: Vec<String> = QUERY_COLUMNS.iter().map(|c| c.to_string()).collect();
    let mut columns_explicit = false;
    let mut group_by: Vec<String> = Vec::new();
    let mut agg: Option<AggKind> = None;
    let mut limit: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--workload" => filter.workload = Some(value("--workload")?.clone()),
            "--scenario" => filter.scenario = Some(value("--scenario")?.clone()),
            "--window" => filter.window = Some(value("--window")?.clone()),
            "--load" => {
                filter.load_factor = Some(
                    value("--load")?
                        .parse()
                        .map_err(|_| "--load needs a number".to_string())?,
                )
            }
            "--policy" => filter.policy = Some(value("--policy")?.clone()),
            "--seed" => {
                filter.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|_| "--seed needs an integer".to_string())?,
                )
            }
            "--racks" => {
                filter.racks = Some(
                    value("--racks")?
                        .parse()
                        .map_err(|_| "--racks needs an integer".to_string())?,
                )
            }
            "--schedule" => filter.schedule = Some(value("--schedule")?.clone()),
            "--faults" => filter.faults = Some(value("--faults")?.clone()),
            "--columns" => {
                columns = value("--columns")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().to_string())
                    .collect();
                if columns.is_empty() {
                    return Err("--columns needs a non-empty comma-separated list".into());
                }
                columns_explicit = true;
            }
            "--group-by" => {
                group_by = value("--group-by")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().to_string())
                    .collect();
                if group_by.is_empty() {
                    return Err("--group-by needs a non-empty comma-separated list".into());
                }
            }
            "--agg" => agg = Some(value("--agg")?.parse()?),
            "--limit" => {
                limit = Some(
                    value("--limit")?
                        .parse()
                        .map_err(|_| "--limit needs an integer".to_string())?,
                )
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option: {flag}")),
            path if dir.is_none() => dir = Some(path.to_string()),
            extra => return Err(format!("unexpected argument: {extra}")),
        }
    }
    let dir = dir.ok_or("query needs a result-store directory")?;
    if agg.is_some() && group_by.is_empty() {
        return Err("--agg needs --group-by".into());
    }
    // Validate the projection up front so a typo errors before any output.
    if let Some(unknown) = columns
        .iter()
        .find(|c| !QUERY_COLUMNS.contains(&c.as_str()))
    {
        return Err(format!(
            "unknown column {unknown:?} (valid: {})",
            QUERY_COLUMNS.join(", ")
        ));
    }

    if !group_by.is_empty() {
        // Aggregation pushdown: fold rows into per-group accumulators as
        // the partitions stream past — the row set is never materialised.
        let agg_columns: Vec<String> = if columns_explicit {
            columns
        } else {
            DEFAULT_AGG_COLUMNS.iter().map(|c| c.to_string()).collect()
        };
        let mut aggregator =
            GroupAggregator::new(&group_by, &agg_columns, agg.unwrap_or_default())?;
        // The fold only reads the group-by and aggregated columns, so v3
        // blocks need not decode anything else.
        let mut projected: Vec<String> = group_by.clone();
        projected.extend(agg_columns.iter().cloned());
        let projection = Projection::of(&projected)?;
        // Open (and thereby validate) the store before writing anything to
        // stdout — a bad directory must not leave a lone CSV header behind.
        let scanner = StoreScanner::open(&dir)?;
        let stats = scanner.scan_projected(&filter, projection, |row| {
            aggregator.fold(row)?;
            Ok(ScanFlow::Continue)
        })?;
        println!("{}", aggregator.header());
        for line in aggregator.rows(limit) {
            println!("{line}");
        }
        eprintln!(
            "{} row(s) matched; {} group(s); {} partition(s) zone-skipped",
            stats.matched,
            aggregator.group_count(),
            stats.partitions_skipped,
        );
        return Ok(());
    }

    // Projection pushdown: v3 blocks decode only the requested columns —
    // a narrow projection over a wide store skips most of the decode work.
    let projection = Projection::of(&columns)?;
    // Open (and thereby validate) the store before writing anything to
    // stdout — a bad directory must not leave a lone CSV header behind.
    let scanner = StoreScanner::open(&dir)?;
    println!("{}", columns.join(","));
    if limit == Some(0) {
        eprintln!("0 row(s) matched; 0 printed; 0 partition(s) zone-skipped");
        return Ok(());
    }
    let mut printed = 0usize;
    let stats = scanner.scan_projected(&filter, projection, |row| {
        let fields: Result<Vec<String>, String> = columns.iter().map(|c| project(row, c)).collect();
        println!("{}", fields?.join(","));
        printed += 1;
        // --limit ends the scan here: partitions past the N-th match are
        // never opened.
        Ok(if limit.is_some_and(|n| printed >= n) {
            ScanFlow::Stop
        } else {
            ScanFlow::Continue
        })
    })?;
    eprintln!(
        "{} row(s) matched; {printed} printed; {} partition(s) zone-skipped{}",
        stats.matched,
        stats.partitions_skipped,
        if stats.stopped_early {
            " (scan stopped at --limit)"
        } else {
            ""
        },
    );
    Ok(())
}

/// `campaign compact DIR [--per-part N] [--quiet]`: merge duplicate and
/// superseded records, drop untrusted rows, and rewrite every partition as
/// one columnar v3 block — also the v2 → v3 migration path.
fn run_compact(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut per_part: Option<usize> = None;
    let mut quiet = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--per-part" => {
                per_part = Some(
                    iter.next()
                        .ok_or_else(|| "--per-part needs a value".to_string())?
                        .parse()
                        .map_err(|_| "--per-part needs an integer".to_string())?,
                );
            }
            "--quiet" => quiet = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option: {flag}")),
            path if dir.is_none() => dir = Some(path.to_string()),
            extra => return Err(format!("unexpected argument: {extra}")),
        }
    }
    let dir = dir.ok_or("compact needs a result-store directory")?;
    let stats = compact_store(std::path::Path::new(&dir), per_part)?;
    if !quiet {
        eprint!("{}", stats.render());
    }
    Ok(())
}

/// `campaign report DIR`: post-run summary of a (possibly partial) result
/// store — completion state, axis coverage, and the same across-seed table
/// a live run prints.
fn run_report(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            flag if flag.starts_with("--") => return Err(format!("unknown option: {flag}")),
            path if dir.is_none() => dir = Some(path.to_string()),
            extra => return Err(format!("unexpected argument: {extra}")),
        }
    }
    let dir = dir.ok_or("report needs a result-store directory")?;
    let scanner = StoreScanner::open(&dir)?;
    let mut rows = Vec::with_capacity(scanner.completed_count());
    scanner.scan(&RowFilter::default(), |row| {
        rows.push(row.clone());
        Ok(ScanFlow::Continue)
    })?;
    let state = if scanner.is_complete() {
        "complete"
    } else {
        "partial — finish it with --resume"
    };
    println!(
        "campaign {dir}: {}/{} cells recorded ({state}), spec {}",
        scanner.completed_count(),
        scanner.total_cells(),
        scanner.spec_hash(),
    );
    let dir_path = std::path::Path::new(&dir);
    if dir_path.join(LEASES_NAME).exists() {
        match LeaseLog::open(dir_path) {
            Ok(log) => print!(
                "{}",
                log.state()
                    .render(log.header().lease_cells, log.header().total_cells, now_ms())
            ),
            Err(e) => println!("lease log unreadable: {e}"),
        }
    }
    if rows.is_empty() {
        println!("no completed cells yet — nothing to summarize");
        return Ok(());
    }
    let workloads: std::collections::BTreeSet<&str> =
        rows.iter().map(|r| r.workload.as_str()).collect();
    let scenarios: std::collections::BTreeSet<&str> =
        rows.iter().map(|r| r.scenario.as_str()).collect();
    let seeds: std::collections::BTreeSet<u64> = rows.iter().filter_map(|r| r.seed).collect();
    println!(
        "axes covered: {} workload(s) x {} scenario(s) x {} seed(s)",
        workloads.len(),
        scenarios.len(),
        seeds.len(),
    );
    print!("{}", summary_table(&summarize(&rows)));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(subcommand) = args.first().map(String::as_str) {
        if matches!(
            subcommand,
            "pareto" | "query" | "report" | "compact" | "worker"
        ) {
            let run = match subcommand {
                "pareto" => run_pareto(&args[1..]),
                "query" => run_query(&args[1..]),
                "compact" => run_compact(&args[1..]),
                "worker" => run_worker_cli(&args[1..]),
                _ => run_report(&args[1..]),
            };
            return match run {
                Ok(()) => ExitCode::SUCCESS,
                Err(message) => {
                    eprintln!("error: {message}");
                    eprintln!("{USAGE}");
                    ExitCode::from(2)
                }
            };
        }
    }
    match parse_args(&args) {
        Ok(Some(options)) => match if options.distributed.is_some() {
            run_distributed(options, &args)
        } else {
            run(options)
        } {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(1)
            }
        },
        Ok(None) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

//! The live campaign progress monitor (`campaign --progress`).
//!
//! A [`ProgressMonitor`] is a sampling thread over the campaign's metrics
//! [`Registry`]: it never talks to the executor, it just snapshots the
//! counters the workers publish and renders a top-style view — overall
//! completion, cells/s, ETA, steal total, and one line per worker with its
//! completion/steal counts and remaining own-deque depth.
//!
//! Everything goes to **stderr**: stdout carries campaign data (tables,
//! query output) and must stay byte-identical with monitoring on or off.
//! On a terminal the view redraws in place with ANSI cursor movement; piped
//! (CI logs), it degrades to an occasional plain line.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use apc_obs::{Registry, Snapshot};

use crate::lease::{BatchLease, LeaseHeader, LeaseState};

/// How often the interactive view redraws.
const INTERACTIVE_TICK: Duration = Duration::from_millis(200);
/// How often the piped (non-terminal) fallback prints a line.
const PLAIN_TICK: Duration = Duration::from_secs(2);

/// One worker's numbers extracted from a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WorkerProgress {
    completed: u64,
    stolen: u64,
    queue_depth: i64,
}

/// Pull the per-worker series out of a snapshot (workers are discovered by
/// name, so the renderer needs no side channel about the thread count).
fn workers_of(snapshot: &Snapshot) -> Vec<WorkerProgress> {
    let mut workers = Vec::new();
    loop {
        let w = workers.len();
        let Some(completed) = snapshot.counter(&format!("campaign.worker.{w}.completed")) else {
            break;
        };
        workers.push(WorkerProgress {
            completed,
            stolen: snapshot
                .counter(&format!("campaign.worker.{w}.stolen"))
                .unwrap_or(0),
            queue_depth: snapshot
                .gauge(&format!("campaign.worker.{w}.queue_depth"))
                .unwrap_or(0),
        });
    }
    workers
}

/// Render the top-style progress view from a snapshot: a header line plus
/// one line per worker. Pure — the monitor thread and the tests share it.
pub fn render_progress(snapshot: &Snapshot, total: usize, elapsed: Duration) -> String {
    let done = snapshot.counter("campaign.cells.completed").unwrap_or(0);
    let steals = snapshot.counter("campaign.cells.stolen").unwrap_or(0);
    let secs = elapsed.as_secs_f64().max(1e-9);
    let rate = done as f64 / secs;
    let eta = if done > 0 && (done as usize) < total {
        let remaining = (total - done as usize) as f64 / rate;
        format!("ETA {remaining:.0} s")
    } else if done as usize >= total {
        "done".to_string()
    } else {
        "ETA --".to_string()
    };
    let percent = if total > 0 {
        done as f64 * 100.0 / total as f64
    } else {
        100.0
    };
    let mut out = format!(
        "campaign {done}/{total} cells ({percent:.0}%)  {rate:.1} cells/s  {eta}  \
         {steals} steal(s)  {secs:.1} s elapsed\n"
    );
    for (w, p) in workers_of(snapshot).iter().enumerate() {
        out.push_str(&format!(
            "  w{w}: {:>4} done  {:>3} stolen  queue {}\n",
            p.completed, p.stolen, p.queue_depth
        ));
    }
    out
}

/// Render the distributed coordinator's progress view from a lease-log
/// replay: batch completion, active/expired lease counts, steals, and one
/// heartbeat-age line per worker. Pure — the `--distributed` monitor loop
/// and the tests share it. (The coordinator has no shared registry with
/// its worker *processes*; the lease log itself is the telemetry channel.)
pub fn render_lease_progress(
    state: &LeaseState,
    header: &LeaseHeader,
    now_ms: u64,
    elapsed: Duration,
) -> String {
    let total = header.batch_count();
    let done = state.done_count();
    let expired = state
        .batches()
        .iter()
        .filter(|b| matches!(b, BatchLease::Held { deadline_ms, .. } if *deadline_ms <= now_ms))
        .count();
    let active = state
        .batches()
        .iter()
        .filter(|b| matches!(b, BatchLease::Held { .. }))
        .count()
        - expired;
    let percent = if total > 0 {
        done as f64 * 100.0 / total as f64
    } else {
        100.0
    };
    let mut out = format!(
        "leases {done}/{total} batch(es) ({percent:.0}%)  {active} active  {expired} expired  \
         {} steal(s)  {:.1} s elapsed\n",
        state.total_steals(),
        elapsed.as_secs_f64(),
    );
    for (worker, stats) in state.worker_stats() {
        out.push_str(&format!(
            "  w{worker}: {:>3} done  {:>3} claim(s) ({} stolen)  heartbeat {:.1} s ago\n",
            stats.batches_done,
            stats.claims,
            stats.steals,
            now_ms.saturating_sub(stats.last_seen_ms) as f64 / 1e3,
        ));
    }
    out
}

/// A background thread rendering [`render_progress`] until stopped.
pub struct ProgressMonitor {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ProgressMonitor {
    /// Start monitoring `registry` for a run of `total` cells. Rendering
    /// mode (in-place redraw vs. plain lines) follows whether stderr is a
    /// terminal.
    pub fn start(registry: Registry, total: usize) -> Self {
        ProgressMonitor::start_with_mode(registry, total, std::io::stderr().is_terminal())
    }

    /// Like [`start`](Self::start) with the terminal detection overridden —
    /// lets tests drive the plain mode deterministically.
    pub fn start_with_mode(registry: Registry, total: usize, interactive: bool) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let tick = if interactive {
                INTERACTIVE_TICK
            } else {
                PLAIN_TICK
            };
            let mut rendered_lines = 0usize;
            loop {
                let stopping = stop_flag.load(Ordering::Relaxed);
                let frame = render_progress(&registry.snapshot(), total, started.elapsed());
                let mut err = std::io::stderr().lock();
                if interactive {
                    // Move back over the previous frame and overwrite it.
                    if rendered_lines > 0 {
                        let _ = write!(err, "\x1b[{rendered_lines}A");
                    }
                    for line in frame.lines() {
                        let _ = writeln!(err, "\x1b[2K{line}");
                    }
                    rendered_lines = frame.lines().count();
                } else {
                    // Plain mode: only the header line, no redraw tricks.
                    let _ = writeln!(err, "{}", frame.lines().next().unwrap_or_default());
                }
                let _ = err.flush();
                drop(err);
                if stopping {
                    break;
                }
                std::thread::sleep(tick);
            }
        });
        ProgressMonitor {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the monitor, letting it paint one final frame first.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_registry() -> Registry {
        let registry = Registry::new();
        registry.counter("campaign.cells.completed").add(6);
        registry.counter("campaign.cells.stolen").add(2);
        registry.counter("campaign.worker.0.completed").add(4);
        registry.counter("campaign.worker.0.stolen").add(0);
        registry.gauge("campaign.worker.0.queue_depth").set(3);
        registry.counter("campaign.worker.1.completed").add(2);
        registry.counter("campaign.worker.1.stolen").add(2);
        registry.gauge("campaign.worker.1.queue_depth").set(0);
        registry
    }

    #[test]
    fn render_shows_totals_rate_eta_and_workers() {
        let registry = populated_registry();
        let text = render_progress(&registry.snapshot(), 12, Duration::from_secs(3));
        assert!(text.starts_with("campaign 6/12 cells (50%)"), "{text}");
        assert!(text.contains("2.0 cells/s"), "{text}");
        assert!(text.contains("ETA 3 s"), "{text}");
        assert!(text.contains("2 steal(s)"), "{text}");
        assert!(
            text.contains("w0:    4 done    0 stolen  queue 3"),
            "{text}"
        );
        assert!(
            text.contains("w1:    2 done    2 stolen  queue 0"),
            "{text}"
        );
        assert_eq!(text.lines().count(), 3, "header + one line per worker");
    }

    #[test]
    fn render_handles_the_empty_and_finished_edges() {
        let empty = Registry::new();
        let text = render_progress(&empty.snapshot(), 10, Duration::from_secs(1));
        assert!(text.contains("0/10"), "{text}");
        assert!(text.contains("ETA --"), "{text}");
        let registry = populated_registry();
        let done = render_progress(&registry.snapshot(), 6, Duration::from_secs(3));
        assert!(done.contains("done"), "{done}");
        // Zero-total never divides by zero.
        let zero = render_progress(&empty.snapshot(), 0, Duration::from_secs(1));
        assert!(zero.contains("(100%)"), "{zero}");
    }

    #[test]
    fn monitor_starts_renders_and_stops() {
        let registry = populated_registry();
        let monitor = ProgressMonitor::start_with_mode(registry, 12, false);
        std::thread::sleep(Duration::from_millis(30));
        monitor.stop();
    }

    #[test]
    fn lease_progress_counts_active_expired_and_heartbeats() {
        let header = LeaseHeader {
            spec_hash: 0xabc,
            total_cells: 16,
            lease_cells: 4,
            ttl_ms: 1_000,
        };
        let mut state = LeaseState::new(header.batch_count());
        // w0 done with batch 0; w1 alive on batch 1; w2's lease on batch 2
        // expired at t=5000 and was then stolen and finished by w1.
        assert!(state.apply_line("claim 0 0 1000 2000"));
        assert!(state.apply_line("done 0 0 1900"));
        assert!(state.apply_line("claim 1 1 4500 5500"));
        assert!(state.apply_line("claim 2 2 3000 4000"));
        assert!(state.apply_line("claim 2 1 4600 5600"));
        assert!(state.apply_line("done 2 1 4900"));
        assert!(state.apply_line("claim 3 2 4950 5950"));
        let text = render_lease_progress(&state, &header, 5_000, Duration::from_secs(4));
        assert!(
            text.starts_with("leases 2/4 batch(es) (50%)  2 active  0 expired  1 steal(s)"),
            "{text}"
        );
        assert!(
            text.contains("w1:   1 done    2 claim(s) (1 stolen)"),
            "{text}"
        );
        assert!(text.contains("heartbeat 0.1 s ago"), "{text}");
        // Once w1's lease deadline passes it reads as expired while w2's
        // later deadline keeps its lease active.
        let later = render_lease_progress(&state, &header, 5_700, Duration::from_secs(5));
        assert!(later.contains("1 active  1 expired"), "{later}");
    }
}
